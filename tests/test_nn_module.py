"""Unit tests for Module / Parameter infrastructure."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor


class Block(nn.Module):
    def __init__(self):
        super().__init__()
        self.linear = nn.Linear(4, 3)
        self.scale = nn.Parameter(np.ones(3))

    def forward(self, x):
        return self.linear(x) * self.scale


class TestRegistration:
    def test_parameters_are_registered(self):
        block = Block()
        names = [name for name, _ in block.named_parameters()]
        assert "scale" in names
        assert "linear.weight" in names
        assert "linear.bias" in names

    def test_modules_traversal(self):
        block = Block()
        names = [name for name, _ in block.named_modules()]
        assert "" in names and "linear" in names

    def test_children(self):
        block = Block()
        assert len(block.children()) == 1

    def test_buffers_registered(self):
        bn = nn.BatchNorm2d(4)
        buffer_names = [name for name, _ in bn.named_buffers()]
        assert set(buffer_names) == {"running_mean", "running_var"}

    def test_reassigning_parameter_keeps_single_entry(self):
        block = Block()
        block.scale = nn.Parameter(np.zeros(3))
        assert sum(1 for name, _ in block.named_parameters() if name == "scale") == 1


class TestModes:
    def test_train_eval_propagates(self):
        block = Block()
        block.eval()
        assert not block.training and not block.linear.training
        block.train()
        assert block.training and block.linear.training

    def test_zero_grad(self):
        block = Block()
        out = block(Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert block.linear.weight.grad is not None
        block.zero_grad()
        assert block.linear.weight.grad is None


class TestStateDict:
    def test_roundtrip(self):
        src, dst = Block(), Block()
        src.linear.weight.data[...] = 7.0
        dst.load_state_dict(src.state_dict())
        np.testing.assert_allclose(dst.linear.weight.data, 7.0)

    def test_missing_key_raises_in_strict_mode(self):
        block = Block()
        state = block.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            block.load_state_dict(state, strict=True)

    def test_non_strict_allows_missing(self):
        block = Block()
        block.load_state_dict({}, strict=False)

    def test_shape_mismatch_raises(self):
        block = Block()
        state = block.state_dict()
        state["scale"] = np.zeros(5)
        with pytest.raises(ValueError):
            block.load_state_dict(state)

    def test_buffers_in_state_dict(self):
        bn = nn.BatchNorm2d(2)
        bn.set_buffer("running_mean", np.array([1.0, 2.0]))
        restored = nn.BatchNorm2d(2)
        restored.load_state_dict(bn.state_dict())
        np.testing.assert_allclose(restored.running_mean, [1.0, 2.0])


class TestForwardProtocol:
    def test_call_invokes_forward(self):
        block = Block()
        out = block(Tensor(np.ones((2, 4))))
        assert out.shape == (2, 3)

    def test_base_forward_raises(self):
        with pytest.raises(NotImplementedError):
            nn.Module().forward()
