"""Workload generators: arrival processes, scenarios and request synthesis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import (
    SCENARIOS,
    Scenario,
    bursty_arrivals,
    diurnal_arrivals,
    fleet_input_shapes,
    generate_requests,
    heavy_tail_arrivals,
    poisson_arrivals,
)

RNG = lambda seed=0: np.random.default_rng(seed)


@pytest.mark.parametrize("make", [
    lambda rng: poisson_arrivals(200.0, 3.0, rng),
    lambda rng: bursty_arrivals(400.0, 3.0, rng),
    lambda rng: diurnal_arrivals(50.0, 300.0, 3.0, rng),
    lambda rng: heavy_tail_arrivals(200.0, 3.0, rng),
])
def test_arrivals_sorted_within_horizon_and_deterministic(make):
    times = make(RNG())
    assert times.size > 0
    assert np.all(np.diff(times) >= 0)
    assert times[0] >= 0.0 and times[-1] < 3.0
    np.testing.assert_array_equal(times, make(RNG()))
    assert not np.array_equal(times, make(RNG(1)))


def test_poisson_rate_is_approximately_honored():
    times = poisson_arrivals(200.0, 5.0, RNG())
    # mean 1000 arrivals, sd ~32; 5 sigma bounds
    assert 840 < times.size < 1160


def test_poisson_degenerate_inputs_yield_empty():
    assert poisson_arrivals(0.0, 1.0, RNG()).size == 0
    assert poisson_arrivals(10.0, 0.0, RNG()).size == 0


def test_bursty_has_quiet_gaps():
    times = bursty_arrivals(500.0, 4.0, RNG(), on_s=0.1, off_s=0.5)
    gaps = np.diff(times)
    # off periods produce gaps far above the in-burst interarrival of 2ms
    assert gaps.max() > 20 * (1.0 / 500.0)


def test_diurnal_peak_concentrates_arrivals():
    times = diurnal_arrivals(10.0, 400.0, 1.0, RNG(), period_s=1.0)
    # mid-period (rate peak) must hold more arrivals than the trough edges
    mid = np.sum((times > 0.25) & (times < 0.75))
    edges = times.size - mid
    assert mid > edges


def test_diurnal_rejects_peak_below_base():
    with pytest.raises(ValueError, match="peak_rps"):
        diurnal_arrivals(100.0, 50.0, 1.0, RNG())


def test_heavy_tail_rejects_infinite_mean():
    with pytest.raises(ValueError, match="alpha"):
        heavy_tail_arrivals(100.0, 1.0, RNG(), alpha=1.0)


def test_heavy_tail_gaps_exceed_poisson_tails():
    ht = np.diff(heavy_tail_arrivals(200.0, 5.0, RNG(), alpha=1.3))
    # a Lomax tail produces a max gap far above its own mean gap
    assert ht.max() > 20 * ht.mean()


# ---------------------------------------------------------------------- #
# Scenarios and request synthesis
# ---------------------------------------------------------------------- #
def test_scenario_validates_arrival_kind_and_mix():
    with pytest.raises(ValueError, match="unknown arrival"):
        Scenario("x", "uniform", 1.0, (("lenet_nano", 1.0),))
    with pytest.raises(ValueError, match="model_mix"):
        Scenario("x", "poisson", 1.0, ())


def test_preset_scenarios_cover_multiple_models():
    assert len(SCENARIOS) >= 4
    for scenario in SCENARIOS.values():
        assert len(scenario.models) >= 2
        assert scenario.slo_ms is None or scenario.slo_ms > 0


def test_fleet_input_shapes_from_registry():
    shapes = fleet_input_shapes(["lenet_nano", "mobilenet_v1_nano"], image_size=8)
    assert shapes == {"lenet_nano": (3, 8, 8), "mobilenet_v1_nano": (3, 8, 8)}
    defaults = fleet_input_shapes(["lenet_nano"])
    assert defaults["lenet_nano"] == (3, 16, 16)
    with pytest.raises(ValueError, match="available"):
        fleet_input_shapes(["resnet_nano_giant"])


def test_generate_requests_is_deterministic_and_mixed():
    scenario = SCENARIOS["steady_poisson"]
    shapes = fleet_input_shapes(scenario.models, image_size=8)
    reqs = generate_requests(scenario, shapes, seed=0)
    again = generate_requests(scenario, shapes, seed=0)
    assert len(reqs) == len(again) > 0
    assert [r.request_id for r in reqs] == list(range(len(reqs)))
    assert all(r.deadline_s == scenario.slo_ms / 1e3 for r in reqs)
    assert {r.model for r in reqs} == set(scenario.models)
    for a, b in zip(reqs[:20], again[:20]):
        assert a.model == b.model and a.arrival_s == b.arrival_s
        np.testing.assert_array_equal(a.image, b.image)
        assert a.image.shape == shapes[a.model]
    arrivals = [r.arrival_s for r in reqs]
    assert arrivals == sorted(arrivals)


def test_generate_requests_requires_shapes_for_the_mix():
    scenario = SCENARIOS["steady_poisson"]
    with pytest.raises(ValueError, match="missing"):
        generate_requests(scenario, {"lenet_nano": (3, 8, 8)}, seed=0)
