"""Unit tests for the autograd Tensor core."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    as_tensor,
    clip,
    concatenate,
    exp,
    log,
    matmul,
    maximum,
    minimum,
    no_grad,
    pad,
    sqrt,
    stack,
    tanh,
    unbroadcast,
    where,
    zeros,
    ones,
    full,
    arange,
    randn,
)
from repro.autograd import abs as t_abs


class TestTensorBasics:
    def test_construction_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64
        assert not t.requires_grad

    def test_construction_from_tensor_shares_data(self):
        base = Tensor([1.0, 2.0])
        wrapped = Tensor(base)
        assert np.shares_memory(base.data, wrapped.data)

    def test_integer_input_promoted_to_float(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype == np.float64

    def test_item_and_len(self):
        assert Tensor([[3.5]]).item() == 3.5
        assert len(Tensor([1.0, 2.0, 4.0])) == 3

    def test_detach_cuts_graph(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad

    def test_clone_is_differentiable(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x.clone() * 3.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [3.0, 3.0])

    def test_factories(self):
        assert zeros((2, 2)).data.sum() == 0
        assert ones((2, 2)).data.sum() == 4
        assert full((3,), 2.5).data.sum() == 7.5
        assert arange(4).shape == (4,)
        assert randn(2, 3, rng=np.random.default_rng(0)).shape == (2, 3)


class TestArithmeticGradients:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_sub_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a - b).sum().backward()
        np.testing.assert_allclose(b.grad, [-1.0, -1.0])

    def test_mul_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [3.0, 4.0])
        np.testing.assert_allclose(b.grad, [1.0, 2.0])

    def test_div_backward(self):
        a = Tensor([1.0, 4.0], requires_grad=True)
        b = Tensor([2.0, 8.0], requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.125])
        np.testing.assert_allclose(b.grad, [-0.25, -0.0625])

    def test_pow_backward(self):
        x = Tensor([2.0, 3.0], requires_grad=True)
        (x ** 3).sum().backward()
        np.testing.assert_allclose(x.grad, [12.0, 27.0])

    def test_neg_backward(self):
        x = Tensor([2.0], requires_grad=True)
        (-x).backward(np.ones(1))
        np.testing.assert_allclose(x.grad, [-1.0])

    def test_scalar_broadcast(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 3.0 + 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [3.0, 3.0])

    def test_rsub_rdiv(self):
        x = Tensor([2.0], requires_grad=True)
        y = 1.0 - x
        np.testing.assert_allclose(y.data, [-1.0])
        z = 4.0 / x
        np.testing.assert_allclose(z.data, [2.0])

    def test_gradient_accumulation_over_multiple_uses(self):
        x = Tensor([1.0], requires_grad=True)
        y = x * 2 + x * 3
        y.backward(np.ones(1))
        np.testing.assert_allclose(x.grad, [5.0])

    def test_backward_twice_accumulates_into_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).backward(np.ones(1))
        (x * 2).backward(np.ones(1))
        np.testing.assert_allclose(x.grad, [4.0])

    def test_broadcast_gradient_reduction(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones((4,)), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_comparison_returns_bool_arrays(self):
        x = Tensor([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(x > 1.5, [False, True, True])
        np.testing.assert_array_equal(x <= 2.0, [True, True, False])


class TestMatmul:
    def test_matmul_forward(self):
        a = Tensor(np.arange(6).reshape(2, 3))
        b = Tensor(np.arange(12).reshape(3, 4))
        np.testing.assert_allclose((a @ b).data, a.data @ b.data)

    def test_matmul_backward(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        matmul(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 4)) @ b.data.T)
        np.testing.assert_allclose(b.grad, a.data.T @ np.ones((2, 4)))

    def test_batched_matmul(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.standard_normal((5, 2, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal((5, 3, 4)), requires_grad=True)
        out = matmul(a, b)
        assert out.shape == (5, 2, 4)
        out.sum().backward()
        assert a.grad.shape == (5, 2, 3)


class TestReductions:
    def test_sum_axis_keepdims(self):
        x = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        out = x.sum(axis=1, keepdims=True)
        assert out.shape == (3, 1)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((3, 4)))

    def test_mean_gradient(self):
        x = Tensor(np.arange(4.0), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full(4, 0.25))

    def test_mean_tuple_axis(self):
        x = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        out = x.mean(axis=(1, 2))
        assert out.shape == (2,)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 3, 4), 1.0 / 12))

    def test_var_matches_numpy(self):
        data = np.random.default_rng(0).standard_normal((4, 5))
        x = Tensor(data)
        np.testing.assert_allclose(x.var(axis=0).data, data.var(axis=0), atol=1e-12)

    def test_max_gradient_routes_to_argmax(self):
        x = Tensor([1.0, 5.0, 3.0], requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_max_axis(self):
        x = Tensor([[1.0, 2.0], [4.0, 3.0]], requires_grad=True)
        out = x.max(axis=1)
        np.testing.assert_allclose(out.data, [2.0, 4.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_min_matches_negated_max(self):
        x = Tensor([3.0, -1.0, 2.0], requires_grad=True)
        out = x.min()
        assert out.item() == -1.0


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        x.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(6))

    def test_transpose_gradient(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        y = x.transpose(1, 0)
        assert y.shape == (3, 2)
        (y * Tensor(np.arange(6.0).reshape(3, 2))).sum().backward()
        assert x.grad.shape == (2, 3)

    def test_T_property(self):
        x = Tensor(np.arange(6.0).reshape(2, 3))
        assert x.T.shape == (3, 2)

    def test_flatten(self):
        x = Tensor(np.zeros((2, 3, 4)))
        assert x.flatten(start_dim=1).shape == (2, 12)

    def test_getitem_gradient_scatter(self):
        x = Tensor(np.arange(5.0), requires_grad=True)
        y = x[np.array([0, 0, 2])]
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 0.0, 1.0, 0.0, 0.0])

    def test_pad_and_gradient(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        y = pad(x, [(1, 1), (0, 2)], value=5.0)
        assert y.shape == (4, 4)
        assert y.data[0, 0] == 5.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 2)))


class TestElementwiseFunctions:
    def test_exp_log_sqrt_tanh_abs(self):
        x = Tensor([0.5, 1.0, 2.0], requires_grad=True)
        np.testing.assert_allclose(exp(x).data, np.exp(x.data))
        np.testing.assert_allclose(log(x).data, np.log(x.data))
        np.testing.assert_allclose(sqrt(x).data, np.sqrt(x.data))
        np.testing.assert_allclose(tanh(x).data, np.tanh(x.data))
        np.testing.assert_allclose(t_abs(Tensor([-1.0, 2.0])).data, [1.0, 2.0])

    def test_exp_gradient(self):
        x = Tensor([1.0], requires_grad=True)
        exp(x).backward(np.ones(1))
        np.testing.assert_allclose(x.grad, np.exp([1.0]))

    def test_clip_gradient_mask(self):
        x = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        clip(x, -1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_maximum_minimum(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([3.0, 2.0], requires_grad=True)
        maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 0.0])
        a.zero_grad(); b.zero_grad()
        minimum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])

    def test_where_routes_gradients(self):
        cond = np.array([True, False])
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        out = where(cond, a, b)
        np.testing.assert_allclose(out.data, [1.0, 4.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])


class TestConcatenationAndStack:
    def test_concatenate_forward_backward(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.full((2, 3), 2.0), requires_grad=True)
        out = concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * Tensor(np.arange(10.0).reshape(2, 5))).sum().backward()
        assert a.grad.shape == (2, 2)
        assert b.grad.shape == (2, 3)

    def test_stack(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))


class TestGradModes:
    def test_no_grad_disables_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_no_grad_restores_state(self):
        from repro.autograd import is_grad_enabled
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_on_non_scalar_without_grad_raises(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()


class TestUnbroadcast:
    def test_unbroadcast_sums_leading_axes(self):
        grad = np.ones((5, 3))
        np.testing.assert_allclose(unbroadcast(grad, (3,)), np.full(3, 5.0))

    def test_unbroadcast_sums_size_one_axes(self):
        grad = np.ones((4, 3))
        np.testing.assert_allclose(unbroadcast(grad, (4, 1)), np.full((4, 1), 3.0))

    def test_unbroadcast_identity(self):
        grad = np.ones((2, 2))
        assert unbroadcast(grad, (2, 2)) is grad

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t
