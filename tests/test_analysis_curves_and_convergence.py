"""Unit tests for transfer curves (Fig. 1/3), gradient landscapes (Fig. 7) and
Adam convergence analysis (Fig. 9 / Appendix C)."""

import numpy as np
import pytest

from repro.analysis import (
    ToyL2Problem,
    clipping_limits,
    compute_gradient_landscape,
    estimate_gradient_ratio,
    fakequant_transfer_curves,
    max_excursion_bound,
    measure_oscillations,
    oscillation_period_estimate,
    scale_invariance_metrics,
    simulate_bang_bang_adam,
    tqt_transfer_curves,
    train_threshold,
)
from repro.quant import QuantConfig


class TestTQTTransferCurves:
    """Properties of Figure 1 (b = 3, t = 1.0, signed)."""

    @pytest.fixture(scope="class")
    def curves(self):
        return tqt_transfer_curves(threshold=1.0, bits=3, signed=True)

    def test_clipping_limits_match_paper_example(self, curves):
        # b=3, t=1: s = 2^0 / 4 = 0.25, n=-4, p=3 -> xn = -1.125, xp = 0.875
        low, high = clipping_limits(1.0, QuantConfig(bits=3, signed=True))
        assert low == pytest.approx(-1.125)
        assert high == pytest.approx(0.875)
        assert curves.clip_low == pytest.approx(-1.125)
        assert curves.clip_high == pytest.approx(0.875)

    def test_forward_is_staircase_with_saturation(self, curves):
        assert curves.forward.min() == pytest.approx(-1.0)   # n*s = -4*0.25
        assert curves.forward.max() == pytest.approx(0.75)   # p*s = 3*0.25
        # only 8 distinct levels for b=3
        assert len(np.unique(np.round(curves.forward, 6))) == 8

    def test_input_gradient_is_indicator_of_clipping_range(self, curves):
        margin = 0.01
        strict_inside = (curves.x > curves.clip_low + margin) & (curves.x < curves.clip_high - margin)
        np.testing.assert_allclose(curves.grad_input[strict_inside], 1.0)
        strict_outside = (curves.x < curves.clip_low - margin) | (curves.x > curves.clip_high + margin)
        np.testing.assert_allclose(curves.grad_input[strict_outside], 0.0)

    def test_threshold_gradient_saturates_to_ns_and_ps_ln2(self, curves):
        # outside the clipping range, d q / d log2 t = s ln2 * n (left) or s ln2 * p (right)
        s, n, p = 0.25, -4, 3
        left = curves.x < curves.clip_low - 0.01
        right = curves.x > curves.clip_high + 0.01
        np.testing.assert_allclose(curves.grad_threshold[left], s * np.log(2) * n, atol=1e-9)
        np.testing.assert_allclose(curves.grad_threshold[right], s * np.log(2) * p, atol=1e-9)

    def test_threshold_gradient_nonzero_inside(self, curves):
        """Unlike FakeQuant, the TQT threshold gradient is generally non-zero
        inside the clipping range (this is the range-precision trade-off)."""
        inside = (curves.x > curves.clip_low + 0.01) & (curves.x < curves.clip_high - 0.01)
        assert np.abs(curves.grad_threshold[inside]).max() > 0.01

    def test_l2_loss_threshold_gradient_changes_sign(self, curves):
        inside = (curves.x > curves.clip_low + 0.01) & (curves.x < curves.clip_high - 0.01)
        outside = (curves.x < curves.clip_low - 0.1) | (curves.x > curves.clip_high + 0.1)
        assert curves.loss_grad_threshold[outside].max() < 0        # pulls range out
        assert curves.loss_grad_threshold[inside].max() > 0         # pulls range in

    def test_unsigned_curves(self):
        curves = tqt_transfer_curves(threshold=1.0, bits=3, signed=False)
        assert curves.forward.min() == 0.0
        assert curves.forward.max() == pytest.approx(7 / 8)


class TestFakeQuantTransferCurves:
    """Properties of Figure 3: clipped gradients."""

    @pytest.fixture(scope="class")
    def curves(self):
        return fakequant_transfer_curves(clip_min=-1.125, clip_max=0.875, bits=3)

    def test_forward_matches_tqt_when_limits_align(self):
        """Section 3.5: the FakeQuant forward pass is mathematically equivalent
        to TQT's when (min, max) are set to TQT's representable extremes
        (n*s, p*s) = (-1.0, 0.75) for b = 3, t = 1."""
        fq = fakequant_transfer_curves(clip_min=-1.0, clip_max=0.75, bits=3)
        tqt = tqt_transfer_curves(threshold=1.0, bits=3, signed=True)
        inside = (fq.x > -0.99) & (fq.x < 0.74)
        np.testing.assert_allclose(fq.forward[inside], tqt.forward[inside], atol=1e-9)

    def test_threshold_gradient_zero_inside(self, curves):
        inside = (curves.x > -1.0) & (curves.x < 0.8)
        np.testing.assert_allclose(curves.grad_threshold[inside], 0.0, atol=1e-12)

    def test_threshold_gradient_one_above_max(self, curves):
        above = curves.x > 1.0
        np.testing.assert_allclose(curves.grad_threshold[above], 1.0)

    def test_loss_gradient_never_pulls_threshold_inward(self, curves):
        """The overall L2 gradient w.r.t. max is <= 0 everywhere: the threshold
        only ever grows — no range/precision trade-off."""
        assert curves.loss_grad_threshold.max() <= 1e-12


class TestGradientLandscape:
    def test_normed_gradients_are_scale_invariant(self):
        landscapes = [compute_gradient_landscape(sigma, bits=8, num_points=81, seed=0)
                      for sigma in (0.01, 1.0, 100.0)]
        spreads = scale_invariance_metrics(landscapes)
        # raw/log gradients vary over orders of magnitude with input scale,
        # normed gradients stay within a factor of a few (Figure 7).
        assert spreads["raw_grad"] > 100
        assert spreads["log_grad"] > 100
        assert spreads["normed_log_grad"] < 10

    def test_normed_gradient_bounded_by_one(self):
        landscape = compute_gradient_landscape(1.0, num_points=41, seed=0)
        assert np.abs(landscape.normed_log_grad).max() <= 1.0 + 1e-9


class TestAdamConvergenceAnalysis:
    def test_period_estimate_equals_gradient_ratio(self):
        assert oscillation_period_estimate(244.0) == 244.0

    def test_excursion_bound_formula(self):
        assert max_excursion_bound(100.0, 0.01) == pytest.approx(0.1)

    @pytest.mark.parametrize("ratio", [20.0, 100.0, 300.0])
    def test_bang_bang_simulation_matches_theory(self, ratio):
        sim = simulate_bang_bang_adam(gradient_ratio=ratio, learning_rate=0.01,
                                      steps=int(100 * ratio))
        # Appendix C: T ~= r_g and excursion < alpha * sqrt(r_g)
        assert sim.period == pytest.approx(ratio, rel=0.35)
        assert sim.excursion <= sim.excursion_bound * 1.05

    def test_estimate_gradient_ratio_is_large_for_8bit(self):
        problem = ToyL2Problem(sigma=1.0, bits=8, num_samples=3000, seed=0)
        ratio = estimate_gradient_ratio(problem)   # locates log2 t* itself
        assert ratio > 3.0
        # Appendix C bounds r_g by roughly 6 * f * p <= 6p with p = 127
        assert ratio < 6 * 127

    def test_measure_oscillations_on_trained_trajectory(self):
        problem = ToyL2Problem(sigma=1.0, bits=8, num_samples=400, seed=0)
        trajectory = train_threshold(problem, init_log2_t=1.0, steps=800, lr=0.01,
                                     method="adam", batch_size=400, seed=0)
        stats = measure_oscillations(trajectory, tail=300)
        assert stats["amplitude"] < 1.0
        assert stats["period"] >= 1.0
