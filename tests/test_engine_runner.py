"""BatchedRunner edge cases and the engine's variable-fill execution path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import BatchedRunner
from repro.models import compile_registry_model

IMAGE_SIZE = 8
BATCH = 4


@pytest.fixture(scope="module")
def compiled():
    return compile_registry_model("lenet_nano", image_size=IMAGE_SIZE, batch_size=BATCH,
                                  calibration_samples=8, calibration_batch_size=4)


def _images(count: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((count, 3, IMAGE_SIZE, IMAGE_SIZE))


# ---------------------------------------------------------------------- #
# RunnerStats: p95 and the zero-request guard
# ---------------------------------------------------------------------- #
def test_stats_include_p95(compiled):
    runner = BatchedRunner(compiled.engine)
    _, stats = runner.run(_images(10))
    assert stats.latency_p95_ms > 0.0
    assert stats.latency_p50_ms <= stats.latency_p95_ms <= stats.latency_p99_ms
    payload = stats.to_dict()
    assert payload["latency_p95_ms"] == stats.latency_p95_ms
    for key in ("latency_p50_ms", "latency_p90_ms", "latency_p95_ms", "latency_p99_ms"):
        assert key in payload


def test_zero_request_run_yields_zeroed_stats(compiled):
    runner = BatchedRunner(compiled.engine)
    results, stats = runner.run(_images(0))
    assert results == []
    assert stats.requests == 0
    assert stats.batches == 0
    assert stats.throughput_rps == 0.0
    assert stats.latency_mean_ms == 0.0
    assert stats.latency_p95_ms == 0.0
    assert stats.latency_p99_ms == 0.0
    # to_dict must serialize without touching an empty percentile array.
    assert stats.to_dict()["requests"] == 0


# ---------------------------------------------------------------------- #
# Staging buffer dtype and input validation
# ---------------------------------------------------------------------- #
def test_staging_uses_engine_input_dtype(compiled):
    runner = BatchedRunner(compiled.engine)
    assert runner._staging.dtype == compiled.engine.input_dtype


@pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
def test_non_finite_requests_rejected(compiled, bad):
    runner = BatchedRunner(compiled.engine)
    images = _images(3)
    images[1, 0, 0, 0] = bad
    with pytest.raises(ValueError, match="finite"):
        runner.run(images)


def test_engine_rejects_non_finite_inputs_directly(compiled):
    """The guard lives in the engine, so every caller (runner, serving,
    direct run/run_partial) is covered."""
    batch = _images(BATCH)
    batch[0, 0, 0, 0] = np.nan
    with pytest.raises(ValueError, match="finite"):
        compiled.engine.run(batch)
    with pytest.raises(ValueError, match="finite"):
        compiled.engine.run_partial(batch[:2] * np.inf)


# ---------------------------------------------------------------------- #
# Arrival-time edge cases
# ---------------------------------------------------------------------- #
def test_duplicate_arrival_timestamps_are_valid(compiled):
    runner = BatchedRunner(compiled.engine)
    arrivals = np.array([0.0, 0.0, 0.1, 0.1, 0.1, 0.2])
    results, stats = runner.run(_images(6), arrivals)
    assert stats.requests == 6
    # Requests sharing a timestamp and a batch share the batch finish time,
    # hence identical latencies.
    assert results[0].latency_s == pytest.approx(results[1].latency_s)


def test_decreasing_arrivals_rejected(compiled):
    runner = BatchedRunner(compiled.engine)
    with pytest.raises(ValueError, match="non-decreasing"):
        runner.run(_images(3), np.array([0.0, 0.2, 0.1]))


def test_final_partial_batch_is_padded_and_counted(compiled):
    runner = BatchedRunner(compiled.engine)
    results, stats = runner.run(_images(BATCH + 2))
    assert stats.batches == 2
    assert stats.padded_requests == BATCH - 2
    assert len(results) == BATCH + 2
    assert [r.batch_index for r in results] == [0] * BATCH + [1, 1]


def test_burst_latencies_grow_with_batch_index(compiled):
    """An all-at-t=0 burst queues behind the worker: later batches wait longer."""
    runner = BatchedRunner(compiled.engine)
    results, _ = runner.run(_images(3 * BATCH))
    per_batch = {}
    for r in results:
        per_batch.setdefault(r.batch_index, r.latency_s)
        # same arrival + same batch finish => identical latency within a batch
        assert r.latency_s == pytest.approx(per_batch[r.batch_index])
    assert per_batch[0] < per_batch[1] < per_batch[2]


def test_spaced_arrivals_wait_for_their_batch_to_fill(compiled):
    """With fixed full-batch coalescing, the earliest request of a batch
    waits for the batch-filling arrival: latencies decrease within a batch."""
    runner = BatchedRunner(compiled.engine)
    gap = 0.5
    arrivals = np.arange(2 * BATCH) * gap
    results, stats = runner.run(_images(2 * BATCH), arrivals)
    for batch_start in (0, BATCH):
        batch = results[batch_start:batch_start + BATCH]
        latencies = [r.latency_s for r in batch]
        assert latencies == sorted(latencies, reverse=True)
        # The batch head waited ~(BATCH-1) gaps; the tail only its compute.
        assert latencies[0] >= (BATCH - 1) * gap
        assert latencies[-1] < gap
    # Virtual makespan covers the arrival span, so throughput is arrival-bound.
    assert stats.total_time_s >= arrivals[-1]


# ---------------------------------------------------------------------- #
# CompiledEngine.run_partial (variable fill)
# ---------------------------------------------------------------------- #
def test_run_partial_matches_padded_full_batch(compiled):
    engine = compiled.engine
    images = _images(2, seed=3)
    partial = engine.run_partial(images)
    assert partial.codes.shape[0] == 2
    padded = np.zeros(engine.input_shape)
    padded[:2] = images
    full = engine.run(padded)
    np.testing.assert_array_equal(partial.codes, full.codes[:2])
    assert partial.fraction == full.fraction
    assert partial.divisor == full.divisor


def test_run_partial_full_fill_matches_run(compiled):
    engine = compiled.engine
    images = _images(BATCH, seed=4)
    np.testing.assert_array_equal(engine.run_partial(images).codes,
                                  engine.run(images).codes)


def test_run_partial_rejects_bad_fill(compiled):
    engine = compiled.engine
    with pytest.raises(ValueError, match="fill"):
        engine.run_partial(_images(BATCH + 1))
    with pytest.raises(ValueError, match="fill"):
        engine.run_partial(np.empty((0, 3, IMAGE_SIZE, IMAGE_SIZE)))
    with pytest.raises(ValueError, match="shaped"):
        engine.run_partial(np.zeros((2, 3, IMAGE_SIZE + 1, IMAGE_SIZE)))
