"""MetricsCollector edge cases: timeline endpoints, degenerate streams,
single-arrival rates, megabatch counters and the interval time-series."""

import pytest

from repro.serving import MetricsCollector
from repro.telemetry.snapshot import DEFAULT_BUCKETS, MAX_BUCKETS, build_timeseries


# ---------------------------------------------------------------------- #
# Timeline downsampling
# ---------------------------------------------------------------------- #
def test_timeline_keeps_the_final_sample_under_striding():
    collector = MetricsCollector(["a"])
    n = 1001                      # stride 5 would drop index 1000 if unpatched
    for i in range(n):
        collector.record_queue_depth(float(i), i % 7)
    timeline = collector.report(makespan_s=float(n))["queue_depth"]
    assert timeline["t_s"][-1] == pytest.approx(float(n - 1))
    assert timeline["depth"][-1] == (n - 1) % 7
    assert len(timeline["t_s"]) == len(timeline["depth"])


def test_timeline_unstrided_stream_is_kept_verbatim():
    collector = MetricsCollector(["a"])
    for i in range(5):
        collector.record_queue_depth(float(i), i)
    timeline = collector.report(makespan_s=5.0)["queue_depth"]
    assert timeline["t_s"] == [0.0, 1.0, 2.0, 3.0, 4.0]
    assert timeline["depth"] == [0, 1, 2, 3, 4]


# ---------------------------------------------------------------------- #
# Degenerate streams
# ---------------------------------------------------------------------- #
def test_single_arrival_offered_rps_falls_back_to_makespan():
    collector = MetricsCollector(["a"])
    collector.record_arrival("a", 0.0)
    collector.record_completion("a", 0.25, now=0.25)
    report = collector.report(makespan_s=0.5)
    assert report["fleet"]["offered_rps"] == pytest.approx(2.0)  # 1 req / 0.5 s


def test_zero_makespan_run_reports_finite_zeros():
    collector = MetricsCollector(["a"])
    report = collector.report(makespan_s=0.0)
    fleet = report["fleet"]
    assert fleet["offered_rps"] == 0.0
    assert fleet["goodput_rps"] == 0.0
    assert fleet["utilization"] == 0.0
    series = report["timeseries"]
    assert series["interval_s"] == 0.0
    assert series["goodput_rps"] == [0.0]


def test_shed_only_model_reports_zero_goodput_and_full_shed_rate():
    collector = MetricsCollector(["a"])
    for t in (0.0, 0.1, 0.2):
        collector.record_arrival("a", t)
        collector.record_shed("a", "queue_full", now=t)
    report = collector.report(makespan_s=1.0)
    assert report["fleet"]["completed"] == 0
    assert report["fleet"]["shed_rate"] == 1.0
    assert report["fleet"]["slo_attainment"] is None
    assert report["per_model"]["a"]["shed"] == {"queue_full": 3}
    assert report["per_model"]["a"]["latency_ms"]["count"] == 0


def test_megabatch_counters_accumulate_saved_executions():
    collector = MetricsCollector(["a"])
    collector.record_megabatch("a", packed_batches=3)
    collector.record_megabatch("a", packed_batches=2)
    stats = collector.report(makespan_s=1.0)["per_model"]["a"]
    assert stats["megabatch_batches"] == 5
    assert stats["megabatch_saved_executions"] == 3


# ---------------------------------------------------------------------- #
# Interval time-series
# ---------------------------------------------------------------------- #
def test_timeseries_buckets_are_consistent_with_totals():
    collector = MetricsCollector(["a"])
    for i in range(10):
        t = i * 0.1
        collector.record_arrival("a", t)
        collector.record_queue_depth(t, i % 3)
    for i in range(8):
        collector.record_completion("a", 0.05, now=0.2 + i * 0.1)
    collector.record_shed("a", "slo", now=0.15)
    collector.record_shed("a", "slo", now=0.95)
    collector.record_batch("a", fill=4, batch_size=4, compute_s=0.1, now=0.5)
    report = collector.report(makespan_s=1.0, workers=2,
                              snapshot_interval_s=0.25)
    series = report["timeseries"]
    assert series["interval_s"] == pytest.approx(0.25)
    assert sum(series["arrivals"]) == 10
    assert sum(series["completed"]) == 8
    assert sum(series["shed"]) == 2
    assert series["workers"] == 2
    # goodput per bucket = completed / interval
    for done, rate in zip(series["completed"], series["goodput_rps"]):
        assert rate == pytest.approx(done / 0.25)
    assert all(0.0 <= u <= 1.0 for u in series["utilization"])
    # queue depth forward-fills the last sample at or before each bucket edge
    assert len(series["queue_depth"]) == len(series["t_s"])


def test_timeseries_auto_interval_and_bucket_cap():
    auto = build_timeseries(makespan_s=6.0, arrivals=[0.0, 3.0, 5.9])
    assert len(auto["t_s"]) == DEFAULT_BUCKETS
    capped = build_timeseries(makespan_s=100.0, arrivals=[0.0, 99.0],
                              interval_s=0.01)       # would be 10_000 buckets
    assert len(capped["t_s"]) <= MAX_BUCKETS
    assert sum(capped["arrivals"]) == 2


def test_timeseries_events_beyond_makespan_extend_the_horizon():
    series = build_timeseries(makespan_s=1.0, arrivals=[0.0, 2.0],
                              completions=[2.5])
    assert series["t_s"][-1] >= 2.5
    assert sum(series["arrivals"]) == 2
    assert sum(series["completed"]) == 1


def test_timeseries_rejects_bad_workers():
    with pytest.raises(ValueError):
        build_timeseries(makespan_s=1.0, workers=0)
