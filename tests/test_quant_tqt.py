"""Unit tests for the TQT quantizer: forward (Eq. 4) and gradients (Eqs. 6-8)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.quant import QuantConfig, TQTQuantizer, compute_scale, tqt_quantize, tqt_quantize_unfused

LN2 = np.log(2.0)


def reference_gradients(x, log2_t, config):
    """Direct implementation of Eqs. 6-8 used as the oracle."""
    s = compute_scale(log2_t, config)
    scaled = x / s
    rounded = np.rint(scaled)
    below = rounded < config.qmin
    above = rounded > config.qmax
    inside = ~(below | above)
    grad_x = inside.astype(float)
    per_elem = np.where(inside, rounded - scaled,
                        np.where(below, config.qmin, config.qmax))
    grad_t = s * LN2 * per_elem
    return grad_x, grad_t


class TestForwardPass:
    def test_scale_is_power_of_two(self):
        config = QuantConfig(bits=8)
        for log2_t in (-3.2, -0.5, 0.0, 1.7, 4.0):
            s = compute_scale(log2_t, config)
            assert np.isclose(np.log2(s), np.round(np.log2(s)))

    def test_scale_formula_signed(self):
        config = QuantConfig(bits=8, signed=True)
        # threshold t = 1.0 -> ceil(log2 t) = 0 -> s = 1 / 2^(b-1)
        assert compute_scale(0.0, config) == pytest.approx(1 / 128)

    def test_scale_formula_unsigned(self):
        config = QuantConfig(bits=8, signed=False)
        assert compute_scale(0.0, config) == pytest.approx(1 / 256)

    def test_ceil_biases_scale_upward(self):
        config = QuantConfig(bits=8)
        # log2 t = 0.1 should round the threshold up to 2^1
        assert compute_scale(0.1, config) == pytest.approx(2 / 128)

    def test_output_is_multiple_of_scale(self, rng):
        config = QuantConfig(bits=8)
        x = Tensor(rng.standard_normal(1000))
        out = tqt_quantize(x, Tensor(np.asarray(0.0)), config)
        s = compute_scale(0.0, config)
        codes = out.data / s
        np.testing.assert_allclose(codes, np.round(codes), atol=1e-9)

    def test_saturation_limits(self, rng):
        config = QuantConfig(bits=4)
        x = Tensor(np.array([100.0, -100.0]))
        out = tqt_quantize(x, Tensor(np.asarray(0.0)), config)
        s = compute_scale(0.0, config)
        np.testing.assert_allclose(out.data, [config.qmax * s, config.qmin * s])

    def test_unsigned_never_negative(self, rng):
        config = QuantConfig(bits=8, signed=False)
        x = Tensor(rng.standard_normal(100))
        out = tqt_quantize(x, Tensor(np.asarray(0.0)), config)
        assert np.all(out.data >= 0)

    def test_banker_rounding_in_forward(self):
        config = QuantConfig(bits=8)
        s = compute_scale(0.0, config)
        # values exactly half-way between grid points round to even codes
        x = Tensor(np.array([0.5 * s, 1.5 * s, 2.5 * s]))
        out = tqt_quantize(x, Tensor(np.asarray(0.0)), config)
        np.testing.assert_allclose(out.data / s, [0.0, 2.0, 2.0])

    def test_quantization_error_bounded_by_half_scale(self, rng):
        config = QuantConfig(bits=8)
        x_values = rng.uniform(-0.9, 0.9, 500)  # inside threshold 1.0
        out = tqt_quantize(Tensor(x_values), Tensor(np.asarray(0.0)), config)
        assert np.max(np.abs(out.data - x_values)) <= compute_scale(0.0, config) / 2 + 1e-12

    def test_real_scaling_mode(self, rng):
        config = QuantConfig(bits=8, power_of_2=False)
        # without the ceil, threshold 0.75 maps to s = 0.75/128 (not a power of 2)
        s = compute_scale(np.log2(0.75), config)
        assert s == pytest.approx(0.75 / 128)


class TestGradients:
    @pytest.mark.parametrize("bits,signed", [(8, True), (4, True), (8, False), (3, True)])
    def test_gradients_match_equations(self, rng, bits, signed):
        config = QuantConfig(bits=bits, signed=signed)
        x_values = rng.standard_normal(300) * 2.0
        log2_t = -0.7
        x = Tensor(x_values, requires_grad=True)
        t = Tensor(np.asarray(log2_t), requires_grad=True)
        out = tqt_quantize(x, t, config)
        upstream = rng.standard_normal(300)
        out.backward(upstream)
        ref_gx, ref_gt = reference_gradients(x_values, log2_t, config)
        np.testing.assert_allclose(x.grad, upstream * ref_gx, atol=1e-12)
        np.testing.assert_allclose(float(t.grad), float((upstream * ref_gt).sum()), rtol=1e-9)

    def test_threshold_gradient_sign_inside_vs_outside(self, rng):
        """Figure 2: inputs inside the clipping range push the threshold down
        (positive gradient of the L2 loss), inputs outside push it up."""
        config = QuantConfig(bits=8)

        def l2_threshold_grad(x_values, log2_t):
            x = Tensor(x_values)
            t = Tensor(np.asarray(log2_t), requires_grad=True)
            q = tqt_quantize(x, t, config)
            diff = q - Tensor(x_values)
            ((diff * diff) * 0.5).sum().backward()
            return float(t.grad)

        inside = rng.uniform(-0.5, 0.5, 2000)      # well inside threshold 2^2
        outside = rng.uniform(6.0, 10.0, 2000) * np.sign(rng.standard_normal(2000))
        assert l2_threshold_grad(inside, 2.0) > 0      # favours precision: log2 t decreases
        assert l2_threshold_grad(outside, 2.0) < 0     # favours range: log2 t increases

    def test_input_gradient_zero_outside_clipping_range(self):
        config = QuantConfig(bits=8)
        x = Tensor(np.array([0.1, 50.0, -50.0]), requires_grad=True)
        out = tqt_quantize(x, Tensor(np.asarray(0.0)), config)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 0.0, 0.0])

    def test_fused_and_unfused_agree(self, rng):
        config = QuantConfig(bits=6)
        x_values = rng.standard_normal(200) * 3
        for log2_t in (-2.3, 0.0, 1.1):
            x1 = Tensor(x_values, requires_grad=True)
            t1 = Tensor(np.asarray(log2_t), requires_grad=True)
            out1 = tqt_quantize(x1, t1, config)
            out1.sum().backward()
            x2 = Tensor(x_values, requires_grad=True)
            t2 = Tensor(np.asarray(log2_t), requires_grad=True)
            out2 = tqt_quantize_unfused(x2, t2, config)
            out2.sum().backward()
            np.testing.assert_allclose(out1.data, out2.data, atol=1e-12)
            np.testing.assert_allclose(x1.grad, x2.grad, atol=1e-12)
            np.testing.assert_allclose(t1.grad, t2.grad, rtol=1e-9)

    def test_per_channel_threshold_gradients_reduce_per_channel(self, rng):
        config = QuantConfig(bits=8)
        x = Tensor(rng.standard_normal((4, 3, 3, 3)), requires_grad=True)
        t = Tensor(np.zeros(4), requires_grad=True)
        out = tqt_quantize(x, t, config, channel_axis=0)
        out.sum().backward()
        assert t.grad.shape == (4,)


class TestTQTQuantizerModule:
    def test_threshold_and_scale_properties(self):
        q = TQTQuantizer(QuantConfig(bits=8), init_log2_t=2.0)
        assert q.threshold == pytest.approx(4.0)
        assert q.scale == pytest.approx(4.0 / 128)
        assert q.fractional_length == 5  # s = 2^-5

    def test_initialize_from_raw_threshold(self):
        q = TQTQuantizer(QuantConfig(bits=8))
        q.initialize_from(0.37)
        assert float(q.log2_t.data) == pytest.approx(np.log2(0.37))
        assert q.calibrated

    def test_initialize_from_zero_is_safe(self):
        q = TQTQuantizer(QuantConfig(bits=8))
        q.initialize_from(0.0)
        assert np.isfinite(float(q.log2_t.data))

    def test_freeze_unfreeze(self):
        q = TQTQuantizer(QuantConfig(bits=8), trainable=True)
        q.freeze()
        assert q.frozen and not q.log2_t.requires_grad
        q.unfreeze()
        assert not q.frozen and q.log2_t.requires_grad

    def test_non_trainable_quantizer_receives_no_gradient(self, rng):
        q = TQTQuantizer(QuantConfig(bits=8), trainable=False)
        x = Tensor(rng.standard_normal(10), requires_grad=True)
        q(x).sum().backward()
        assert q.log2_t.grad is None

    def test_quantize_to_integers_range(self, rng):
        q = TQTQuantizer(QuantConfig(bits=4), init_log2_t=0.0)
        codes = q.quantize_to_integers(rng.standard_normal(100) * 5)
        assert codes.min() >= -8 and codes.max() <= 7
        assert codes.dtype == np.int64

    def test_forward_matches_functional(self, rng):
        config = QuantConfig(bits=8)
        q = TQTQuantizer(config, init_log2_t=-1.0)
        x = Tensor(rng.standard_normal(50))
        np.testing.assert_allclose(q(x).data,
                                   tqt_quantize(x, Tensor(np.asarray(-1.0)), config).data)

    def test_fractional_length_requires_power_of_two(self):
        q = TQTQuantizer(QuantConfig(bits=8, power_of_2=False))
        with pytest.raises(ValueError):
            _ = q.fractional_length

    def test_unfused_module_path(self, rng):
        config = QuantConfig(bits=8)
        fused = TQTQuantizer(config, init_log2_t=0.3, fused=True)
        unfused = TQTQuantizer(config, init_log2_t=0.3, fused=False)
        x = Tensor(rng.standard_normal(64))
        np.testing.assert_allclose(fused(x).data, unfused(x).data, atol=1e-12)
