"""Tape executor: parity vs the step interpreter, fusion, megabatch, serving.

The tape (:mod:`repro.engine.program`) must be *bit-exact* with the bound
step interpreter on every registry model — fused chains on and off — and
the megabatch packing must slice outputs identically to serving each fill
alone.  Real-execution serving must reproduce the virtual loop's output
codes request for request.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import deploy
from repro.deploy import CompileConfig, QuantConfig, RuntimeConfig
from repro.engine import (
    BatchedRunner,
    ElementwiseChain,
    ShardedRunner,
    pack_partial_fills,
)
from repro.engine.program import TapeProgram
from repro.models import MODEL_REGISTRY
from repro.serving import SCENARIOS, FleetServer, generate_requests
from repro.serving.workload import fleet_input_shapes

IMAGE_SIZE = 8
BATCH = 4

SMALL = CompileConfig(
    image_size=IMAGE_SIZE,
    quant=QuantConfig(calibration_samples=8, calibration_batch_size=4),
    runtime=RuntimeConfig(batch_size=BATCH),
)


def _batches(count: int = 2, seed: int = 0) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((BATCH, 3, IMAGE_SIZE, IMAGE_SIZE))
            for _ in range(count)]


@pytest.fixture(scope="module")
def mobilenet():
    return deploy.compile("mobilenet_v1_nano", SMALL)


# ---------------------------------------------------------------------- #
# Tape vs steps parity
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("model_name", sorted(MODEL_REGISTRY))
def test_tape_matches_step_interpreter_on_registry_model(model_name):
    deployment = deploy.compile(model_name, SMALL)
    engine = deployment.engine
    assert engine.mode == "tape"
    assert isinstance(engine.tape, TapeProgram)
    # Every step of every registry model has a native emitter.
    assert engine.tape.report["fallback_steps"] == 0
    for batch in _batches(2):
        tape_codes = engine.run(batch).codes
        step_codes = engine.run_steps(batch).codes
        np.testing.assert_array_equal(tape_codes, step_codes)
    # Repeat: cross-pass state (shared scratch, zero borders, the stacked
    # buffers' zero fringes) must not corrupt later passes.
    batch = _batches(1, seed=9)[0]
    np.testing.assert_array_equal(engine.run(batch).codes,
                                  engine.run_steps(batch).codes)


def test_fused_and_unfused_tapes_are_bit_exact(mobilenet):
    fused = mobilenet.engine
    unfused = mobilenet.plan.bind(fused.input_shape, mode="tape", fuse=False)
    steps = mobilenet.plan.bind(fused.input_shape, mode="steps")
    for batch in _batches(3, seed=3):
        reference = steps.run(batch).codes
        np.testing.assert_array_equal(fused.run(batch).codes, reference)
        np.testing.assert_array_equal(unfused.run(batch).codes, reference)
    assert fused.tape.report["mode"] == "fused"
    assert unfused.tape.report["mode"] == "unfused"
    # Fusion must not *add* work: the fused tape emits no more chain ops.
    assert (fused.tape.report["chain_ops_emitted"]
            <= unfused.tape.report["chain_ops_emitted"])


def test_interleaved_steps_and_tape_runs_stay_bit_exact():
    """run_steps repoints env slots; the next tape run must restore them."""
    deployment = deploy.compile("lenet_nano", SMALL.with_overrides(optimize=False))
    engine = deployment.engine   # unoptimized: compute steps run as fallbacks
    x1, x2 = _batches(2, seed=21)
    reference = deployment.plan.bind(engine.input_shape, mode="steps").run(x2)
    engine.run_steps(x1)
    np.testing.assert_array_equal(engine.run(x2).codes, reference.codes)
    engine.run(x1)
    np.testing.assert_array_equal(engine.run_steps(x2).codes, reference.codes)


def test_steps_mode_engine_compiles_no_tape(mobilenet):
    engine = mobilenet.plan.bind(mobilenet.engine.input_shape, mode="steps")
    assert engine.mode == "steps" and engine.tape is None
    engine.run(_batches(1)[0])
    assert engine.tape is None


def test_tape_choices_are_cached_on_the_plan(mobilenet):
    choices = mobilenet.plan.tape_kernel_choices
    assert choices, "first tape compile must cache its kernel choices"
    from repro.engine import PIPELINE_COUNTERS
    before = PIPELINE_COUNTERS.snapshot()
    rebound = mobilenet.plan.bind(mobilenet.engine.input_shape)
    delta = PIPELINE_COUNTERS.delta(before)
    assert delta["tape_autotune_runs"] == 0, "rebinds reuse cached choices"
    assert rebound.tape.choices() == choices


def test_unoptimized_plan_tape_parity():
    deployment = deploy.compile("lenet_nano", SMALL.with_overrides(optimize=False))
    engine = deployment.engine
    batch = _batches(1)[0]
    np.testing.assert_array_equal(engine.run(batch).codes,
                                  engine.run_steps(batch).codes)


def test_int_backend_tape_parity():
    deployment = deploy.compile("lenet_nano", SMALL.with_overrides(accumulate="int"))
    engine = deployment.engine
    batch = _batches(1)[0]
    np.testing.assert_array_equal(engine.run(batch).codes,
                                  engine.run_steps(batch).codes)


def test_forced_tape_variants_are_bit_exact(mobilenet):
    """Force every tape macro-kernel variant; all must reproduce baseline."""
    batch = _batches(1, seed=5)[0]
    reference = mobilenet.engine.run_steps(batch).codes
    seen = set()
    for variant in ("blas", "blas32", "wingemm", "wingemm32",
                    "stackgemm", "stackgemm32", "int"):
        engine = mobilenet.plan.bind(mobilenet.engine.input_shape)
        tape = engine.tape
        forced = 0
        for group in tape.tunable_groups:
            if variant in group.variants:
                group.choose(variant)
                forced += 1
        if not forced:
            continue
        tape.rebuild()
        seen.add(variant)
        np.testing.assert_array_equal(engine.run(batch).codes, reference,
                                      err_msg=f"variant {variant}")
    assert {"blas", "stackgemm", "stackgemm32", "int"} <= seen


# ---------------------------------------------------------------------- #
# The elementwise-chain compiler
# ---------------------------------------------------------------------- #
def test_chain_eliminates_provable_noops():
    src = np.arange(-8, 8, dtype=np.float64).reshape(4, 4)
    dst = np.empty_like(src)
    chain = ElementwiseChain(src, dst, bound=7.0, integral=True)
    chain.scale(1.0)     # identity scale
    chain.round()        # integral value
    chain.clip(-100, 100)  # bound 7 is inside
    calls, stats = chain.compile()
    assert stats["scale"] == 1 and stats["round"] == 1 and stats["clip"] == 1
    assert stats["copies"] == 1 and len(calls) == 1   # degenerates to a copy
    for fn, args in calls:
        fn(*args)
    np.testing.assert_array_equal(dst, src)


def test_chain_relu_slides_into_final_clip():
    src = np.array([-6.0, -1.0, 0.0, 3.0, 9.0])
    chain = ElementwiseChain(src, np.empty_like(src), bound=float("inf"),
                             integral=True)
    chain.relu()
    chain.scale(0.5)
    chain.round()
    chain.clip(-4, 4)
    calls, stats = chain.compile()
    assert stats["slid_clips"] == 1
    for fn, args in calls:
        fn(*args)
    expected = np.clip(np.rint(np.maximum(src, 0.0) * 0.5), -4, 4)
    np.testing.assert_array_equal(chain.dst, expected)


def test_chain_does_not_slide_off_grid_clip():
    # clip at 1.5 does not commute with rounding — must stay in place.
    src = np.array([1.7, 2.4, -3.0])
    chain = ElementwiseChain(src, np.empty_like(src), bound=float("inf"),
                             integral=False)
    chain.clip(0.0, 1.5)
    chain.scale(2.0)
    chain.round()
    chain.clip(-10, 10)
    calls, stats = chain.compile()
    assert stats["slid_clips"] == 0
    for fn, args in calls:
        fn(*args)
    expected = np.clip(np.rint(np.clip(src, 0.0, 1.5) * 2.0), -10, 10)
    np.testing.assert_array_equal(chain.dst, expected)


def test_chain_unfused_emits_everything():
    src = np.ones((2, 2))
    chain = ElementwiseChain(src, np.empty_like(src), bound=1.0, integral=True,
                             fuse=False)
    chain.scale(1.0)
    chain.round()
    chain.clip(-8, 8)
    calls, stats = chain.compile()
    assert stats["ops_emitted"] == 3 and len(calls) == 3


# ---------------------------------------------------------------------- #
# Megabatch coalescing
# ---------------------------------------------------------------------- #
def test_pack_partial_fills_is_order_preserving():
    assert pack_partial_fills([2, 2, 3, 4, 1], 4) == [[0, 1], [2], [3], [4]]
    assert pack_partial_fills([1, 1, 1, 1], 4) == [[0, 1, 2, 3]]
    assert pack_partial_fills([4], 4) == [[0]]
    with pytest.raises(ValueError):
        pack_partial_fills([5], 4)
    with pytest.raises(ValueError):
        pack_partial_fills([0], 4)


def test_megabatch_slicing_matches_run_partial_at_every_fill(mobilenet):
    engine = mobilenet.engine
    rng = np.random.default_rng(11)
    runner = BatchedRunner(engine)
    for fill in range(1, engine.batch_size + 1):
        groups = [rng.standard_normal((fill, 3, IMAGE_SIZE, IMAGE_SIZE)),
                  rng.standard_normal((max(1, engine.batch_size - fill),
                                       3, IMAGE_SIZE, IMAGE_SIZE))]
        outputs, stats = runner.run_partial_groups(groups)
        assert stats.megabatch_groups == 2
        assert 1 <= stats.megabatch_executions <= 2
        for group, output in zip(groups, outputs):
            direct = engine.run_partial(group)
            np.testing.assert_array_equal(output.codes, direct.codes)
            assert output.fraction == direct.fraction
            assert output.divisor == direct.divisor


def test_megabatch_packs_small_fills_into_one_execution(mobilenet):
    engine = mobilenet.engine
    rng = np.random.default_rng(12)
    groups = [rng.standard_normal((1, 3, IMAGE_SIZE, IMAGE_SIZE))
              for _ in range(engine.batch_size)]
    runner = BatchedRunner(engine)
    outputs, stats = runner.run_partial_groups(groups)
    assert stats.megabatch_executions == 1     # all fills share one tape pass
    assert len(outputs) == engine.batch_size


# ---------------------------------------------------------------------- #
# Sharded auto-degrade
# ---------------------------------------------------------------------- #
def test_sharded_runner_degrades_on_single_core(mobilenet, monkeypatch):
    monkeypatch.setattr("os.cpu_count", lambda: 1)
    runner = ShardedRunner(mobilenet.plan, mobilenet.engine.input_shape,
                           workers=4, auto_degrade=True)
    assert runner.workers == 1
    assert runner.workers_requested == 4
    assert "single-core" in runner.worker_decision
    batch = _batches(1)[0]
    np.testing.assert_array_equal(runner.run(batch).codes,
                                  mobilenet.engine.run(batch).codes)
    runner.close()


def test_batched_runner_records_worker_decision(mobilenet, monkeypatch):
    monkeypatch.setattr("os.cpu_count", lambda: 1)
    with BatchedRunner(mobilenet.engine, workers=4) as runner:
        _, stats = runner.run(_batches(1)[0])
        assert stats.workers_requested == 4
        assert stats.workers_effective == 1
        assert "single-core" in stats.worker_decision


def test_sharded_runner_without_auto_degrade_keeps_workers(mobilenet, monkeypatch):
    monkeypatch.setattr("os.cpu_count", lambda: 1)
    runner = ShardedRunner(mobilenet.plan, mobilenet.engine.input_shape,
                           workers=2)
    assert runner.workers == 2
    batch = _batches(1)[0]
    np.testing.assert_array_equal(runner.run(batch).codes,
                                  mobilenet.engine.run(batch).codes)
    runner.close()


# ---------------------------------------------------------------------- #
# Real-execution serving
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def real_scenario_requests():
    scenario = SCENARIOS["sparse_poisson"]
    shapes = fleet_input_shapes(scenario.models, IMAGE_SIZE)
    return scenario, generate_requests(scenario, shapes, seed=4)


def _server(execution: str, **kwargs) -> FleetServer:
    return FleetServer(["lenet_nano", "mobilenet_v1_nano"], batch_size=BATCH,
                       image_size=IMAGE_SIZE,
                       compile_config=SMALL, execution=execution, **kwargs)


def test_real_execution_reports_wall_clock_metrics(real_scenario_requests):
    _, requests = real_scenario_requests
    server = _server("real", workers=2)
    report = server.serve(requests)
    assert report.execution == "real"
    assert report.metrics["execution"] == "real"
    fleet = report.fleet
    assert fleet["completed"] + fleet["shed"] == len(requests)
    assert fleet["completed"] > 0
    assert fleet["goodput_rps"] > 0, "wall-clock throughput must be measured"
    assert report.metrics["makespan_s"] > 0
    assert fleet["latency_ms"]["p99"] > 0
    server.close()


def test_real_execution_results_match_virtual_results(real_scenario_requests):
    """Output codes and the shed set are order-independent and bit-exact."""
    _, requests = real_scenario_requests
    virtual = _server("virtual").serve(requests)
    real = _server("real", workers=2).serve(requests)
    v_outcomes = {o.request_id: o for o in virtual.outcomes}
    r_outcomes = {o.request_id: o for o in real.outcomes}
    assert set(v_outcomes) == set(r_outcomes)
    # Virtual and real admission see different queue dynamics, so the shed
    # *sets* may differ; but every request completed by both must carry
    # identical codes, and the real run must be internally deterministic.
    both_completed = [rid for rid in v_outcomes
                     if v_outcomes[rid].completed and r_outcomes[rid].completed]
    assert both_completed
    for rid in both_completed:
        np.testing.assert_array_equal(v_outcomes[rid].codes,
                                      r_outcomes[rid].codes)
    again = _server("real", workers=2).serve(requests)
    a_outcomes = {o.request_id: o for o in again.outcomes}
    assert {rid for rid, o in a_outcomes.items() if o.status == "shed"} \
        == {rid for rid, o in r_outcomes.items() if o.status == "shed"}
    for rid, outcome in r_outcomes.items():
        if outcome.completed:
            np.testing.assert_array_equal(outcome.codes, a_outcomes[rid].codes)


def test_real_execution_rejects_unknown_mode():
    with pytest.raises(ValueError, match="execution"):
        _server("warp-speed")


def test_real_execution_surfaces_worker_failures_instead_of_hanging():
    """A poisoned request (NaN image) must raise, not deadlock the pool."""
    from repro.serving import Request

    rng = np.random.default_rng(3)
    requests = [Request(i, "lenet_nano", 0.0,
                        rng.standard_normal((3, IMAGE_SIZE, IMAGE_SIZE)),
                        deadline_s=None)
                for i in range(6)]
    poisoned = np.full((3, IMAGE_SIZE, IMAGE_SIZE), np.nan)
    requests.append(Request(6, "lenet_nano", 0.0, poisoned, deadline_s=None))
    server = _server("real", workers=2)
    with pytest.raises(ValueError, match="finite"):
        server.serve(requests)
    server.close()


# ---------------------------------------------------------------------- #
# Disk-tier GC
# ---------------------------------------------------------------------- #
def test_plan_cache_disk_tier_evicts_lru_by_mtime(tmp_path):
    import os
    import time as _time

    from repro.serving import PlanCache

    class FakeEntry:
        def __init__(self, payload: bytes) -> None:
            self.payload = payload

        def save(self, path):
            with open(path, "wb") as fh:
                fh.write(self.payload)

    compiled: list[str] = []

    def compile_fn(name):
        compiled.append(name)
        return FakeEntry(b"x" * 512)

    cache = PlanCache(4, compile_fn=compile_fn, artifact_dir=tmp_path,
                      disk_max_bytes=1100)
    for index, name in enumerate(["a", "b", "c"]):
        cache.get(name)
        # distinct mtimes so LRU order is deterministic
        artifact = cache.artifact_path(name)
        stamp = _time.time() + index
        os.utime(artifact, (stamp, stamp))
        cache._gc_disk()
    names = {p.name.split("-")[0] for p in tmp_path.glob("*.rpa")}
    assert names == {"b", "c"}, "oldest artifact must be evicted"
    assert cache.disk_evictions >= 1
    assert cache.stats()["disk_evictions"] == cache.disk_evictions
    assert cache.stats()["disk_max_bytes"] == 1100


def test_plan_cache_disk_gc_never_evicts_fresh_store(tmp_path):
    from repro.serving import PlanCache

    class BigEntry:
        def save(self, path):
            with open(path, "wb") as fh:
                fh.write(b"y" * 4096)

    cache = PlanCache(2, compile_fn=lambda name: BigEntry(),
                      artifact_dir=tmp_path, disk_max_bytes=1000)
    cache.get("only")
    assert cache.artifact_path("only").exists(), \
        "a store larger than the bound must not evict itself"


# ---------------------------------------------------------------------- #
# Artifact v1 -> v2 migration
# ---------------------------------------------------------------------- #
def test_v1_artifact_migrates_by_relowering(tmp_path, monkeypatch):
    from repro.deploy import ARTIFACT_VERSION, Deployment, artifact
    from repro.engine import PIPELINE_COUNTERS

    fresh = deploy.compile("lenet_nano", SMALL)
    path = tmp_path / "legacy.rpa"
    monkeypatch.setattr(artifact, "ARTIFACT_VERSION", 1)
    fresh.save(path)
    monkeypatch.undo()

    batch = _batches(1)[0]
    reference = fresh.run(batch).codes

    before = PIPELINE_COUNTERS.snapshot()
    with pytest.warns(UserWarning, match="format version 1"):
        migrated = Deployment.load(path)
    delta = PIPELINE_COUNTERS.delta(before)
    assert delta["lowerings"] == 1, "migration re-lowers from the config"
    assert migrated.source == "artifact-migrated"
    np.testing.assert_array_equal(migrated.run(batch).codes, reference)

    # The artifact was rewritten in the current format: the next load is a
    # plain artifact load with zero pipeline work.
    before = PIPELINE_COUNTERS.snapshot()
    reloaded = Deployment.load(path)
    delta = PIPELINE_COUNTERS.delta(before)
    assert delta["lowerings"] == 0 and delta["autotune_runs"] == 0
    assert delta["tape_autotune_runs"] == 0
    assert reloaded.artifact_manifest["version"] == ARTIFACT_VERSION
    np.testing.assert_array_equal(reloaded.run(batch).codes, reference)


def test_v1_artifact_without_migration_raises(tmp_path, monkeypatch):
    from repro.deploy import ArtifactVersionError, Deployment, artifact

    fresh = deploy.compile("lenet_nano", SMALL)
    path = tmp_path / "legacy.rpa"
    monkeypatch.setattr(artifact, "ARTIFACT_VERSION", 1)
    fresh.save(path)
    monkeypatch.undo()
    with pytest.raises(ArtifactVersionError, match="older format version 1"):
        Deployment.load(path, migrate=False)


def test_v1_artifact_for_non_registry_model_raises_clearly(tmp_path, monkeypatch):
    """Migration only re-lowers registry compiles; others get a clear error."""
    import json
    import zipfile

    from repro.deploy import ArtifactVersionError, Deployment, artifact

    fresh = deploy.compile("lenet_nano", SMALL)
    path = tmp_path / "graph.rpa"
    monkeypatch.setattr(artifact, "ARTIFACT_VERSION", 1)
    fresh.save(path)
    monkeypatch.undo()
    # Rewrite the manifest to claim a non-registry (GraphIR-sourced) model.
    with zipfile.ZipFile(path) as archive:
        manifest = json.loads(archive.read("manifest.json"))
        payload = archive.read("plan.pkl")
    manifest["model"] = "custom_graph"
    with zipfile.ZipFile(path, "w") as archive:
        archive.writestr("manifest.json", json.dumps(manifest))
        archive.writestr("plan.pkl", payload)
    with pytest.raises(ArtifactVersionError, match="not a registry model"):
        Deployment.load(path)


def test_future_artifact_version_still_raises(tmp_path, monkeypatch):
    from repro.deploy import ArtifactError, Deployment, artifact

    fresh = deploy.compile("lenet_nano", SMALL)
    path = tmp_path / "future.rpa"
    monkeypatch.setattr(artifact, "ARTIFACT_VERSION", 99)
    fresh.save(path)
    monkeypatch.undo()
    with pytest.raises(ArtifactError):
        Deployment.load(path)


def test_v2_artifact_carries_tape_choices(tmp_path, mobilenet):
    path = tmp_path / "tape.rpa"
    mobilenet.save(path)
    loaded = deploy.Deployment.load(path)
    manifest = loaded.artifact_manifest
    assert manifest["version"] == deploy.ARTIFACT_VERSION
    assert manifest["tape_kernel_choices"] == mobilenet.plan.tape_kernel_choices
    assert loaded.engine.mode == "tape"
    assert loaded.engine.tape.choices() == mobilenet.plan.tape_kernel_choices
