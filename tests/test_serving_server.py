"""FleetServer end-to-end: routing, batching policies, admission, cache.

Virtual-clock determinism: tests pass a fixed ``compute_time_fn`` so batch
timing (and therefore every latency and shed decision) is exactly
reproducible, while the engines still execute for real so output codes can
be checked bit-exact.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import (
    SCENARIOS,
    AdmissionPolicy,
    BatchingPolicy,
    FleetServer,
    Request,
    fleet_input_shapes,
    generate_requests,
)

FLEET = ["lenet_nano", "mobilenet_v1_nano"]
IMAGE_SIZE = 8
BATCH = 8
COMPILE_KWARGS = dict(calibration_samples=8, calibration_batch_size=4)

#: deterministic per-batch compute cost (seconds) for the virtual clock
FIXED_COST = lambda model, fill: 2e-3


def _server(policy: BatchingPolicy, fleet=FLEET, **kwargs) -> FleetServer:
    kwargs.setdefault("admission", AdmissionPolicy(max_queue_depth=64))
    kwargs.setdefault("compute_time_fn", FIXED_COST)
    return FleetServer(fleet, batch_size=BATCH, image_size=IMAGE_SIZE, policy=policy,
                       compile_kwargs=COMPILE_KWARGS, **kwargs)


def _sparse_requests(seed: int = 0):
    scenario = SCENARIOS["sparse_poisson"]
    return generate_requests(scenario, fleet_input_shapes(FLEET, IMAGE_SIZE), seed=seed)


# ---------------------------------------------------------------------- #
# The acceptance claim: dynamic batching beats full-batch coalescing on
# tail latency under sparse arrivals, without shedding anything.
# ---------------------------------------------------------------------- #
def test_dynamic_batching_beats_full_batch_p99_on_sparse_arrivals():
    requests = _sparse_requests(seed=0)
    dynamic = _server(BatchingPolicy.dynamic(BATCH, 5e-3)).serve(requests)
    fixed = _server(BatchingPolicy.full_batch(BATCH)).serve(requests)

    assert dynamic.shed == 0, "admission control must not shed the sparse stream"
    assert fixed.shed == 0
    assert dynamic.completed == fixed.completed == len(requests)
    # Sparse arrivals starve fixed full batches: requests age waiting for the
    # batch to fill. The timeout policy caps that wait at max_wait.
    assert dynamic.latency_ms("p99") < fixed.latency_ms("p99") / 5
    assert dynamic.latency_ms("p50") < fixed.latency_ms("p50")
    # Goodput ties (everything completes); SLO attainment separates the
    # policies: every dynamic completion meets the 250ms deadline, most
    # full-batch completions bust it.
    assert dynamic.fleet["slo_attainment"] == 1.0
    assert fixed.fleet["slo_attainment"] < 0.5
    # Deterministic: same seed + fixed costs reproduce the exact percentiles.
    again = _server(BatchingPolicy.dynamic(BATCH, 5e-3)).serve(_sparse_requests(seed=0))
    assert again.latency_ms("p99") == dynamic.latency_ms("p99")


def test_served_codes_are_bit_exact_to_direct_engine_runs():
    requests = _sparse_requests(seed=1)[:24]
    server = _server(BatchingPolicy.dynamic(BATCH, 5e-3))
    report = server.serve(requests)
    by_id = {r.request_id: r for r in requests}
    assert len(report.outcomes) == len(requests)
    for outcome in report.outcomes:
        assert outcome.completed
        engine = server.cache.get(outcome.model).engine
        direct = engine.run_partial(by_id[outcome.request_id].image[None])
        np.testing.assert_array_equal(outcome.codes, direct.codes[0])


def test_routing_covers_both_models_and_reports_fills():
    requests = _sparse_requests(seed=2)
    report = _server(BatchingPolicy.dynamic(BATCH, 5e-3)).serve(requests)
    per_model = report.metrics["per_model"]
    for model in FLEET:
        assert per_model[model]["completed"] > 0
        assert per_model[model]["batches"] > 0
    # Variable fill: sparse traffic means mostly partial batches, and the
    # report must say so instead of pretending every batch was full.
    fills = [o.batch_fill for o in report.outcomes]
    assert min(fills) < BATCH
    total_padded = sum(per_model[m]["padded_slots"] for m in FLEET)
    assert total_padded > 0
    assert all(0 < per_model[m]["mean_fill"] <= BATCH for m in FLEET)


def test_overload_sheds_instead_of_queueing_unboundedly():
    # 1000 rps offered against 20ms batches of <= 4: capacity ~200 rps.
    rng = np.random.default_rng(0)
    arrivals = np.sort(rng.uniform(0.0, 0.5, size=500))
    requests = [Request(i, "lenet_nano", float(t),
                        rng.standard_normal((3, IMAGE_SIZE, IMAGE_SIZE)),
                        deadline_s=0.08)
                for i, t in enumerate(arrivals)]
    report = _server(BatchingPolicy.dynamic(4, 2e-3), fleet=["lenet_nano"],
                     admission=AdmissionPolicy(max_queue_depth=16),
                     compute_time_fn=lambda m, f: 0.02).serve(requests)
    fleet = report.fleet
    assert fleet["shed"] > 0
    assert fleet["completed"] + fleet["shed"] == fleet["arrivals"] == 500
    shed_reasons = report.metrics["per_model"]["lenet_nano"]["shed"]
    assert set(shed_reasons) <= {"slo", "queue_full"} and shed_reasons
    # Everything that did complete met a bounded latency, far below the
    # unbounded queueing alternative (0.5s of backlog at 5x overload).
    assert fleet["latency_ms"]["max"] < 500.0
    for outcome in report.outcomes:
        assert outcome.completed or outcome.shed_reason in {"slo", "queue_full"}


def test_plan_cache_eviction_recompiles_under_capacity_pressure():
    requests = _sparse_requests(seed=3)
    report = _server(BatchingPolicy.dynamic(BATCH, 5e-3),
                     cache_capacity=1).serve(requests)
    cache = report.cache
    assert cache["capacity"] == 1
    assert len(cache["resident"]) == 1
    # Interleaved two-model traffic through a one-slot cache must thrash.
    assert cache["evictions"] > 0
    assert cache["recompiles"] > 0
    assert report.shed == 0 and report.completed == len(requests)


def test_empty_stream_produces_empty_report():
    report = _server(BatchingPolicy.dynamic(BATCH, 5e-3)).serve([])
    assert report.outcomes == []
    assert report.fleet["arrivals"] == 0
    assert report.fleet["goodput_rps"] == 0.0
    assert report.fleet["slo_attainment"] is None
    assert report.metrics["makespan_s"] == 0.0
    assert report.metrics["queue_depth"]["max_depth"] == 0


def test_full_batch_policy_flushes_trailing_partial_batch():
    rng = np.random.default_rng(0)
    requests = [Request(i, "lenet_nano", 0.01 * i,
                        rng.standard_normal((3, IMAGE_SIZE, IMAGE_SIZE)))
                for i in range(BATCH + 3)]
    report = _server(BatchingPolicy.full_batch(BATCH),
                     fleet=["lenet_nano"]).serve(requests)
    assert report.completed == BATCH + 3
    fills = sorted({o.batch_fill for o in report.outcomes})
    assert fills == [3, BATCH]


def test_server_validation_errors():
    with pytest.raises(ValueError, match="available"):
        FleetServer(["resnet_nano_giant"])
    with pytest.raises(ValueError, match="duplicate"):
        _server(BatchingPolicy.dynamic(BATCH, 1e-3), fleet=["lenet_nano", "lenet_nano"])
    with pytest.raises(ValueError, match="exceeds the"):
        _server(BatchingPolicy.dynamic(BATCH + 1, 1e-3))
    server = _server(BatchingPolicy.dynamic(BATCH, 5e-3), fleet=["lenet_nano"])
    stray = Request(0, "mobilenet_v1_nano", 0.0, np.zeros((3, IMAGE_SIZE, IMAGE_SIZE)))
    with pytest.raises(ValueError, match="not in the fleet"):
        server.serve([stray])
    late = Request(0, "lenet_nano", -1.0, np.zeros((3, IMAGE_SIZE, IMAGE_SIZE)))
    with pytest.raises(ValueError, match="negative arrival"):
        server.serve([late])
    twins = [Request(7, "lenet_nano", 0.0, np.zeros((3, IMAGE_SIZE, IMAGE_SIZE))),
             Request(7, "lenet_nano", 0.1, np.zeros((3, IMAGE_SIZE, IMAGE_SIZE)))]
    with pytest.raises(ValueError, match="duplicate request_id"):
        server.serve(twins)


def test_padding_is_counted_against_the_engine_batch_shape():
    """A sub-batch_size policy still pays engine padding, and the report says so."""
    rng = np.random.default_rng(0)
    requests = [Request(i, "lenet_nano", 0.0,
                        rng.standard_normal((3, IMAGE_SIZE, IMAGE_SIZE)))
                for i in range(4)]
    report = _server(BatchingPolicy.dynamic(4, 1e-3),
                     fleet=["lenet_nano"]).serve(requests)
    stats = report.metrics["per_model"]["lenet_nano"]
    assert stats["batches"] == 1 and stats["mean_fill"] == 4.0
    # policy batch of 4 on an engine bound to 8: 4 padded compute rows
    assert stats["padded_slots"] == BATCH - 4


def test_input_shapes_property_matches_engines():
    server = _server(BatchingPolicy.dynamic(BATCH, 5e-3))
    before = dict(server.cache.stats())
    assert server.input_shapes == {m: (3, IMAGE_SIZE, IMAGE_SIZE) for m in FLEET}
    after = server.cache.stats()
    # A diagnostics property must not perturb cache counters or LRU order.
    assert after["hits"] == before["hits"] and after["resident"] == before["resident"]


def test_sharded_workers_serve_identical_codes():
    """shard_workers>1 shards batches across threads; codes must not change."""
    rng = np.random.default_rng(5)
    requests = [Request(i, "lenet_nano", 0.0,
                        rng.standard_normal((3, IMAGE_SIZE, IMAGE_SIZE)))
                for i in range(BATCH + 3)]
    plain = _server(BatchingPolicy.dynamic(BATCH, 5e-3),
                    fleet=["lenet_nano"]).serve(requests)
    sharded_server = _server(BatchingPolicy.dynamic(BATCH, 5e-3),
                             fleet=["lenet_nano"], shard_workers=2)
    sharded = sharded_server.serve(requests)
    assert sharded_server.shard_workers == 2
    assert plain.completed == sharded.completed == len(requests)
    for a, b in zip(plain.outcomes, sharded.outcomes):
        assert a.request_id == b.request_id
        np.testing.assert_array_equal(a.codes, b.codes)
    sharded_server.close()


def _interleaved_two_model_stream(count: int = 48, seed: int = 6) -> list[Request]:
    rng = np.random.default_rng(seed)
    return [Request(i, FLEET[i % 2], 0.004 * i,
                    rng.standard_normal((3, IMAGE_SIZE, IMAGE_SIZE)))
            for i in range(count)]


def test_dispatch_workers_overlap_different_models():
    """workers=N launches different models' batches concurrently: the
    makespan shrinks under fixed per-batch costs while every output code
    stays identical to the single-worker serialization."""
    requests = _interleaved_two_model_stream()
    cost = lambda model, fill: 2e-2
    one = _server(BatchingPolicy.dynamic(BATCH, 5e-3),
                  compute_time_fn=cost).serve(requests)
    two_server = _server(BatchingPolicy.dynamic(BATCH, 5e-3),
                         compute_time_fn=cost, workers=2)
    two = two_server.serve(requests)
    assert two_server.workers == 2
    assert one.completed == two.completed == len(requests)
    for a, b in zip(one.outcomes, two.outcomes):
        assert a.request_id == b.request_id
        np.testing.assert_array_equal(a.codes, b.codes)
    # Two models' batches overlap on two workers: strictly less virtual time.
    assert two.metrics["makespan_s"] < one.metrics["makespan_s"]
    assert {o.worker_index for o in two.outcomes} == {0, 1}
    # Utilization is normalized by the worker count, so it stays in [0, 1].
    assert 0.0 < two.fleet["utilization"] <= 1.0
    # Tail latency cannot get worse from adding a worker under fixed costs.
    assert two.latency_ms("p99") <= one.latency_ms("p99") + 1e-9


def test_dispatch_workers_serialize_same_model():
    """One engine per model: a single model's batches never overlap, so
    extra dispatch workers change nothing for a single-model stream."""
    rng = np.random.default_rng(7)
    requests = [Request(i, "lenet_nano", 0.001 * i,
                        rng.standard_normal((3, IMAGE_SIZE, IMAGE_SIZE)))
                for i in range(3 * BATCH)]
    cost = lambda model, fill: 1e-2
    one = _server(BatchingPolicy.dynamic(BATCH, 5e-3), fleet=["lenet_nano"],
                  compute_time_fn=cost).serve(requests)
    four = _server(BatchingPolicy.dynamic(BATCH, 5e-3), fleet=["lenet_nano"],
                   compute_time_fn=cost, workers=4).serve(requests)
    assert four.metrics["makespan_s"] == pytest.approx(one.metrics["makespan_s"])
    for a, b in zip(one.outcomes, four.outcomes):
        np.testing.assert_array_equal(a.codes, b.codes)
