"""Unit tests for the graph IR and functional builder."""

import pytest

from repro import nn
from repro.autograd import Tensor
from repro.graph import GraphBuilder, GraphIR, Node, OpKind


def build_chain():
    builder = GraphBuilder("chain")
    x = builder.input("input")
    x = builder.layer("conv", OpKind.CONV, nn.Conv2d(3, 4, 3, padding=1), x)
    x = builder.layer("bn", OpKind.BATCHNORM, nn.BatchNorm2d(4), x)
    x = builder.layer("relu", OpKind.RELU, nn.ReLU(), x)
    return builder.build(x)


def build_branching():
    builder = GraphBuilder("branching")
    x = builder.input("input")
    a = builder.layer("conv_a", OpKind.CONV, nn.Conv2d(3, 4, 3, padding=1), x)
    b = builder.layer("conv_b", OpKind.CONV, nn.Conv2d(3, 4, 3, padding=1), x)
    out = builder.add("add", a, b)
    return builder.build(out)


class TestGraphConstruction:
    def test_builder_produces_valid_graph(self):
        graph = build_chain()
        assert isinstance(graph, GraphIR)
        assert graph.output_name == "relu"
        assert graph.input_names == ["input"]
        graph.validate()

    def test_duplicate_node_name_rejected(self):
        graph = build_chain()
        with pytest.raises(ValueError):
            graph.add_node(Node(name="conv", op=OpKind.RELU))

    def test_parameters_exposed_through_graph(self):
        graph = build_chain()
        names = [name for name, _ in graph.named_parameters()]
        assert any("conv" in name and "weight" in name for name in names)
        assert any("bn" in name and "gamma" in name for name in names)

    def test_missing_input_reference_fails_validation(self):
        graph = GraphIR("broken")
        graph.add_node(Node(name="a", op=OpKind.INPUT))
        graph.add_node(Node(name="b", op=OpKind.RELU, module=nn.ReLU(), inputs=["missing"]))
        graph.set_output("b")
        with pytest.raises(ValueError):
            graph.validate()

    def test_output_must_be_set(self):
        graph = GraphIR()
        graph.add_node(Node(name="a", op=OpKind.INPUT))
        with pytest.raises(ValueError):
            graph.validate()


class TestGraphQueries:
    def test_consumers_and_producers(self):
        graph = build_chain()
        assert [n.name for n in graph.consumers("conv")] == ["bn"]
        assert [n.name for n in graph.producers("bn")] == ["conv"]

    def test_nodes_of_kind(self):
        graph = build_chain()
        assert [n.name for n in graph.nodes_of_kind(OpKind.CONV)] == ["conv"]

    def test_topological_order_respects_edges(self):
        graph = build_branching()
        order = [n.name for n in graph.topological_order()]
        assert order.index("input") < order.index("conv_a") < order.index("add")
        assert order.index("conv_b") < order.index("add")

    def test_cycle_detection(self):
        graph = build_chain()
        graph.nodes["conv"].inputs.append("relu")
        with pytest.raises(RuntimeError):
            graph.topological_order()


class TestGraphMutation:
    def test_remove_node_rewires_consumers(self):
        graph = build_chain()
        graph.remove_node("bn")
        assert graph.nodes["relu"].inputs == ["conv"]
        graph.validate()

    def test_remove_output_node_moves_output(self):
        graph = build_chain()
        graph.remove_node("relu")
        assert graph.output_name == "bn"

    def test_remove_multi_input_node_requires_rewire_target(self):
        graph = build_branching()
        with pytest.raises(ValueError):
            graph.remove_node("add")

    def test_replace_node_keeps_consumers(self):
        graph = build_chain()
        graph.replace_node("relu", Node(name="relu", op=OpKind.RELU6, module=nn.ReLU6(),
                                        inputs=["bn"]))
        assert graph.nodes["relu"].op == OpKind.RELU6
        graph.validate()

    def test_replace_node_name_mismatch_rejected(self):
        graph = build_chain()
        with pytest.raises(ValueError):
            graph.replace_node("relu", Node(name="other", op=OpKind.RELU))

    def test_insert_after(self):
        graph = build_chain()
        graph.insert_after("conv", Node(name="extra", op=OpKind.IDENTITY, module=nn.Identity()))
        assert graph.nodes["bn"].inputs == ["extra"]
        assert graph.nodes["extra"].inputs == ["conv"]
        graph.validate()

    def test_insert_after_output_moves_output(self):
        graph = build_chain()
        graph.insert_after("relu", Node(name="tail", op=OpKind.IDENTITY, module=nn.Identity()))
        assert graph.output_name == "tail"


class TestGraphExecution:
    def test_forward_chain(self, rng):
        graph = build_chain()
        out = graph(Tensor(rng.standard_normal((2, 3, 6, 6))))
        assert out.shape == (2, 4, 6, 6)

    def test_forward_branching_add(self, rng):
        graph = build_branching()
        out = graph(Tensor(rng.standard_normal((2, 3, 6, 6))))
        assert out.shape == (2, 4, 6, 6)

    def test_concat_without_module(self, rng):
        builder = GraphBuilder("concat")
        x = builder.input("input")
        a = builder.layer("conv_a", OpKind.CONV, nn.Conv2d(3, 2, 1), x)
        b = builder.layer("conv_b", OpKind.CONV, nn.Conv2d(3, 5, 1), x)
        out = builder.concat("cat", [a, b], axis=1)
        graph = builder.build(out)
        result = graph(Tensor(rng.standard_normal((1, 3, 4, 4))))
        assert result.shape == (1, 7, 4, 4)

    def test_flatten_structural_node(self, rng):
        builder = GraphBuilder("flatten")
        x = builder.input("input")
        out = builder.layer("flat", OpKind.FLATTEN, None, x, start_dim=1)
        graph = builder.build(out)
        result = graph(Tensor(rng.standard_normal((2, 3, 2, 2))))
        assert result.shape == (2, 12)

    def test_summary_lists_all_nodes(self):
        graph = build_chain()
        text = graph.summary()
        for name in ("input", "conv", "bn", "relu"):
            assert name in text

    def test_forward_gradient_flows_to_parameters(self, rng):
        graph = build_chain()
        out = graph(Tensor(rng.standard_normal((2, 3, 6, 6))))
        out.sum().backward()
        conv = graph.nodes["conv"].module
        assert conv.weight.grad is not None
