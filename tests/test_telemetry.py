"""repro.telemetry: sampling, span recording, exporters and fleet tracing.

The acceptance claim of the telemetry subsystem is end-to-end: one
``FleetServer.serve(..., telemetry=TelemetryConfig(sample_rate=1.0))`` on
the **process backend** must produce valid Chrome trace-event JSON whose
admission/queue/batch/execute spans cover requests that executed in worker
processes, with per-request span nesting and a monotone clock — worker
spans are shipped back over the result queue and clamped into the
parent-observed dispatch window, so clock offset between processes can
never break the invariants.
"""

from __future__ import annotations

import json

import pytest

from repro.deploy import CompileConfig
from repro.deploy import compile as deploy_compile
from repro.serving import (
    AdmissionPolicy,
    BatchingPolicy,
    FleetServer,
    Scenario,
    TelemetryConfig,
    fleet_input_shapes,
    generate_requests,
)
from repro.telemetry import (
    NULL_TRACER,
    Span,
    Tracer,
    attach_tape_sink,
    chrome_trace,
    prometheus_text,
    sample_hash,
    tape_span_args,
)

IMAGE_SIZE = 8
BATCH = 4
COMPILE_KWARGS = dict(calibration_samples=8, calibration_batch_size=4)


def _requests(model: str = "lenet_nano", rate_rps: float = 80.0,
              duration_s: float = 0.4, seed: int = 5):
    scenario = Scenario("telemetry", "poisson", duration_s=duration_s,
                        model_mix=((model, 1.0),), slo_ms=None,
                        params=dict(rate_rps=rate_rps))
    return generate_requests(scenario, fleet_input_shapes([model], IMAGE_SIZE),
                             seed=seed)


def _server(**kwargs) -> FleetServer:
    kwargs.setdefault("admission", AdmissionPolicy(max_queue_depth=None,
                                                   slo_shed=False))
    kwargs.setdefault("policy", BatchingPolicy.dynamic(BATCH, 2e-3))
    return FleetServer(["lenet_nano"], batch_size=BATCH, image_size=IMAGE_SIZE,
                       compile_kwargs=COMPILE_KWARGS, **kwargs)


# ---------------------------------------------------------------------- #
# Config + sampling
# ---------------------------------------------------------------------- #
def test_telemetry_config_validates_knobs():
    with pytest.raises(ValueError):
        TelemetryConfig(sample_rate=1.5)
    with pytest.raises(ValueError):
        TelemetryConfig(sample_rate=-0.1)
    with pytest.raises(ValueError):
        TelemetryConfig(max_spans=0)
    with pytest.raises(ValueError):
        TelemetryConfig(snapshot_interval_s=0.0)
    assert not TelemetryConfig().enabled
    assert TelemetryConfig(sample_rate=0.5).enabled


def test_sample_hash_is_deterministic_and_uniform_ish():
    values = [sample_hash(i) for i in range(2000)]
    assert values == [sample_hash(i) for i in range(2000)]
    assert all(0.0 <= v < 1.0 for v in values)
    # crude uniformity: about half below 0.5
    below = sum(v < 0.5 for v in values)
    assert 800 < below < 1200
    # a different seed draws a different subset
    assert [sample_hash(i, seed=1) for i in range(50)] != values[:50]


def test_sampling_rate_bounds_and_subset_stability():
    all_on = Tracer(TelemetryConfig(sample_rate=1.0))
    all_off = Tracer(TelemetryConfig(sample_rate=1e-12))
    half = Tracer(TelemetryConfig(sample_rate=0.5))
    half_again = Tracer(TelemetryConfig(sample_rate=0.5))
    ids = range(1000)
    assert all(all_on.sampled(i) for i in ids)
    picked = {i for i in ids if half.sampled(i)}
    assert {i for i in ids if half_again.sampled(i)} == picked
    assert 350 < len(picked) < 650
    assert sum(all_off.sampled(i) for i in ids) <= 2


# ---------------------------------------------------------------------- #
# Tracer mechanics
# ---------------------------------------------------------------------- #
def test_tracer_records_clamps_and_bounds_spans():
    tracer = Tracer(TelemetryConfig(sample_rate=1.0, max_spans=3))
    tracer.record("a", "queue", 0.0, 1.0)
    tracer.record("b", "queue", 2.0, 1.0)      # end < start -> clamped
    tracer.record("c", "queue", 3.0, 4.0)
    tracer.record("d", "queue", 5.0, 6.0)      # over max_spans -> dropped
    tracer.count("batches", 2)
    trace = tracer.finish({"run": "unit"})
    assert len(trace.spans) == 3
    assert trace.dropped == 1
    assert trace.spans[1].duration_s == 0.0
    assert trace.counters == {"batches": 2}
    assert trace.metadata["run"] == "unit"
    assert trace.by_category("queue")[0].name == "a"


def test_tracer_adopts_worker_spans_with_clamp():
    tracer = Tracer(TelemetryConfig(sample_rate=1.0), clock="wall")
    shipped = [Span("exec", "execute", 0.5, 9.0, lane="proc-worker-0",
                    trace_id=7, args={"fills": [2]}).to_tuple()]
    tracer.adopt(shipped, clamp=(1.0, 2.0))
    span = tracer.finish().spans[0]
    assert span.start_s == 1.0 and span.end_s == 2.0
    assert span.lane == "proc-worker-0" and span.trace_id == 7


def test_null_tracer_is_inert():
    assert not NULL_TRACER.enabled
    assert not NULL_TRACER.sampled(123)
    NULL_TRACER.record("a", "queue", 0.0, 1.0)
    NULL_TRACER.count("x")
    assert NULL_TRACER.finish() is None


# ---------------------------------------------------------------------- #
# Exporters
# ---------------------------------------------------------------------- #
def test_chrome_trace_structure(tmp_path):
    tracer = Tracer(TelemetryConfig(sample_rate=1.0))
    tracer.record("admission", "admission", 0.0, 0.0, lane="req-1", trace_id=1)
    tracer.record("queue", "queue", 0.0, 0.5, lane="req-1", trace_id=1)
    tracer.record("lenet_nano", "batch", 0.5, 1.0, lane="worker-0")
    trace = tracer.finish({"execution": "virtual"})
    doc = chrome_trace(trace)
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    assert meta[0]["name"] == "process_name"
    lane_names = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
    assert lane_names == {"req-1", "worker-0"}
    assert len(spans) == 3
    assert all(e["dur"] >= 0.0 for e in spans)
    assert [e["ts"] for e in spans] == sorted(e["ts"] for e in spans)
    assert spans[0]["args"]["request_id"] == 1
    assert doc["otherData"]["clock"] == "virtual"
    path = trace.save(tmp_path / "sub" / "trace.json")
    assert json.loads(path.read_text())["displayTimeUnit"] == "ms"


def test_prometheus_text_format():
    collectorish = {
        "makespan_s": 2.0,
        "fleet": {"goodput_rps": 5.0, "offered_rps": 6.0, "shed_rate": 0.1,
                  "utilization": 0.4, "slo_attainment": 0.9,
                  "latency_ms": {"p50": 1.0, "p99": 3.0}},
        "per_model": {"lenet_nano": {
            "arrivals": 12, "completed": 10, "shed": {"slo": 2},
            "batches": 4, "padded_slots": 6, "compute_s": 0.8,
            "megabatch_saved_executions": 1,
            "queue": {"max_depth": 5},
        }},
        "admission": {"considered": 12, "admitted": 10, "shed_slo": 2},
    }
    text = prometheus_text(collectorish)
    assert text.endswith("\n")
    assert "# TYPE repro_requests_total counter" in text
    assert 'repro_requests_total{model="lenet_nano"} 12' in text
    assert 'repro_shed_total{model="lenet_nano",reason="slo"} 2' in text
    assert 'repro_queue_max_depth{model="lenet_nano"} 5' in text
    assert 'repro_admission_decisions_total{outcome="admitted"} 10' in text
    assert 'repro_fleet_latency_ms{quantile="p99"} 3.0' in text
    assert "repro_makespan_seconds 2.0" in text
    assert "repro_pipeline_lowerings_total" in text
    # HELP/TYPE precede every family's first sample
    lines = text.splitlines()
    for i, line in enumerate(lines):
        if line.startswith("# TYPE"):
            assert lines[i - 1].startswith("# HELP")


# ---------------------------------------------------------------------- #
# Tape instrumentation
# ---------------------------------------------------------------------- #
def test_tape_sink_emits_per_instruction_spans():
    deployment = deploy_compile(
        "lenet_nano", CompileConfig.create(image_size=IMAGE_SIZE, batch_size=2,
                                           **COMPILE_KWARGS))
    engine = deployment.engine
    tape = engine._ensure_tape()
    seen: list[tuple] = []
    detach = attach_tape_sink(
        tape, lambda name, args, t0, t1: seen.append((name, args, t0, t1)))
    import numpy as np
    engine.run(np.zeros(engine.input_shape))
    detach()
    count = len(seen)
    assert count > 0
    for name, args, t0, t1 in seen:
        assert t1 >= t0
        assert "op" in args and "kind" in args
    # static metadata covers every flat instruction, with shapes/slots
    meta = tape_span_args(tape)
    assert len(meta) >= count
    assert any("shape" in args for args in meta.values())
    # detached: no further spans recorded
    engine.run(np.zeros(engine.input_shape))
    assert len(seen) == count


# ---------------------------------------------------------------------- #
# Fleet tracing end-to-end
# ---------------------------------------------------------------------- #
def test_serve_without_telemetry_has_no_trace():
    server = _server()
    report = server.serve(_requests())
    assert report.trace is None
    with pytest.raises(ValueError):
        report.save_trace("/tmp/never.json")


def test_virtual_serve_traces_sampled_requests():
    server = _server(compute_time_fn=lambda model, fill: 1e-3)
    reqs = _requests()
    report = server.serve(reqs, telemetry=TelemetryConfig(sample_rate=1.0))
    trace = report.trace
    assert trace is not None and trace.clock == "virtual"
    completed_ids = {o.request_id for o in report.outcomes if o.completed}
    request_spans = {s.trace_id for s in trace.by_category("request")}
    assert completed_ids <= request_spans
    for rid in list(completed_ids)[:10]:
        spans = {s.cat: s for s in trace.by_trace_id(rid)}
        assert {"admission", "queue", "execute", "request"} <= set(spans)
        root = spans["request"]
        assert root.start_s <= spans["admission"].start_s
        assert spans["queue"].end_s <= spans["execute"].start_s + 1e-9
        assert spans["execute"].end_s <= root.end_s + 1e-9
    # run-level annotations ride on the metrics report
    assert report.metrics["admission"]["considered"] == len(reqs)
    assert "queue" in report.metrics["per_model"]["lenet_nano"]
    assert "# TYPE repro_admission_decisions_total counter" in report.prometheus()


def test_partial_sampling_traces_a_strict_subset():
    server = _server(compute_time_fn=lambda model, fill: 1e-3)
    reqs = _requests(rate_rps=150.0)
    config = TelemetryConfig(sample_rate=0.4, seed=2)
    report = server.serve(reqs, telemetry=config)
    traced_ids = {s.trace_id for s in report.trace.spans
                  if s.trace_id is not None}
    expected = {r.request_id for r in reqs
                if sample_hash(r.request_id, config.seed) < config.sample_rate}
    assert traced_ids == expected
    assert 0 < len(traced_ids) < len(reqs)


def test_process_backend_trace_acceptance(tmp_path):
    """Acceptance: process-backend serve -> valid Chrome trace with nested,
    monotone admission/queue/batch/execute spans from worker processes."""
    server = _server(execution="real", backend="process", workers=2,
                     policy=BatchingPolicy.dynamic(BATCH, 5e-3))
    try:
        reqs = _requests(rate_rps=120.0, duration_s=0.5)
        report = server.serve(
            reqs, telemetry=TelemetryConfig(sample_rate=1.0, tape_spans=True))
    finally:
        server.close()
    trace = report.trace
    assert trace.clock == "wall"
    cats = {span.cat for span in trace.spans}
    assert {"admission", "queue", "batch", "execute", "request"} <= cats
    # spans from inside the worker processes made it back
    proc_lanes = {s.lane for s in trace.spans if s.lane.startswith("proc-worker")}
    assert proc_lanes
    assert trace.by_category("tape"), "tape_spans=True must emit kernel spans"
    # per-request nesting + monotonicity on the parent clock
    checked = 0
    for outcome in report.outcomes:
        if not outcome.completed:
            continue
        spans = {s.cat: s for s in trace.by_trace_id(outcome.request_id)}
        assert {"admission", "queue", "execute", "request"} <= set(spans)
        root = spans["request"]
        assert root.start_s <= spans["queue"].start_s + 1e-9
        assert spans["queue"].end_s <= spans["execute"].start_s + 1e-9
        assert spans["execute"].end_s <= root.end_s + 1e-9
        checked += 1
    assert checked == report.completed > 0

    path = report.save_trace(tmp_path / "trace.json")
    doc = json.loads(path.read_text())
    events = doc["traceEvents"]
    span_events = [e for e in events if e["ph"] == "X"]
    assert span_events and all(e["dur"] >= 0.0 for e in span_events)
    assert all(e["ts"] >= 0.0 for e in span_events)
    # complete events are sorted by start time (viewer monotonicity)
    ts = [e["ts"] for e in span_events]
    assert ts == sorted(ts)
    lane_names = {e["args"]["name"] for e in events
                  if e["ph"] == "M" and e["name"] == "thread_name"}
    assert any(name.startswith("proc-worker-") for name in lane_names)
    assert doc["otherData"]["backend"] == "process"


def test_trace_span_budget_is_enforced_end_to_end():
    server = _server(compute_time_fn=lambda model, fill: 1e-3)
    report = server.serve(
        _requests(rate_rps=150.0),
        telemetry=TelemetryConfig(sample_rate=1.0, max_spans=10))
    assert len(report.trace.spans) == 10
    assert report.trace.dropped > 0
