"""Unit tests for fixed-point export and bit-accuracy verification."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.graph import (
    GraphBuilder,
    OpKind,
    check_conv_bit_accuracy,
    export_conv_layer,
    export_graph_specs,
    export_linear_layer,
    integer_conv_forward,
    integer_linear_forward,
    quantize_graph,
)
from repro.quant import QuantConfig, QuantScheme, QuantizedConv2d, QuantizedLinear, TQTQuantizer


def make_quantized_conv(rng, activation="none", bias=False, channels=(3, 8)):
    conv = nn.Conv2d(channels[0], channels[1], 3, padding=1, bias=bias, rng=rng)
    layer = QuantizedConv2d(conv, QuantScheme(weight_init="max"), activation=activation,
                            quantize_internal=False, name="conv")
    # calibrate the output quantizer on representative data
    layer.output_quantizer.start_calibration()
    layer(Tensor(rng.standard_normal((2, channels[0], 6, 6))))
    layer.output_quantizer.finalize_calibration()
    return layer


def make_input_quantizer(rng, data):
    quantizer = TQTQuantizer(QuantConfig(bits=8), name="input")
    quantizer.initialize_from(np.abs(data).max())
    return quantizer


class TestLayerExport:
    def test_conv_spec_fields(self, rng):
        layer = make_quantized_conv(rng)
        spec = export_conv_layer(layer, input_fraction=7)
        assert spec.weight_codes.dtype == np.int64
        assert spec.weight_codes.shape == layer.conv.weight.shape
        assert spec.accumulator_fraction == spec.weight_fraction + 7
        assert spec.requantize_shift == spec.accumulator_fraction - spec.output_fraction

    def test_conv_weight_codes_in_range(self, rng):
        layer = make_quantized_conv(rng)
        spec = export_conv_layer(layer, input_fraction=7)
        assert spec.weight_codes.min() >= -128 and spec.weight_codes.max() <= 127

    def test_linear_spec(self, rng):
        linear = nn.Linear(6, 3, bias=False, rng=rng)
        layer = QuantizedLinear(linear, QuantScheme(weight_init="max"), name="fc")
        layer.output_quantizer.start_calibration()
        layer(Tensor(rng.standard_normal((4, 6))))
        layer.output_quantizer.finalize_calibration()
        spec = export_linear_layer(layer, input_fraction=7)
        assert spec.weight_codes.shape == (3, 6)

    def test_export_requires_tqt(self, rng):
        conv = nn.Conv2d(3, 4, 3, rng=rng)
        layer = QuantizedConv2d(conv, QuantScheme(method="fake_quant", power_of_2=False),
                                name="conv")
        with pytest.raises(TypeError):
            export_conv_layer(layer, input_fraction=7)


class TestBitAccuracy:
    def test_conv_layer_bit_accurate_no_bias(self, rng):
        """The fake-quantized conv layer and the pure-integer execution produce
        identical integer codes (the paper's FPGA bit-accuracy check)."""
        layer = make_quantized_conv(rng, activation="none", bias=False)
        x = rng.standard_normal((2, 3, 6, 6))
        input_quantizer = make_input_quantizer(rng, x)
        report = check_conv_bit_accuracy(layer, x, input_quantizer)
        assert report["mismatches"] == 0
        assert report["max_code_difference"] == 0.0
        assert report["total"] > 0

    def test_conv_layer_bit_accurate_with_relu(self, rng):
        layer = make_quantized_conv(rng, activation="relu", bias=False)
        x = rng.standard_normal((1, 3, 6, 6))
        input_quantizer = make_input_quantizer(rng, x)
        report = check_conv_bit_accuracy(layer, x, input_quantizer)
        assert report["mismatches"] == 0

    def test_integer_conv_forward_range(self, rng):
        layer = make_quantized_conv(rng)
        x = rng.standard_normal((1, 3, 6, 6))
        input_quantizer = make_input_quantizer(rng, x)
        spec = export_conv_layer(layer, int(np.asarray(input_quantizer.fractional_length)))
        codes = input_quantizer.quantize_to_integers(x)
        out = integer_conv_forward(spec, codes)
        assert out.min() >= spec.output_config.qmin
        assert out.max() <= spec.output_config.qmax

    def test_integer_linear_forward(self, rng):
        linear = nn.Linear(6, 3, bias=False, rng=rng)
        layer = QuantizedLinear(linear, QuantScheme(weight_init="max"), name="fc")
        layer.output_quantizer.start_calibration()
        data = rng.standard_normal((4, 6))
        layer(Tensor(data))
        layer.output_quantizer.finalize_calibration()
        input_quantizer = make_input_quantizer(rng, data)
        spec = export_linear_layer(layer, int(np.asarray(input_quantizer.fractional_length)))
        out = integer_linear_forward(spec, input_quantizer.quantize_to_integers(data))
        assert out.shape == (4, 3)
        assert out.dtype == np.int64


class TestGraphExport:
    def test_chain_graph_specs(self, rng, calibration_batches):
        builder = GraphBuilder("chain")
        x = builder.input("input")
        x = builder.layer("conv1", OpKind.CONV, nn.Conv2d(3, 4, 3, padding=1, bias=False, rng=rng), x)
        x = builder.layer("relu1", OpKind.RELU, nn.ReLU(), x)
        x = builder.layer("conv2", OpKind.CONV, nn.Conv2d(4, 4, 3, padding=1, bias=False, rng=rng), x)
        graph = builder.build(x)
        quantize_graph(graph, QuantScheme(weight_init="max"))
        from repro.graph import calibrate_activations
        calibrate_activations(graph, calibration_batches)
        specs = export_graph_specs(graph, input_fraction=7)
        assert set(specs) == {"conv1", "conv2"}
        # conv2 consumes conv1's output fractional length
        assert specs["conv2"].input_fraction == specs["conv1"].output_fraction
