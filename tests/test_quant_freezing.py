"""Unit tests for the incremental threshold-freezing controller."""

import numpy as np

from repro.quant import FreezingPolicy, QuantConfig, ThresholdFreezer, TQTQuantizer


def make_quantizers(count=3):
    return {f"q{i}": TQTQuantizer(QuantConfig(bits=8), init_log2_t=float(i) + 0.3)
            for i in range(count)}


class TestFreezingPolicy:
    def test_batch_size_scaling(self):
        policy = FreezingPolicy.from_batch_size(batch_size=24)
        assert policy.start_step == 1000
        half_batch = FreezingPolicy.from_batch_size(batch_size=12)
        assert half_batch.start_step == 2000

    def test_defaults(self):
        policy = FreezingPolicy()
        assert policy.interval == 50 and policy.enabled


class TestThresholdFreezer:
    def test_nothing_freezes_before_start(self):
        quantizers = make_quantizers()
        freezer = ThresholdFreezer(quantizers, FreezingPolicy(start_step=100, interval=10))
        for q in quantizers.values():
            q.log2_t.grad = np.asarray(0.1)
        freezer.observe()
        assert freezer.step(50) is None
        assert freezer.num_frozen == 0

    def test_one_freeze_per_interval(self):
        quantizers = make_quantizers()
        freezer = ThresholdFreezer(quantizers, FreezingPolicy(start_step=10, interval=5))
        for q in quantizers.values():
            q.log2_t.grad = np.asarray(0.1)
        freezer.observe()
        assert freezer.step(10) is not None
        assert freezer.step(11) is None           # off-interval step
        assert freezer.step(15) is not None
        assert freezer.num_frozen == 2

    def test_smallest_gradient_frozen_first(self):
        quantizers = make_quantizers()
        freezer = ThresholdFreezer(quantizers, FreezingPolicy(start_step=1, interval=1))
        grads = {"q0": 0.5, "q1": 0.01, "q2": 0.2}
        for name, q in quantizers.items():
            q.log2_t.grad = np.asarray(grads[name])
        freezer.observe()
        assert freezer.step(1) == "q1"
        assert quantizers["q1"].frozen

    def test_wrong_side_of_integer_bin_not_frozen(self):
        quantizers = make_quantizers(1)
        freezer = ThresholdFreezer(quantizers, FreezingPolicy(start_step=1, interval=1,
                                                              ema_decay=0.9))
        q = quantizers["q0"]
        q.log2_t.grad = np.asarray(0.01)
        freezer.observe()                      # EMA at 0.3 (bin 1)
        q.log2_t.data[...] = -0.4              # current value crosses to bin 0
        q.log2_t.grad = np.asarray(0.01)
        freezer.observe()                      # EMA (0.23) still in bin 1
        assert freezer.step(1) is None

    def test_frozen_quantizer_not_refrozen(self):
        quantizers = make_quantizers(1)
        freezer = ThresholdFreezer(quantizers, FreezingPolicy(start_step=1, interval=1))
        quantizers["q0"].log2_t.grad = np.asarray(0.1)
        freezer.observe()
        assert freezer.step(1) == "q0"
        freezer.observe()
        assert freezer.step(2) is None
        assert freezer.all_frozen()

    def test_disabled_policy(self):
        quantizers = make_quantizers(1)
        freezer = ThresholdFreezer(quantizers, FreezingPolicy(start_step=1, interval=1,
                                                              enabled=False))
        quantizers["q0"].log2_t.grad = np.asarray(0.1)
        freezer.observe()
        assert freezer.step(1) is None

    def test_untrainable_quantizers_not_tracked(self):
        quantizers = {"fixed": TQTQuantizer(QuantConfig(bits=8), trainable=False),
                      "learned": TQTQuantizer(QuantConfig(bits=8), trainable=True)}
        freezer = ThresholdFreezer(quantizers)
        assert freezer.num_tracked == 1

    def test_accepts_list_of_quantizers(self):
        freezer = ThresholdFreezer([TQTQuantizer(QuantConfig(bits=8), name="a")])
        assert freezer.num_tracked == 1
