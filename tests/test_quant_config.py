"""Unit tests for quantizer configuration objects."""

import pytest

from repro.quant import INT4_PRECISION, INT8_PRECISION, LayerPrecision, QuantConfig


class TestQuantConfig:
    def test_signed_range(self):
        config = QuantConfig(bits=8, signed=True)
        assert config.qmin == -128 and config.qmax == 127
        assert config.levels == 128

    def test_unsigned_range(self):
        config = QuantConfig(bits=8, signed=False)
        assert config.qmin == 0 and config.qmax == 255
        assert config.levels == 256

    def test_4bit_ranges(self):
        config = QuantConfig(bits=4)
        assert (config.qmin, config.qmax) == (-8, 7)

    def test_rejects_bad_bitwidth(self):
        with pytest.raises(ValueError):
            QuantConfig(bits=1)
        with pytest.raises(ValueError):
            QuantConfig(bits=64)

    def test_asymmetric_power_of_2_rejected(self):
        with pytest.raises(ValueError):
            QuantConfig(symmetric=False, power_of_2=True)

    def test_with_bits_and_signedness_helpers(self):
        config = QuantConfig(bits=8)
        assert config.with_bits(4).bits == 4
        assert not config.as_unsigned().signed
        assert config.as_unsigned().as_signed().signed

    def test_frozen(self):
        config = QuantConfig()
        with pytest.raises(Exception):
            config.bits = 4


class TestLayerPrecision:
    def test_int8_and_int4_presets(self):
        assert INT8_PRECISION.weight_bits == 8 and INT8_PRECISION.activation_bits == 8
        assert INT4_PRECISION.weight_bits == 4 and INT4_PRECISION.activation_bits == 8

    def test_name(self):
        assert INT8_PRECISION.name == "W8A8"
        assert LayerPrecision(4, 8).name == "W4A8"

    def test_internal_precisions_default_to_16(self):
        assert INT8_PRECISION.bias_bits == 16
        assert INT8_PRECISION.internal_bits == 16

    def test_first_last_layer_floor(self):
        assert INT4_PRECISION.min_first_last_weight_bits == 8
