"""Unit tests for the fixed-point (integer) inference kernels."""

import numpy as np
import pytest

from repro.autograd import Tensor, conv2d
from repro.quant import (
    QuantConfig,
    affine_matmul_with_zero_points,
    count_affine_cost,
    dequantize,
    fixed_point_multiplier,
    integer_conv2d,
    integer_matmul,
    multiplier_requantize,
    quantize_to_int,
    shift_requantize,
)


class TestQuantizeDequantize:
    def test_roundtrip_error_bounded(self, rng):
        config = QuantConfig(bits=8)
        scale = 1 / 128
        values = rng.uniform(-0.9, 0.9, 200)
        codes = quantize_to_int(values, scale, config)
        recovered = dequantize(codes, scale)
        assert np.max(np.abs(recovered - values)) <= scale / 2 + 1e-12

    def test_codes_clipped(self):
        config = QuantConfig(bits=8)
        codes = quantize_to_int(np.array([100.0, -100.0]), 0.01, config)
        np.testing.assert_array_equal(codes, [127, -128])

    def test_integer_dtype(self):
        config = QuantConfig(bits=4)
        assert quantize_to_int(np.zeros(3), 0.1, config).dtype == np.int64


class TestRequantization:
    def test_shift_requantize_is_division_by_power_of_two(self):
        config = QuantConfig(bits=8)
        acc = np.array([1024, -512, 100])
        np.testing.assert_array_equal(shift_requantize(acc, 3, config), [127, -64, 12])

    def test_shift_zero_and_negative(self):
        config = QuantConfig(bits=16)
        acc = np.array([5, -3])
        np.testing.assert_array_equal(shift_requantize(acc, 0, config), [5, -3])
        np.testing.assert_array_equal(shift_requantize(acc, -2, config), [20, -12])

    def test_round_half_to_even_in_shift(self):
        config = QuantConfig(bits=8)
        # 3 / 2 = 1.5 -> 2 ; 1 / 2 = 0.5 -> 0 (banker's rounding)
        np.testing.assert_array_equal(shift_requantize(np.array([3, 1]), 1, config), [2, 0])

    def test_fixed_point_multiplier_decomposition(self):
        for real in (0.37, 0.0021, 0.93, 0.5):
            m0, shift = fixed_point_multiplier(real)
            assert m0 / (1 << 31) == pytest.approx(real * 2 ** (shift - 31), rel=1e-6)
            reconstructed = m0 * 2.0 ** (-shift)
            assert reconstructed == pytest.approx(real, rel=1e-6)

    def test_fixed_point_multiplier_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fixed_point_multiplier(0.0)

    def test_multiplier_requantize_matches_real_scaling(self, rng):
        config = QuantConfig(bits=8)
        acc = rng.integers(-10000, 10000, 100)
        real_multiplier = 0.00731
        out = multiplier_requantize(acc, real_multiplier, config)
        expected = np.clip(np.rint(acc * real_multiplier), -128, 127)
        np.testing.assert_allclose(out, expected, atol=1)


class TestIntegerKernels:
    def test_integer_matmul(self, rng):
        a = rng.integers(-128, 128, (4, 6))
        b = rng.integers(-128, 128, (6, 3))
        np.testing.assert_array_equal(integer_matmul(a, b), a @ b)

    def test_integer_conv_matches_float_conv_on_codes(self, rng):
        x = rng.integers(-128, 128, (2, 3, 6, 6))
        w = rng.integers(-8, 8, (4, 3, 3, 3))
        out = integer_conv2d(x, w, stride=1, padding=1)
        expected = conv2d(Tensor(x.astype(float)), Tensor(w.astype(float)),
                          stride=1, padding=1).data
        np.testing.assert_allclose(out, expected)

    def test_integer_depthwise_conv(self, rng):
        x = rng.integers(-128, 128, (1, 4, 5, 5))
        w = rng.integers(-8, 8, (4, 1, 3, 3))
        out = integer_conv2d(x, w, padding=1, groups=4)
        expected = conv2d(Tensor(x.astype(float)), Tensor(w.astype(float)),
                          padding=1, groups=4).data
        np.testing.assert_allclose(out, expected)

    def test_bias_added_at_accumulator_scale(self, rng):
        x = rng.integers(-10, 10, (1, 2, 4, 4))
        w = rng.integers(-3, 3, (2, 2, 3, 3))
        bias = np.array([100, -200])
        out = integer_conv2d(x, w, bias, padding=1)
        out_nobias = integer_conv2d(x, w, padding=1)
        np.testing.assert_array_equal(out - out_nobias,
                                      np.broadcast_to(bias.reshape(1, 2, 1, 1), out.shape))


class TestAffineCost:
    def test_zero_point_expansion_matches_direct_product(self, rng):
        """Eq. 13: the expanded form with explicit correction terms equals the
        direct product of the de-quantized integer values."""
        q1 = rng.integers(0, 255, (3, 5))
        q2 = rng.integers(0, 255, (5, 4))
        z1, z2 = 7, 13
        expanded = affine_matmul_with_zero_points(q1, q2, z1, z2)
        direct = (q1 - z1) @ (q2 - z2)
        np.testing.assert_array_equal(expanded, direct)

    def test_zero_zero_points_reduce_to_plain_product(self, rng):
        q1 = rng.integers(-128, 127, (3, 5))
        q2 = rng.integers(-128, 127, (5, 4))
        np.testing.assert_array_equal(affine_matmul_with_zero_points(q1, q2, 0, 0), q1 @ q2)

    def test_cost_counts(self):
        symmetric_pow2 = count_affine_cost(16, 64, 16, symmetric=True, power_of_2=True)
        affine_real = count_affine_cost(16, 64, 16, symmetric=False, power_of_2=False)
        assert symmetric_pow2.multiply_accumulates == affine_real.multiply_accumulates
        assert symmetric_pow2.zero_point_corrections == 0
        assert symmetric_pow2.rescale_multiplies == 0
        assert affine_real.zero_point_corrections > 0
        assert affine_real.rescale_multiplies == 16 * 16
        assert affine_real.total_extra_ops > symmetric_pow2.total_extra_ops
