"""Unit tests for the model zoo."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.graph import OpKind
from repro.models import (
    MODEL_REGISTRY,
    available_models,
    avgpool_channel_hints,
    build_model,
    mobilenet_v1_nano,
)


class TestRegistry:
    def test_all_models_listed(self):
        assert set(available_models()) == set(MODEL_REGISTRY)
        assert len(MODEL_REGISTRY) == 10

    def test_difficult_flags(self):
        assert MODEL_REGISTRY["mobilenet_v1_nano"].difficult
        assert MODEL_REGISTRY["darknet_nano"].difficult
        assert not MODEL_REGISTRY["vgg_nano"].difficult

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            build_model("resnet_9000")

    def test_unknown_model_error_lists_available_models(self):
        with pytest.raises(ValueError) as excinfo:
            build_model("resnet_9000")
        message = str(excinfo.value)
        assert "resnet_9000" in message
        for name in available_models():
            assert name in message

    def test_compile_unknown_model_error_lists_available_models(self):
        from repro.models import compile_registry_model

        with pytest.raises(ValueError) as excinfo:
            compile_registry_model("resnet_9000")
        message = str(excinfo.value)
        assert "resnet_9000" in message
        for name in available_models():
            assert name in message

    def test_paper_names_recorded(self):
        assert "MobileNet" in MODEL_REGISTRY["mobilenet_v1_nano"].paper_name
        assert "VGG" in MODEL_REGISTRY["vgg_nano"].paper_name


@pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
class TestEveryModel:
    def test_builds_and_forwards(self, name, rng):
        graph = build_model(name, num_classes=6, seed=0)
        graph.validate()
        out = graph(Tensor(rng.standard_normal((2, 3, 16, 16))))
        assert out.shape == (2, 6)

    def test_deterministic_construction(self, name, rng):
        a = build_model(name, num_classes=4, seed=5)
        b = build_model(name, num_classes=4, seed=5)
        x = Tensor(rng.standard_normal((1, 3, 16, 16)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_gradients_flow_to_all_parameters(self, name, rng):
        graph = build_model(name, num_classes=4, seed=0)
        out = graph(Tensor(rng.standard_normal((2, 3, 16, 16))))
        out.sum().backward()
        missing = [param_name for param_name, param in graph.named_parameters()
                   if param.grad is None and param.requires_grad]
        assert missing == []


class TestTopologies:
    def test_mobilenet_has_depthwise_convs(self):
        graph = build_model("mobilenet_v1_nano")
        assert len(graph.nodes_of_kind(OpKind.DEPTHWISE_CONV)) >= 4

    def test_mobilenet_v2_has_residual_adds(self):
        graph = build_model("mobilenet_v2_nano")
        assert len(graph.nodes_of_kind(OpKind.ADD)) >= 1

    def test_resnet_has_adds(self):
        graph = build_model("resnet_nano")
        assert len(graph.nodes_of_kind(OpKind.ADD)) >= 4

    def test_inception_has_concats_and_avgpool(self):
        graph = build_model("inception_nano")
        assert len(graph.nodes_of_kind(OpKind.CONCAT)) >= 2
        assert len(graph.nodes_of_kind(OpKind.AVGPOOL)) >= 2
        hints = avgpool_channel_hints(graph)
        assert len(hints) >= 2

    def test_darknet_uses_leaky_relu(self):
        graph = build_model("darknet_nano")
        assert len(graph.nodes_of_kind(OpKind.LEAKY_RELU)) >= 5

    def test_vgg_has_batchnorms_before_folding(self):
        graph = build_model("vgg_nano")
        assert len(graph.nodes_of_kind(OpKind.BATCHNORM)) >= 6

    def test_all_models_have_batchnorm_except_lenet_fc(self):
        for name in MODEL_REGISTRY:
            graph = build_model(name)
            assert graph.nodes_of_kind(OpKind.BATCHNORM), name


class TestDepthwiseChannelSpread:
    def test_channel_range_spread_widens_weight_ranges(self):
        narrow = mobilenet_v1_nano(channel_range_spread=1.0, seed=0)
        wide = mobilenet_v1_nano(channel_range_spread=32.0, seed=0)

        def per_channel_range_ratio(graph):
            ratios = []
            for node in graph.nodes_of_kind(OpKind.DEPTHWISE_CONV):
                weights = node.module.weight.data
                per_channel = np.abs(weights).reshape(weights.shape[0], -1).max(axis=1)
                ratios.append(per_channel.max() / per_channel.min())
            return float(np.median(ratios))

        assert per_channel_range_ratio(wide) > 5 * per_channel_range_ratio(narrow)

    def test_num_classes_controls_output_width(self, rng):
        graph = build_model("mobilenet_v1_nano", num_classes=17)
        out = graph(Tensor(rng.standard_normal((1, 3, 16, 16))))
        assert out.shape == (1, 17)
