"""Property-based tests (hypothesis) on TQT quantizer invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import Tensor
from repro.quant import QuantConfig, compute_scale, tqt_quantize

values_strategy = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=200),
    elements=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False,
                       allow_infinity=False, width=64),
)
log2_t_strategy = st.floats(min_value=-6.0, max_value=6.0, allow_nan=False)
bits_strategy = st.sampled_from([3, 4, 6, 8])
signed_strategy = st.booleans()


@settings(max_examples=60, deadline=None)
@given(values_strategy, log2_t_strategy, bits_strategy, signed_strategy)
def test_idempotence(values, log2_t, bits, signed):
    """Quantizing an already quantized tensor changes nothing: q(q(x)) == q(x)."""
    config = QuantConfig(bits=bits, signed=signed)
    t = Tensor(np.asarray(log2_t))
    once = tqt_quantize(Tensor(values), t, config)
    twice = tqt_quantize(once, t, config)
    np.testing.assert_allclose(once.data, twice.data, atol=1e-12)


@settings(max_examples=60, deadline=None)
@given(values_strategy, log2_t_strategy, bits_strategy, signed_strategy)
def test_output_on_integer_grid_and_within_range(values, log2_t, bits, signed):
    """Outputs are integer multiples of s and stay inside [n*s, p*s]."""
    config = QuantConfig(bits=bits, signed=signed)
    s = compute_scale(log2_t, config)
    out = tqt_quantize(Tensor(values), Tensor(np.asarray(log2_t)), config).data
    codes = out / s
    np.testing.assert_allclose(codes, np.round(codes), atol=1e-6)
    assert codes.min() >= config.qmin - 1e-6
    assert codes.max() <= config.qmax + 1e-6


@settings(max_examples=60, deadline=None)
@given(values_strategy, log2_t_strategy, bits_strategy)
def test_error_bounded_inside_clipping_range(values, log2_t, bits):
    """Inside the clipping range the quantization error is at most s/2."""
    config = QuantConfig(bits=bits, signed=True)
    s = compute_scale(log2_t, config)
    low, high = (config.qmin + 0.5) * s, (config.qmax - 0.5) * s
    inside = values[(values > low) & (values < high)]
    if inside.size == 0:
        return
    out = tqt_quantize(Tensor(inside), Tensor(np.asarray(log2_t)), config).data
    assert np.max(np.abs(out - inside)) <= s / 2 + 1e-9


@settings(max_examples=60, deadline=None)
@given(values_strategy, log2_t_strategy, bits_strategy)
def test_symmetry(values, log2_t, bits):
    """Symmetric quantizer: q(-x) == -q(x) except at the asymmetric endpoint."""
    config = QuantConfig(bits=bits, signed=True)
    s = compute_scale(log2_t, config)
    # Exclude values that saturate (the signed integer range is asymmetric:
    # -2^(b-1) has no positive counterpart).
    keep = np.abs(values) < (config.qmax - 0.5) * s
    values = values[keep]
    if values.size == 0:
        return
    t = Tensor(np.asarray(log2_t))
    pos = tqt_quantize(Tensor(values), t, config).data
    neg = tqt_quantize(Tensor(-values), t, config).data
    np.testing.assert_allclose(neg, -pos, atol=1e-9)


@settings(max_examples=60, deadline=None)
@given(values_strategy, log2_t_strategy, bits_strategy)
def test_monotonicity(values, log2_t, bits):
    """The quantizer is a non-decreasing function of its input."""
    config = QuantConfig(bits=bits, signed=True)
    ordered = np.sort(values)
    out = tqt_quantize(Tensor(ordered), Tensor(np.asarray(log2_t)), config).data
    assert np.all(np.diff(out) >= -1e-12)


@settings(max_examples=60, deadline=None)
@given(values_strategy, log2_t_strategy, bits_strategy, signed_strategy)
def test_input_gradient_is_binary_mask(values, log2_t, bits, signed):
    """Eq. 8: the input gradient is exactly 0 or 1."""
    config = QuantConfig(bits=bits, signed=signed)
    x = Tensor(values, requires_grad=True)
    tqt_quantize(x, Tensor(np.asarray(log2_t)), config).sum().backward()
    assert set(np.unique(x.grad)).issubset({0.0, 1.0})


@settings(max_examples=40, deadline=None)
@given(values_strategy, st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
       bits_strategy)
def test_larger_threshold_never_clips_more(values, log2_t, bits):
    """Raising the threshold can only decrease the number of clipped elements."""
    config = QuantConfig(bits=bits, signed=True)

    def clipped_count(log_threshold):
        s = compute_scale(log_threshold, config)
        codes = np.rint(values / s)
        return int(np.count_nonzero((codes < config.qmin) | (codes > config.qmax)))

    assert clipped_count(log2_t + 1.0) <= clipped_count(log2_t)


@settings(max_examples=40, deadline=None)
@given(values_strategy, bits_strategy)
def test_max_calibrated_threshold_clipping_error_bounded(values, bits):
    """With the threshold at max|x| (rounded up to a power of 2), the only
    possible clipping is the asymmetric top code (2^(b-1) saturating to
    2^(b-1)-1), so the worst-case error of any element is at most one step."""
    config = QuantConfig(bits=bits, signed=True)
    max_abs = np.abs(values).max()
    if max_abs == 0:
        return
    log2_t = float(np.log2(max_abs))
    s = compute_scale(log2_t, config)
    out = tqt_quantize(Tensor(values), Tensor(np.asarray(log2_t)), config).data
    assert np.max(np.abs(out - values)) <= s + 1e-9
    codes = np.rint(values / s)
    assert codes.min() >= config.qmin and codes.max() <= config.levels
