"""Unit tests for optimizers and learning-rate schedules."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.optim import (
    SGD,
    Adam,
    ConstantSchedule,
    ExponentialDecay,
    NormedSGD,
    ParamGroup,
    RMSProp,
    StepDecay,
    paper_threshold_schedule,
    paper_weight_schedule,
)


def quadratic_loss(param: nn.Parameter, target: np.ndarray) -> Tensor:
    diff = param - Tensor(target)
    return (diff * diff).sum()


def run_optimizer(optimizer_cls, steps=200, **kwargs) -> float:
    param = nn.Parameter(np.array([5.0, -3.0]))
    target = np.array([1.0, 2.0])
    optimizer = optimizer_cls([param], **kwargs)
    for _ in range(steps):
        optimizer.zero_grad()
        loss = quadratic_loss(param, target)
        loss.backward()
        optimizer.step()
    return float(np.abs(param.data - target).max())


class TestOptimizersConverge:
    def test_sgd_converges_on_quadratic(self):
        assert run_optimizer(SGD, lr=0.1) < 1e-3

    def test_sgd_with_momentum(self):
        assert run_optimizer(SGD, lr=0.05, momentum=0.9) < 1e-3

    def test_adam_converges(self):
        assert run_optimizer(Adam, lr=0.1, steps=400) < 1e-2

    def test_rmsprop_converges(self):
        assert run_optimizer(RMSProp, lr=0.05, steps=400) < 1e-2

    def test_normed_sgd_converges(self):
        assert run_optimizer(NormedSGD, lr=0.05, steps=500) < 0.06


class TestOptimizerMechanics:
    def test_step_skips_parameters_without_grad(self):
        param = nn.Parameter(np.array([1.0]))
        optimizer = SGD([param], lr=0.1)
        optimizer.step()
        np.testing.assert_allclose(param.data, [1.0])

    def test_weight_decay_shrinks_weights(self):
        param = nn.Parameter(np.array([1.0]))
        optimizer = SGD([param], lr=0.1, weight_decay=0.5)
        param.grad = np.zeros(1)
        optimizer.step()
        assert param.data[0] < 1.0

    def test_zero_grad_clears_all_groups(self):
        p1, p2 = nn.Parameter(np.ones(1)), nn.Parameter(np.ones(1))
        p1.grad, p2.grad = np.ones(1), np.ones(1)
        optimizer = Adam([ParamGroup([p1], lr=0.1), ParamGroup([p2], lr=0.2)], lr=0.1)
        optimizer.zero_grad()
        assert p1.grad is None and p2.grad is None

    def test_param_groups_use_their_own_lr(self):
        p_fast = nn.Parameter(np.array([1.0]))
        p_slow = nn.Parameter(np.array([1.0]))
        optimizer = SGD([ParamGroup([p_fast], lr=0.5), ParamGroup([p_slow], lr=0.01)], lr=0.5)
        p_fast.grad = np.ones(1)
        p_slow.grad = np.ones(1)
        optimizer.step()
        assert abs(1.0 - p_fast.data[0]) > abs(1.0 - p_slow.data[0])

    def test_adam_gradient_norming_is_scale_invariant(self):
        """Adam's first update is ~lr regardless of gradient magnitude —
        the property the paper relies on for threshold training."""
        updates = []
        for scale in (1e-3, 1e3):
            param = nn.Parameter(np.array([0.0]))
            optimizer = Adam([param], lr=0.01)
            param.grad = np.array([scale])
            optimizer.step()
            updates.append(abs(param.data[0]))
        np.testing.assert_allclose(updates[0], updates[1], rtol=1e-5)

    def test_normed_sgd_bounded_update(self):
        """Eq. 18: with tanh clipping a single update is bounded by the LR."""
        param = nn.Parameter(np.array([0.0]))
        optimizer = NormedSGD([param], lr=0.1, clip=True)
        param.grad = np.array([1e6])
        optimizer.step()
        assert abs(param.data[0]) <= 0.1 + 1e-12


class TestSchedules:
    def test_constant(self):
        assert ConstantSchedule()(0.1, 1000) == 0.1

    def test_exponential_staircase(self):
        schedule = ExponentialDecay(decay_rate=0.5, decay_steps=100, staircase=True)
        assert schedule(1.0, 99) == 1.0
        assert schedule(1.0, 100) == 0.5
        assert schedule(1.0, 250) == 0.25

    def test_exponential_smooth(self):
        schedule = ExponentialDecay(decay_rate=0.5, decay_steps=100, staircase=False)
        assert 0.5 < schedule(1.0, 50) < 1.0

    def test_exponential_rejects_bad_steps(self):
        with pytest.raises(ValueError):
            ExponentialDecay(0.5, 0)

    def test_step_decay(self):
        schedule = StepDecay([10, 20], [0.1, 0.01])
        assert schedule(1.0, 5) == 1.0
        assert schedule(1.0, 15) == 0.1
        assert schedule(1.0, 25) == 0.01

    def test_paper_schedules_scale_with_batch_size(self):
        # Larger batches decay sooner (fewer steps per epoch).
        small = paper_weight_schedule(batch_size=24)
        large = paper_weight_schedule(batch_size=48)
        assert large.decay_steps < small.decay_steps
        th = paper_threshold_schedule(batch_size=24)
        assert th.decay_rate == 0.5 and th.decay_steps == 1000

    def test_schedule_applied_through_param_group(self):
        group = ParamGroup([nn.Parameter(np.ones(1))], lr=1.0,
                           schedule=ExponentialDecay(0.1, 10))
        assert group.learning_rate(5) == 1.0
        assert group.learning_rate(10) == pytest.approx(0.1)
