"""Process fleet backend, load-generation pacing, and priority admission.

The multiprocess backend's acceptance claim is *bit-identical* output codes
against the virtual-clock loop — per-process engines bootstrapped from
``.rpa`` artifacts plus a shared-memory data plane must be an execution
detail, never a numerics change.  Pacing tests use injectable clocks so the
open/closed-loop semantics are asserted deterministically; priority tests
drive the admission controller with a fixed cost model on the virtual
clock.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.deploy import CompileConfig, ServeConfig
from repro.deploy import compile as deploy_compile
from repro.serving import (
    AdmissionController,
    AdmissionPolicy,
    BatchingPolicy,
    ClosedLoopPacer,
    DynamicBatcher,
    EwmaCostModel,
    FleetServer,
    OpenLoopPacer,
    ProcessFleetBackend,
    Request,
    Scenario,
    fleet_input_shapes,
    generate_requests,
)

FLEET = ["lenet_nano", "mobilenet_v1_nano"]
IMAGE_SIZE = 8
BATCH = 8
COMPILE_KWARGS = dict(calibration_samples=8, calibration_batch_size=4)

#: deterministic per-batch compute cost (seconds) for the virtual clock
FIXED_COST = lambda model, fill: 2e-3


def _burst_requests(seed: int = 3, rate_rps: float = 120.0, duration_s: float = 0.5):
    scenario = Scenario("burst", "poisson", duration_s=duration_s,
                        model_mix=(("lenet_nano", 0.5), ("mobilenet_v1_nano", 0.5)),
                        slo_ms=None, params=dict(rate_rps=rate_rps))
    return generate_requests(scenario, fleet_input_shapes(FLEET, IMAGE_SIZE),
                             seed=seed)


def _server(execution: str = "virtual", **kwargs) -> FleetServer:
    kwargs.setdefault("admission", AdmissionPolicy(max_queue_depth=None,
                                                   slo_shed=False))
    kwargs.setdefault("policy", BatchingPolicy.dynamic(BATCH, 5e-3))
    return FleetServer(FLEET, batch_size=BATCH, image_size=IMAGE_SIZE,
                       compile_kwargs=COMPILE_KWARGS, execution=execution,
                       **kwargs)


def _request(request_id: int, arrival_s: float, priority: int = 0,
             deadline_s: float | None = None, model: str = "lenet_nano") -> Request:
    return Request(request_id=request_id, model=model, arrival_s=arrival_s,
                   image=np.zeros((3, IMAGE_SIZE, IMAGE_SIZE)),
                   deadline_s=deadline_s, priority=priority)


# ---------------------------------------------------------------------- #
# Tentpole: the process backend is bit-identical to the virtual clock
# ---------------------------------------------------------------------- #
def test_process_backend_codes_bit_identical_to_virtual():
    requests = _burst_requests(seed=3)
    virtual = _server("virtual", compute_time_fn=FIXED_COST).serve(requests)
    assert virtual.completed == len(requests)

    server = _server("real", backend="process", workers=2)
    report = server.serve(requests)
    assert report.backend == "process"
    assert report.pacing == "flood"
    assert report.execution == "real"
    assert report.completed == len(requests)
    assert report.shed == 0

    by_id = {o.request_id: o for o in virtual.outcomes}
    seen_workers = set()
    for outcome in report.outcomes:
        reference = by_id[outcome.request_id]
        assert outcome.codes.dtype == reference.codes.dtype
        np.testing.assert_array_equal(outcome.codes, reference.codes)
        seen_workers.add(outcome.worker_index)
    # Both worker processes actually served traffic.
    assert seen_workers == {0, 1}
    # Wall-clock goodput is measured, not simulated.
    assert report.fleet["goodput_rps"] > 0
    assert report.wall_time_s > 0


def test_process_backend_requires_real_execution_and_no_sharding():
    with pytest.raises(ValueError, match="requires execution='real'"):
        FleetServer(FLEET, batch_size=BATCH, image_size=IMAGE_SIZE,
                    compile_kwargs=COMPILE_KWARGS, backend="process", warm=False)
    with pytest.raises(ValueError, match="shard_workers"):
        FleetServer(FLEET, batch_size=BATCH, image_size=IMAGE_SIZE,
                    compile_kwargs=COMPILE_KWARGS, execution="real",
                    backend="process", shard_workers=2, warm=False)
    with pytest.raises(ValueError, match="backend"):
        FleetServer(FLEET, batch_size=BATCH, image_size=IMAGE_SIZE,
                    compile_kwargs=COMPILE_KWARGS, backend="rocket", warm=False)


def test_process_fleet_backend_validates_before_spawning():
    specs = {"lenet_nano": {"input_shape": (BATCH, 3, IMAGE_SIZE, IMAGE_SIZE),
                            "output_shape": (BATCH, 10)}}
    paths = {"lenet_nano": "/nonexistent/lenet.rpa"}
    with pytest.raises(ValueError, match="workers"):
        ProcessFleetBackend(specs, paths, workers=0)
    with pytest.raises(ValueError, match="artifact path"):
        ProcessFleetBackend(specs, {}, workers=1)
    backend = ProcessFleetBackend(specs, paths, workers=1)
    with pytest.raises(RuntimeError, match="not running"):
        backend.run(0, "lenet_nano", [np.zeros((1, 3, IMAGE_SIZE, IMAGE_SIZE))])
    backend.close()   # idempotent on a never-started backend


# ---------------------------------------------------------------------- #
# Open-loop vs closed-loop pacing
# ---------------------------------------------------------------------- #
def test_open_loop_pacer_releases_on_the_scenario_clock():
    clock = {"t": 0.0}
    sleeps: list[float] = []

    def fake_clock() -> float:
        return clock["t"]

    def fake_sleep(delta: float) -> None:
        sleeps.append(delta)
        clock["t"] += delta

    requests = [_request(i, arrival) for i, arrival in
                enumerate([0.0, 0.1, 0.3])]
    pacer = OpenLoopPacer(requests, time_scale=2.0, clock=fake_clock,
                          sleep_fn=fake_sleep)
    released = [(req.request_id, now) for req, now in pacer]
    # Releases land exactly at arrival * time_scale — completions never
    # entered the picture (on_completion was never called).
    assert released == [(0, 0.0), (1, 0.2), (2, 0.6)]
    assert sleeps == pytest.approx([0.2, 0.4])
    assert pacer.released == {0: 0.0, 1: 0.2, 2: 0.6}
    pacer.on_completion(0)   # open loop: a documented no-op
    with pytest.raises(ValueError, match="time_scale"):
        OpenLoopPacer(requests, time_scale=0.0)


def test_closed_loop_pacer_gates_releases_on_completions():
    requests = [_request(i, float(i)) for i in range(4)]
    pacer = ClosedLoopPacer(requests, concurrency=2, clock=lambda: 0.0)
    stream = iter(pacer)
    first, _ = next(stream)
    second, _ = next(stream)
    assert pacer.max_outstanding == 2

    # The third release must block until a completion frees a slot.
    released: list[int] = []
    consumer = threading.Thread(
        target=lambda: released.extend(req.request_id for req, _ in stream),
        daemon=True)
    consumer.start()
    consumer.join(timeout=0.2)
    assert consumer.is_alive(), "release 3 must wait for a completion"
    assert released == []
    pacer.on_completion(first.request_id)
    pacer.on_completion(second.request_id)
    consumer.join(timeout=5.0)
    assert not consumer.is_alive()
    assert released == [2, 3]
    assert pacer.max_outstanding == 2
    with pytest.raises(ValueError, match="concurrency"):
        ClosedLoopPacer(requests, concurrency=0)


def test_closed_loop_pacer_abort_unblocks_the_release_loop():
    requests = [_request(i, float(i)) for i in range(3)]
    pacer = ClosedLoopPacer(requests, concurrency=1, clock=lambda: 0.0)
    stream = iter(pacer)
    next(stream)
    released: list[int] = []
    consumer = threading.Thread(
        target=lambda: released.extend(req.request_id for req, _ in stream),
        daemon=True)
    consumer.start()
    pacer.abort()
    consumer.join(timeout=5.0)
    assert not consumer.is_alive()
    assert released == []


def test_real_serving_with_open_and_closed_pacing_matches_virtual_codes():
    requests = _burst_requests(seed=5, rate_rps=80.0, duration_s=0.4)
    virtual = _server("virtual", compute_time_fn=FIXED_COST).serve(requests)
    reference = {o.request_id: o.codes for o in virtual.outcomes}

    open_report = _server("real", workers=2).serve(
        requests, pacing="open", time_scale=0.25)
    assert open_report.pacing == "open"
    assert open_report.backend == "thread"
    assert open_report.completed == len(requests)
    for outcome in open_report.outcomes:
        np.testing.assert_array_equal(outcome.codes,
                                      reference[outcome.request_id])
        # Paced serving stamps the wall-clock release each request saw.
        assert outcome.release_s is not None and outcome.release_s >= 0.0
        assert outcome.latency_s >= 0.0

    pacer = ClosedLoopPacer(requests, concurrency=3)
    closed_report = _server("real", workers=2).serve(requests, pacing=pacer)
    assert closed_report.pacing == "closed"
    assert closed_report.completed == len(requests)
    assert pacer.max_outstanding <= 3
    for outcome in closed_report.outcomes:
        np.testing.assert_array_equal(outcome.codes,
                                      reference[outcome.request_id])


def test_virtual_execution_rejects_non_flood_pacing():
    server = _server("virtual", compute_time_fn=FIXED_COST)
    requests = [_request(0, 0.0)]
    with pytest.raises(ValueError, match="execution='real'"):
        server.serve(requests, pacing="open")
    with pytest.raises(ValueError, match="pacing"):
        _server("real").serve(requests, pacing="nope")
    # Flood is the default and spelled "flood" is accepted everywhere.
    report = server.serve(requests, pacing="flood")
    assert report.completed == 1


# ---------------------------------------------------------------------- #
# Priority classes: lowest tier preempted first under pressure
# ---------------------------------------------------------------------- #
def test_shed_candidate_picks_lowest_tier_youngest_first():
    queue = DynamicBatcher("lenet_nano", BatchingPolicy.full_batch(8))
    low_old = _request(0, 0.0, priority=1)
    low_new = _request(1, 0.5, priority=1)
    mid = _request(2, 0.2, priority=3)
    for req in (low_old, low_new, mid):
        queue.push(req)
    # Lowest tier first; youngest within the tier.
    assert queue.shed_candidate(below_priority=5) is low_new
    assert queue.shed_candidate(below_priority=5, exclude=[low_new]) is low_old
    assert queue.shed_candidate(below_priority=5,
                                exclude=[low_new, low_old]) is mid
    # Equal priority is never preempted.
    assert queue.shed_candidate(below_priority=1) is None
    queue.remove(low_new)
    assert queue.depth == 2
    with pytest.raises(ValueError, match="not queued"):
        queue.remove(low_new)


def test_admission_preempts_lower_priority_on_full_queue():
    policy = AdmissionPolicy(max_queue_depth=2, slo_shed=False)
    controller = AdmissionController(policy, EwmaCostModel())
    queues = {"lenet_nano": DynamicBatcher("lenet_nano",
                                           BatchingPolicy.full_batch(8))}
    batching = BatchingPolicy.full_batch(8)
    filler = [_request(0, 0.0, priority=0), _request(1, 0.001, priority=0)]
    for req in filler:
        queues["lenet_nano"].push(req)

    # Equal priority: FIFO admission degrades to a plain reject.
    same = controller.consider(_request(2, 0.002, priority=0), 0.002, 0.0,
                               queues, batching)
    assert not same.admitted and same.reason == "queue_full"
    assert not same.evicted and queues["lenet_nano"].depth == 2

    # Higher priority: the youngest lowest-tier request is evicted.
    vip = controller.consider(_request(3, 0.003, priority=5), 0.003, 0.0,
                              queues, batching)
    assert vip.admitted
    assert [victim.request_id for victim in vip.evicted] == [1]


def test_admission_preempts_in_tier_order_under_slo_pressure():
    policy = AdmissionPolicy(max_queue_depth=None, slo_shed=True)
    cost = EwmaCostModel()
    cost.prime("lenet_nano", 0.01)               # 10ms per batch
    controller = AdmissionController(policy, cost)
    batching = BatchingPolicy.full_batch(1)      # one request = one batch
    queues = {"lenet_nano": DynamicBatcher("lenet_nano", batching)}
    tier1 = _request(0, 0.0, priority=1)
    tier2 = _request(1, 0.001, priority=2)
    for req in (tier1, tier2):
        queues["lenet_nano"].push(req)

    # Backlog prices 2 batches + own batch = 30ms > 25ms deadline; evicting
    # the lowest tier (then the next) brings it under.
    vip = controller.consider(_request(2, 0.002, priority=9, deadline_s=0.025),
                              0.002, 0.0, queues, batching)
    assert vip.admitted
    assert [victim.priority for victim in vip.evicted] == [1]
    assert vip.predicted_latency_s <= 0.025

    # A rejection must leave the queue untouched (no half-applied evictions).
    hopeless = controller.consider(
        _request(3, 0.003, priority=9, deadline_s=0.001), 0.003, 0.0,
        queues, batching)
    assert not hopeless.admitted and hopeless.reason == "slo"
    assert not hopeless.evicted
    assert queues["lenet_nano"].depth == 2


def test_priority_shedding_end_to_end_on_the_virtual_clock():
    # Capacity ~ one 20ms batch of 1 at a time; flood 30 requests in 30ms.
    # Low-priority requests must be the ones preempted.
    rng = np.random.default_rng(0)
    requests = [
        Request(i, "lenet_nano", arrival_s=i * 1e-3,
                image=rng.standard_normal((3, IMAGE_SIZE, IMAGE_SIZE)),
                deadline_s=0.1, priority=(1 if i % 3 == 0 else 0))
        for i in range(30)
    ]
    server = FleetServer(["lenet_nano"], batch_size=BATCH, image_size=IMAGE_SIZE,
                         compile_kwargs=COMPILE_KWARGS,
                         policy=BatchingPolicy.dynamic(1, 1e-3),
                         admission=AdmissionPolicy(max_queue_depth=4),
                         compute_time_fn=lambda model, fill: 0.02)
    report = server.serve(requests)
    shed = [o for o in report.outcomes if not o.completed]
    assert shed, "overload must shed"
    preempted = [o for o in shed if o.shed_reason == "preempted"]
    assert preempted, "priority pressure must preempt queued low-tier requests"
    assert all(o.priority == 0 for o in preempted)
    # Priority-1 completions beat priority-0 completion rate.
    by_tier = {tier: [o for o in report.outcomes if o.priority == tier]
               for tier in (0, 1)}
    rate = {tier: sum(o.completed for o in outs) / len(outs)
            for tier, outs in by_tier.items()}
    assert rate[1] > rate[0]
    # Disabling priority_shed removes preemptions entirely.
    flat = FleetServer(["lenet_nano"], batch_size=BATCH, image_size=IMAGE_SIZE,
                       compile_kwargs=COMPILE_KWARGS,
                       policy=BatchingPolicy.dynamic(1, 1e-3),
                       admission=AdmissionPolicy(max_queue_depth=4,
                                                 priority_shed=False),
                       compute_time_fn=lambda model, fill: 0.02)
    flat_report = flat.serve(requests)
    assert all(o.shed_reason != "preempted" for o in flat_report.outcomes
               if not o.completed)


def test_scenario_priority_mix_draws_classes():
    scenario = Scenario("mixed", "poisson", duration_s=1.0,
                        model_mix=(("lenet_nano", 1.0),),
                        params=dict(rate_rps=100.0),
                        priority_mix=((0, 0.5), (2, 0.5)))
    requests = generate_requests(scenario,
                                 fleet_input_shapes(["lenet_nano"], IMAGE_SIZE),
                                 seed=0)
    tiers = {req.priority for req in requests}
    assert tiers == {0, 2}
    # Same seed reproduces the same class assignment.
    again = generate_requests(scenario,
                              fleet_input_shapes(["lenet_nano"], IMAGE_SIZE),
                              seed=0)
    assert [r.priority for r in requests] == [r.priority for r in again]


# ---------------------------------------------------------------------- #
# Deployment-level carry-overs: tape profiling, multi-deployment preload
# ---------------------------------------------------------------------- #
def _deploy(name: str, batch_size: int = 2):
    return deploy_compile(name, CompileConfig.create(
        image_size=IMAGE_SIZE, batch_size=batch_size, **COMPILE_KWARGS))


def test_deployment_profile_surfaces_tape_level_timings():
    deployment = _deploy("lenet_nano")
    steps = deployment.profile(repeats=2)
    tape = deployment.profile(repeats=2, level="tape")
    assert tape.total_ms > 0
    assert tape.steps and all(t.mean_ms >= 0 for t in tape.steps)
    assert abs(sum(t.share for t in tape.steps) - 1.0) < 1e-9
    # The tape rows are instructions, not plan steps: they carry instruction
    # kinds (stack_fill / chain / kernel calls) instead of plan ops, and
    # fused elementwise chains show up as single "chain" rows.
    tape_kinds = {t.op for t in tape.steps}
    assert tape_kinds != {t.op for t in steps.steps}
    assert "chain" in tape_kinds
    with pytest.raises(ValueError, match="level"):
        deployment.profile(level="flamegraph")


def test_deployment_profile_tape_requires_tape_mode():
    deployment = deploy_compile("lenet_nano", CompileConfig.create(
        image_size=IMAGE_SIZE, batch_size=2, mode="steps", **COMPILE_KWARGS))
    with pytest.raises(ValueError, match="tape-mode"):
        deployment.profile(level="tape")


def test_deployment_serve_preloads_multiple_deployments():
    first = _deploy("lenet_nano", batch_size=4)
    second = _deploy("mobilenet_v1_nano", batch_size=4)
    server = first.serve(ServeConfig(max_queue_depth=None, slo_shed=False),
                         compute_time_fn=FIXED_COST, preload=[second])
    assert server.fleet == ["lenet_nano", "mobilenet_v1_nano"]

    scenario = Scenario("mix", "poisson", duration_s=0.4,
                        model_mix=(("lenet_nano", 0.5), ("mobilenet_v1_nano", 0.5)),
                        slo_ms=None, params=dict(rate_rps=100.0))
    requests = generate_requests(scenario, fleet_input_shapes(FLEET, IMAGE_SIZE),
                                 seed=1)
    report = server.serve(requests)
    assert report.completed == len(requests)
    # Both models were seeded: zero compiles happened inside the server.
    assert report.cache["misses"] == 0
    assert report.cache["total_compile_s"] == 0.0

    with pytest.raises(ValueError, match="duplicate"):
        first.serve(preload=[first])
