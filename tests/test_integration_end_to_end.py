"""Integration tests: the full TQT flow on a tiny network and dataset.

These tests exercise the complete pipeline the paper describes — pre-train in
floating point, optimize the graph, calibrate, quantize statically, retrain
with TQT — and check the paper's qualitative claims at miniature scale.
"""

import pytest

from repro.data import DataLoader, Preprocessor, SyntheticImageNet, sample_calibration_batches
from repro.graph import (
    check_conv_bit_accuracy,
    prepare_retrain,
    quantize_static,
)
from repro.graph.ir import OpKind
from repro.graph.transforms import run_default_optimizations
from repro.models import build_model
from repro.quant import QuantizedConv2d
from repro.training import Evaluator, ExperimentConfig, ExperimentRunner, PaperHyperparameters, Trainer


@pytest.fixture(scope="module")
def pipeline():
    """Pre-trained FP32 lenet on a small synthetic task, shared by the tests."""
    dataset = SyntheticImageNet(num_classes=4, image_size=10, train_size=96, val_size=48,
                                noise_level=0.25, seed=21)
    pre = Preprocessor()
    train_loader = DataLoader(dataset, dataset.train, batch_size=16, preprocessor=pre, seed=1)
    val_loader = DataLoader(dataset, dataset.val, batch_size=16, shuffle=False,
                            preprocessor=pre, seed=1)
    calibration = sample_calibration_batches(dataset, num_samples=24, batch_size=8, seed=2)
    graph = build_model("lenet_nano", num_classes=4, seed=13)
    hp = PaperHyperparameters(batch_size=16, weight_lr=5e-3, max_epochs=4,
                              bn_freeze_epochs=3, freeze_thresholds=False)
    trainer = Trainer(graph, train_loader, val_loader, hparams=hp)
    fp32_result = trainer.train(4)
    graph.eval()
    run_default_optimizations(graph)
    return {
        "graph": graph,
        "fp32_top1": fp32_result.best_top1,
        "train_loader": train_loader,
        "val_loader": val_loader,
        "calibration": calibration,
        "evaluator": Evaluator(val_loader),
    }


class TestEndToEndPipeline:
    def test_fp32_pretraining_learned_something(self, pipeline):
        assert pipeline["fp32_top1"] > 0.4   # 4 classes, chance = 0.25

    def test_static_int8_close_to_fp32_on_easy_network(self, pipeline):
        model = quantize_static(pipeline["graph"], pipeline["calibration"])
        static_top1 = pipeline["evaluator"].evaluate(model.graph).top1
        assert static_top1 > pipeline["fp32_top1"] - 0.25

    def test_tqt_retraining_recovers_accuracy(self, pipeline):
        model = prepare_retrain(pipeline["graph"], pipeline["calibration"], mode="wt,th")
        static_top1 = pipeline["evaluator"].evaluate(model.graph).top1
        hp = PaperHyperparameters(batch_size=16, weight_lr=1e-3, threshold_lr=1e-2,
                                  max_epochs=2, freeze_thresholds=False)
        trainer = Trainer(model.graph, pipeline["train_loader"], pipeline["val_loader"],
                          hparams=hp)
        result = trainer.train(2)
        assert result.best_top1 >= static_top1 - 0.05
        assert result.best_top1 > pipeline["fp32_top1"] - 0.2

    def test_thresholds_move_during_tqt_retraining(self, pipeline):
        model = prepare_retrain(pipeline["graph"], pipeline["calibration"], mode="wt,th")
        hp = PaperHyperparameters(batch_size=16, threshold_lr=5e-2, max_epochs=1,
                                  freeze_thresholds=False)
        trainer = Trainer(model.graph, pipeline["train_loader"], pipeline["val_loader"],
                          hparams=hp)
        result = trainer.train(1)
        moved = [name for name, initial in result.initial_thresholds.items()
                 if abs(result.final_thresholds[name] - initial) > 1e-6]
        assert moved

    def test_wt_only_mode_never_updates_thresholds(self, pipeline):
        model = prepare_retrain(pipeline["graph"], pipeline["calibration"], mode="wt")
        hp = PaperHyperparameters(batch_size=16, weight_lr=1e-3, max_epochs=1,
                                  freeze_thresholds=False)
        trainer = Trainer(model.graph, pipeline["train_loader"], pipeline["val_loader"],
                          hparams=hp)
        result = trainer.train(1)
        for name, initial in result.initial_thresholds.items():
            assert result.final_thresholds[name] == pytest.approx(initial)

    def test_quantized_conv_layers_are_bit_accurate_to_integer_execution(self, pipeline, rng):
        """Section 4.2: the inference graph is bit-accurate to the fixed-point
        implementation.  Checked on the first quantized conv layer (no bias
        re-quantization involved after BN-fold-free stem)."""
        model = quantize_static(pipeline["graph"], pipeline["calibration"])
        graph = model.graph
        # find the primary-input quantizer and the first quantized conv
        input_node = graph.nodes["input__quant"]
        first_conv = next(node for node in graph.topological_order()
                          if node.op == OpKind.QUANT_CONV)
        layer: QuantizedConv2d = first_conv.module
        # rebuild an equivalent bias-free layer for the arithmetic check
        layer.conv.bias = None
        layer.bias_quantizer = None
        layer.internal_quantizer = None
        x = rng.standard_normal((2, 3, 10, 10))
        report = check_conv_bit_accuracy(layer, x, input_node.module.quantizer.impl)
        assert report["mismatches"] == 0


class TestExperimentRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        config = ExperimentConfig(model="lenet_nano", num_classes=4, image_size=10,
                                  train_size=64, val_size=32, batch_size=16,
                                  pretrain_epochs=3, retrain_epochs=1,
                                  calibration_samples=16, seed=5)
        return ExperimentRunner(config)

    def test_fp32_and_static_trials(self, runner):
        fp32 = runner.evaluate_fp32()
        static = runner.run_static()
        assert fp32.precision == "FP32" and static.precision == "INT8"
        assert 0.0 <= static.top1 <= 1.0
        assert fp32.top1 > 0.3

    def test_retrain_trial_rows(self, runner):
        trial, result = runner.run_retrain("wt,th")
        assert trial.mode == "retrain wt,th"
        assert trial.bit_width == "8/8"
        assert result.steps > 0
        row = trial.as_row()
        assert len(row) == 6

    def test_paper_name(self, runner):
        assert "LeNet" in runner.paper_name
