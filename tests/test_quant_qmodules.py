"""Unit tests for the quantized layer wrappers (Section 4.3 topologies)."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.quant import (
    INT4_PRECISION,
    ActivationQuantizer,
    FakeQuantizer,
    LSQQuantizer,
    QuantScheme,
    QuantizedAdd,
    QuantizedConcat,
    QuantizedConv2d,
    QuantizedInput,
    QuantizedLeakyReLU,
    QuantizedLinear,
    TQTQuantizer,
)


class TestQuantScheme:
    def test_tqt_scheme_produces_tqt_quantizers(self):
        scheme = QuantScheme(method="tqt")
        assert isinstance(scheme.make_quantizer(8, signed=True), TQTQuantizer)

    def test_fake_quant_scheme(self):
        scheme = QuantScheme(method="fake_quant", power_of_2=False)
        assert isinstance(scheme.make_quantizer(8, signed=True), FakeQuantizer)

    def test_lsq_scheme(self):
        scheme = QuantScheme(method="lsq", power_of_2=False)
        assert isinstance(scheme.make_quantizer(8, signed=True), LSQQuantizer)

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            QuantScheme(method="nope").make_quantizer(8, signed=True)

    def test_weight_quantizer_bits_follow_precision(self):
        scheme = QuantScheme(precision=INT4_PRECISION)
        q = scheme.make_weight_quantizer(out_channels=8)
        assert q.config.bits == 4

    def test_bias_quantizer_is_16bit_and_frozen(self):
        scheme = QuantScheme()
        q = scheme.make_bias_quantizer()
        assert q.config.bits == 16 and not q.trainable

    def test_per_channel_weights_option(self):
        scheme = QuantScheme(per_channel_weights=True)
        q = scheme.make_weight_quantizer(out_channels=8)
        assert q.log2_t.data.shape == (8,)

    def test_train_thresholds_flag_propagates(self):
        scheme = QuantScheme(train_thresholds=False)
        q = scheme.make_weight_quantizer(out_channels=4)
        assert not q.trainable


class TestActivationQuantizer:
    def test_collect_mode_passes_through_and_accumulates(self, rng):
        scheme = QuantScheme()
        act = scheme.make_activation_quantizer(signed=True)
        act.start_calibration()
        x = Tensor(rng.standard_normal(100))
        out = act(x)
        np.testing.assert_allclose(out.data, x.data)
        assert act.histogram.total == 100

    def test_finalize_switches_to_quantize_mode(self, rng):
        scheme = QuantScheme()
        act = scheme.make_activation_quantizer(signed=True)
        act.start_calibration()
        act(Tensor(rng.standard_normal(500)))
        threshold = act.finalize_calibration()
        assert act.mode == "quantize"
        assert threshold > 0
        assert act.impl.calibrated

    def test_bypass_mode(self, rng):
        scheme = QuantScheme()
        act = scheme.make_activation_quantizer(signed=True)
        act.set_mode("bypass")
        x = Tensor(rng.standard_normal(10))
        assert act(x) is x

    def test_quantize_mode_quantizes(self, rng):
        scheme = QuantScheme()
        act = scheme.make_activation_quantizer(signed=True)
        act.start_calibration()
        act(Tensor(rng.standard_normal(500)))
        act.finalize_calibration()
        out = act(Tensor(rng.standard_normal(100)))
        codes = out.data / act.impl.scale
        np.testing.assert_allclose(codes, np.round(codes), atol=1e-8)

    def test_max_init_method_uses_kept_samples(self, rng):
        act = ActivationQuantizer(TQTQuantizer(__import__("repro").quant.QuantConfig(bits=8)),
                                  init_method="max")
        act.start_calibration(keep_samples=True)
        act(Tensor(np.array([0.5, -2.5, 1.0])))
        threshold = act.finalize_calibration()
        assert threshold == pytest.approx(2.5)


class TestQuantizedConv2d:
    def test_forward_shape_and_quantized_output(self, rng):
        conv = nn.Conv2d(3, 8, 3, padding=1, rng=rng)
        layer = QuantizedConv2d(conv, QuantScheme(), activation="relu", name="conv1")
        layer.output_quantizer.start_calibration()
        layer(Tensor(rng.standard_normal((2, 3, 6, 6))))
        layer.output_quantizer.finalize_calibration()
        out = layer(Tensor(rng.standard_normal((2, 3, 6, 6))))
        assert out.shape == (2, 8, 6, 6)
        assert np.all(out.data >= 0)  # relu fused before the unsigned output stage

    def test_weight_quantizer_calibrated_at_construction(self, rng):
        conv = nn.Conv2d(3, 4, 3, rng=rng)
        layer = QuantizedConv2d(conv, QuantScheme(weight_init="3sd"))
        assert layer.weight_quantizer.calibrated

    def test_unsigned_output_only_with_activation(self, rng):
        conv = nn.Conv2d(3, 4, 3, rng=rng)
        with_act = QuantizedConv2d(conv, QuantScheme(), activation="relu")
        without_act = QuantizedConv2d(nn.Conv2d(3, 4, 3, rng=rng), QuantScheme())
        assert not with_act.output_quantizer.impl.config.signed
        assert without_act.output_quantizer.impl.config.signed

    def test_weight_bits_override(self, rng):
        conv = nn.Conv2d(3, 4, 3, rng=rng)
        layer = QuantizedConv2d(conv, QuantScheme(precision=INT4_PRECISION), weight_bits=8)
        assert layer.weight_quantizer.config.bits == 8

    def test_quantized_weight_is_on_grid(self, rng):
        conv = nn.Conv2d(3, 4, 3, rng=rng)
        layer = QuantizedConv2d(conv, QuantScheme())
        wq = layer.quantized_weight().data
        scale = layer.weight_quantizer.scale
        codes = wq / scale
        np.testing.assert_allclose(codes, np.round(codes), atol=1e-8)

    def test_training_updates_weight_threshold(self, rng):
        conv = nn.Conv2d(2, 2, 3, rng=rng)
        layer = QuantizedConv2d(conv, QuantScheme(), quantize_internal=False)
        layer.output_quantizer.set_mode("bypass")
        x = Tensor(rng.standard_normal((2, 2, 5, 5)))
        out = layer(x)
        out.sum().backward()
        assert layer.weight_quantizer.log2_t.grad is not None

    def test_fake_quant_scheme_per_channel_weights(self, rng):
        conv = nn.Conv2d(3, 6, 3, rng=rng)
        scheme = QuantScheme(method="fake_quant", power_of_2=False, per_channel_weights=True)
        layer = QuantizedConv2d(conv, scheme)
        assert isinstance(layer.weight_quantizer, FakeQuantizer)
        assert layer.weight_quantizer.min_val.data.shape == (6,)


class TestQuantizedLinear:
    def test_forward_and_activation(self, rng):
        linear = nn.Linear(8, 4, rng=rng)
        layer = QuantizedLinear(linear, QuantScheme(), activation="none")
        layer.output_quantizer.start_calibration()
        layer(Tensor(rng.standard_normal((3, 8))))
        layer.output_quantizer.finalize_calibration()
        out = layer(Tensor(rng.standard_normal((3, 8))))
        assert out.shape == (3, 4)

    def test_lsq_weight_quantizer_initialized(self, rng):
        linear = nn.Linear(8, 4, rng=rng)
        layer = QuantizedLinear(linear, QuantScheme(method="lsq", power_of_2=False))
        assert float(layer.weight_quantizer.step_size.data) > 0


class TestStructuralQuantizedOps:
    def test_quantized_add_shares_input_scale(self, rng):
        add = QuantizedAdd(QuantScheme(), name="add")
        # the same ActivationQuantizer instance quantizes both inputs
        assert add.input_quantizer is add.input_quantizer
        add.input_quantizer.start_calibration()
        add.output_quantizer.start_calibration()
        a = Tensor(rng.standard_normal((2, 4, 3, 3)))
        b = Tensor(rng.standard_normal((2, 4, 3, 3)))
        add(a, b)
        add.input_quantizer.finalize_calibration()
        add.output_quantizer.finalize_calibration()
        out = add(a, b)
        assert out.shape == (2, 4, 3, 3)

    def test_quantized_concat_is_lossless_on_quantized_inputs(self, rng):
        concat = QuantizedConcat(QuantScheme(), axis=1, name="concat")
        concat.input_quantizer.start_calibration()
        a = Tensor(rng.standard_normal((2, 3, 4, 4)))
        b = Tensor(rng.standard_normal((2, 5, 4, 4)))
        concat([a, b])
        concat.input_quantizer.finalize_calibration()
        out = concat([a, b])
        assert out.shape == (2, 8, 4, 4)
        # feeding the quantizer's own output back through changes nothing
        again = concat([Tensor(out.data[:, :3]), Tensor(out.data[:, 3:])])
        np.testing.assert_allclose(again.data, out.data, atol=1e-12)

    def test_quantized_leaky_relu(self, rng):
        layer = QuantizedLeakyReLU(QuantScheme(), negative_slope=0.1, name="leaky")
        layer.internal_quantizer.start_calibration()
        layer.output_quantizer.start_calibration()
        x = Tensor(rng.standard_normal((2, 4, 3, 3)) * 2)
        layer(x)
        layer.internal_quantizer.finalize_calibration()
        layer.output_quantizer.finalize_calibration()
        out = layer(x)
        # negative inputs are scaled by ~alpha, positive inputs pass through
        assert out.data.min() > x.data.min() * 0.2
        assert out.data.max() <= x.data.max() + 0.1

    def test_quantized_input(self, rng):
        qin = QuantizedInput(QuantScheme(), name="input")
        qin.quantizer.start_calibration()
        qin(Tensor(rng.standard_normal((2, 3, 4, 4))))
        qin.quantizer.finalize_calibration()
        out = qin(Tensor(rng.standard_normal((2, 3, 4, 4))))
        assert out.shape == (2, 3, 4, 4)
