"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import DataLoader, Preprocessor, SyntheticImageNet, sample_calibration_batches
from repro.models import build_model


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_dataset() -> SyntheticImageNet:
    """A very small synthetic dataset for fast training tests."""
    return SyntheticImageNet(num_classes=4, image_size=8, train_size=48, val_size=24,
                             noise_level=0.2, seed=7)


@pytest.fixture
def tiny_loaders(tiny_dataset):
    preprocessor = Preprocessor()
    train = DataLoader(tiny_dataset, tiny_dataset.train, batch_size=12,
                       preprocessor=preprocessor, seed=3)
    val = DataLoader(tiny_dataset, tiny_dataset.val, batch_size=12, shuffle=False,
                     preprocessor=preprocessor, seed=3)
    return train, val


@pytest.fixture
def calibration_batches(tiny_dataset):
    return sample_calibration_batches(tiny_dataset, num_samples=16, batch_size=8, seed=5)


@pytest.fixture
def lenet_graph():
    return build_model("lenet_nano", num_classes=4, seed=11)
