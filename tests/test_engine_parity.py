"""Integer engine: bit-exactness against the fake-quant simulation, buffer
safety, plan lowering and the batched runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    BatchedRunner,
    PlanError,
    check_engine_parity,
    lower_graph,
)
from repro.models import MODEL_REGISTRY, build_model, compile_registry_model
from repro.quant import QuantConfig, requantize_codes, shift_requantize

IMAGE_SIZE = 8  # keeps every global-average-pool window a power of two
BATCH = 4


def _compile(name: str, **kwargs):
    return compile_registry_model(name, image_size=IMAGE_SIZE, batch_size=BATCH,
                                  calibration_samples=8, calibration_batch_size=4,
                                  **kwargs)


def _batches(count: int = 2, seed: int = 0) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((BATCH, 3, IMAGE_SIZE, IMAGE_SIZE)) for _ in range(count)]


# ---------------------------------------------------------------------- #
# Parity: every registry model, bit-exact
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("model_name", sorted(MODEL_REGISTRY))
def test_engine_bit_exact_on_registry_model(model_name):
    compiled = _compile(model_name)
    report = check_engine_parity(compiled.graph, compiled.engine, _batches(2))
    assert report.bit_exact, f"{model_name}: {report}"
    assert report.total_codes > 0


@pytest.mark.parametrize("model_name", ["lenet_nano", "mobilenet_v1_nano", "darknet_nano"])
def test_pure_int64_backend_matches(model_name):
    """The int64 einsum reference produces the same codes as the BLAS lanes."""
    compiled = _compile(model_name)
    engine_int = compiled.plan.bind((BATCH, 3, IMAGE_SIZE, IMAGE_SIZE), accumulate="int")
    (batch,) = _batches(1)
    blas = compiled.engine.run(batch)
    pure = engine_int.run(batch)
    np.testing.assert_array_equal(blas.codes, pure.codes)
    report = check_engine_parity(compiled.graph, engine_int, [batch])
    assert report.bit_exact


# ---------------------------------------------------------------------- #
# Buffer reuse safety
# ---------------------------------------------------------------------- #
def test_buffer_reuse_does_not_alias_across_batches():
    # optimize=False: the optimizer's scratch buffers (counted by the same
    # pool) would mask the linear-scan output-buffer reuse asserted here.
    compiled = _compile("lenet_nano", optimize=False)
    engine = compiled.engine
    assert engine.buffers_created < len(engine.steps) + 1, \
        "the linear-scan allocator should reuse at least one buffer"
    a, b = _batches(2, seed=7)
    out_a = engine.run(a)
    snapshot = out_a.codes.copy()
    out_b = engine.run(b)
    # The first result must be a private copy, untouched by the second run.
    np.testing.assert_array_equal(out_a.codes, snapshot)
    assert out_a.codes is not out_b.codes
    assert not np.shares_memory(out_a.codes, out_b.codes)
    assert not np.array_equal(out_a.codes, out_b.codes), \
        "different inputs should produce different logits"
    # Re-running the first batch reproduces the first result exactly.
    np.testing.assert_array_equal(engine.run(a).codes, snapshot)


def test_engine_rejects_wrong_input_shape():
    compiled = _compile("lenet_nano")
    with pytest.raises(ValueError, match="bound to input shape"):
        compiled.engine.run(np.zeros((BATCH, 3, IMAGE_SIZE + 1, IMAGE_SIZE)))


# ---------------------------------------------------------------------- #
# Lowering
# ---------------------------------------------------------------------- #
def test_lowering_requires_quantized_graph():
    graph = build_model("lenet_nano", num_classes=4, seed=0)
    with pytest.raises(PlanError):
        lower_graph(graph)


def test_non_power_of_two_avgpool_divisor_is_rejected():
    # image_size=12 pools down to a 3x3 global-average window (divisor 9);
    # the engine cannot guarantee bit-exactness there and must refuse.
    with pytest.raises(PlanError, match="not a power of two"):
        compile_registry_model("resnet_nano", image_size=12, batch_size=2,
                               calibration_samples=4, calibration_batch_size=2)


def test_graph_lower_plan_hook_and_manifest():
    compiled = _compile("vgg_nano")
    plan = compiled.graph.lower_plan()
    assert plan.graph_name == "vgg_nano"
    manifest = plan.manifest()
    compute = [s for s in manifest["steps"] if "weight_dtype" in s]
    assert compute and all(s["weight_dtype"] == "int8" for s in compute)
    assert manifest["int32_mac_compatible"]
    assert manifest["weight_bytes"] > 0
    assert "quant_conv" in plan.summary()


def test_output_scale_dequantizes_to_simulation_values():
    compiled = _compile("lenet_nano")
    (batch,) = _batches(1)
    from repro.engine import simulate_reference

    reference = simulate_reference(compiled.graph, batch)
    np.testing.assert_array_equal(compiled.engine.run(batch).dequantize(), reference)


# ---------------------------------------------------------------------- #
# Batched runner
# ---------------------------------------------------------------------- #
def test_batched_runner_pads_and_matches_engine():
    compiled = _compile("lenet_nano")
    runner = BatchedRunner(compiled.engine)
    rng = np.random.default_rng(3)
    requests = rng.standard_normal((BATCH * 2 + 1, 3, IMAGE_SIZE, IMAGE_SIZE))
    results, stats = runner.run(requests)
    assert stats.requests == len(requests)
    assert stats.batches == 3
    assert stats.padded_requests == BATCH - 1
    assert stats.throughput_rps > 0
    assert stats.latency_p99_ms >= stats.latency_p50_ms >= 0
    assert [r.request_id for r in results] == list(range(len(requests)))
    # Per-request codes must equal a direct engine run over the same rows.
    direct = compiled.engine.run(requests[:BATCH]).codes
    for i in range(BATCH):
        np.testing.assert_array_equal(results[i].codes, direct[i])
    # Padding must not contaminate real requests in the final partial batch.
    padded = np.zeros((BATCH, 3, IMAGE_SIZE, IMAGE_SIZE))
    padded[0] = requests[-1]
    np.testing.assert_array_equal(results[-1].codes, compiled.engine.run(padded).codes[0])


# ---------------------------------------------------------------------- #
# Shared requantization helper
# ---------------------------------------------------------------------- #
def test_requantize_codes_matches_shift_requantize():
    rng = np.random.default_rng(11)
    acc = rng.integers(-(2 ** 20), 2 ** 20, size=(64,))
    config = QuantConfig(bits=8, signed=True)
    for shift in (-2, 0, 3, 9):
        expected = shift_requantize(acc, shift, config)
        got = requantize_codes(acc.astype(np.float64), shift, config.qmin, config.qmax)
        np.testing.assert_array_equal(got, expected.astype(np.float64))


def test_requantize_codes_power_of_two_divisor_is_exact():
    acc = np.array([31.0, 32.0, 33.0, -31.0, -33.0, 48.0])
    # value = acc / 64 with round-half-to-even: 32/64 = 0.5 -> 0, 48/64 = 0.75 -> 1
    got = requantize_codes(acc, 0, -128, 127, divisor=64)
    np.testing.assert_array_equal(got, [0.0, 0.0, 1.0, 0.0, -1.0, 1.0])


# ---------------------------------------------------------------------- #
# Max-pool kernel: offset-shift rewrite vs the window-view reference
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("shape,kernel,stride,padding", [
    ((2, 4, 8, 8), (2, 2), (2, 2), (0, 0)),      # the VGG non-overlap pool
    ((2, 3, 9, 9), (3, 3), (2, 2), (1, 1)),      # overlapping, padded
    ((1, 2, 7, 5), (3, 2), (2, 3), (1, 0)),      # asymmetric everything
    ((2, 2, 6, 6), (3, 3), (1, 1), (1, 1)),      # dense stride-1
])
def test_max_pool_codes_matches_reference(shape, kernel, stride, padding):
    from repro.autograd.conv import conv_output_size
    from repro.engine.kernels import max_pool_codes, max_pool_codes_reference

    rng = np.random.default_rng(13)
    x = np.rint(rng.standard_normal(shape) * 40.0)
    n, c, h, w = shape
    oh = conv_output_size(h, kernel[0], stride[0], padding[0])
    ow = conv_output_size(w, kernel[1], stride[1], padding[1])
    out = np.empty((n, c, oh, ow))
    ref = np.empty((n, c, oh, ow))
    pad_shape = (n, c, h + 2 * padding[0], w + 2 * padding[1])
    padded = np.zeros(pad_shape) if any(padding) else None
    padded_ref = np.zeros(pad_shape) if any(padding) else None
    # Two passes: the second reuses the padded buffer, whose border zeros
    # must survive the first call (the kernel never rewrites the border).
    for _ in range(2):
        max_pool_codes(x, kernel, stride, padding, padded, out)
        max_pool_codes_reference(x, kernel, stride, padding, padded_ref, ref)
        np.testing.assert_array_equal(out, ref)
