"""Unit tests for the baseline quantizers: FakeQuant (clipped-grad), PACT, LSQ."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.quant import (
    FakeQuantizer,
    LSQQuantizer,
    PACTQuantizer,
    QuantConfig,
    compute_scale,
    fake_quantize,
    lsq_quantize,
    nudge_zero_point,
    pact_quantize,
    tqt_quantize,
)


class TestNudgeZeroPoint:
    def test_zero_exactly_representable(self):
        scale, zero_point, nudged_min = nudge_zero_point(-1.7, 2.3, -128, 127)
        # Real zero maps to the integer zero_point exactly.
        assert float(nudged_min + (zero_point - (-128)) * scale) == pytest.approx(0.0, abs=1e-9)

    def test_symmetric_range_gives_midpoint_zero(self):
        scale, zero_point, _ = nudge_zero_point(-1.0, 1.0, -128, 127)
        assert zero_point == pytest.approx(0.0, abs=1.0)

    def test_degenerate_range(self):
        scale, _, _ = nudge_zero_point(0.0, 0.0, -128, 127)
        assert scale > 0


class TestFakeQuantForward:
    def test_forward_matches_tqt_for_matching_thresholds(self, rng):
        """Section 3.5: the FakeQuant forward pass is mathematically equivalent
        to the TQT forward pass when the clipping range matches."""
        bits = 8
        tqt_config = QuantConfig(bits=bits, signed=True)
        fq_config = QuantConfig(bits=bits, signed=True, symmetric=False, power_of_2=False)
        threshold = 1.0  # power of two, so both quantizers share the grid
        s = compute_scale(np.log2(threshold), tqt_config)
        x = rng.uniform(-0.9, 0.9, 500)
        tqt_out = tqt_quantize(Tensor(x), Tensor(np.asarray(np.log2(threshold))), tqt_config)
        fq_out = fake_quantize(Tensor(x), Tensor(np.asarray(s * -128)),
                               Tensor(np.asarray(s * 127)), fq_config)
        np.testing.assert_allclose(tqt_out.data, fq_out.data, atol=1e-9)

    def test_values_clipped_to_range(self, rng):
        config = QuantConfig(bits=8, symmetric=False, power_of_2=False)
        out = fake_quantize(Tensor(np.array([-10.0, 10.0])), Tensor(np.asarray(-1.0)),
                            Tensor(np.asarray(1.0)), config)
        # clipping respects the (zero-point-nudged) range, which may extend the
        # requested limits by at most one quantization step
        scale = 2.0 / 255
        assert out.data.min() >= -1.0 - scale
        assert out.data.max() <= 1.0 + scale


class TestFakeQuantGradients:
    def test_threshold_gradient_zero_inside_range(self, rng):
        """The clipped-gradient pathology (Section 3.5): values inside the
        clipping range contribute nothing to the threshold gradients."""
        config = QuantConfig(bits=8, symmetric=False, power_of_2=False)
        x = Tensor(rng.uniform(-0.5, 0.5, 200))
        mn = Tensor(np.asarray(-1.0), requires_grad=True)
        mx = Tensor(np.asarray(1.0), requires_grad=True)
        fake_quantize(x, mn, mx, config).sum().backward()
        assert float(mn.grad) == 0.0
        assert float(mx.grad) == 0.0

    def test_threshold_gradients_only_push_outward_on_l2_loss(self, rng):
        """With the L2 loss, FakeQuant max-threshold gradients from outliers are
        negative (threshold grows), and there is no inward force — the
        contrast with TQT's Figure 2 behaviour."""
        config = QuantConfig(bits=8, symmetric=False, power_of_2=False)
        x_values = np.concatenate([rng.uniform(-0.5, 0.5, 100), np.array([5.0, 7.0])])
        x = Tensor(x_values)
        mn = Tensor(np.asarray(-1.0), requires_grad=True)
        mx = Tensor(np.asarray(1.0), requires_grad=True)
        out = fake_quantize(x, mn, mx, config)
        diff = out - Tensor(x_values)
        ((diff * diff) * 0.5).sum().backward()
        assert float(mx.grad) < 0.0    # gradient descent will increase max
        assert float(mn.grad) == 0.0   # nothing below min

    def test_input_gradient_masked_outside(self, rng):
        config = QuantConfig(bits=8, symmetric=False, power_of_2=False)
        x = Tensor(np.array([0.0, 3.0, -3.0]), requires_grad=True)
        fake_quantize(x, Tensor(np.asarray(-1.0)), Tensor(np.asarray(1.0)), config).sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 0.0, 0.0])


class TestFakeQuantizerModule:
    def test_symmetric_module_ties_min_to_max(self, rng):
        config = QuantConfig(bits=8, symmetric=True, power_of_2=False)
        q = FakeQuantizer(config, init_min=-2.0, init_max=2.0)
        x = Tensor(rng.standard_normal(50))
        out = q(x)
        step = 4.0 / 255
        assert out.data.max() <= 2.0 + step and out.data.min() >= -2.0 - step

    def test_per_channel_module(self, rng):
        config = QuantConfig(bits=8, symmetric=True, power_of_2=False, per_channel=True)
        q = FakeQuantizer(config, channel_count=4, channel_axis=0)
        q.initialize_min_max(-np.arange(1.0, 5.0), np.arange(1.0, 5.0))
        x = Tensor(rng.standard_normal((4, 3, 3, 3)) * 5)
        out = q(x)
        # each channel saturates at its own threshold
        for c in range(4):
            assert out.data[c].max() <= (c + 1) + 1e-6

    def test_rejects_power_of_two_config(self):
        with pytest.raises(ValueError):
            FakeQuantizer(QuantConfig(bits=8, power_of_2=True))

    def test_trainable_flag(self):
        q = FakeQuantizer(QuantConfig(bits=8, symmetric=False, power_of_2=False))
        q.set_trainable(False)
        assert not q.min_val.requires_grad and not q.max_val.requires_grad


class TestPACT:
    def test_forward_clips_to_alpha(self, rng):
        config = QuantConfig(bits=8, signed=False, power_of_2=False)
        out = pact_quantize(Tensor(np.array([-1.0, 2.0, 10.0])), Tensor(np.asarray(4.0)), config)
        assert out.data[0] == 0.0
        assert out.data[2] == pytest.approx(4.0)

    def test_alpha_gradient_is_indicator(self, rng):
        """Eq. 1 of the paper: d y / d alpha = 1 for x >= alpha, else 0."""
        config = QuantConfig(bits=8, signed=False, power_of_2=False)
        x = Tensor(np.array([1.0, 5.0, 6.0]))
        alpha = Tensor(np.asarray(4.0), requires_grad=True)
        pact_quantize(x, alpha, config).sum().backward()
        assert float(alpha.grad) == pytest.approx(2.0)

    def test_regularization_loss(self):
        q = PACTQuantizer(QuantConfig(bits=8, signed=False, power_of_2=False),
                          init_alpha=3.0, alpha_decay=0.1)
        assert q.regularization_loss().item() == pytest.approx(0.9)

    def test_module_forward(self, rng):
        q = PACTQuantizer(QuantConfig(bits=4, signed=False, power_of_2=False), init_alpha=6.0)
        out = q(Tensor(rng.uniform(0, 10, 100)))
        assert out.data.max() <= 6.0 + 1e-9


class TestLSQ:
    def test_forward_on_grid(self, rng):
        config = QuantConfig(bits=8, power_of_2=False)
        out = lsq_quantize(Tensor(rng.standard_normal(100)), Tensor(np.asarray(0.01)), config)
        codes = out.data / 0.01
        np.testing.assert_allclose(codes, np.round(codes), atol=1e-9)

    def test_scale_gradient_matches_tqt_shape(self, rng):
        """LSQ's step-size gradient equals TQT's Eq. 6 (it is the same forward
        function); only the parameterization differs."""
        config = QuantConfig(bits=8, power_of_2=False)
        x_values = rng.standard_normal(100)
        s = 0.02
        scale = Tensor(np.asarray(s), requires_grad=True)
        lsq_quantize(Tensor(x_values), scale, config, grad_scale=1.0).sum().backward()
        scaled = x_values / s
        rounded = np.rint(scaled)
        inside = (rounded >= config.qmin) & (rounded <= config.qmax)
        expected = np.where(inside, rounded - scaled,
                            np.where(rounded < config.qmin, config.qmin, config.qmax)).sum()
        assert float(scale.grad) == pytest.approx(expected, rel=1e-9)

    def test_module_initialization_heuristic(self, rng):
        q = LSQQuantizer(QuantConfig(bits=8, power_of_2=False))
        values = rng.standard_normal(1000)
        q.initialize_from_tensor(values)
        expected = 2 * np.abs(values).mean() / np.sqrt(127)
        assert float(q.step_size.data) == pytest.approx(expected)

    def test_grad_scale_reduces_gradient(self, rng):
        config = QuantConfig(bits=8, power_of_2=False)
        x = Tensor(rng.standard_normal(100) * 10)
        grads = []
        for grad_scale in (1.0, 0.01):
            scale = Tensor(np.asarray(0.05), requires_grad=True)
            lsq_quantize(x, scale, config, grad_scale=grad_scale).sum().backward()
            grads.append(abs(float(scale.grad)))
        assert grads[1] < grads[0]
