"""Fault injection, worker supervision, and retry/breaker resilience.

The fault plane's acceptance claim mirrors the serving stack's: chaos is an
*execution* detail, never a numerics change.  A seeded
:class:`~repro.faults.FaultPlan` replays the same crash/hang/error schedule
on the virtual clock and on a live multiprocess fleet; every request that
completes — before, between, or after injected failures — carries output
codes bit-identical to a fault-free run, and the supervisor's recovery
actions (respawns, retries, degradation, breaker trips) are all visible in
the report and trace.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import threading
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.faults import (
    BreakerPolicy,
    CircuitBreaker,
    FaultError,
    FaultEvent,
    FaultPlan,
    RetryPolicy,
    WorkerCrashed,
    WorkerTimeout,
)
from repro.serving import (
    AdmissionPolicy,
    BatchingPolicy,
    FleetServer,
    OpenLoopPacer,
    PlanCache,
    Request,
    Scenario,
    fleet_input_shapes,
    generate_requests,
)
from repro.telemetry import TelemetryConfig

FLEET = ["lenet_nano", "mobilenet_v1_nano"]
IMAGE_SIZE = 8
BATCH = 8
COMPILE_KWARGS = dict(calibration_samples=8, calibration_batch_size=4)

#: deterministic per-batch compute cost (seconds) for the virtual clock
FIXED_COST = lambda model, fill: 2e-3

#: fast supervision knobs so chaos tests detect hangs in well under a second
RETRY = RetryPolicy(max_attempts=3, task_timeout_s=0.75,
                    respawn_backoff_s=0.01)


def _requests(seed: int = 3, rate_rps: float = 120.0, duration_s: float = 0.5,
              n: int | None = None):
    scenario = Scenario("chaos", "poisson", duration_s=duration_s,
                        model_mix=(("lenet_nano", 0.5),
                                   ("mobilenet_v1_nano", 0.5)),
                        slo_ms=None, params=dict(rate_rps=rate_rps))
    reqs = generate_requests(scenario, fleet_input_shapes(FLEET, IMAGE_SIZE),
                             seed=seed)
    return reqs if n is None else reqs[:n]


def _server(execution: str = "virtual", **kwargs) -> FleetServer:
    kwargs.setdefault("admission", AdmissionPolicy(max_queue_depth=None,
                                                   slo_shed=False))
    kwargs.setdefault("policy", BatchingPolicy.dynamic(BATCH, 5e-3))
    return FleetServer(FLEET, batch_size=BATCH, image_size=IMAGE_SIZE,
                       compile_kwargs=COMPILE_KWARGS, execution=execution,
                       **kwargs)


def _chaos_plan() -> FaultPlan:
    return FaultPlan(events=(
        FaultEvent("worker_crash", worker=0, task_index=1),
        FaultEvent("task_hang", worker=1, task_index=2, duration_s=5.0),
        FaultEvent("task_error", count=1),
    ), seed=8)


def _assert_codes_match(report, baseline) -> int:
    base = {o.request_id: o for o in baseline.outcomes}
    checked = 0
    for outcome in report.outcomes:
        if outcome.completed and base[outcome.request_id].completed:
            np.testing.assert_array_equal(outcome.codes,
                                          base[outcome.request_id].codes)
            checked += 1
    return checked


# ---------------------------------------------------------------------- #
# FaultPlan / FaultInjector
# ---------------------------------------------------------------------- #
def test_fault_event_validation():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultEvent("meteor_strike")
    with pytest.raises(ValueError):
        FaultEvent("task_hang", duration_s=-1.0)
    with pytest.raises(ValueError):
        FaultEvent("task_error", count=0)
    with pytest.raises(ValueError, match="artifact_corrupt"):
        FaultEvent("artifact_corrupt")   # requires a model


def test_injector_addressed_event_fires_exactly_at_its_coordinates():
    plan = FaultPlan(events=(FaultEvent("task_error", worker=0, task_index=2),))
    injector = plan.injector()
    # worker 1 never sees the event, worker 0 sees it only at ordinal 2
    assert injector.poll(1) is None
    hits = [injector.poll(0) for _ in range(4)]
    assert [e.kind if e else None for e in hits] == \
        [None, None, "task_error", None]
    # consumed: replaying more tasks never re-fires it
    assert all(injector.poll(0) is None for _ in range(8))
    stats = injector.stats()
    assert stats["injected"] == {"task_error": 1}
    assert stats["pending"] == 0


def test_injector_task_offset_resumes_a_respawned_workers_counter():
    plan = FaultPlan(events=(FaultEvent("worker_crash", worker=0,
                                        task_index=1),))
    first = plan.injector(worker=0)
    assert first.poll(0) is None
    assert first.poll(0).kind == "worker_crash"   # ordinal 1: fires
    # The respawned worker resumes at ordinal 2 — the consumed event is
    # behind its counter, so it never re-fires.
    respawned = plan.injector(worker=0, task_offset=2)
    assert all(respawned.poll(0) is None for _ in range(8))


def test_floating_event_fires_count_times_on_any_worker():
    plan = FaultPlan(events=(FaultEvent("task_error", count=2),))
    injector = plan.injector()
    kinds = [e.kind if e else None for e in
             (injector.poll(0), injector.poll(1), injector.poll(0))]
    assert kinds == ["task_error", "task_error", None]


def test_seeded_plan_is_reproducible_and_pickles():
    kwargs = dict(workers=2, horizon_tasks=32, crash_rate=0.1,
                  hang_rate=0.1, error_rate=0.2, slow_rate=0.2)
    plan_a = FaultPlan.seeded(7, **kwargs)
    plan_b = FaultPlan.seeded(7, **kwargs)
    assert plan_a.events == plan_b.events
    assert plan_a.events != FaultPlan.seeded(8, **kwargs).events
    # spawn-context workers receive the plan by pickle
    clone = pickle.loads(pickle.dumps(plan_a))
    assert clone.events == plan_a.events


# ---------------------------------------------------------------------- #
# RetryPolicy / CircuitBreaker
# ---------------------------------------------------------------------- #
def test_retry_policy_backoff_and_exhaustion():
    policy = RetryPolicy(max_attempts=3, backoff_s=0.1,
                         backoff_multiplier=2.0, deadline_ms=500.0)
    assert policy.attempt_backoff_s(0) == 0.0
    assert policy.attempt_backoff_s(1) == pytest.approx(0.1)
    assert policy.attempt_backoff_s(3) == pytest.approx(0.4)
    assert not policy.exhausted(2, 0.1)
    assert policy.exhausted(3, 0.1)          # attempts out
    assert policy.exhausted(1, 0.6)          # deadline out
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(task_timeout_s=0.0)


def test_circuit_breaker_opens_probes_and_recloses():
    breaker = CircuitBreaker(BreakerPolicy(window=8, failure_threshold=0.5,
                                           min_samples=2, cooldown_s=1.0,
                                           half_open_probes=1))
    assert breaker.allow("m", 0.0)
    breaker.record("m", False, 0.0)
    breaker.record("m", False, 0.1)
    assert breaker.state("m") == "open"
    assert not breaker.allow("m", 0.5)       # inside cooldown: shed fast
    assert breaker.allow("m", 1.2)           # cooldown over: half-open probe
    assert breaker.state("m") == "half_open"
    breaker.record("m", True, 1.3)
    assert breaker.state("m") == "closed"
    snap = breaker.snapshot()
    assert snap["models"]["m"]["opens"] == 1
    assert snap["models"]["m"]["shed_fast"] == 1
    states = [t[2] for t in snap["models"]["m"]["transitions"]]
    assert states == ["open", "half_open", "closed"]


def test_circuit_breaker_half_open_failure_reopens():
    breaker = CircuitBreaker(BreakerPolicy(min_samples=1,
                                           failure_threshold=1.0,
                                           cooldown_s=0.5))
    breaker.record("m", False, 0.0)
    assert breaker.allow("m", 1.0)
    breaker.record("m", False, 1.1)
    assert breaker.state("m") == "open"
    assert breaker.snapshot()["models"]["m"]["opens"] == 2


# ---------------------------------------------------------------------- #
# Virtual-clock chaos: deterministic, bit-identical, fully reported
# ---------------------------------------------------------------------- #
def test_virtual_chaos_is_deterministic_and_bit_identical():
    requests = _requests()
    server = _server("virtual", compute_time_fn=FIXED_COST, workers=2)
    baseline = server.serve(requests)
    assert baseline.completed == len(requests)

    plan = _chaos_plan()
    first = server.serve(requests, faults=plan, retry=RETRY)
    second = server.serve(requests, faults=plan, retry=RETRY)

    # Bit-identical virtual replay: same outcomes, same makespan.
    assert first.metrics["makespan_s"] == second.metrics["makespan_s"]
    assert [(o.request_id, o.status, o.retries) for o in first.outcomes] == \
        [(o.request_id, o.status, o.retries) for o in second.outcomes]
    # Completed requests carry fault-free codes.
    assert _assert_codes_match(first, baseline) > 0

    faults = first.faults
    assert faults["observed"]["worker_crash"] == 1
    assert faults["observed"]["task_hang"] == 1
    assert faults["observed"]["task_error"] == 1
    assert faults["retried_requests"] > 0
    assert faults["supervisor"]["crashes"] == 1
    assert faults["supervisor"]["timeouts"] == 1
    assert faults["supervisor"]["respawns"] == 2
    assert first.metrics["fleet"]["retries"] > 0
    server.close()


def test_virtual_retry_exhaustion_fails_requests_with_labels():
    requests = _requests(n=16)
    # Every lenet batch errors; a single attempt means no retries at all.
    plan = FaultPlan(events=(FaultEvent("task_error", model="lenet_nano",
                                        count=64),))
    server = _server("virtual", compute_time_fn=FIXED_COST)
    report = server.serve(requests, faults=plan,
                          retry=RetryPolicy(max_attempts=1))
    failed = [o for o in report.outcomes if o.failed]
    assert failed and all(o.failure_reason == "task_error" for o in failed)
    assert all(o.retries == 0 for o in failed)
    assert report.metrics["fleet"]["failed"] == len(failed)
    per_model = report.metrics["per_model"]["lenet_nano"]
    assert per_model["failed"]["task_error"] == len(failed)
    # Failed requests surface in the prometheus exposition.
    text = report.prometheus()
    assert "repro_failed_total" in text
    assert 'reason="task_error"' in text
    assert "repro_faults_observed_total" in text
    server.close()


def test_virtual_breaker_sheds_fast_into_a_sick_model():
    requests = _requests(rate_rps=200.0, duration_s=1.0)
    plan = FaultPlan(events=(FaultEvent("task_error", model="lenet_nano",
                                        count=1024),))
    server = _server("virtual", compute_time_fn=FIXED_COST)
    report = server.serve(
        requests, faults=plan, retry=RetryPolicy(max_attempts=1),
        breaker=BreakerPolicy(window=8, failure_threshold=0.5, min_samples=2,
                              cooldown_s=10.0))
    shed = [o for o in report.outcomes
            if o.status == "shed" and o.shed_reason == "breaker"]
    assert shed and all(o.model == "lenet_nano" for o in shed)
    breaker = report.faults["breaker"]
    assert breaker["models"]["lenet_nano"]["opens"] >= 1
    assert breaker["models"]["lenet_nano"]["shed_fast"] >= len(shed)
    assert report.metrics["per_model"]["lenet_nano"]["shed"]["breaker"] \
        == len(shed)
    server.close()


def test_slow_task_fault_degrades_latency_not_codes():
    requests = _requests(n=8)
    plan = FaultPlan(events=(FaultEvent("slow_task", worker=0, task_index=0,
                                        duration_s=0.5),))
    server = _server("virtual", compute_time_fn=FIXED_COST)
    baseline = server.serve(requests)
    slowed = server.serve(requests, faults=plan, retry=RETRY)
    assert slowed.completed == len(requests)
    assert _assert_codes_match(slowed, baseline) == len(requests)
    assert slowed.metrics["makespan_s"] > baseline.metrics["makespan_s"]
    assert slowed.faults["observed"]["slow_task"] == 1
    server.close()


# ---------------------------------------------------------------------- #
# Satellite: unsupervised typed errors (no retry -> no silent hang)
# ---------------------------------------------------------------------- #
def test_process_crash_without_retry_raises_typed_error():
    requests = _requests(n=24)
    plan = FaultPlan(events=(FaultEvent("worker_crash", worker=0,
                                        task_index=0),))
    server = _server("real", backend="process", workers=2)
    with pytest.raises(WorkerCrashed):
        server.serve(requests, faults=plan)
    server.close()
    assert not mp.active_children()


def test_process_backend_run_times_out_instead_of_blocking():
    from repro.serving import ProcessFleetBackend

    server = _server("real", backend="process", workers=1)
    compiled = server.cache.get("lenet_nano")
    engine = server._engine("lenet_nano", compiled)
    paths, tmpdir = server._export_artifacts(["lenet_nano"])
    specs = {"lenet_nano": {"input_shape": tuple(engine.input_shape),
                            "output_shape": tuple(engine.output_shape)}}
    plan = FaultPlan(events=(FaultEvent("task_hang", worker=0, task_index=0,
                                        duration_s=30.0),))
    backend = ProcessFleetBackend(specs, paths, workers=1,
                                  task_timeout_s=0.5, faults=plan)
    backend.start()
    try:
        images = [np.zeros((4, 3, IMAGE_SIZE, IMAGE_SIZE))]
        start = time.perf_counter()
        with pytest.raises(WorkerTimeout):
            backend.run(0, "lenet_nano", images)
        assert time.perf_counter() - start < 10.0   # detected, not waited out
        assert backend.fault_stats()["timeouts"] == 1
    finally:
        backend.close()
        if tmpdir is not None:
            tmpdir.cleanup()
        server.close()
    assert not mp.active_children()


def test_process_backend_respawn_is_bounded():
    from repro.faults import RespawnExhausted
    from repro.serving import ProcessFleetBackend

    server = _server("real", backend="process", workers=1)
    compiled = server.cache.get("lenet_nano")
    engine = server._engine("lenet_nano", compiled)
    paths, tmpdir = server._export_artifacts(["lenet_nano"])
    specs = {"lenet_nano": {"input_shape": tuple(engine.input_shape),
                            "output_shape": tuple(engine.output_shape)}}
    backend = ProcessFleetBackend(specs, paths, workers=1, max_respawns=1,
                                  respawn_backoff_s=0.0)
    backend.start()
    try:
        first = backend.respawn(0)
        assert first > 0.0
        with pytest.raises(RespawnExhausted):
            backend.respawn(0)
        assert backend.fault_stats()["respawns"] == 1
        # The respawned worker still serves work.
        images = [np.zeros((2, 3, IMAGE_SIZE, IMAGE_SIZE))]
        group_codes, executions, _, _ = backend.run(0, "lenet_nano", images)
        assert executions == 1 and group_codes[0].shape[0] == 2
    finally:
        backend.close()
        if tmpdir is not None:
            tmpdir.cleanup()
        server.close()
    assert not mp.active_children()


# ---------------------------------------------------------------------- #
# Satellite: close() never leaks shared-memory arenas
# ---------------------------------------------------------------------- #
def test_process_backend_close_unlinks_arenas_even_after_a_crash():
    requests = _requests(n=24)
    plan = FaultPlan(events=(FaultEvent("worker_crash", worker=0,
                                        task_index=0),))
    server = _server("real", backend="process", workers=2)

    captured: list[str] = []
    from repro.serving import procfleet as procfleet_mod
    original_start = procfleet_mod.ProcessFleetBackend.start

    def capturing_start(self):
        original_start(self)
        captured.extend(shm.name for shm in (*self._in_shms, *self._out_shms))

    procfleet_mod.ProcessFleetBackend.start = capturing_start
    try:
        with pytest.raises(WorkerCrashed):
            server.serve(requests, faults=plan)
    finally:
        procfleet_mod.ProcessFleetBackend.start = original_start
    server.close()
    assert len(captured) == 4   # in+out arena per worker
    for name in captured:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
    assert not mp.active_children()


# ---------------------------------------------------------------------- #
# Satellite: pacer teardown on mid-serve failure
# ---------------------------------------------------------------------- #
def test_open_loop_pacer_abort_interrupts_the_release_sleep():
    reqs = [Request(request_id=i, model="lenet_nano", arrival_s=10.0 * (i + 1),
                    image=np.zeros((3, IMAGE_SIZE, IMAGE_SIZE)))
            for i in range(3)]
    pacer = OpenLoopPacer(reqs)
    released: list[int] = []

    def drain():
        for req, _ in pacer:
            released.append(req.request_id)

    thread = threading.Thread(target=drain, daemon=True)
    start = time.perf_counter()
    thread.start()
    time.sleep(0.05)
    pacer.abort()
    thread.join(timeout=2.0)
    assert not thread.is_alive()
    assert time.perf_counter() - start < 5.0   # did not doze to t=10s
    assert released == []


def test_mid_serve_failure_aborts_open_loop_ingestion():
    # Arrivals stretch far beyond the failure instant: if the dead worker
    # did not abort the pacer, serve() would sleep out the full schedule.
    reqs = [Request(request_id=i, model="lenet_nano",
                    arrival_s=0.0 if i < 8 else 30.0 + i,
                    image=np.random.default_rng(i).standard_normal(
                        (3, IMAGE_SIZE, IMAGE_SIZE)))
            for i in range(12)]
    plan = FaultPlan(events=(FaultEvent("task_error", count=64),))
    server = _server("real", backend="thread", workers=2)
    start = time.perf_counter()
    with pytest.raises(FaultError) as excinfo:
        server.serve(reqs, pacing="open", faults=plan)
    assert excinfo.value.kind == "task_error"
    assert time.perf_counter() - start < 20.0
    server.close()


# ---------------------------------------------------------------------- #
# Satellite: disk-tier quarantine of corrupt artifacts
# ---------------------------------------------------------------------- #
def test_plan_cache_quarantines_corrupt_artifacts(tmp_path):
    from repro.deploy import CompileConfig, compile as deploy_compile

    config = CompileConfig.create(batch_size=2, image_size=IMAGE_SIZE,
                                  **COMPILE_KWARGS)
    cache = PlanCache(2, compile_fn=lambda name: deploy_compile(name, config),
                      artifact_dir=tmp_path, key_fn=lambda name: "k")
    entry = cache.get("lenet_nano")
    path = cache.artifact_path("lenet_nano")
    assert path.exists() and cache.disk_stores == 1

    # Torn write: the artifact is garbage.  The next disk-tier load must
    # quarantine it aside and fall through to a clean recompile.
    path.write_bytes(b"\x00garbage\x00")
    assert cache.evict("lenet_nano")
    recompiled = cache.get("lenet_nano")
    assert cache.disk_quarantined == 1
    assert cache.disk_errors == 1
    assert cache.recompiles == 1
    assert cache.stats()["disk_quarantined"] == 1
    quarantined = path.with_name(path.name + ".corrupt")
    assert quarantined.exists()
    assert quarantined.read_bytes() == b"\x00garbage\x00"
    # the recompile re-stored a good artifact at the live path
    assert path.exists() and path.stat().st_size > 64
    rng = np.random.default_rng(0)
    images = rng.standard_normal((2, 3, IMAGE_SIZE, IMAGE_SIZE))
    np.testing.assert_array_equal(entry.engine.run(images).codes,
                                  recompiled.engine.run(images).codes)


def test_artifact_corrupt_fault_exercises_quarantine_end_to_end(tmp_path):
    requests = _requests(n=16)
    server = _server("virtual", compute_time_fn=FIXED_COST,
                     artifact_dir=tmp_path)
    baseline = server.serve(requests)
    plan = FaultPlan(events=(FaultEvent("artifact_corrupt",
                                        model="lenet_nano"),))
    report = server.serve(requests, faults=plan)
    assert report.faults["artifacts_corrupted"] == {"lenet_nano": 1}
    assert report.cache["disk_quarantined"] == 1
    assert report.completed == len(requests)
    assert _assert_codes_match(report, baseline) == len(requests)
    server.close()


# ---------------------------------------------------------------------- #
# Chaos acceptance: a live 2-process fleet survives crash + hang
# ---------------------------------------------------------------------- #
def test_chaos_acceptance_process_fleet_recovers_bit_identical():
    requests = _requests(n=40)
    virtual = _server("virtual", compute_time_fn=FIXED_COST)
    baseline = virtual.serve(requests)
    virtual.close()
    assert baseline.completed == len(requests)

    plan = _chaos_plan()
    server = _server("real", backend="process", workers=2)
    report = server.serve(requests, faults=plan, retry=RETRY,
                          telemetry=TelemetryConfig(sample_rate=1.0))
    server.close()

    # Zero hung calls: every admitted request reached a terminal status.
    assert len(report.outcomes) == len(requests)
    assert all(o.status in ("completed", "failed", "shed")
               for o in report.outcomes)
    # Bit-identical successful outputs vs. the fault-free virtual run.
    assert _assert_codes_match(report, baseline) > 0

    faults = report.faults
    supervisor = faults["supervisor"]
    assert supervisor["crashes"] >= 1
    assert supervisor["timeouts"] >= 1
    assert supervisor["respawns"] >= 2
    assert len(supervisor["respawn_s"]) == supervisor["respawns"]
    assert all(s > 0.0 for s in supervisor["respawn_s"])
    assert faults["observed"]["worker_crash"] >= 1
    assert faults["observed"]["task_hang"] >= 1
    assert faults["retried_requests"] > 0
    assert report.metrics["fleet"]["retries"] > 0

    # Recovery is visible in the Chrome trace: fault + respawn spans.
    cats = {span.cat for span in report.trace.spans}
    names = {span.name for span in report.trace.spans}
    assert "fault" in cats
    assert "worker_crash" in names
    assert "task_hang" in names
    assert "respawn" in names

    # Nothing leaked: no worker processes, no shared-memory arenas.
    assert not mp.active_children()
    completed = [o for o in report.outcomes if o.completed]
    retried = [o for o in completed if o.retries > 0]
    assert retried, "some completed request must have been retried"


def test_degradation_falls_back_to_in_process_execution():
    requests = _requests(n=32)
    # Every lenet task in the worker processes errors; after degrade_after
    # consecutive failures the model must fall back to the in-process path
    # and still complete everything.
    plan = FaultPlan(events=(FaultEvent("task_error", model="lenet_nano",
                                        count=4096),))
    retry = RetryPolicy(max_attempts=8, task_timeout_s=0.75,
                        degrade_after=2, respawn_backoff_s=0.01)
    server = _server("real", backend="process", workers=2)
    report = server.serve(requests, faults=plan, retry=retry)
    server.close()
    assert "lenet_nano" in report.faults["degraded_models"]
    lenet = [o for o in report.outcomes if o.model == "lenet_nano"]
    assert lenet and all(o.completed for o in lenet)
    assert not mp.active_children()
