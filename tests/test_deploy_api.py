"""The deployment API: typed configs, compile, artifacts, serving integration.

The acceptance claims under test:

* ``Deployment.save``/``load`` round-trips are **bit-exact** against a fresh
  compile on every registry model;
* a loaded artifact performs **zero** re-lowering / re-optimization /
  re-profiling, asserted through :data:`repro.engine.PIPELINE_COUNTERS`;
* corrupt and stale artifacts raise a clear :class:`ArtifactError` instead
  of quietly recompiling or serving garbage;
* the legacy entry points keep working as deprecation shims over the new
  API and produce identical output codes.
"""

from __future__ import annotations

import json
import zipfile
from dataclasses import replace

import numpy as np
import pytest

from repro import deploy, nn
from repro.deploy import (
    ArtifactError,
    CompileConfig,
    Deployment,
    QuantConfig,
    RuntimeConfig,
    ServeConfig,
    config_key,
)
from repro.engine import PIPELINE_COUNTERS, BatchedRunner
from repro.graph import GraphBuilder, OpKind, quantize_static
from repro.models import MODEL_REGISTRY
from repro.serving import Request

IMAGE_SIZE = 8  # keeps every global-average-pool window a power of two
BATCH = 4

SMALL = CompileConfig(
    image_size=IMAGE_SIZE,
    quant=QuantConfig(calibration_samples=8, calibration_batch_size=4),
    runtime=RuntimeConfig(batch_size=BATCH),
)


def _batches(count: int = 2, seed: int = 0) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((BATCH, 3, IMAGE_SIZE, IMAGE_SIZE)) for _ in range(count)]


@pytest.fixture(scope="module")
def lenet_deployment():
    return deploy.compile("lenet_nano", SMALL)


@pytest.fixture(scope="module")
def lenet_artifact(lenet_deployment, tmp_path_factory):
    path = tmp_path_factory.mktemp("artifacts") / "lenet.rpa"
    lenet_deployment.save(path)
    return path


# ---------------------------------------------------------------------- #
# Config objects
# ---------------------------------------------------------------------- #
def test_flat_overrides_route_into_nested_configs():
    config = CompileConfig.create(num_classes=6, image_size=8, batch_size=4,
                                  calibration_samples=8, accumulate="int",
                                  seed=3, base_width=16)
    assert config.num_classes == 6 and config.image_size == 8
    assert config.runtime.batch_size == 4 and config.runtime.accumulate == "int"
    assert config.quant.calibration_samples == 8 and config.quant.seed == 3
    assert config.model_kwargs == {"base_width": 16}   # unknown -> factory kwarg
    # Nested configs can also be replaced wholesale.
    swapped = config.with_overrides(runtime=RuntimeConfig(batch_size=2))
    assert swapped.runtime.batch_size == 2
    assert swapped.quant.calibration_samples == 8
    # An explicit model_kwargs override replaces the mapping (and must not
    # nest itself into model_kwargs['model_kwargs']); loose kwargs merge on.
    explicit = config.with_overrides(model_kwargs={"depth": 2}, width=3)
    assert explicit.model_kwargs == {"depth": 2, "width": 3}


def test_config_validation():
    with pytest.raises(ValueError, match="batch_size"):
        RuntimeConfig(batch_size=0)
    with pytest.raises(ValueError, match="accumulate"):
        RuntimeConfig(accumulate="gpu")
    with pytest.raises(ValueError, match="calibration_samples"):
        QuantConfig(calibration_samples=0)
    with pytest.raises(ValueError, match="num_classes"):
        CompileConfig(num_classes=0)
    with pytest.raises(ValueError, match="workers"):
        ServeConfig(workers=0)


def test_config_dict_round_trip_and_key():
    config = CompileConfig.create(image_size=8, batch_size=4, seed=7)
    again = CompileConfig.from_dict(config.to_dict())
    assert again == config
    assert config_key("lenet_nano", config) == config_key("lenet_nano", again)
    # The key is a content address: any config or model change moves it.
    assert config_key("vgg_nano", config) != config_key("lenet_nano", config)
    assert (config_key("lenet_nano", config.with_overrides(seed=8))
            != config_key("lenet_nano", config))


# ---------------------------------------------------------------------- #
# Artifact round trip: every registry model, bit-exact, zero recompute
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("model_name", sorted(MODEL_REGISTRY))
def test_artifact_round_trip_is_bit_exact(model_name, tmp_path):
    fresh = deploy.compile(model_name, SMALL)
    path = fresh.save(tmp_path / f"{model_name}.rpa")
    batches = _batches(2)
    reference = [fresh.run(batch).codes for batch in batches]

    before = PIPELINE_COUNTERS.snapshot()
    loaded = Deployment.load(path)
    outputs = [loaded.run(batch).codes for batch in batches]
    # Zero re-lowering, re-optimization and re-profiling on load + run; the
    # tape recompiles per bind (cheap) but its autotune comes from the cache.
    assert PIPELINE_COUNTERS.delta(before) == {
        "lowerings": 0, "optimizations": 0, "autotune_runs": 0,
        "tape_compilations": 1, "tape_autotune_runs": 0}

    for ref, out in zip(reference, outputs):
        np.testing.assert_array_equal(ref, out)
    assert loaded.source == "artifact"
    assert loaded.fingerprint == fresh.fingerprint
    assert loaded.input_shape == fresh.input_shape
    assert loaded.output_meta == fresh.output_meta
    assert loaded.kernel_choices == fresh.kernel_choices
    assert loaded.pass_log == fresh.pass_log


def test_loaded_artifact_keeps_autotuned_variants(lenet_deployment, lenet_artifact):
    loaded = Deployment.load(lenet_artifact)
    choices = loaded.kernel_choices
    assert choices == lenet_deployment.kernel_choices and choices
    variants = {b.step.name: b.variant for b in loaded.engine.steps
                if hasattr(b, "variant")}
    for name, choice in choices.items():
        assert variants[name] == choice


def test_artifact_manifest_contents(lenet_deployment, lenet_artifact):
    with zipfile.ZipFile(lenet_artifact) as archive:
        manifest = json.loads(archive.read("manifest.json"))
    assert manifest["format"] == "repro-plan-artifact"
    assert manifest["model"] == "lenet_nano"
    assert manifest["fingerprint"] == lenet_deployment.fingerprint
    assert manifest["kernel_choices"] == lenet_deployment.kernel_choices
    assert manifest["pass_log"] == lenet_deployment.pass_log
    assert manifest["input_shape"] == [BATCH, 3, IMAGE_SIZE, IMAGE_SIZE]
    assert CompileConfig.from_dict(manifest["config"]) == SMALL


# ---------------------------------------------------------------------- #
# Corrupt / stale artifacts fail loudly
# ---------------------------------------------------------------------- #
def _rewrite_entry(src, dst, name: str, data: bytes) -> None:
    with zipfile.ZipFile(src) as archive:
        entries = {n: archive.read(n) for n in archive.namelist()}
    entries[name] = data
    with zipfile.ZipFile(dst, "w") as archive:
        for entry_name, entry_data in entries.items():
            archive.writestr(entry_name, entry_data)


def test_missing_artifact_raises(tmp_path):
    with pytest.raises(ArtifactError, match="does not exist"):
        Deployment.load(tmp_path / "nope.rpa")


def test_non_zip_artifact_raises(tmp_path):
    path = tmp_path / "garbage.rpa"
    path.write_bytes(b"this is not a zip archive at all" * 8)
    with pytest.raises(ArtifactError, match="not a plan artifact"):
        Deployment.load(path)


def test_corrupt_payload_raises(lenet_artifact, tmp_path):
    with zipfile.ZipFile(lenet_artifact) as archive:
        payload = bytearray(archive.read("plan.pkl"))
    payload[len(payload) // 2] ^= 0xFF   # flip a byte mid-payload
    corrupt = tmp_path / "corrupt.rpa"
    _rewrite_entry(lenet_artifact, corrupt, "plan.pkl", bytes(payload))
    with pytest.raises(ArtifactError, match="corrupt"):
        Deployment.load(corrupt)


def test_stale_fingerprint_raises(lenet_artifact, tmp_path):
    with zipfile.ZipFile(lenet_artifact) as archive:
        manifest = json.loads(archive.read("manifest.json"))
    manifest["fingerprint"] = "0" * 64   # the hash of some other graph state
    stale = tmp_path / "stale.rpa"
    _rewrite_entry(lenet_artifact, stale, "manifest.json",
                   json.dumps(manifest).encode())
    with pytest.raises(ArtifactError, match="stale"):
        Deployment.load(stale)


def test_truncated_artifact_raises(lenet_artifact, tmp_path):
    truncated = tmp_path / "truncated.rpa"
    data = lenet_artifact.read_bytes()
    truncated.write_bytes(data[:len(data) // 2])
    with pytest.raises(ArtifactError):
        Deployment.load(truncated)


def test_unsupported_version_raises(lenet_artifact, tmp_path):
    with zipfile.ZipFile(lenet_artifact) as archive:
        manifest = json.loads(archive.read("manifest.json"))
    manifest["version"] = 999
    future = tmp_path / "future.rpa"
    _rewrite_entry(lenet_artifact, future, "manifest.json",
                   json.dumps(manifest).encode())
    with pytest.raises(ArtifactError, match="version"):
        Deployment.load(future)


# ---------------------------------------------------------------------- #
# Deployment surface
# ---------------------------------------------------------------------- #
def test_runner_is_bit_exact_across_workers(lenet_deployment):
    rng = np.random.default_rng(2)
    requests = rng.standard_normal((BATCH * 2 + 1, 3, IMAGE_SIZE, IMAGE_SIZE))
    plain_results, _ = lenet_deployment.runner().run(requests)
    with lenet_deployment.runner(workers=2) as sharded:
        sharded_results, _ = sharded.run(requests)
    for a, b in zip(plain_results, sharded_results):
        np.testing.assert_array_equal(a.codes, b.codes)


def test_sharded_runner_from_deployment_honors_accumulate():
    from repro.engine import ShardedRunner
    deployment = deploy.compile("lenet_nano", SMALL)
    with ShardedRunner(deployment, workers=2) as inherited:
        assert inherited.accumulate == "blas"   # inherited from the engine
        assert inherited.input_shape == deployment.input_shape
    with ShardedRunner(deployment, workers=2, accumulate="int") as forced:
        assert forced.accumulate == "int"       # explicit request wins
        assert all(e.accumulate == "int" for e in forced.engines)
        (batch,) = _batches(1)
        np.testing.assert_array_equal(forced.run(batch).codes,
                                      deployment.run(batch).codes)


def test_batched_runner_accepts_deployment_directly(lenet_deployment):
    rng = np.random.default_rng(3)
    requests = rng.standard_normal((BATCH + 1, 3, IMAGE_SIZE, IMAGE_SIZE))
    direct, _ = BatchedRunner(lenet_deployment).run(requests)
    via_engine, _ = BatchedRunner(lenet_deployment.engine).run(requests)
    for a, b in zip(direct, via_engine):
        np.testing.assert_array_equal(a.codes, b.codes)


def test_profile_and_manifest_on_loaded_deployment(lenet_artifact):
    loaded = Deployment.load(lenet_artifact)
    profile = loaded.profile(repeats=1)
    assert profile.total_ms > 0
    manifest = loaded.manifest()
    assert manifest["deployment"]["model"] == "lenet_nano"
    assert manifest["deployment"]["source"] == "artifact"
    assert manifest["deployment"]["fingerprint"] == loaded.fingerprint
    # The simulation graph is not serialized; asking for it must say so.
    with pytest.raises(AttributeError, match="artifact"):
        _ = loaded.graph


def test_compile_accepts_quantized_graph():
    rng = np.random.default_rng(0)
    builder = GraphBuilder("tiny_direct")
    x = builder.input("input")
    x = builder.layer("conv", OpKind.CONV, nn.Conv2d(3, 4, 3, padding=1, rng=rng), x)
    x = builder.layer("relu", OpKind.RELU, nn.ReLU(), x)
    x = builder.layer("gap", OpKind.GLOBAL_AVGPOOL,
                      nn.GlobalAvgPool2d(keepdims=False), x)
    x = builder.layer("fc", OpKind.LINEAR, nn.Linear(4, 3, rng=rng), x)
    graph = builder.build(x)
    graph.eval()
    calibration = [rng.standard_normal((4, 3, IMAGE_SIZE, IMAGE_SIZE))
                   for _ in range(2)]
    quantized = quantize_static(graph, calibration, sequential=False, copy=False)
    deployment = deploy.compile(quantized, replace(SMALL, image_size=IMAGE_SIZE))
    out = deployment.run(calibration[0])
    assert out.codes.shape[0] == BATCH
    assert deployment.model == "tiny_direct"
    # GraphIR compiles need an explicit image size (no registry default).
    with pytest.raises(ValueError, match="image_size"):
        deploy.compile(quantized, CompileConfig())


def test_compile_rejects_unknown_models_and_types():
    with pytest.raises(ValueError, match="available"):
        deploy.compile("resnet_nano_giant", SMALL)
    with pytest.raises(TypeError, match="registry name"):
        deploy.compile(12345, SMALL)


# ---------------------------------------------------------------------- #
# Legacy shim
# ---------------------------------------------------------------------- #
def test_compile_registry_model_shim_matches_deploy(lenet_deployment):
    from repro.models import compile_registry_model
    with pytest.warns(DeprecationWarning, match="repro.deploy.compile"):
        compiled = compile_registry_model(
            "lenet_nano", image_size=IMAGE_SIZE, batch_size=BATCH,
            calibration_samples=8, calibration_batch_size=4)
    (batch,) = _batches(1)
    np.testing.assert_array_equal(compiled.engine.run(batch).codes,
                                  lenet_deployment.run(batch).codes)


# ---------------------------------------------------------------------- #
# Serving integration
# ---------------------------------------------------------------------- #
def _requests(count: int, model: str, seed: int = 0) -> list[Request]:
    rng = np.random.default_rng(seed)
    return [Request(i, model, 0.002 * i,
                    rng.standard_normal((3, IMAGE_SIZE, IMAGE_SIZE)))
            for i in range(count)]


def test_serve_preloads_deployment_and_is_bit_exact(lenet_deployment):
    server = lenet_deployment.serve(ServeConfig(),
                                    compute_time_fn=lambda m, f: 1e-3)
    assert server.cache.peek("lenet_nano") is lenet_deployment
    requests = _requests(12, "lenet_nano", seed=4)
    report = server.serve(requests)
    assert report.completed == len(requests)
    assert server.cache.stats()["misses"] == 0, "the deployment must not recompile"
    by_id = {r.request_id: r for r in requests}
    for outcome in report.outcomes:
        direct = lenet_deployment.run_partial(by_id[outcome.request_id].image[None])
        np.testing.assert_array_equal(outcome.codes, direct.codes[0])


def test_serve_artifact_dir_gives_disk_tier_to_fleet(lenet_deployment, tmp_path):
    serve_config = ServeConfig(fleet=("vgg_nano",), artifact_dir=tmp_path,
                               cache_capacity=2)
    first = lenet_deployment.serve(serve_config, compute_time_fn=lambda m, f: 1e-3)
    # Both the compiled-on-miss vgg AND the preloaded deployment persist.
    assert first.cache.stats()["disk_stores"] == 2
    assert len(list(tmp_path.glob("vgg_nano-*.rpa"))) == 1
    assert len(list(tmp_path.glob("lenet_nano-*.rpa"))) == 1

    before = PIPELINE_COUNTERS.snapshot()
    second = lenet_deployment.serve(serve_config, compute_time_fn=lambda m, f: 1e-3)
    stats = second.cache.stats()
    assert stats["disk_hits"] == 1, "second fleet must warm vgg from disk"
    assert stats["recompiles"] == 0, "a disk-tier load is not a recompile"
    delta = PIPELINE_COUNTERS.delta(before)
    assert delta["lowerings"] == 0 and delta["optimizations"] == 0
    assert delta["autotune_runs"] == 0 and delta["tape_autotune_runs"] == 0

    requests = _requests(8, "vgg_nano", seed=5)
    codes_first = [o.codes for o in first.serve(requests).outcomes]
    codes_second = [o.codes for o in second.serve(requests).outcomes]
    for a, b in zip(codes_first, codes_second):
        np.testing.assert_array_equal(a, b)
