"""Unit tests for calibration methods and the streaming histogram."""

import numpy as np
import pytest

from repro.quant import (
    TensorHistogram,
    calibrate,
    kl_j_calibration,
    kl_j_distance,
    max_calibration,
    percentile_calibration,
    std_calibration,
)


class TestSimpleCalibrators:
    def test_max_calibration(self):
        assert max_calibration(np.array([-3.0, 2.0, 1.0])) == 3.0

    def test_max_calibration_empty_and_zero(self):
        assert max_calibration(np.array([])) > 0
        assert max_calibration(np.zeros(5)) > 0

    def test_std_calibration_scales_with_sigma(self, rng):
        small = std_calibration(rng.normal(0, 0.1, 10000))
        large = std_calibration(rng.normal(0, 10.0, 10000))
        assert large / small == pytest.approx(100.0, rel=0.05)

    def test_3sd_clips_gaussian_tails(self, rng):
        values = rng.normal(0, 1.0, 100000)
        threshold = std_calibration(values, num_std=3.0)
        assert threshold == pytest.approx(3.0, rel=0.05)
        assert threshold < np.abs(values).max()

    def test_percentile_calibration(self, rng):
        values = rng.normal(0, 1.0, 100000)
        p99 = percentile_calibration(values, percentile=99.0)
        assert p99 < percentile_calibration(values, percentile=99.99)
        assert p99 == pytest.approx(np.percentile(np.abs(values), 99.0), rel=1e-6)

    def test_dispatch(self, rng):
        values = rng.normal(0, 1, 1000)
        assert calibrate(values, "max") == max_calibration(values)
        assert calibrate(values, "3sd") == std_calibration(values, 3.0)
        with pytest.raises(ValueError):
            calibrate(values, "unknown-method")


class TestKLJDistance:
    def test_identical_distributions_have_zero_distance(self):
        p = np.array([1.0, 2.0, 3.0, 4.0])
        assert kl_j_distance(p, p) == pytest.approx(0.0, abs=1e-6)

    def test_symmetry(self, rng):
        p = rng.random(32)
        q = rng.random(32)
        assert kl_j_distance(p, q) == pytest.approx(kl_j_distance(q, p))

    def test_diverging_distributions_have_larger_distance(self):
        p = np.array([10.0, 0.0, 0.0, 0.0])
        near = np.array([9.0, 1.0, 0.0, 0.0])
        far = np.array([0.0, 0.0, 0.0, 10.0])
        assert kl_j_distance(p, near) < kl_j_distance(p, far)

    def test_empty_distribution_is_infinite(self):
        assert kl_j_distance(np.zeros(4), np.ones(4)) == np.inf


class TestKLJCalibration:
    def test_clips_long_tailed_distribution(self, rng):
        """For a heavy-tailed distribution the KL-J threshold is well below the
        maximum — the whole point of calibrated clipping."""
        values = np.concatenate([rng.normal(0, 1.0, 20000), rng.normal(0, 15.0, 60)])
        threshold = kl_j_calibration(values, bits=8)
        assert threshold < np.abs(values).max() * 0.9
        assert threshold > 1.0
        # at 4 bits the trade-off shifts strongly toward precision
        assert kl_j_calibration(values, bits=4) < np.abs(values).max() * 0.25

    def test_returns_positive_even_for_constant_zero(self):
        assert kl_j_calibration(np.zeros(100), bits=8) > 0

    def test_accepts_prebuilt_histogram(self, rng):
        values = rng.normal(0, 1.0, 5000)
        histogram = TensorHistogram(num_bins=512)
        histogram.update(values)
        from_hist = kl_j_calibration(histogram, bits=8)
        from_values = kl_j_calibration(values, bits=8, num_bins=512)
        assert from_hist == pytest.approx(from_values, rel=0.1)

    def test_lower_bitwidth_clips_no_less(self, rng):
        """With fewer levels, the optimal clip point cannot be (much) larger."""
        values = np.concatenate([rng.normal(0, 1.0, 20000), rng.normal(0, 8.0, 200)])
        t8 = kl_j_calibration(values, bits=8)
        t4 = kl_j_calibration(values, bits=4)
        assert t4 <= t8 * 1.25


class TestTensorHistogram:
    def test_counts_accumulate(self, rng):
        histogram = TensorHistogram(num_bins=64)
        histogram.update(rng.normal(0, 1, 100))
        histogram.update(rng.normal(0, 1, 100))
        assert histogram.total == 200
        assert histogram.counts.sum() == pytest.approx(200, rel=0.01)

    def test_range_grows_with_new_maxima(self, rng):
        histogram = TensorHistogram(num_bins=64)
        histogram.update(rng.uniform(-1, 1, 100))
        first_max = histogram.max_value
        histogram.update(np.array([50.0]))
        assert histogram.max_value == 50.0 > first_max
        assert histogram.counts.sum() == pytest.approx(101, rel=0.02)

    def test_observed_min_max(self):
        histogram = TensorHistogram()
        histogram.update(np.array([-3.0, 7.0]))
        assert histogram.observed_min == -3.0
        assert histogram.observed_max == 7.0

    def test_all_zero_batch(self):
        histogram = TensorHistogram()
        histogram.update(np.zeros(10))
        assert histogram.total == 10

    def test_empty_batch_noop(self):
        histogram = TensorHistogram()
        histogram.update(np.array([]))
        assert histogram.total == 0

    def test_density_sums_to_one(self, rng):
        histogram = TensorHistogram(num_bins=32)
        histogram.update(rng.normal(0, 1, 500))
        assert histogram.density().sum() == pytest.approx(1.0)

    def test_rejects_too_few_bins(self):
        with pytest.raises(ValueError):
            TensorHistogram(num_bins=4)
