"""Property-based tests (hypothesis) for the autograd substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import (
    Tensor,
    concatenate,
    numerical_gradient,
    relu,
    softmax,
)

finite_floats = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False,
                          allow_infinity=False, width=64)


def small_arrays(max_side: int = 5):
    return hnp.arrays(dtype=np.float64,
                      shape=hnp.array_shapes(min_dims=1, max_dims=3, max_side=max_side),
                      elements=finite_floats)


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_add_mul_gradients_match_numerical(values):
    x = Tensor(values, requires_grad=True)
    y = Tensor(values * 0.5 + 1.0, requires_grad=True)

    def fn(a, b):
        return a * b + a

    out = fn(x, y)
    out.sum().backward()
    numeric = numerical_gradient(fn, [x, y], 0)
    np.testing.assert_allclose(x.grad, numeric, atol=1e-5, rtol=1e-4)


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_sum_gradient_is_ones(values):
    x = Tensor(values, requires_grad=True)
    x.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(values))


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_relu_output_nonnegative_and_idempotent(values):
    out = relu(Tensor(values))
    assert np.all(out.data >= 0)
    np.testing.assert_allclose(relu(out).data, out.data)


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(dtype=np.float64, shape=st.tuples(st.integers(1, 4), st.integers(2, 6)),
                  elements=finite_floats))
def test_softmax_is_a_distribution(values):
    out = softmax(Tensor(values), axis=-1).data
    assert np.all(out >= 0)
    np.testing.assert_allclose(out.sum(axis=-1), np.ones(values.shape[0]), atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(small_arrays(max_side=4), small_arrays(max_side=4))
def test_concatenate_preserves_content(a, b):
    if a.ndim != b.ndim:
        return
    if a.shape[1:] != b.shape[1:]:
        return
    out = concatenate([Tensor(a), Tensor(b)], axis=0)
    np.testing.assert_allclose(out.data[:a.shape[0]], a)
    np.testing.assert_allclose(out.data[a.shape[0]:], b)


@settings(max_examples=20, deadline=None)
@given(st.lists(finite_floats, min_size=1, max_size=20))
def test_mean_matches_numpy(values):
    arr = np.asarray(values)
    np.testing.assert_allclose(Tensor(arr).mean().item(), arr.mean(), atol=1e-12)


@settings(max_examples=20, deadline=None)
@given(small_arrays())
def test_double_negation_is_identity(values):
    x = Tensor(values)
    np.testing.assert_allclose((-(-x)).data, values)
