"""Unit tests for the synthetic dataset, preprocessing and loaders."""

import numpy as np
import pytest

from repro.data import (
    DataLoader,
    Preprocessor,
    SyntheticImageNet,
    center_crop,
    normalize,
    random_flip,
    sample_calibration_batches,
)


class TestSyntheticImageNet:
    def test_shapes_and_labels(self):
        dataset = SyntheticImageNet(num_classes=5, image_size=12, train_size=20, val_size=10)
        image, label = dataset.sample(0, dataset.train)
        assert image.shape == (3, 12, 12)
        assert 0 <= label < 5

    def test_determinism(self):
        a = SyntheticImageNet(seed=3)
        b = SyntheticImageNet(seed=3)
        img_a, label_a = a.sample(7, a.train)
        img_b, label_b = b.sample(7, b.train)
        np.testing.assert_allclose(img_a, img_b)
        assert label_a == label_b

    def test_different_seeds_differ(self):
        a = SyntheticImageNet(seed=1)
        b = SyntheticImageNet(seed=2)
        img_a, _ = a.sample(0, a.train)
        img_b, _ = b.sample(0, b.train)
        assert not np.allclose(img_a, img_b)

    def test_train_and_val_are_disjoint_generators(self):
        dataset = SyntheticImageNet(train_size=10, val_size=10, seed=0)
        train_img, _ = dataset.sample(0, dataset.train)
        val_img, _ = dataset.sample(0, dataset.val)
        assert not np.allclose(train_img, val_img)

    def test_out_of_range_index(self):
        dataset = SyntheticImageNet(train_size=4, val_size=4)
        with pytest.raises(IndexError):
            dataset.sample(4, dataset.train)

    def test_batch_generation(self):
        dataset = SyntheticImageNet(num_classes=3, image_size=8, train_size=16, val_size=8)
        images, labels = dataset.train_batch(np.arange(5))
        assert images.shape == (5, 3, 8, 8)
        assert labels.shape == (5,)

    def test_samples_are_classifiable(self):
        """Same-class samples are more similar than different-class samples —
        the dataset actually carries label information."""
        dataset = SyntheticImageNet(num_classes=4, image_size=12, train_size=400,
                                    val_size=10, noise_level=0.2, seed=0)
        images, labels = dataset.train_batch(np.arange(200))
        by_class = {c: images[labels == c].mean(axis=0) for c in np.unique(labels)}
        within, between = [], []
        for c, prototype in by_class.items():
            members = images[labels == c]
            within.append(np.mean([np.linalg.norm(m - prototype) for m in members]))
            for other, other_proto in by_class.items():
                if other != c:
                    between.append(np.linalg.norm(prototype - other_proto))
        assert np.mean(between) > 0.3 * np.mean(within)

    def test_illumination_spread_creates_long_tails(self):
        flat = SyntheticImageNet(illumination_spread=0.0, train_size=64, val_size=8, seed=0)
        spread = SyntheticImageNet(illumination_spread=0.8, train_size=64, val_size=8, seed=0)
        flat_images, _ = flat.train_batch(np.arange(64))
        spread_images, _ = spread.train_batch(np.arange(64))
        flat_kurtosis = np.abs(flat_images).max() / np.abs(flat_images).std()
        spread_kurtosis = np.abs(spread_images).max() / np.abs(spread_images).std()
        assert spread_kurtosis > flat_kurtosis


class TestPreprocessing:
    def test_normalize(self):
        out = normalize(np.array([2.0, 4.0]), mean=2.0, std=2.0)
        np.testing.assert_allclose(out, [0.0, 1.0])

    def test_center_crop(self):
        images = np.arange(2 * 3 * 6 * 6, dtype=float).reshape(2, 3, 6, 6)
        cropped = center_crop(images, 4)
        assert cropped.shape == (2, 3, 4, 4)
        np.testing.assert_allclose(cropped, images[:, :, 1:5, 1:5])

    def test_center_crop_too_large(self):
        with pytest.raises(ValueError):
            center_crop(np.zeros((1, 3, 4, 4)), 8)

    def test_random_flip_probability_one(self):
        rng = np.random.default_rng(0)
        images = np.arange(8, dtype=float).reshape(1, 1, 2, 4)
        flipped = random_flip(images, rng, probability=1.0)
        np.testing.assert_allclose(flipped[0, 0, 0], images[0, 0, 0, ::-1])

    def test_preprocessor_disables_augmentation_at_eval(self):
        pre = Preprocessor(augment=True, seed=0)
        images = np.random.default_rng(0).standard_normal((4, 3, 8, 8))
        out_eval = pre(images, training=False)
        np.testing.assert_allclose(out_eval, images)

    def test_preprocessor_crop_and_normalize(self):
        pre = Preprocessor(mean=1.0, std=2.0, crop=4)
        images = np.ones((2, 3, 6, 6))
        out = pre(images)
        assert out.shape == (2, 3, 4, 4)
        np.testing.assert_allclose(out, 0.0)


class TestDataLoader:
    def test_batches_cover_split(self, tiny_dataset):
        loader = DataLoader(tiny_dataset, tiny_dataset.train, batch_size=10, shuffle=False)
        total = sum(len(labels) for _, labels in loader)
        assert total == tiny_dataset.train.size
        assert len(loader) == (tiny_dataset.train.size + 9) // 10

    def test_shuffle_changes_order_between_epochs(self, tiny_dataset):
        loader = DataLoader(tiny_dataset, tiny_dataset.train, batch_size=tiny_dataset.train.size,
                            shuffle=True, seed=0)
        first_epoch = next(iter(loader))[1]
        second_epoch = next(iter(loader))[1]
        assert not np.array_equal(first_epoch, second_epoch)

    def test_no_shuffle_is_deterministic(self, tiny_dataset):
        loader = DataLoader(tiny_dataset, tiny_dataset.val, batch_size=8, shuffle=False)
        labels_a = np.concatenate([labels for _, labels in loader])
        labels_b = np.concatenate([labels for _, labels in loader])
        np.testing.assert_array_equal(labels_a, labels_b)

    def test_preprocessor_applied(self, tiny_dataset):
        loader = DataLoader(tiny_dataset, tiny_dataset.val, batch_size=4, shuffle=False,
                            preprocessor=Preprocessor(mean=0.0, std=1000.0))
        images, _ = next(iter(loader))
        assert np.abs(images).max() < 0.1


class TestCalibrationSet:
    def test_batches_sampled_from_validation(self, tiny_dataset):
        batches = sample_calibration_batches(tiny_dataset, num_samples=12, batch_size=5)
        assert sum(len(batch) for batch in batches) == 12
        assert batches[0].shape[1:] == (3, tiny_dataset.image_size, tiny_dataset.image_size)

    def test_sample_count_capped_by_split_size(self, tiny_dataset):
        batches = sample_calibration_batches(tiny_dataset, num_samples=10_000, batch_size=50)
        assert sum(len(batch) for batch in batches) == tiny_dataset.val.size

    def test_deterministic_given_seed(self, tiny_dataset):
        a = sample_calibration_batches(tiny_dataset, num_samples=8, seed=3)
        b = sample_calibration_batches(tiny_dataset, num_samples=8, seed=3)
        np.testing.assert_allclose(a[0], b[0])
