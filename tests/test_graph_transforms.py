"""Unit tests for the graph optimization transforms (Section 4.1)."""

import numpy as np

from repro import nn
from repro.autograd import Tensor, no_grad
from repro.graph import GraphBuilder, OpKind
from repro.graph.transforms import (
    avgpool_to_depthwise_conv,
    collapse_concats,
    find_scale_merge_groups,
    fold_batch_norms,
    run_default_optimizations,
    splice_identities,
)


def conv_bn_relu_graph(rng):
    builder = GraphBuilder("cbr")
    x = builder.input("input")
    conv = nn.Conv2d(3, 4, 3, padding=1, rng=rng)
    bn = nn.BatchNorm2d(4)
    bn.gamma.data[...] = rng.uniform(0.5, 2.0, 4)
    bn.beta.data[...] = rng.standard_normal(4)
    bn.set_buffer("running_mean", rng.standard_normal(4))
    bn.set_buffer("running_var", rng.uniform(0.5, 2.0, 4))
    x = builder.layer("conv", OpKind.CONV, conv, x)
    x = builder.layer("bn", OpKind.BATCHNORM, bn, x)
    x = builder.layer("relu", OpKind.RELU, nn.ReLU(), x)
    return builder.build(x)


class TestBatchNormFolding:
    def test_fold_removes_bn_and_preserves_inference_output(self, rng):
        graph = conv_bn_relu_graph(rng)
        graph.eval()
        x = Tensor(rng.standard_normal((2, 3, 6, 6)))
        with no_grad():
            before = graph(x).data
        folded = fold_batch_norms(graph)
        assert folded == 1
        assert not graph.nodes_of_kind(OpKind.BATCHNORM)
        with no_grad():
            after = graph(x).data
        np.testing.assert_allclose(after, before, atol=1e-9)

    def test_fold_creates_bias_when_absent(self, rng):
        builder = GraphBuilder("nobias")
        x = builder.input("input")
        conv = nn.Conv2d(3, 4, 3, padding=1, bias=False, rng=rng)
        x = builder.layer("conv", OpKind.CONV, conv, x)
        x = builder.layer("bn", OpKind.BATCHNORM, nn.BatchNorm2d(4), x)
        graph = builder.build(x)
        fold_batch_norms(graph)
        assert graph.nodes["conv"].module.bias is not None

    def test_no_fold_when_conv_has_other_consumers(self, rng):
        builder = GraphBuilder("branchy")
        x = builder.input("input")
        conv = builder.layer("conv", OpKind.CONV, nn.Conv2d(3, 4, 3, padding=1, rng=rng), x)
        bn = builder.layer("bn", OpKind.BATCHNORM, nn.BatchNorm2d(4), conv)
        out = builder.add("add", bn, conv)   # conv feeds both bn and add
        graph = builder.build(out)
        assert fold_batch_norms(graph) == 0

    def test_fold_into_linear(self, rng):
        builder = GraphBuilder("linbn")
        x = builder.input("input")
        x = builder.layer("fc", OpKind.LINEAR, nn.Linear(4, 3, rng=rng), x)
        x = builder.layer("bn", OpKind.BATCHNORM, nn.BatchNorm2d(3), x)
        graph = builder.build(x)
        assert fold_batch_norms(graph) == 1

    def test_fold_depthwise_conv(self, rng):
        builder = GraphBuilder("dwbn")
        x = builder.input("input")
        dw = nn.DepthwiseConv2d(4, 3, padding=1, rng=rng)
        x = builder.layer("dw", OpKind.DEPTHWISE_CONV, dw, x)
        x = builder.layer("bn", OpKind.BATCHNORM, nn.BatchNorm2d(4), x)
        graph = builder.build(x)
        graph.eval()
        inp = Tensor(rng.standard_normal((1, 4, 5, 5)))
        with no_grad():
            before = graph(inp).data
        assert fold_batch_norms(graph) == 1
        with no_grad():
            after = graph(inp).data
        np.testing.assert_allclose(after, before, atol=1e-9)


class TestSpliceIdentity:
    def test_removes_identity_and_dropout(self, rng):
        builder = GraphBuilder("idgraph")
        x = builder.input("input")
        x = builder.layer("conv", OpKind.CONV, nn.Conv2d(3, 4, 3, padding=1, rng=rng), x)
        x = builder.layer("ident", OpKind.IDENTITY, nn.Identity(), x)
        x = builder.layer("drop", OpKind.DROPOUT, nn.Identity(), x)
        x = builder.layer("relu", OpKind.RELU, nn.ReLU(), x)
        graph = builder.build(x)
        removed = splice_identities(graph)
        assert removed == 2
        assert graph.nodes["relu"].inputs == ["conv"]
        graph.validate()

    def test_forward_unchanged_after_splice(self, rng):
        builder = GraphBuilder("idgraph2")
        x = builder.input("input")
        x = builder.layer("conv", OpKind.CONV, nn.Conv2d(3, 4, 3, padding=1, rng=rng), x)
        x = builder.layer("ident", OpKind.IDENTITY, nn.Identity(), x)
        graph = builder.build(x)
        inp = Tensor(rng.standard_normal((1, 3, 4, 4)))
        with no_grad():
            before = graph(inp).data
        splice_identities(graph)
        with no_grad():
            after = graph(inp).data
        np.testing.assert_allclose(after, before)


class TestCollapseConcat:
    def test_nested_concat_collapsed(self, rng):
        builder = GraphBuilder("catcat")
        x = builder.input("input")
        a = builder.layer("conv_a", OpKind.CONV, nn.Conv2d(3, 2, 1, rng=rng), x)
        b = builder.layer("conv_b", OpKind.CONV, nn.Conv2d(3, 2, 1, rng=rng), x)
        c = builder.layer("conv_c", OpKind.CONV, nn.Conv2d(3, 2, 1, rng=rng), x)
        inner = builder.concat("inner", [a, b], axis=1)
        outer = builder.concat("outer", [inner, c], axis=1)
        graph = builder.build(outer)
        inp = Tensor(rng.standard_normal((1, 3, 4, 4)))
        with no_grad():
            before = graph(inp).data
        assert collapse_concats(graph) == 1
        assert graph.nodes["outer"].inputs == ["conv_a", "conv_b", "conv_c"]
        assert "inner" not in graph.nodes
        with no_grad():
            after = graph(inp).data
        np.testing.assert_allclose(after, before)

    def test_concat_with_other_consumers_not_collapsed(self, rng):
        builder = GraphBuilder("catkeep")
        x = builder.input("input")
        a = builder.layer("conv_a", OpKind.CONV, nn.Conv2d(3, 2, 1, rng=rng), x)
        b = builder.layer("conv_b", OpKind.CONV, nn.Conv2d(3, 2, 1, rng=rng), x)
        inner = builder.concat("inner", [a, b], axis=1)
        extra = builder.layer("relu", OpKind.RELU, nn.ReLU(), inner)
        outer = builder.concat("outer", [inner, extra], axis=1)
        graph = builder.build(outer)
        assert collapse_concats(graph) == 0


class TestAvgPoolRewrite:
    def test_avgpool_becomes_depthwise_conv_with_same_output(self, rng):
        builder = GraphBuilder("pool")
        x = builder.input("input")
        x = builder.layer("pool", OpKind.AVGPOOL, nn.AvgPool2d(2), x)
        graph = builder.build(x)
        inp = Tensor(rng.standard_normal((2, 3, 6, 6)))
        with no_grad():
            before = graph(inp).data
        rewritten = avgpool_to_depthwise_conv(graph, {"pool": 3})
        assert rewritten == 1
        node = graph.nodes["pool"]
        assert node.op == OpKind.DEPTHWISE_CONV
        assert node.attrs["reciprocal_avgpool"]
        np.testing.assert_allclose(node.module.weight.data, 0.25)
        with no_grad():
            after = graph(inp).data
        np.testing.assert_allclose(after, before, atol=1e-10)

    def test_skipped_without_channel_hint(self, rng):
        builder = GraphBuilder("pool2")
        x = builder.input("input")
        x = builder.layer("pool", OpKind.AVGPOOL, nn.AvgPool2d(2), x)
        graph = builder.build(x)
        assert avgpool_to_depthwise_conv(graph, {}) == 0


class TestScaleMergeAnalysis:
    def test_add_and_concat_groups_found(self, rng):
        builder = GraphBuilder("merge")
        x = builder.input("input")
        a = builder.layer("conv_a", OpKind.CONV, nn.Conv2d(3, 2, 1, rng=rng), x)
        b = builder.layer("conv_b", OpKind.CONV, nn.Conv2d(3, 2, 1, rng=rng), x)
        s = builder.add("sum", a, b)
        c = builder.concat("cat", [s, a], axis=1)
        graph = builder.build(c)
        groups = find_scale_merge_groups(graph)
        consumers = {g.consumer: g.members for g in groups}
        assert consumers["sum"] == ("conv_a", "conv_b")
        assert consumers["cat"] == ("sum", "conv_a")


class TestDefaultPipeline:
    def test_report_counts(self, rng):
        graph = conv_bn_relu_graph(rng)
        report = run_default_optimizations(graph)
        assert report["batch_norms_folded"] == 1
        assert report["identities_spliced"] == 0
        graph.validate()
