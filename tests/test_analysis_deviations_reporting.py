"""Unit tests for threshold-deviation analysis (Fig. 5/6/10) and reporting helpers."""

import numpy as np
import pytest

from repro.analysis import (
    ThresholdDeviation,
    collect_layer_distributions,
    collect_threshold_deviations,
    deviation_histogram,
    format_histogram,
    format_percent,
    format_series,
    format_table,
)
from repro.graph import prepare_retrain
from repro.graph.transforms import run_default_optimizations
from repro.training import PaperHyperparameters, Trainer
from repro.training.trainer import TrainingResult


class TestThresholdDeviation:
    def test_deviation_is_integer_bin_difference(self):
        record = ThresholdDeviation("w", 8, "weight", initial_log2_t=0.3, trained_log2_t=-1.4)
        assert record.deviation == -2
        assert record.prefers_precision and not record.prefers_range

    def test_positive_deviation_prefers_range(self):
        record = ThresholdDeviation("a", 8, "activation", initial_log2_t=0.3, trained_log2_t=2.5)
        assert record.deviation == 2
        assert record.prefers_range

    def test_raw_threshold_properties(self):
        record = ThresholdDeviation("w", 8, "weight", initial_log2_t=1.0, trained_log2_t=2.0)
        assert record.initial_threshold == pytest.approx(2.0)
        assert record.trained_threshold == pytest.approx(4.0)


class TestCollectionFromTrainingResult:
    def test_histogram_from_synthetic_result(self):
        result = TrainingResult(
            best_top1=0.0, best_top5=0.0, best_epoch=0.0, final_top1=0.0, final_top5=0.0,
            steps=0,
            initial_thresholds={"a.weight_quantizer": 0.2, "b.output_quantizer": 0.2,
                                "c.weight_quantizer": 0.4},
            final_thresholds={"a.weight_quantizer": -1.5, "b.output_quantizer": 1.3,
                              "c.weight_quantizer": 0.45},
        )
        deviations = collect_threshold_deviations(result)
        histogram = deviation_histogram(deviations)
        assert histogram == {-2: 1, 0: 1, 1: 1}

    def test_kind_classification(self):
        result = TrainingResult(
            best_top1=0, best_top5=0, best_epoch=0, final_top1=0, final_top5=0, steps=0,
            initial_thresholds={"x.weight_quantizer": 0.0, "x.bias_quantizer": 0.0,
                                "x.output_quantizer.impl": 0.0},
            final_thresholds={},
        )
        kinds = {d.name: d.kind for d in collect_threshold_deviations(result)}
        assert kinds["x.weight_quantizer"] == "weight"
        assert kinds["x.bias_quantizer"] == "bias"
        assert kinds["x.output_quantizer.impl"] == "activation"

    def test_histogram_kind_filter(self):
        result = TrainingResult(
            best_top1=0, best_top5=0, best_epoch=0, final_top1=0, final_top5=0, steps=0,
            initial_thresholds={"x.weight_quantizer": 0.0, "x.bias_quantizer": 0.0},
            final_thresholds={"x.weight_quantizer": 2.0, "x.bias_quantizer": 2.0},
        )
        deviations = collect_threshold_deviations(result)
        assert deviation_histogram(deviations, kinds=("weight",)) == {2: 1}


class TestLayerDistributions:
    def test_collect_from_trained_graph(self, lenet_graph, tiny_loaders, calibration_batches):
        train_loader, val_loader = tiny_loaders
        lenet_graph.eval()
        run_default_optimizations(lenet_graph)
        model = prepare_retrain(lenet_graph, calibration_batches, mode="wt,th", copy=False)
        hp = PaperHyperparameters(batch_size=train_loader.batch_size, threshold_lr=0.1,
                                  max_epochs=1, freeze_thresholds=False)
        trainer = Trainer(model.graph, train_loader, val_loader, hparams=hp)
        result = trainer.train(1)
        panels = collect_layer_distributions(model.graph, result, only_changed=False)
        assert panels, "expected at least one compute layer panel"
        for panel in panels:
            assert panel.values.ndim == 1
            assert panel.initial_threshold > 0
            assert 0.0 <= panel.clipped_fraction <= 1.0
            assert panel.kind in ("dense", "depthwise", "linear")


class TestReporting:
    def test_format_percent(self):
        assert format_percent(0.7123) == "71.2"

    def test_format_table_alignment(self):
        table = format_table(["name", "top-1"], [["vgg", 71.5], ["mobilenet", 70.9]],
                             title="Results")
        lines = table.splitlines()
        assert lines[0] == "Results"
        assert "name" in lines[1] and "top-1" in lines[1]
        assert len(lines) == 5

    def test_format_histogram(self):
        text = format_histogram({-1: 2, 0: 10, 3: 1}, title="Deviations")
        assert "Deviations" in text
        assert "+3" in text and "-1" in text

    def test_format_histogram_empty(self):
        assert "(empty)" in format_histogram({})

    def test_format_series_subsamples(self):
        x = np.arange(100)
        y = np.linspace(0, 1, 100)
        text = format_series(x, y, "loss", max_points=5)
        assert text.startswith("loss:")
        assert text.count("(") == 5
