"""Unit tests for activations, losses and straight-through estimators."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    ceil_ste,
    check_gradients,
    cross_entropy,
    dropout,
    floor_ste,
    leaky_relu,
    log_softmax,
    mse_loss,
    relu,
    relu6,
    round_half_to_even,
    round_ste,
    sigmoid,
    softmax,
    stop_gradient,
)


class TestActivations:
    def test_relu_forward_and_gradient(self):
        x = Tensor([-1.0, 0.0, 2.0], requires_grad=True)
        out = relu(x)
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 0.0, 1.0])

    def test_relu6_clips_at_six(self):
        x = Tensor([-1.0, 3.0, 7.0], requires_grad=True)
        out = relu6(x)
        np.testing.assert_allclose(out.data, [0.0, 3.0, 6.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_leaky_relu_slope(self):
        x = Tensor([-2.0, 4.0], requires_grad=True)
        out = leaky_relu(x, negative_slope=0.1)
        np.testing.assert_allclose(out.data, [-0.2, 4.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [0.1, 1.0])

    def test_sigmoid_range_and_gradient(self):
        x = Tensor(np.linspace(-5, 5, 11), requires_grad=True)
        out = sigmoid(x)
        assert np.all(out.data > 0) and np.all(out.data < 1)
        check_gradients(sigmoid, [Tensor(np.linspace(-2, 2, 7), requires_grad=True)])

    def test_numerical_gradients_of_activations(self):
        x = Tensor(np.array([-1.5, -0.3, 0.4, 2.2]), requires_grad=True)
        check_gradients(lambda t: leaky_relu(t, 0.2), [x])


class TestSoftmaxAndLosses:
    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).standard_normal((4, 7)))
        np.testing.assert_allclose(softmax(x).data.sum(axis=1), np.ones(4), atol=1e-12)

    def test_softmax_shift_invariance(self):
        x = np.random.default_rng(1).standard_normal((2, 5))
        np.testing.assert_allclose(softmax(Tensor(x)).data,
                                   softmax(Tensor(x + 100.0)).data, atol=1e-9)

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(np.random.default_rng(2).standard_normal((3, 6)))
        np.testing.assert_allclose(log_softmax(x).data, np.log(softmax(x).data), atol=1e-9)

    def test_softmax_gradient_numerical(self):
        x = Tensor(np.random.default_rng(3).standard_normal((2, 4)), requires_grad=True)
        check_gradients(lambda t: softmax(t, axis=-1), [x])

    def test_cross_entropy_uniform_logits(self):
        logits = Tensor(np.zeros((5, 10)), requires_grad=True)
        loss = cross_entropy(logits, np.zeros(5, dtype=np.int64))
        np.testing.assert_allclose(loss.item(), np.log(10.0), atol=1e-9)

    def test_cross_entropy_perfect_prediction_is_small(self):
        logits = np.full((3, 4), -20.0)
        logits[np.arange(3), [0, 1, 2]] = 20.0
        loss = cross_entropy(Tensor(logits), np.array([0, 1, 2]))
        assert loss.item() < 1e-6

    def test_cross_entropy_gradient_is_softmax_minus_onehot(self):
        rng = np.random.default_rng(4)
        logits = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        labels = np.array([0, 2, 1, 1])
        cross_entropy(logits, labels).backward()
        probs = softmax(Tensor(logits.data)).data
        onehot = np.zeros((4, 3))
        onehot[np.arange(4), labels] = 1.0
        np.testing.assert_allclose(logits.grad, (probs - onehot) / 4, atol=1e-9)

    def test_cross_entropy_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros(3)), np.zeros(3, dtype=int))

    def test_mse_loss(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([0.0, 0.0])
        loss = mse_loss(a, b)
        np.testing.assert_allclose(loss.item(), 2.5)
        loss.backward()
        np.testing.assert_allclose(a.grad, [1.0, 2.0])


class TestStraightThroughEstimators:
    def test_round_half_to_even_banker_rounding(self):
        values = np.array([0.5, 1.5, 2.5, -0.5, -1.5])
        np.testing.assert_allclose(round_half_to_even(values), [0.0, 2.0, 2.0, -0.0, -2.0])

    def test_round_ste_forward_rounds_but_gradient_is_identity(self):
        x = Tensor([0.4, 0.6, 1.5], requires_grad=True)
        out = round_ste(x)
        np.testing.assert_allclose(out.data, [0.0, 1.0, 2.0])
        assert not np.allclose(out.data, x.data)  # bxe != x (paper Section 3.3)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 1.0, 1.0])  # d/dx bxe = 1

    def test_ceil_ste(self):
        x = Tensor([0.2, -0.2], requires_grad=True)
        out = ceil_ste(x)
        np.testing.assert_allclose(out.data, [1.0, 0.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 1.0])

    def test_floor_ste(self):
        x = Tensor([0.7, -0.2], requires_grad=True)
        out = floor_ste(x)
        np.testing.assert_allclose(out.data, [0.0, -1.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 1.0])

    def test_stop_gradient_blocks_backward(self):
        x = Tensor([2.0], requires_grad=True)
        y = stop_gradient(x) * 3.0
        assert not y.requires_grad
        assert x.grad is None


class TestDropout:
    def test_dropout_disabled_at_eval(self):
        x = Tensor(np.ones(100))
        out = dropout(x, 0.5, np.random.default_rng(0), training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_dropout_preserves_expected_value(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones(20000))
        out = dropout(x, 0.3, rng, training=True)
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_dropout_zero_rate_is_identity(self):
        x = Tensor(np.ones(10), requires_grad=True)
        out = dropout(x, 0.0, np.random.default_rng(0), training=True)
        assert out is x
