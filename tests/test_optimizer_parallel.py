"""Optimizer pass pipeline and multicore execution: bit-exactness, fused-step
introspection, sharded/branch-parallel parity, profiler and autotune caching."""

from __future__ import annotations

import re

import numpy as np
import pytest

from repro import nn
from repro.engine import (
    BatchedRunner,
    BranchParallelEngine,
    OptimizedPlan,
    ShardedRunner,
    check_plan_parity,
    lower_graph,
    optimize_plan,
)
from repro.engine.plan import ExecutionPlan, _ActivationOnlyStep
from repro.graph import GraphBuilder, quantize_static
from repro.graph.ir import OpKind
from repro.models import MODEL_REGISTRY, compile_registry_model

IMAGE_SIZE = 8  # keeps every global-average-pool window a power of two
BATCH = 4


def _compile(name: str, **kwargs):
    return compile_registry_model(name, image_size=IMAGE_SIZE, batch_size=BATCH,
                                  calibration_samples=8, calibration_batch_size=4,
                                  **kwargs)


def _batches(count: int = 2, seed: int = 0) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((BATCH, 3, IMAGE_SIZE, IMAGE_SIZE)) for _ in range(count)]


@pytest.fixture(scope="module")
def mobilenet():
    return _compile("mobilenet_v1_nano", optimize=False)


@pytest.fixture(scope="module")
def inception():
    return _compile("inception_nano", optimize=False)


# ---------------------------------------------------------------------- #
# Parity: optimized plan vs unoptimized plan on every registry model
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("model_name", sorted(MODEL_REGISTRY))
def test_optimized_plan_bit_exact_on_registry_model(model_name):
    compiled = _compile(model_name, optimize=False)
    optimized = optimize_plan(compiled.plan)
    engine = optimized.bind((BATCH, 3, IMAGE_SIZE, IMAGE_SIZE))
    batches = _batches(2)
    report = check_plan_parity(compiled.engine, engine, batches)
    assert report.bit_exact, f"{model_name}: {report}"
    assert report.total_codes > 0
    # Repeat the comparison: cross-pass state (shared scratch, zero-padded
    # borders) must not corrupt later passes.
    again = check_plan_parity(compiled.engine, engine, batches)
    assert again.bit_exact, f"{model_name} second pass: {again}"


def test_optimized_int_backend_matches_baseline(mobilenet):
    optimized = optimize_plan(mobilenet.plan)
    engine = optimized.bind((BATCH, 3, IMAGE_SIZE, IMAGE_SIZE), accumulate="int")
    report = check_plan_parity(mobilenet.engine, engine, _batches(1))
    assert report.bit_exact, str(report)


def test_every_kernel_variant_is_bit_exact(mobilenet):
    """Force each variant on every tunable step; all must reproduce baseline."""
    batches = _batches(1)
    seen = set()
    for variant in ("blas", "blas32", "wingemm", "wingemm32", "int"):
        optimized = optimize_plan(mobilenet.plan, autotune=False)
        engine = optimized.bind((BATCH, 3, IMAGE_SIZE, IMAGE_SIZE))
        forced = 0
        for bound in engine.steps:
            if hasattr(bound, "variants") and variant in bound.variants:
                bound.set_variant(variant)
                forced += 1
        if not forced:
            continue
        seen.add(variant)
        report = check_plan_parity(mobilenet.engine, engine, batches)
        assert report.bit_exact, f"variant {variant}: {report}"
    assert {"blas", "blas32", "int"} <= seen


@pytest.fixture(scope="module")
def grouped_conv_plan():
    """A quantized graph with a grouped (non-depthwise) convolution.

    The registry has depthwise (groups == channels) and dense (groups == 1)
    convs but no intermediate grouped family, so the grouped ``wingemm``
    variant gets its own graph: 8 channels in 2 groups of 4.
    """
    rng = np.random.default_rng(0)
    builder = GraphBuilder("grouped_conv_test")
    x = builder.input("input")
    x = builder.layer("stem", OpKind.CONV, nn.Conv2d(3, 8, 3, padding=1, rng=rng), x)
    x = builder.layer("stem_relu", OpKind.RELU, nn.ReLU(), x)
    x = builder.layer("gconv", OpKind.CONV,
                      nn.Conv2d(8, 8, 3, padding=1, groups=2, rng=rng), x)
    x = builder.layer("gconv_relu", OpKind.RELU, nn.ReLU(), x)
    x = builder.layer("gap", OpKind.GLOBAL_AVGPOOL,
                      nn.GlobalAvgPool2d(keepdims=False), x)
    x = builder.layer("fc", OpKind.LINEAR, nn.Linear(8, 4, rng=rng), x)
    graph = builder.build(x)
    graph.eval()
    calibration = [np.random.default_rng(s).standard_normal((BATCH, 3, IMAGE_SIZE,
                                                             IMAGE_SIZE))
                   for s in (1, 2)]
    quantized = quantize_static(graph, calibration, sequential=False, copy=False)
    return lower_graph(quantized.graph)


def test_grouped_conv_wingemm_variants_are_bit_exact(grouped_conv_plan):
    """Per-variant forcing on the grouped-conv family, wingemm included."""
    baseline = grouped_conv_plan.bind((BATCH, 3, IMAGE_SIZE, IMAGE_SIZE))
    batches = _batches(2, seed=9)
    grouped_variants: set[str] = set()
    for variant in ("blas", "blas32", "wingemm", "wingemm32", "int"):
        optimized = optimize_plan(grouped_conv_plan, autotune=False)
        engine = optimized.bind((BATCH, 3, IMAGE_SIZE, IMAGE_SIZE))
        forced_on_grouped = False
        for bound in engine.steps:
            if hasattr(bound, "variants") and variant in bound.variants:
                bound.set_variant(variant)
                if bound.step.name == "gconv":
                    forced_on_grouped = True
                    grouped_variants.add(variant)
        if variant.startswith("wingemm"):
            assert forced_on_grouped, \
                f"grouped conv must offer the {variant} variant"
        report = check_plan_parity(baseline, engine, batches)
        assert report.bit_exact, f"grouped conv, variant {variant}: {report}"
    assert {"wingemm", "wingemm32"} <= grouped_variants
    # The autotuner must arbitrate over the grouped variants too.
    tuned = optimize_plan(grouped_conv_plan)
    engine = tuned.bind((BATCH, 3, IMAGE_SIZE, IMAGE_SIZE))
    assert "gconv" in tuned.kernel_choices
    report = check_plan_parity(baseline, engine, batches)
    assert report.bit_exact, f"autotuned grouped plan: {report}"


def test_compile_registry_model_defaults_to_optimized(mobilenet):
    compiled = _compile("mobilenet_v1_nano")
    assert isinstance(compiled.plan, OptimizedPlan)
    assert compiled.optimization is not None
    assert compiled.optimization["pointwise_lowered"] == 4
    assert compiled.optimization["depthwise_direct"] == 4
    assert compiled.plan.kernel_choices, "autotune should cache kernel choices"
    report = check_plan_parity(mobilenet.engine, compiled.engine, _batches(2))
    assert report.bit_exact, str(report)


# ---------------------------------------------------------------------- #
# Fused-step describe() round-trip
# ---------------------------------------------------------------------- #
def test_fused_step_describe_round_trip(mobilenet):
    optimized = optimize_plan(mobilenet.plan, autotune=False)
    summary = optimized.summary()
    markers = {"pointwise-gemm[no-im2col]": 0, "fused-epilogue[depthwise-direct]": 0,
               "fused-epilogue[im2col]": 0, "fused-epilogue[gemm]": 0}
    for step in optimized.steps:
        text = step.describe()
        for marker in markers:
            if marker in text:
                markers[marker] += 1
        # Round-trip the output-stage annotation against the step's fields.
        match = re.search(r"out→q(\d+) f=(-?\d+)", text)
        if match and getattr(step, "output_stage", None) is not None:
            assert int(match.group(1)) == step.output_stage.bits
            assert int(match.group(2)) == step.output_stage.fraction
        # Weight-fraction annotation must survive the rewrite too.
        match = re.search(r"f_w=(-?\d+)", text)
        if match:
            assert int(match.group(1)) == step.weight_fraction
        assert text in summary
    assert markers["pointwise-gemm[no-im2col]"] == 4
    assert markers["fused-epilogue[depthwise-direct]"] == 4
    assert markers["fused-epilogue[im2col]"] == 1   # the stem conv
    assert markers["fused-epilogue[gemm]"] == 1     # the classifier


def test_manifest_reports_optimizer_and_choices(mobilenet):
    optimized = optimize_plan(mobilenet.plan)
    optimized.bind((BATCH, 3, IMAGE_SIZE, IMAGE_SIZE))
    manifest = optimized.manifest()
    assert manifest["optimizer"]["pointwise_lowered"] == 4
    assert "eliminate_im2col" in manifest["optimizer"]["passes"]
    assert manifest["optimizer"]["prepacked_steps"] == 10
    assert set(manifest["kernel_choices"]) == {
        s["name"] for s in manifest["steps"] if "weight_dtype" in s}
    assert manifest["int32_mac_compatible"]


# ---------------------------------------------------------------------- #
# Standalone-activation fusion
# ---------------------------------------------------------------------- #
def test_standalone_activation_fuses_into_producer(mobilenet):
    plan = mobilenet.plan
    relu = _ActivationOnlyStep("post_relu", OpKind.RELU, [plan.output_name])
    extended = ExecutionPlan(graph_name=plan.graph_name, input_name=plan.input_name,
                             output_name="post_relu", steps=list(plan.steps) + [relu])
    optimized = optimize_plan(extended, autotune=False)
    assert len(optimized.steps) == len(extended.steps) - 1
    assert optimized.report.activations_fused == 1
    assert optimized.output_name == plan.output_name
    assert "+relu[fused]" in optimized.summary()
    # The fused wrapper must not hide its compute step from the manifest.
    baseline_manifest = optimize_plan(plan, autotune=False).manifest()
    fused_manifest = optimized.manifest()
    assert fused_manifest["weight_bytes"] == baseline_manifest["weight_bytes"]
    assert (sum("weight_dtype" in s for s in fused_manifest["steps"])
            == sum("weight_dtype" in s for s in baseline_manifest["steps"]))
    base = extended.bind((BATCH, 3, IMAGE_SIZE, IMAGE_SIZE))
    engine = optimized.bind((BATCH, 3, IMAGE_SIZE, IMAGE_SIZE))
    report = check_plan_parity(base, engine, _batches(2))
    assert report.bit_exact, str(report)
    # The fold must actually clamp: logits contain negatives pre-ReLU.
    codes = engine.run(_batches(1)[0]).codes
    assert codes.min() == 0


# ---------------------------------------------------------------------- #
# ShardedRunner
# ---------------------------------------------------------------------- #
def test_sharded_runner_matches_single_engine(mobilenet):
    optimized = optimize_plan(mobilenet.plan)
    engine = optimized.bind((BATCH, 3, IMAGE_SIZE, IMAGE_SIZE))
    (batch,) = _batches(1)
    reference = engine.run(batch).codes
    with ShardedRunner(optimized, (BATCH, 3, IMAGE_SIZE, IMAGE_SIZE), workers=1) as one:
        with ShardedRunner(optimized, (BATCH, 3, IMAGE_SIZE, IMAGE_SIZE), workers=4) as four:
            codes_one = one.run(batch).codes
            codes_four = four.run(batch).codes
            np.testing.assert_array_equal(codes_one, codes_four)
            np.testing.assert_array_equal(codes_one, reference)
            # Variable fill must agree with the engine's partial execution.
            partial = engine.run_partial(batch[:3]).codes
            np.testing.assert_array_equal(four.run_partial(batch[:3]).codes, partial)
            np.testing.assert_array_equal(one.run_partial(batch[:3]).codes, partial)
    assert four.shard_sizes == [1, 1, 1, 1]


def test_sharded_runner_clamps_workers_to_batch(mobilenet):
    optimized = optimize_plan(mobilenet.plan)
    runner = ShardedRunner(optimized, (2, 3, IMAGE_SIZE, IMAGE_SIZE), workers=8)
    assert runner.workers == 2
    out = runner.run(np.zeros((2, 3, IMAGE_SIZE, IMAGE_SIZE)))
    assert out.codes.shape[0] == 2
    runner.close()


def test_batched_runner_workers_knob_is_bit_exact(mobilenet):
    compiled = _compile("mobilenet_v1_nano")
    rng = np.random.default_rng(3)
    requests = rng.standard_normal((BATCH * 2 + 1, 3, IMAGE_SIZE, IMAGE_SIZE))
    plain_results, plain_stats = BatchedRunner(compiled.engine).run(requests)
    sharded_runner = BatchedRunner(compiled.engine, workers=2)
    sharded_results, sharded_stats = sharded_runner.run(requests)
    assert plain_stats.requests == sharded_stats.requests == len(requests)
    for a, b in zip(plain_results, sharded_results):
        np.testing.assert_array_equal(a.codes, b.codes)
    assert sharded_stats.latency_max_ms >= sharded_stats.latency_p99_ms
    sharded_runner.close()


# ---------------------------------------------------------------------- #
# Branch-parallel execution
# ---------------------------------------------------------------------- #
def test_branch_parallel_engine_matches_sequential(inception):
    optimized = optimize_plan(inception.plan)
    sequential = optimized.bind((BATCH, 3, IMAGE_SIZE, IMAGE_SIZE))
    with BranchParallelEngine(optimized, (BATCH, 3, IMAGE_SIZE, IMAGE_SIZE),
                              workers=4) as parallel:
        assert parallel.max_width > 1, "inception should expose parallel branches"
        for batch in _batches(2):
            np.testing.assert_array_equal(parallel.run(batch).codes,
                                          sequential.run(batch).codes)
        partial = parallel.run_partial(_batches(1)[0][:2])
        np.testing.assert_array_equal(partial.codes,
                                      sequential.run_partial(_batches(1)[0][:2]).codes)


# ---------------------------------------------------------------------- #
# Profiler and autotune caching
# ---------------------------------------------------------------------- #
def test_profile_breaks_down_per_step(mobilenet):
    engine = optimize_plan(mobilenet.plan).bind((BATCH, 3, IMAGE_SIZE, IMAGE_SIZE))
    profile = engine.profile(repeats=2)
    assert len(profile.steps) == len(mobilenet.plan.steps)
    assert profile.total_ms > 0
    assert abs(sum(t.share for t in profile.steps) - 1.0) < 1e-9
    assert any(t.variant for t in profile.steps), "tunable steps report variants"
    table = profile.table()
    for timing in profile.steps:
        assert timing.name in table
    payload = profile.to_dict()
    assert payload["graph"] == "mobilenet_v1_nano"
    assert len(payload["steps"]) == len(profile.steps)


def test_plan_profile_convenience_binds_and_times(mobilenet):
    profile = mobilenet.plan.profile((BATCH, 3, IMAGE_SIZE, IMAGE_SIZE), repeats=1)
    assert profile.total_ms > 0


def test_autotune_choices_cached_and_reapplied(mobilenet):
    optimized = optimize_plan(mobilenet.plan)
    assert optimized.kernel_choices is None
    optimized.bind((BATCH, 3, IMAGE_SIZE, IMAGE_SIZE))
    choices = optimized.kernel_choices
    assert choices, "first blas bind must autotune"
    second = optimized.bind((BATCH, 3, IMAGE_SIZE, IMAGE_SIZE))
    assert optimized.kernel_choices is choices, "second bind reuses the cache"
    for bound in second.steps:
        if hasattr(bound, "variant") and bound.step.name in choices:
            assert bound.variant == choices[bound.step.name]


def test_cached_choices_can_be_pinned(mobilenet):
    optimized = optimize_plan(mobilenet.plan, autotune=False)
    optimized.kernel_choices = {"dws1_dw": "int"}
    engine = optimized.bind((BATCH, 3, IMAGE_SIZE, IMAGE_SIZE))
    variants = {b.step.name: b.variant for b in engine.steps if hasattr(b, "variant")}
    assert variants["dws1_dw"] == "int"
    report = check_plan_parity(mobilenet.engine, engine, _batches(1))
    assert report.bit_exact, str(report)
