"""Unit tests for static and retrain quantization modes."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.graph import (
    calibrate_activations,
    collect_activation_quantizers,
    collect_tqt_quantizers,
    prepare_retrain,
    quantize_graph,
    quantize_static,
)
from repro.graph.transforms import run_default_optimizations
from repro.models import build_model
from repro.quant import INT4_PRECISION, QuantScheme


@pytest.fixture
def optimized_lenet(lenet_graph):
    lenet_graph.eval()
    run_default_optimizations(lenet_graph)
    return lenet_graph


class TestCalibration:
    def test_all_activation_quantizers_calibrated(self, optimized_lenet, calibration_batches):
        quantize_graph(optimized_lenet, QuantScheme(train_thresholds=False))
        thresholds = calibrate_activations(optimized_lenet, calibration_batches)
        quantizers = collect_activation_quantizers(optimized_lenet)
        assert set(thresholds) == set(quantizers)
        assert all(t > 0 for t in thresholds.values())
        assert all(q.mode == "quantize" for q in quantizers.values())

    def test_single_pass_calibration(self, optimized_lenet, calibration_batches):
        quantize_graph(optimized_lenet, QuantScheme(train_thresholds=False))
        thresholds = calibrate_activations(optimized_lenet, calibration_batches,
                                           sequential=False)
        assert all(t > 0 for t in thresholds.values())

    def test_requires_at_least_one_batch(self, optimized_lenet):
        quantize_graph(optimized_lenet, QuantScheme())
        with pytest.raises(ValueError):
            calibrate_activations(optimized_lenet, [])


class TestStaticMode:
    def test_static_quantization_end_to_end(self, optimized_lenet, calibration_batches, rng):
        model = quantize_static(optimized_lenet, calibration_batches)
        assert model.mode == "static"
        assert not model.scheme.train_thresholds
        assert model.scheme.weight_init == "max"
        out = model.graph(Tensor(rng.standard_normal((2, 3, 8, 8))))
        assert out.shape[0] == 2

    def test_static_copy_leaves_original_untouched(self, optimized_lenet, calibration_batches):
        original_nodes = set(optimized_lenet.nodes)
        quantize_static(optimized_lenet, calibration_batches, copy=True)
        assert set(optimized_lenet.nodes) == original_nodes

    def test_static_thresholds_not_trainable(self, optimized_lenet, calibration_batches):
        model = quantize_static(optimized_lenet, calibration_batches)
        trainable = collect_tqt_quantizers(model.graph, trainable_only=True)
        assert len(trainable) == 0

    def test_static_output_close_to_fp32_for_easy_graph(self, optimized_lenet,
                                                        calibration_batches, rng):
        """INT8 static quantization of a benign network is a small perturbation."""
        x = Tensor(rng.standard_normal((4, 3, 8, 8)))
        with no_grad():
            fp32_out = optimized_lenet(x).data
        model = quantize_static(optimized_lenet, calibration_batches)
        with no_grad():
            int8_out = model.graph(x).data
        scale = np.abs(fp32_out).max()
        assert np.abs(int8_out - fp32_out).max() < 0.25 * scale


class TestRetrainMode:
    def test_wt_th_mode_trains_thresholds(self, optimized_lenet, calibration_batches):
        model = prepare_retrain(optimized_lenet, calibration_batches, mode="wt,th")
        trainable = collect_tqt_quantizers(model.graph, trainable_only=True)
        assert len(trainable) > 0
        assert model.scheme.weight_init == "3sd"

    def test_wt_mode_keeps_thresholds_fixed(self, optimized_lenet, calibration_batches):
        model = prepare_retrain(optimized_lenet, calibration_batches, mode="wt")
        trainable = collect_tqt_quantizers(model.graph, trainable_only=True)
        assert len(trainable) == 0
        assert model.scheme.weight_init == "max"

    def test_invalid_mode_rejected(self, optimized_lenet, calibration_batches):
        with pytest.raises(ValueError):
            prepare_retrain(optimized_lenet, calibration_batches, mode="static")

    def test_int4_precision_propagates(self, optimized_lenet, calibration_batches):
        model = prepare_retrain(optimized_lenet, calibration_batches, mode="wt,th",
                                precision=INT4_PRECISION)
        middle = [name for name in model.report.weight_bits
                  if name not in (model.report.first_layer, model.report.last_layer)]
        for name in middle:
            assert model.report.weight_bits[name] == 4

    def test_fake_quant_method(self, optimized_lenet, calibration_batches, rng):
        model = prepare_retrain(optimized_lenet, calibration_batches, mode="wt,th",
                                method="fake_quant")
        out = model.graph(Tensor(rng.standard_normal((2, 3, 8, 8))))
        assert out.shape[0] == 2

    def test_calibration_thresholds_recorded(self, optimized_lenet, calibration_batches):
        model = prepare_retrain(optimized_lenet, calibration_batches, mode="wt,th")
        assert len(model.calibration_thresholds) > 0


class TestMobileNetStaticDegradation:
    def test_per_tensor_static_quantization_degrades_depthwise_network(self, rng,
                                                                        calibration_batches):
        """The paper's headline observation (Table 3): static per-tensor INT8
        quantization hurts depthwise-conv networks far more than plain CNNs.
        Here we check the mechanism at the output level: the quantized/FP32
        output disagreement is much larger for the spread-channel MobileNet
        than for the VGG-style stack."""
        def relative_error(name, **kwargs):
            graph = build_model(name, num_classes=4, seed=3, **kwargs)
            graph.eval()
            run_default_optimizations(graph)
            x = Tensor(rng.standard_normal((4, 3, 16, 16)))
            with no_grad():
                fp32 = graph(x).data
            model = quantize_static(graph, calibration_batches)
            with no_grad():
                quantized = model.graph(x).data
            return float(np.abs(quantized - fp32).mean() / (np.abs(fp32).mean() + 1e-12))

        mobilenet_error = relative_error("mobilenet_v1_nano", channel_range_spread=32.0)
        vgg_error = relative_error("vgg_nano")
        assert mobilenet_error > vgg_error
