"""Serving building blocks: batching policy/queues, plan cache, admission."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.serving import (
    AdmissionController,
    AdmissionPolicy,
    BatchingPolicy,
    DynamicBatcher,
    EwmaCostModel,
    MetricsCollector,
    PlanCache,
    Request,
    percentiles_ms,
)


def _req(rid: int, arrival: float, model: str = "m", deadline: float | None = None) -> Request:
    return Request(request_id=rid, model=model, arrival_s=arrival,
                   image=np.zeros((1, 2, 2)), deadline_s=deadline)


# ---------------------------------------------------------------------- #
# BatchingPolicy / DynamicBatcher
# ---------------------------------------------------------------------- #
def test_policy_validation_and_kinds():
    assert BatchingPolicy.full_batch(8).kind == "full_batch"
    dynamic = BatchingPolicy.dynamic(8, 5e-3)
    assert dynamic.kind == "dynamic"
    assert "5.0ms" in dynamic.describe()
    with pytest.raises(ValueError, match="max_batch"):
        BatchingPolicy(max_batch=0)
    with pytest.raises(ValueError, match="max_wait_s"):
        BatchingPolicy(max_batch=4, max_wait_s=-1.0)


def test_batcher_routes_only_its_model():
    queue = DynamicBatcher("a", BatchingPolicy.full_batch(4))
    with pytest.raises(ValueError, match="routed"):
        queue.push(_req(0, 0.0, model="b"))


def test_ready_time_size_trigger():
    queue = DynamicBatcher("m", BatchingPolicy.full_batch(2))
    assert queue.ready_time(pending_arrivals=5) == math.inf
    queue.push(_req(0, 1.0))
    # partial batch + more arrivals coming: keep waiting
    assert queue.ready_time(pending_arrivals=5) == math.inf
    queue.push(_req(1, 3.0))
    # full batch: ready the moment the batch-filling request arrived
    assert queue.ready_time(pending_arrivals=5) == 3.0


def test_ready_time_timeout_trigger():
    queue = DynamicBatcher("m", BatchingPolicy.dynamic(4, 0.25))
    queue.push(_req(0, 1.0))
    queue.push(_req(1, 1.1))
    assert queue.ready_time(pending_arrivals=3) == pytest.approx(1.25)


def test_ready_time_end_of_stream_flush():
    queue = DynamicBatcher("m", BatchingPolicy.full_batch(4))
    queue.push(_req(0, 2.0))
    assert queue.ready_time(pending_arrivals=1) == math.inf
    assert queue.ready_time(pending_arrivals=0) == 2.0


def test_pop_batch_preserves_fifo_and_remainder():
    queue = DynamicBatcher("m", BatchingPolicy.full_batch(2))
    for rid in range(5):
        queue.push(_req(rid, float(rid)))
    assert [r.request_id for r in queue.pop_batch()] == [0, 1]
    assert [r.request_id for r in queue.pop_batch()] == [2, 3]
    assert queue.depth == 1
    assert queue.head_arrival_s == 4.0


# ---------------------------------------------------------------------- #
# PlanCache (stubbed compile: no real models involved)
# ---------------------------------------------------------------------- #
def test_plan_cache_lru_eviction_and_recompile_accounting():
    compiles: list[str] = []

    def fake_compile(name: str) -> str:
        compiles.append(name)
        return f"plan:{name}"

    cache = PlanCache(capacity=2, compile_fn=fake_compile)
    assert cache.get("a") == "plan:a"
    assert cache.get("b") == "plan:b"
    assert cache.get("a") == "plan:a"          # hit, refreshes LRU position
    assert cache.get("c") == "plan:c"          # evicts b (LRU)
    assert cache.resident == ["a", "c"]
    assert "b" not in cache
    assert cache.get("b") == "plan:b"          # recompile of an evicted entry
    assert compiles == ["a", "b", "c", "b"]
    stats = cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 4
    assert stats["evictions"] == 2
    assert stats["recompiles"] == 1
    assert stats["total_compile_s"] >= 0.0
    assert set(stats["compile_s"]) == {"a", "b", "c"}


def test_plan_cache_rejects_zero_capacity():
    with pytest.raises(ValueError, match="capacity"):
        PlanCache(capacity=0, compile_fn=lambda name: name)


def test_plan_cache_peek_has_no_side_effects():
    cache = PlanCache(capacity=2, compile_fn=lambda name: f"plan:{name}")
    cache.get("a")
    cache.get("b")                         # LRU order: a, b
    assert cache.peek("a") == "plan:a"
    assert cache.peek("zzz") is None
    stats = cache.stats()
    assert stats["hits"] == 0 and stats["misses"] == 2
    cache.get("c")                         # peek must not have refreshed "a"
    assert cache.resident == ["b", "c"]


# ---------------------------------------------------------------------- #
# EWMA cost model + admission control
# ---------------------------------------------------------------------- #
def test_ewma_cost_model_prime_and_observe():
    model = EwmaCostModel(alpha=0.5, default_s=0.01)
    assert model.estimate("m") == 0.01
    model.prime("m", 0.004)
    assert model.estimate("m") == 0.004
    model.observe("m", 0.008)
    assert model.estimate("m") == pytest.approx(0.006)
    assert model.to_dict() == {"m": pytest.approx(0.006)}
    with pytest.raises(ValueError, match="alpha"):
        EwmaCostModel(alpha=0.0)


def _controller(max_depth=2, cost=0.01) -> tuple[AdmissionController, dict]:
    cost_model = EwmaCostModel(default_s=cost)
    controller = AdmissionController(AdmissionPolicy(max_queue_depth=max_depth),
                                     cost_model)
    queues = {"m": DynamicBatcher("m", BatchingPolicy.full_batch(2))}
    return controller, queues


def test_admission_bounded_queue_sheds_when_full():
    controller, queues = _controller(max_depth=2)
    queues["m"].push(_req(0, 0.0))
    queues["m"].push(_req(1, 0.0))
    decision = controller.consider(_req(2, 0.0), now=0.0, worker_free=0.0,
                                   queues=queues, batching=queues["m"].policy)
    assert not decision.admitted
    assert decision.reason == "queue_full"


def test_admission_slo_shed_uses_predicted_latency():
    controller, queues = _controller(max_depth=None, cost=0.05)
    # Worker busy for another 200ms and one queued batch at 50ms: a 100ms
    # deadline is unmeetable, a 1s deadline is comfortable.
    queues["m"].push(_req(0, 0.0))
    tight = controller.consider(_req(1, 0.0, deadline=0.1), now=0.0, worker_free=0.2,
                                queues=queues, batching=queues["m"].policy)
    assert not tight.admitted and tight.reason == "slo"
    assert tight.predicted_latency_s == pytest.approx(0.2 + 0.05 + 0.05)
    loose = controller.consider(_req(2, 0.0, deadline=1.0), now=0.0, worker_free=0.2,
                                queues=queues, batching=queues["m"].policy)
    assert loose.admitted and loose.predicted_latency_s is not None


def test_admission_without_deadline_always_admits_on_slo_gate():
    controller, queues = _controller(max_depth=None, cost=10.0)
    decision = controller.consider(_req(0, 0.0, deadline=None), now=0.0,
                                   worker_free=100.0, queues=queues,
                                   batching=queues["m"].policy)
    assert decision.admitted


# ---------------------------------------------------------------------- #
# Metrics
# ---------------------------------------------------------------------- #
def test_percentiles_ms_empty_population_is_zeroed():
    summary = percentiles_ms([])
    assert summary["count"] == 0
    assert summary["p99"] == 0.0


def test_metrics_report_structure():
    collector = MetricsCollector(["a", "b"])
    collector.record_arrival("a", 0.0)
    collector.record_arrival("b", 0.5)
    collector.record_arrival("b", 1.0)
    collector.record_shed("b", "slo")
    collector.record_batch("a", fill=1, batch_size=4, compute_s=0.2)
    collector.record_completion("a", 0.3, deadline_s=0.25)   # completed but SLO-missed
    collector.record_completion("b", 0.1, deadline_s=0.25)
    collector.record_queue_depth(0.0, 1)
    collector.record_queue_depth(1.0, 0)
    report = collector.report(makespan_s=2.0)
    fleet = report["fleet"]
    assert fleet["arrivals"] == 3
    assert fleet["completed"] == 2
    assert fleet["shed"] == 1
    assert fleet["shed_rate"] == pytest.approx(1 / 3)
    assert fleet["offered_rps"] == pytest.approx(3.0)     # 3 arrivals over 1s span
    assert fleet["goodput_rps"] == pytest.approx(1.0)
    assert fleet["utilization"] == pytest.approx(0.1)
    assert fleet["slo_attainment"] == pytest.approx(0.5)
    assert report["per_model"]["a"]["mean_fill"] == 1.0
    assert report["per_model"]["a"]["padded_slots"] == 3
    assert report["per_model"]["a"]["slo_attainment"] == 0.0
    assert report["per_model"]["b"]["shed"] == {"slo": 1}
    assert report["per_model"]["b"]["slo_attainment"] == 1.0
    assert report["queue_depth"]["max_depth"] == 1
