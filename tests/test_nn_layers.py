"""Unit tests for nn layers: conv, linear, batch norm, pooling, containers, losses."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor


class TestConvLayers:
    def test_conv2d_output_shape(self, rng):
        conv = nn.Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        out = conv(Tensor(rng.standard_normal((2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_conv2d_no_bias(self, rng):
        conv = nn.Conv2d(3, 4, 3, bias=False, rng=rng)
        assert conv.bias is None
        assert len(conv.parameters()) == 1

    def test_depthwise_conv_groups(self, rng):
        conv = nn.DepthwiseConv2d(6, 3, padding=1, rng=rng)
        assert conv.groups == 6
        assert conv.weight.shape == (6, 1, 3, 3)
        out = conv(Tensor(rng.standard_normal((1, 6, 5, 5))))
        assert out.shape == (1, 6, 5, 5)

    def test_linear_shapes_and_bias(self, rng):
        linear = nn.Linear(10, 5, rng=rng)
        out = linear(Tensor(rng.standard_normal((3, 10))))
        assert out.shape == (3, 5)

    def test_conv_weights_have_reasonable_scale(self, rng):
        conv = nn.Conv2d(16, 16, 3, rng=rng)
        std = conv.weight.data.std()
        expected = np.sqrt(2.0 / (16 * 9))
        assert 0.5 * expected < std < 2.0 * expected

    def test_sibling_layers_without_rng_get_independent_weights(self):
        # Regression: the default-rng fallback used to be a shared
        # default_rng(0), so sibling layers were initialized identically.
        conv_a = nn.Conv2d(3, 4, 3)
        conv_b = nn.Conv2d(3, 4, 3)
        assert not np.array_equal(conv_a.weight.data, conv_b.weight.data)
        linear_a = nn.Linear(8, 4)
        linear_b = nn.Linear(8, 4)
        assert not np.array_equal(linear_a.weight.data, linear_b.weight.data)


class TestBatchNorm:
    def test_normalizes_batch_statistics(self, rng):
        bn = nn.BatchNorm2d(4)
        x = Tensor(rng.standard_normal((8, 4, 5, 5)) * 3.0 + 2.0)
        out = bn(x)
        assert abs(out.data.mean()) < 1e-6
        assert abs(out.data.std() - 1.0) < 1e-2

    def test_running_stats_updated_in_training(self, rng):
        bn = nn.BatchNorm2d(2, momentum=0.5)
        x = Tensor(rng.standard_normal((4, 2, 3, 3)) + 10.0)
        bn(x)
        assert np.all(bn.running_mean > 1.0)

    def test_eval_uses_running_stats(self, rng):
        bn = nn.BatchNorm2d(2)
        bn.eval()
        x = Tensor(rng.standard_normal((4, 2, 3, 3)) + 5.0)
        out = bn(x)
        # with default running stats (mean 0, var 1) output equals input up to
        # the eps term in the denominator (gamma=1, beta=0)
        np.testing.assert_allclose(out.data, x.data / np.sqrt(1.0 + bn.eps), atol=1e-9)

    def test_freeze_statistics(self, rng):
        bn = nn.BatchNorm2d(2)
        bn.freeze_statistics()
        before = bn.running_mean.copy()
        bn(Tensor(rng.standard_normal((4, 2, 3, 3)) + 5.0))
        np.testing.assert_allclose(bn.running_mean, before)

    def test_effective_scale_offset_matches_eval_forward(self, rng):
        bn = nn.BatchNorm2d(3)
        bn.gamma.data[...] = rng.uniform(0.5, 2.0, 3)
        bn.beta.data[...] = rng.standard_normal(3)
        bn.set_buffer("running_mean", rng.standard_normal(3))
        bn.set_buffer("running_var", rng.uniform(0.5, 2.0, 3))
        bn.eval()
        x = rng.standard_normal((2, 3, 4, 4))
        expected = bn(Tensor(x)).data
        scale, offset = bn.effective_scale_offset()
        manual = x * scale.reshape(1, 3, 1, 1) + offset.reshape(1, 3, 1, 1)
        np.testing.assert_allclose(manual, expected, atol=1e-9)

    def test_rejects_non_nchw(self):
        with pytest.raises(ValueError):
            nn.BatchNorm2d(3)(Tensor(np.zeros((2, 3))))


class TestActivationsAndPooling:
    def test_relu6_module(self):
        out = nn.ReLU6()(Tensor(np.array([-1.0, 3.0, 9.0])))
        np.testing.assert_allclose(out.data, [0.0, 3.0, 6.0])

    def test_leaky_relu_module(self):
        out = nn.LeakyReLU(0.2)(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.data, [-0.2, 2.0])

    def test_identity(self):
        x = Tensor(np.ones(3))
        assert nn.Identity()(x) is x

    def test_maxpool_module(self, rng):
        out = nn.MaxPool2d(2)(Tensor(rng.standard_normal((1, 2, 4, 4))))
        assert out.shape == (1, 2, 2, 2)

    def test_avgpool_module(self, rng):
        out = nn.AvgPool2d(3, stride=1, padding=1)(Tensor(rng.standard_normal((1, 2, 4, 4))))
        assert out.shape == (1, 2, 4, 4)

    def test_global_avgpool_and_flatten(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 4, 4)))
        pooled = nn.GlobalAvgPool2d(keepdims=False)(x)
        assert pooled.shape == (2, 3)
        flat = nn.Flatten()(Tensor(rng.standard_normal((2, 3, 4, 4))))
        assert flat.shape == (2, 48)


class TestContainers:
    def test_sequential_runs_in_order(self, rng):
        model = nn.Sequential(
            nn.Conv2d(3, 4, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.GlobalAvgPool2d(keepdims=False),
            nn.Linear(4, 2, rng=rng),
        )
        out = model(Tensor(rng.standard_normal((2, 3, 6, 6))))
        assert out.shape == (2, 2)
        assert len(model) == 4
        assert isinstance(model[1], nn.ReLU)

    def test_sequential_registers_parameters(self, rng):
        model = nn.Sequential(nn.Linear(3, 3, rng=rng), nn.Linear(3, 2, rng=rng))
        assert len(model.parameters()) == 4

    def test_module_list(self, rng):
        modules = nn.ModuleList([nn.Linear(2, 2, rng=rng) for _ in range(3)])
        assert len(modules) == 3
        assert len(modules.parameters()) == 6
        with pytest.raises(RuntimeError):
            modules(Tensor(np.zeros((1, 2))))

    def test_add_and_concat_modules(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4, 4)))
        b = Tensor(rng.standard_normal((2, 3, 4, 4)))
        np.testing.assert_allclose(nn.Add()(a, b).data, a.data + b.data)
        out = nn.Concat(axis=1)([a, b])
        assert out.shape == (2, 6, 4, 4)


class TestLosses:
    def test_cross_entropy_module(self, rng):
        loss = nn.CrossEntropyLoss()(Tensor(rng.standard_normal((4, 6))),
                                     np.array([0, 1, 2, 3]))
        assert loss.data.size == 1 and loss.item() > 0

    def test_mse_module(self):
        loss = nn.MSELoss()(Tensor(np.array([1.0, 2.0])), Tensor(np.array([1.0, 0.0])))
        np.testing.assert_allclose(loss.item(), 2.0)

    def test_l2_regularization(self, rng):
        params = [nn.Parameter(np.array([1.0, 2.0])), nn.Parameter(np.array([3.0]))]
        reg = nn.l2_regularization(params, 0.1)
        np.testing.assert_allclose(reg.item(), 0.1 * (1 + 4 + 9))

    def test_l2_regularization_empty(self):
        assert nn.l2_regularization([], 0.1).item() == 0.0
