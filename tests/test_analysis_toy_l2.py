"""Unit tests for the toy L2 quantizer problem (Section 3.4 / Figure 2 / Figure 8)."""

import numpy as np
import pytest

from repro.analysis import ToyL2Problem, threshold_gradient_field, train_threshold


class TestToyProblem:
    def test_loss_decreases_toward_optimum(self):
        problem = ToyL2Problem(sigma=1.0, bits=8, num_samples=500, seed=0)
        optimum = problem.optimal_log_threshold()
        loss_at_optimum, _ = problem.loss_and_log_grad(optimum)
        loss_far, _ = problem.loss_and_log_grad(optimum + 4.0)
        assert loss_at_optimum < loss_far

    def test_optimum_scales_with_sigma(self):
        small = ToyL2Problem(sigma=0.01, bits=8, num_samples=500, seed=0)
        large = ToyL2Problem(sigma=10.0, bits=8, num_samples=500, seed=0)
        assert large.optimal_log_threshold() > small.optimal_log_threshold() + 5

    def test_gradient_sign_around_optimum(self):
        """Negative feedback: gradient is negative below the optimum (threshold
        too small, loss decreases as it grows) and positive above it."""
        problem = ToyL2Problem(sigma=1.0, bits=8, num_samples=2000, seed=0)
        optimum = problem.optimal_log_threshold()
        _, grad_below = problem.loss_and_log_grad(optimum - 2.0)
        _, grad_above = problem.loss_and_log_grad(optimum + 2.0)
        assert grad_below < 0
        assert grad_above > 0

    def test_raw_gradient_chain_rule(self):
        problem = ToyL2Problem(sigma=1.0, bits=4, num_samples=200, seed=0)
        threshold = 1.7
        _, raw_grad = problem.loss_and_raw_grad(threshold)
        _, log_grad = problem.loss_and_log_grad(np.log2(threshold))
        assert raw_grad == pytest.approx(log_grad / (threshold * np.log(2)), rel=1e-9)

    def test_input_gradients_nonzero_only_for_clipped_values(self):
        problem = ToyL2Problem(sigma=1.0, bits=8, num_samples=1000, seed=0)
        log2_t = -1.0
        grads = problem.input_gradients(log2_t)
        # exact real-domain clipping limits: x_n = s(n - 0.5), x_p = s(p + 0.5)
        s = 2.0 ** np.ceil(log2_t) / 128
        clipped = (problem.x > s * 127.5) | (problem.x < s * -128.5)
        # inside the range dq/dx = 1, so (q-x)(dq/dx - 1) = 0 exactly
        np.testing.assert_allclose(grads[~clipped], 0.0, atol=1e-12)
        # clipped inputs feel a restoring force pushing them back in
        assert np.abs(grads[clipped]).max() > 0.1

    def test_gradient_field_shapes(self):
        problem = ToyL2Problem(sigma=0.5, bits=8, num_samples=200, seed=0)
        grid = np.linspace(-4, 4, 17)
        field = threshold_gradient_field(problem, grid)
        assert field["loss"].shape == (17,)
        assert field["log_grad"].shape == (17,)
        assert field["raw_grad"].shape == (17,)


class TestThresholdTraining:
    @pytest.mark.parametrize("method", ["adam", "normed_sgd"])
    def test_adaptive_methods_converge_from_far_initialization(self, method):
        problem = ToyL2Problem(sigma=1.0, bits=8, num_samples=400, seed=0)
        optimum = problem.optimal_log_threshold()
        trajectory = train_threshold(problem, init_log2_t=optimum + 5.0, steps=300, lr=0.1,
                                     method=method, batch_size=400, seed=1)
        assert abs(trajectory.final - optimum) < 1.5

    def test_plain_sgd_on_log_threshold_stalls_for_small_sigma(self):
        """Appendix B.2 / Figure 8 (sigma = 1e-2): log-gradient magnitudes scale
        with the input variance, so plain SGD barely moves toward the (much
        lower) optimum while Adam's adaptive step reaches it."""
        problem = ToyL2Problem(sigma=0.01, bits=8, num_samples=400, seed=0)
        optimum = problem.optimal_log_threshold()
        start = 1.0   # far above the optimum (~ -4.6)
        sgd = train_threshold(problem, init_log2_t=start, steps=200, lr=0.1,
                              method="sgd", batch_size=400, seed=1)
        adam = train_threshold(problem, init_log2_t=start, steps=200, lr=0.1,
                               method="adam", batch_size=400, seed=1)
        assert abs(adam.final - optimum) < abs(sgd.final - optimum)
        assert abs(sgd.final - start) < 1.0   # barely moved

    def test_raw_domain_sgd_diverges_or_stalls_for_large_sigma(self):
        """Appendix B.1/B.2: raw-threshold SGD updates scale with sigma^2, so a
        large-sigma problem with the same LR overshoots wildly."""
        problem = ToyL2Problem(sigma=100.0, bits=8, num_samples=300, seed=0)
        optimum = problem.optimal_log_threshold()
        raw = train_threshold(problem, init_log2_t=optimum + 1.0, steps=100, lr=0.1,
                              method="sgd", domain="raw", batch_size=300, seed=2)
        adam_log = train_threshold(problem, init_log2_t=optimum + 1.0, steps=100, lr=0.1,
                                   method="adam", domain="log", batch_size=300, seed=2)
        assert abs(adam_log.final - optimum) < abs(raw.final - optimum)

    def test_trajectory_records_every_step(self):
        problem = ToyL2Problem(sigma=1.0, bits=4, num_samples=100, seed=0)
        trajectory = train_threshold(problem, init_log2_t=2.0, steps=50, method="adam",
                                     batch_size=100)
        assert len(trajectory.log2_t) == 50
        assert len(trajectory.losses) == 50
        assert len(trajectory.gradients) == 50

    def test_oscillation_band_is_small_for_guideline_lr(self):
        """With alpha below the Table 4 bound the post-convergence oscillation
        stays well inside a single integer bin."""
        problem = ToyL2Problem(sigma=1.0, bits=8, num_samples=500, seed=0)
        trajectory = train_threshold(problem, init_log2_t=1.0, steps=1200, lr=0.009,
                                     method="adam", batch_size=500, seed=3)
        assert trajectory.oscillation_amplitude(tail=300) < 1.0

    def test_unknown_method_rejected(self):
        problem = ToyL2Problem(sigma=1.0, num_samples=50)
        with pytest.raises(ValueError):
            train_threshold(problem, 0.0, steps=5, method="adagrad")
