"""Unit tests for hyperparameters, evaluation, checkpoints and the trainer."""

import numpy as np
import pytest

from repro.graph import prepare_retrain
from repro.graph.transforms import run_default_optimizations
from repro.training import (
    CheckpointKeeper,
    EvaluationResult,
    Evaluator,
    PaperHyperparameters,
    Trainer,
    adam_guidelines,
    topk_accuracy,
)


class TestAdamGuidelines:
    def test_table4_values_8bit(self):
        g = adam_guidelines(8)
        assert g.p == 127
        assert g.max_learning_rate == pytest.approx(0.1 / np.sqrt(127))
        assert g.max_learning_rate == pytest.approx(0.009, abs=1e-3)
        assert g.min_beta2 == pytest.approx(1 - 0.1 / 127)
        assert g.min_beta2 == pytest.approx(0.999, abs=1e-3)
        assert g.min_beta1 == pytest.approx(1 / np.e)
        # Table 4 quotes ~1000 steps for b = 8 (1/alpha + 1/(1-beta2))
        assert g.expected_steps == pytest.approx(1000, rel=0.5)

    def test_table4_values_4bit(self):
        g = adam_guidelines(4)
        assert g.p == 7
        assert g.max_learning_rate == pytest.approx(0.035, abs=3e-3)
        assert g.min_beta2 == pytest.approx(0.99, abs=5e-3)
        assert g.expected_steps == pytest.approx(100, rel=0.4)

    def test_paper_hyperparameters_against_guidelines(self):
        """The paper trains everything with (0.01, 0.9, 0.999).  That satisfies
        the 4-bit guideline outright; for 8 bits the learning rate slightly
        exceeds the exact bound (0.01 vs 0.0089), which the paper absorbs in
        its 10x over-design margin."""
        hp = PaperHyperparameters.paper_exact()
        assert adam_guidelines(4).satisfied_by(hp.threshold_lr, hp.beta1, hp.beta2)
        g8 = adam_guidelines(8)
        assert not g8.satisfied_by(hp.threshold_lr, hp.beta1, hp.beta2)
        assert hp.threshold_lr < 1.2 * g8.max_learning_rate
        assert g8.satisfied_by(g8.max_learning_rate, hp.beta1, hp.beta2)

    def test_violating_learning_rate_detected(self):
        g = adam_guidelines(8)
        assert not g.satisfied_by(0.5, 0.9, 0.999)

    def test_rejects_tiny_bitwidth(self):
        with pytest.raises(ValueError):
            adam_guidelines(1)


class TestPaperHyperparameters:
    def test_schedules_constructed_from_batch_size(self):
        hp = PaperHyperparameters(batch_size=24)
        assert hp.weight_schedule.decay_steps == 3000
        assert hp.threshold_schedule.decay_steps == 1000

    def test_paper_exact_learning_rates(self):
        hp = PaperHyperparameters.paper_exact()
        assert hp.threshold_lr == 1e-2 and hp.weight_lr == 1e-6


class TestTopKAccuracy:
    def test_top1(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2]])
        assert topk_accuracy(logits, np.array([1, 0]), 1) == 1.0
        assert topk_accuracy(logits, np.array([0, 1]), 1) == 0.0

    def test_top5_with_fewer_classes_is_top_all(self):
        logits = np.random.default_rng(0).standard_normal((6, 3))
        assert topk_accuracy(logits, np.zeros(6, dtype=int), 5) == 1.0

    def test_topk_requires_2d(self):
        with pytest.raises(ValueError):
            topk_accuracy(np.zeros(3), np.zeros(3, dtype=int), 1)


class TestEvaluator:
    def test_evaluate_returns_fractions(self, lenet_graph, tiny_loaders):
        _, val_loader = tiny_loaders
        result = Evaluator(val_loader).evaluate(lenet_graph)
        assert 0.0 <= result.top1 <= 1.0
        assert result.top1 <= result.top5
        assert result.samples == val_loader.split.size

    def test_max_batches_limits_samples(self, lenet_graph, tiny_loaders):
        _, val_loader = tiny_loaders
        result = Evaluator(val_loader, max_batches=1).evaluate(lenet_graph)
        assert result.samples == val_loader.batch_size

    def test_model_mode_restored(self, lenet_graph, tiny_loaders):
        _, val_loader = tiny_loaders
        lenet_graph.train()
        Evaluator(val_loader).evaluate(lenet_graph)
        assert lenet_graph.training


class TestCheckpointKeeper:
    def test_best_checkpoint_tracked(self):
        keeper = CheckpointKeeper()
        keeper.update(1, 0.5, EvaluationResult(0.3, 0.6, 10), {"w": np.zeros(2)})
        improved = keeper.update(2, 1.0, EvaluationResult(0.5, 0.8, 10), {"w": np.ones(2)})
        worse = keeper.update(3, 1.5, EvaluationResult(0.4, 0.7, 10), {"w": np.full(2, 9.0)})
        assert improved and not worse
        assert keeper.best_top1 == 0.5
        assert keeper.best_epoch == 1.0
        np.testing.assert_allclose(keeper.best_state["w"], np.ones(2))

    def test_final_epoch_mean(self):
        keeper = CheckpointKeeper()
        for step, top1 in enumerate([0.2, 0.4, 0.6, 0.8], start=1):
            keeper.update(step, step / 2, EvaluationResult(top1, top1, 10), {})
        mean_top1, _ = keeper.final_epoch_mean(last_fraction=0.5)
        assert mean_top1 == pytest.approx(0.7)

    def test_empty_keeper(self):
        keeper = CheckpointKeeper()
        assert keeper.best_top1 == 0.0
        assert keeper.final_epoch_mean() == (0.0, 0.0)


class TestTrainerFP32:
    def test_training_reduces_loss(self, lenet_graph, tiny_loaders):
        train_loader, val_loader = tiny_loaders
        hp = PaperHyperparameters(batch_size=train_loader.batch_size, weight_lr=5e-3,
                                  max_epochs=3, bn_freeze_epochs=10, freeze_thresholds=False)
        trainer = Trainer(lenet_graph, train_loader, val_loader, hparams=hp)
        result = trainer.train(3)
        early = np.mean(result.loss_history[:4])
        late = np.mean(result.loss_history[-4:])
        assert late < early
        assert result.steps == 3 * train_loader.steps_per_epoch
        assert result.checkpoints.best_state is not None

    def test_restore_best(self, lenet_graph, tiny_loaders):
        train_loader, val_loader = tiny_loaders
        hp = PaperHyperparameters(batch_size=train_loader.batch_size, weight_lr=5e-3,
                                  max_epochs=1, bn_freeze_epochs=10, freeze_thresholds=False)
        trainer = Trainer(lenet_graph, train_loader, val_loader, hparams=hp)
        result = trainer.train(1)
        trainer.restore_best(result)   # should not raise

    def test_bn_freeze_epoch_honoured(self, lenet_graph, tiny_loaders):
        from repro.nn import BatchNorm2d
        train_loader, val_loader = tiny_loaders
        hp = PaperHyperparameters(batch_size=train_loader.batch_size, weight_lr=1e-3,
                                  max_epochs=2, bn_freeze_epochs=1, freeze_thresholds=False)
        trainer = Trainer(lenet_graph, train_loader, val_loader, hparams=hp)
        trainer.train(2)
        frozen_flags = [m.frozen for m in lenet_graph.modules() if isinstance(m, BatchNorm2d)]
        assert frozen_flags and all(frozen_flags)


class TestTrainerQuantized:
    @pytest.fixture
    def quantized_model(self, lenet_graph, calibration_batches):
        lenet_graph.eval()
        run_default_optimizations(lenet_graph)
        return prepare_retrain(lenet_graph, calibration_batches, mode="wt,th", copy=False)

    def test_thresholds_receive_updates(self, quantized_model, tiny_loaders):
        train_loader, val_loader = tiny_loaders
        hp = PaperHyperparameters(batch_size=train_loader.batch_size, weight_lr=1e-3,
                                  threshold_lr=5e-2, max_epochs=1, freeze_thresholds=False)
        trainer = Trainer(quantized_model.graph, train_loader, val_loader, hparams=hp,
                          track_thresholds=True)
        result = trainer.train(1)
        deviations = [abs(result.final_thresholds[name] - result.initial_thresholds[name])
                      for name in result.initial_thresholds]
        assert max(deviations) > 0.0
        assert result.threshold_history
        assert all(len(history) == result.steps for history in result.threshold_history.values())

    def test_threshold_deviation_report(self, quantized_model, tiny_loaders):
        train_loader, val_loader = tiny_loaders
        hp = PaperHyperparameters(batch_size=train_loader.batch_size, threshold_lr=5e-2,
                                  max_epochs=1, freeze_thresholds=False)
        trainer = Trainer(quantized_model.graph, train_loader, val_loader, hparams=hp)
        result = trainer.train(1)
        deviations = result.threshold_deviations()
        assert set(deviations) == set(result.initial_thresholds)
        assert all(float(d).is_integer() for d in deviations.values())

    def test_weight_and_threshold_groups_have_different_lr(self, quantized_model, tiny_loaders):
        train_loader, val_loader = tiny_loaders
        trainer = Trainer(quantized_model.graph, train_loader, val_loader,
                          hparams=PaperHyperparameters(batch_size=train_loader.batch_size))
        names = {group.name: group.base_lr for group in trainer.optimizer.groups}
        assert names["thresholds"] > names["weights"]

    def test_freezing_during_training(self, quantized_model, tiny_loaders):
        train_loader, val_loader = tiny_loaders
        hp = PaperHyperparameters(batch_size=train_loader.batch_size, threshold_lr=1e-2,
                                  max_epochs=2, freeze_thresholds=True)
        trainer = Trainer(quantized_model.graph, train_loader, val_loader, hparams=hp)
        # use an aggressive policy so freezing triggers within the short run
        trainer.freezer.policy.start_step = 2
        trainer.freezer.policy.interval = 1
        trainer.train(2)
        assert trainer.freezer.num_frozen > 0
