"""Unit tests for convolution and pooling primitives."""

import numpy as np
import pytest

from repro.autograd import (
    Tensor,
    avg_pool2d,
    check_gradients,
    col2im,
    conv2d,
    conv_output_size,
    global_avg_pool2d,
    im2col,
    max_pool2d,
)


def naive_conv2d(x, w, b=None, stride=1, padding=0, groups=1):
    """Straightforward loop reference used as the gold standard."""
    n, c_in, h, width = x.shape
    c_out, c_in_g, kh, kw = w.shape
    sh = sw = stride
    x_padded = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = conv_output_size(h, kh, sh, padding)
    ow = conv_output_size(width, kw, sw, padding)
    out = np.zeros((n, c_out, oh, ow))
    in_per_group = c_in // groups
    out_per_group = c_out // groups
    for img in range(n):
        for oc in range(c_out):
            g = oc // out_per_group
            for i in range(oh):
                for j in range(ow):
                    patch = x_padded[img, g * in_per_group:(g + 1) * in_per_group,
                                     i * sh:i * sh + kh, j * sw:j * sw + kw]
                    out[img, oc, i, j] = (patch * w[oc]).sum()
            if b is not None:
                out[img, oc] += b[oc]
    return out


class TestConvForward:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_naive_reference(self, rng, stride, padding):
        x = rng.standard_normal((2, 3, 7, 7))
        w = rng.standard_normal((4, 3, 3, 3))
        b = rng.standard_normal(4)
        out = conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        expected = naive_conv2d(x, w, b, stride=stride, padding=padding)
        np.testing.assert_allclose(out.data, expected, atol=1e-10)

    def test_depthwise_matches_naive_grouped(self, rng):
        x = rng.standard_normal((2, 4, 6, 6))
        w = rng.standard_normal((4, 1, 3, 3))
        out = conv2d(Tensor(x), Tensor(w), stride=1, padding=1, groups=4)
        expected = naive_conv2d(x, w, None, stride=1, padding=1, groups=4)
        np.testing.assert_allclose(out.data, expected, atol=1e-10)

    def test_grouped_conv(self, rng):
        x = rng.standard_normal((1, 4, 5, 5))
        w = rng.standard_normal((6, 2, 3, 3))
        out = conv2d(Tensor(x), Tensor(w), padding=1, groups=2)
        expected = naive_conv2d(x, w, None, stride=1, padding=1, groups=2)
        np.testing.assert_allclose(out.data, expected, atol=1e-10)

    def test_1x1_conv(self, rng):
        x = rng.standard_normal((2, 3, 4, 4))
        w = rng.standard_normal((5, 3, 1, 1))
        out = conv2d(Tensor(x), Tensor(w))
        assert out.shape == (2, 5, 4, 4)

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.standard_normal((1, 3, 4, 4)))
        w = Tensor(rng.standard_normal((2, 4, 3, 3)))
        with pytest.raises(ValueError):
            conv2d(x, w)

    def test_groups_must_divide_channels(self, rng):
        x = Tensor(rng.standard_normal((1, 3, 4, 4)))
        w = Tensor(rng.standard_normal((2, 1, 3, 3)))
        with pytest.raises(ValueError):
            conv2d(x, w, groups=2)


class TestConvBackward:
    def test_gradients_against_numerical(self, rng):
        x = Tensor(rng.standard_normal((2, 2, 5, 5)), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 2, 3, 3)) * 0.2, requires_grad=True)
        b = Tensor(rng.standard_normal(3) * 0.2, requires_grad=True)
        check_gradients(lambda x, w, b: conv2d(x, w, b, stride=2, padding=1), [x, w, b])

    def test_depthwise_gradients(self, rng):
        x = Tensor(rng.standard_normal((1, 3, 5, 5)), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 1, 3, 3)) * 0.2, requires_grad=True)
        check_gradients(lambda x, w: conv2d(x, w, padding=1, groups=3), [x, w])

    def test_bias_gradient_is_spatial_sum(self, rng):
        x = Tensor(rng.standard_normal((2, 2, 4, 4)))
        w = Tensor(rng.standard_normal((3, 2, 3, 3)))
        b = Tensor(np.zeros(3), requires_grad=True)
        conv2d(x, w, b, padding=1).sum().backward()
        np.testing.assert_allclose(b.grad, np.full(3, 2 * 4 * 4))


class TestIm2Col:
    def test_im2col_shape(self, rng):
        x = rng.standard_normal((2, 3, 6, 6))
        cols = im2col(x, (3, 3), (1, 1), (1, 1))
        assert cols.shape == (2, 3, 3, 3, 6, 6)

    def test_col2im_adjointness(self, rng):
        """col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>."""
        x = rng.standard_normal((1, 2, 5, 5))
        cols = im2col(x, (3, 3), (2, 2), (1, 1))
        y = rng.standard_normal(cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, (3, 3), (2, 2), (1, 1))).sum())
        np.testing.assert_allclose(lhs, rhs, rtol=1e-10)

    def test_conv_output_size(self):
        assert conv_output_size(8, 3, 1, 1) == 8
        assert conv_output_size(8, 3, 2, 1) == 4
        assert conv_output_size(7, 2, 2, 0) == 3


class TestPooling:
    def test_max_pool_forward(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = max_pool2d(Tensor(x), kernel_size=2)
        np.testing.assert_allclose(out.data[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_max_pool_gradient_routes_to_max(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_allclose(x.grad[0, 0], expected)

    def test_avg_pool_forward(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = avg_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_gradient_uniform(self):
        x = Tensor(np.zeros((1, 1, 4, 4)), requires_grad=True)
        avg_pool2d(x, 2).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 4, 4), 0.25))

    def test_avg_pool_numerical_gradient(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 4, 4)), requires_grad=True)
        check_gradients(lambda t: avg_pool2d(t, 2, stride=2), [x])

    def test_max_pool_stride_padding(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 5, 5)))
        out = max_pool2d(x, kernel_size=3, stride=2, padding=1)
        assert out.shape == (1, 1, 3, 3)

    def test_global_avg_pool(self, rng):
        x = rng.standard_normal((2, 3, 4, 4))
        out = global_avg_pool2d(Tensor(x), keepdims=False)
        np.testing.assert_allclose(out.data, x.mean(axis=(2, 3)), atol=1e-12)
        out_keep = global_avg_pool2d(Tensor(x), keepdims=True)
        assert out_keep.shape == (2, 3, 1, 1)
