"""Unit tests for the quantization-insertion pass (Section 4.3 rules)."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.graph import (
    GraphBuilder,
    OpKind,
    clone_graph,
    collect_activation_quantizers,
    collect_tqt_quantizers,
    quantize_graph,
    split_parameters,
)
from repro.graph.transforms import run_default_optimizations
from repro.models import build_model, darknet_nano, mobilenet_v1_nano, resnet_nano
from repro.quant import INT4_PRECISION, QuantScheme, QuantizedConv2d, QuantizedLinear


def simple_graph(rng):
    builder = GraphBuilder("simple")
    x = builder.input("input")
    x = builder.layer("conv1", OpKind.CONV, nn.Conv2d(3, 4, 3, padding=1, rng=rng), x)
    x = builder.layer("relu1", OpKind.RELU, nn.ReLU(), x)
    x = builder.layer("gap", OpKind.GLOBAL_AVGPOOL, nn.GlobalAvgPool2d(keepdims=False), x)
    x = builder.layer("fc", OpKind.LINEAR, nn.Linear(4, 2, rng=rng), x)
    return builder.build(x)


class TestQuantizePass:
    def test_compute_layers_replaced(self, rng):
        graph = simple_graph(rng)
        report = quantize_graph(graph, QuantScheme())
        assert report.compute_layers == 2
        assert isinstance(graph.nodes["conv1"].module, QuantizedConv2d)
        assert isinstance(graph.nodes["fc"].module, QuantizedLinear)

    def test_relu_fused_and_removed(self, rng):
        graph = simple_graph(rng)
        report = quantize_graph(graph, QuantScheme())
        assert report.fused_activations == 1
        assert "relu1" not in graph.nodes
        assert graph.nodes["conv1"].module.activation == "relu"
        # fused output stage is unsigned
        assert not graph.nodes["conv1"].module.output_quantizer.impl.config.signed

    def test_primary_input_quantized(self, rng):
        graph = simple_graph(rng)
        quantize_graph(graph, QuantScheme())
        assert "input__quant" in graph.nodes
        assert graph.nodes["gap"].inputs != ["input"]

    def test_input_quantization_optional(self, rng):
        graph = simple_graph(rng)
        quantize_graph(graph, QuantScheme(), quantize_input=False)
        assert "input__quant" not in graph.nodes

    def test_first_last_layers_keep_8bit_weights_at_int4(self, rng):
        graph = simple_graph(rng)
        report = quantize_graph(graph, QuantScheme(precision=INT4_PRECISION))
        assert report.weight_bits["conv1"] == 8     # first layer
        assert report.weight_bits["fc"] == 8        # last layer
        assert graph.nodes["conv1"].module.weight_quantizer.config.bits == 8

    def test_middle_layers_get_int4_weights(self, rng):
        graph = build_model("vgg_nano", num_classes=4, seed=0)
        run_default_optimizations(graph)
        report = quantize_graph(graph, QuantScheme(precision=INT4_PRECISION))
        middle_bits = [bits for name, bits in report.weight_bits.items()
                       if name not in (report.first_layer, report.last_layer)]
        assert middle_bits and all(bits == 4 for bits in middle_bits)

    def test_graph_without_compute_layers_rejected(self):
        builder = GraphBuilder("empty")
        x = builder.input("input")
        x = builder.layer("relu", OpKind.RELU, nn.ReLU(), x)
        graph = builder.build(x)
        with pytest.raises(ValueError):
            quantize_graph(graph, QuantScheme())

    def test_residual_add_quantized(self, rng):
        graph = resnet_nano(num_classes=4, seed=0)
        run_default_optimizations(graph)
        report = quantize_graph(graph, QuantScheme())
        assert report.add_layers > 0
        assert report.compute_layers > 4

    def test_concat_quantized_in_inception(self, rng):
        graph = build_model("inception_nano", num_classes=4, seed=0)
        run_default_optimizations(graph)
        report = quantize_graph(graph, QuantScheme())
        assert report.concat_layers > 0

    def test_leaky_relu_quantized_and_producer_bypassed(self, rng):
        graph = darknet_nano(num_classes=4, seed=0)
        run_default_optimizations(graph)
        report = quantize_graph(graph, QuantScheme())
        assert report.leaky_relu_layers > 0
        # the compute layer feeding a leaky relu skips its own 8-bit stage
        leaky_nodes = graph.nodes_of_kind(OpKind.QUANT_LEAKY_RELU)
        producer_name = leaky_nodes[0].inputs[0]
        producer = graph.nodes[producer_name]
        assert producer.module.output_quantizer.mode == "bypass"

    def test_quantized_graph_forward_runs(self, rng):
        graph = simple_graph(rng)
        quantize_graph(graph, QuantScheme())
        out = graph(Tensor(rng.standard_normal((2, 3, 8, 8))))
        assert out.shape == (2, 2)

    def test_clone_graph_is_independent(self, rng):
        graph = simple_graph(rng)
        copy = clone_graph(graph)
        copy.nodes["conv1"].module.weight.data[...] = 0.0
        assert not np.allclose(graph.nodes["conv1"].module.weight.data, 0.0)


class TestIntrospection:
    def test_collect_activation_quantizers(self, rng):
        graph = simple_graph(rng)
        quantize_graph(graph, QuantScheme())
        activations = collect_activation_quantizers(graph)
        assert len(activations) >= 3   # conv output, fc output, input, (+ internal)

    def test_collect_tqt_quantizers_trainable_filter(self, rng):
        graph = simple_graph(rng)
        quantize_graph(graph, QuantScheme(train_thresholds=True))
        all_quantizers = collect_tqt_quantizers(graph)
        trainable = collect_tqt_quantizers(graph, trainable_only=True)
        assert len(trainable) < len(all_quantizers)   # bias/internal quantizers are fixed
        assert len(trainable) >= 3

    def test_split_parameters_separates_thresholds(self, rng):
        graph = simple_graph(rng)
        quantize_graph(graph, QuantScheme())
        weights, thresholds = split_parameters(graph)
        weight_ids = {id(p) for p in weights}
        threshold_ids = {id(p) for p in thresholds}
        assert weight_ids.isdisjoint(threshold_ids)
        assert len(thresholds) >= 3
        # conv weights are in the weight group
        conv_weight = graph.nodes["conv1"].module.conv.weight
        assert id(conv_weight) in weight_ids

    def test_split_parameters_on_mobilenet(self, rng):
        graph = mobilenet_v1_nano(num_classes=4, seed=0)
        run_default_optimizations(graph)
        quantize_graph(graph, QuantScheme())
        weights, thresholds = split_parameters(graph)
        assert len(weights) > 10 and len(thresholds) > 10
