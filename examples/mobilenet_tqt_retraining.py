"""MobileNet-style quantization: why trained thresholds matter.

Reproduces the paper's headline story (Table 1 / Table 3 / Section 6.2) on
the scaled-down MobileNet v1: per-tensor symmetric power-of-2 quantization
done statically collapses the accuracy of a network with depthwise
convolutions, weight-only retraining recovers only part of it, and TQT
(weights + thresholds) recovers (near-)floating-point accuracy.  It also
prints the per-layer threshold deviations ``d = Δceil(log2 t)`` showing
depthwise weight thresholds moving *in* (precision over range), the Figure 5
observation.

Run with:  python examples/mobilenet_tqt_retraining.py
"""

from __future__ import annotations

from repro.analysis import collect_threshold_deviations, deviation_histogram, format_histogram, format_table
from repro.training import ExperimentConfig, ExperimentRunner


def main() -> None:
    config = ExperimentConfig(
        model="mobilenet_v1_nano",
        num_classes=10,
        image_size=12,
        train_size=240,
        val_size=96,
        batch_size=16,
        noise_level=0.35,
        pretrain_epochs=24,
        retrain_epochs=3,
        calibration_samples=24,
        seed=1,
        model_kwargs={"channel_range_spread": 64.0},
    )
    runner = ExperimentRunner(config)

    print("Pre-training the FP32 MobileNet-style baseline ...")
    runner.pretrain_fp32()

    fp32 = runner.evaluate_fp32()
    static = runner.run_static()
    wt_only, _ = runner.run_retrain("wt")
    tqt, tqt_result = runner.run_retrain("wt,th", track_thresholds=True)

    rows = [trial.as_row() for trial in (fp32, static, wt_only, tqt)]
    print()
    print(format_table(
        ["Mode", "Precision", "W/A", "top-1 (%)", "top-5 (%)", "Epochs"],
        rows,
        title=f"MobileNet v1 (nano) quantization — {runner.paper_name} analogue",
    ))

    deviations = collect_threshold_deviations(tqt_result)
    weight_hist = deviation_histogram(deviations, kinds=("weight",))
    act_hist = deviation_histogram(deviations, kinds=("activation",))
    print()
    print(format_histogram(weight_hist, title="Weight-threshold deviations d = Δceil(log2 t)"))
    print()
    print(format_histogram(act_hist, title="Activation-threshold deviations"))
    inward = sum(count for dev, count in weight_hist.items() if dev < 0)
    outward = sum(count for dev, count in weight_hist.items() if dev > 0)
    print(f"\n{inward} weight thresholds moved inward (precision over range) and "
          f"{outward} moved outward (range over precision) — the per-layer "
          f"range/precision trade-off shown in Figure 5 of the paper.")


if __name__ == "__main__":
    main()
