"""Threshold-training dynamics on the toy L2 problem (Appendix B / Figures 7-9).

Compares raw-domain SGD, log-domain SGD, normed-log SGD (Eq. 17/18) and
log-domain Adam across input scales spanning four orders of magnitude, and
verifies the Adam convergence analysis of Appendix C (oscillation period
T ≈ r_g, excursion below alpha * sqrt(r_g)).

Run with:  python examples/threshold_dynamics_study.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    ToyL2Problem,
    compute_gradient_landscape,
    estimate_gradient_ratio,
    format_table,
    measure_oscillations,
    scale_invariance_metrics,
    train_threshold,
)


def main() -> None:
    sigmas = [0.01, 0.1, 1.0, 10.0, 100.0]
    bits = 8
    configurations = [
        ("Raw Grad - SGD", dict(method="sgd", domain="raw")),
        ("Log Grad - SGD", dict(method="sgd", domain="log")),
        ("Norm Log Grad - SGD", dict(method="normed_sgd", domain="log")),
        ("Log Grad - Adam", dict(method="adam", domain="log")),
    ]

    # ------------------------------------------------------------------ #
    # Figure 8: final threshold error after 600 steps, per method and sigma.
    # ------------------------------------------------------------------ #
    rows = []
    for sigma in sigmas:
        problem = ToyL2Problem(sigma=sigma, bits=bits, num_samples=500, seed=0)
        optimum = problem.optimal_log_threshold()
        row = [f"{sigma:g}"]
        for _, kwargs in configurations:
            trajectory = train_threshold(problem, init_log2_t=1.0, steps=600, lr=0.1,
                                         batch_size=500, seed=1, **kwargs)
            row.append(f"{abs(trajectory.final - optimum):.2f}")
        rows.append(row)
    print(format_table(
        ["sigma"] + [name for name, _ in configurations],
        rows,
        title=f"Figure 8 analogue: |log2(t) error| after 600 steps (b={bits}, lr=0.1)",
    ))

    # ------------------------------------------------------------------ #
    # Figure 7: scale invariance of the three gradient parameterizations.
    # ------------------------------------------------------------------ #
    landscapes = [compute_gradient_landscape(sigma, bits=bits, num_points=81) for sigma in sigmas]
    spreads = scale_invariance_metrics(landscapes)
    print()
    print("Figure 7 analogue — gradient-magnitude spread across input scales "
          "(1.0 = perfectly scale invariant):")
    for name, spread in spreads.items():
        print(f"  {name:<18s} {spread:10.1f}x")

    # ------------------------------------------------------------------ #
    # Figure 9 / Appendix C: Adam oscillation period vs gradient ratio.
    # ------------------------------------------------------------------ #
    print()
    print("Figure 9 analogue — post-convergence Adam oscillations:")
    for sigma in (0.01, 0.1, 1.0):
        problem = ToyL2Problem(sigma=sigma, bits=bits, num_samples=500, seed=0)
        ratio = estimate_gradient_ratio(problem)
        trajectory = train_threshold(problem, init_log2_t=1.0, steps=2000, lr=0.01,
                                     method="adam", batch_size=500, seed=2)
        stats = measure_oscillations(trajectory, tail=800)
        bound = 0.01 * np.sqrt(ratio)
        print(f"  sigma={sigma:<6g} r_g={ratio:7.1f}  period={stats['period']:7.1f}"
              f"  amplitude={stats['amplitude']:.3f}  bound alpha*sqrt(r_g)={bound:.3f}")


if __name__ == "__main__":
    main()
