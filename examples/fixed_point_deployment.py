"""Fixed-point deployment: compile a quantized model to the integer engine.

The paper's Graffitist flow emits a hardware-accurate inference graph whose
CPU execution is bit-accurate to the FPGA fixed-point implementation
(Section 4.2).  This example goes one step further than exporting integer
weights: it *executes* the network end-to-end in integer arithmetic.

1. statically quantize a small CNN (TQT power-of-2 thresholds);
2. lower the quantized graph to an integer execution plan — int8 weight
   codes, int32-range accumulators, bit-shift requantization — and print it;
3. run the plan optimizer (epilogue fusion, im2col elimination, weight
   prepacking, per-layer backend autotuning), profile it per step and show
   the unoptimized-vs-optimized throughput with bit-exact parity;
4. verify the whole network is bit-exact against the fake-quant simulation;
5. serve a stream of requests through the batched runner — including the
   multicore ``workers=N`` sharded mode — and report throughput and latency
   percentiles.

Run with:  PYTHONPATH=src python examples/fixed_point_deployment.py
(or just ``python examples/...`` after ``pip install -e .``)
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis import format_table
from repro.engine import (
    BatchedRunner,
    check_engine_parity,
    check_plan_parity,
    lower_graph,
)
from repro.models import compile_registry_model


def main() -> None:
    rng = np.random.default_rng(0)
    compiled = compile_registry_model("vgg_nano", num_classes=6, image_size=16,
                                      batch_size=8, calibration_samples=32,
                                      calibration_batch_size=8)

    # ------------------------------------------------------------------ #
    # The lowered integer plan: one line per step, plus the manifest rows
    # a deployment target cares about.
    # ------------------------------------------------------------------ #
    print(compiled.plan.summary())
    manifest = compiled.plan.manifest()
    rows = []
    for layer in manifest["steps"]:
        if "weight_dtype" in layer:
            rows.append([layer["name"], layer["weight_dtype"],
                         f"2^-{layer['weight_fraction']}",
                         layer["accumulator_bound"],
                         "yes" if layer["fits_int32_accumulator"] else "NO"])
    print()
    print(format_table(
        ["layer", "weight codes", "s_w", "worst-case accumulator", "fits int32 MAC"],
        rows,
        title="Compute layers of the integer plan (power-of-2 scales -> shifts)",
    ))
    print(f"\nTotal integer weight payload: {manifest['weight_bytes']} bytes; "
          f"int32-MAC compatible: {manifest['int32_mac_compatible']}")

    # ------------------------------------------------------------------ #
    # Optimizer pass pipeline: the compiled engine already went through it
    # (compile_registry_model optimizes by default); bind the *unoptimized*
    # plan too and show what the passes bought, bit-exactly.
    # ------------------------------------------------------------------ #
    batches = [rng.standard_normal((8, 3, 16, 16)) for _ in range(4)]
    baseline = lower_graph(compiled.graph).bind((8, 3, 16, 16))
    print(f"\nOptimizer report: {compiled.optimization}")
    print(f"Autotuned kernel variants: {compiled.plan.kernel_choices}")
    parity = check_plan_parity(baseline, compiled.engine, batches[:2])
    print(f"Optimized-vs-unoptimized parity: {parity}")

    def rate(engine) -> float:
        engine.run(batches[0])
        start = time.perf_counter()
        for _ in range(10):
            for batch in batches:
                engine.run(batch)
        return 10 * len(batches) * 8 / (time.perf_counter() - start)

    base_rate, opt_rate = rate(baseline), rate(compiled.engine)
    print(f"Unoptimized plan: {base_rate:.0f} img/s — optimized plan: "
          f"{opt_rate:.0f} img/s ({opt_rate / base_rate:.2f}x)")
    print("\nPer-step profile of the optimized engine:")
    print(compiled.engine.profile(batches[0], repeats=5).table())

    # ------------------------------------------------------------------ #
    # Bit-exactness of the full network, not just one layer.
    # ------------------------------------------------------------------ #
    report = check_engine_parity(compiled.graph, compiled.engine, batches)
    print(f"\nWhole-network parity vs fake-quant simulation: {report}")
    if report.bit_exact:
        print("The integer engine reproduces the quantized inference graph bit-exactly, "
              "matching the paper's CPU-vs-FPGA validation.")

    # ------------------------------------------------------------------ #
    # Serving-style batched execution, single-engine and multicore-sharded.
    # ------------------------------------------------------------------ #
    runner = BatchedRunner(compiled.engine)
    requests = rng.standard_normal((100, 3, 16, 16))
    results, stats = runner.run(requests)
    print(f"\nServed {stats.requests} requests in {stats.batches} batches of "
          f"{stats.batch_size} ({stats.padded_requests} padded): "
          f"{stats.throughput_rps:.0f} req/s, "
          f"p50 {stats.latency_p50_ms:.2f} ms, p99 {stats.latency_p99_ms:.2f} ms, "
          f"max {stats.latency_max_ms:.2f} ms")
    top1 = np.argmax(results[0].codes)
    print(f"First request predicted class {top1} "
          f"(codes are int8 logits at scale 2^-{compiled.engine.output_meta.fraction}).")

    with BatchedRunner(compiled.engine, workers=2) as sharded:
        sharded_results, sharded_stats = sharded.run(requests)
    identical = all(np.array_equal(a.codes, b.codes)
                    for a, b in zip(results, sharded_results))
    print(f"Sharded across 2 workers (BLAS releases the GIL): "
          f"{sharded_stats.throughput_rps:.0f} req/s, codes identical: {identical}")


if __name__ == "__main__":
    main()
