"""Fixed-point deployment: export integer weights/scales and verify bit accuracy.

The paper's Graffitist flow emits a hardware-accurate inference graph whose
CPU execution is bit-accurate to the FPGA fixed-point implementation
(Section 4.2).  This example:

1. statically quantizes a small CNN;
2. exports each compute layer's integer weight codes and fractional lengths;
3. runs the first convolution entirely in integer arithmetic (int64
   accumulators + arithmetic-shift re-quantization) and checks it produces
   exactly the same integer codes as the fake-quantized graph.

Run with:  python examples/fixed_point_deployment.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.data import SyntheticImageNet, sample_calibration_batches
from repro.graph import OpKind, check_conv_bit_accuracy, export_graph_specs, quantize_static, transforms
from repro.models import build_model


def main() -> None:
    rng = np.random.default_rng(0)
    dataset = SyntheticImageNet(num_classes=6, image_size=12, train_size=64, val_size=64, seed=0)
    calibration = sample_calibration_batches(dataset, num_samples=32, batch_size=8)

    graph = build_model("vgg_nano", num_classes=6, seed=0)
    graph.eval()
    transforms.run_default_optimizations(graph)
    model = quantize_static(graph, calibration)

    # ------------------------------------------------------------------ #
    # Export: integer weights + fractional lengths per compute layer.
    # ------------------------------------------------------------------ #
    input_quantizer = model.graph.nodes["input__quant"].module.quantizer.impl
    input_fraction = int(np.asarray(input_quantizer.fractional_length))
    specs = export_graph_specs(model.graph, input_fraction=input_fraction)

    rows = []
    for name, spec in specs.items():
        rows.append([
            name,
            spec.weight_codes.shape,
            f"2^-{spec.weight_fraction}",
            f"2^-{spec.input_fraction}",
            f"2^-{spec.output_fraction}",
            spec.requantize_shift,
        ])
    print(format_table(
        ["layer", "weight codes", "s_w", "s_in", "s_out", "requant shift"],
        rows,
        title="Exported fixed-point layer specifications (power-of-2 scales -> shifts)",
    ))

    # ------------------------------------------------------------------ #
    # Bit-accuracy check on the first quantized convolution.
    # ------------------------------------------------------------------ #
    first_conv = next(node for node in model.graph.topological_order()
                      if node.op == OpKind.QUANT_CONV)
    layer = first_conv.module
    # The arithmetic check compares the bias-free integer datapath.
    layer.conv.bias = None
    layer.bias_quantizer = None
    layer.internal_quantizer = None
    x = rng.standard_normal((4, 3, 12, 12))
    report = check_conv_bit_accuracy(layer, x, input_quantizer)
    print()
    print(f"Bit-accuracy check on layer {first_conv.name!r}: "
          f"{report['mismatches']} mismatching codes out of {report['total']} "
          f"(max code difference {report['max_code_difference']:.0f})")
    if report["mismatches"] == 0:
        print("The fake-quantized inference graph is bit-accurate to the integer execution, "
              "matching the paper's CPU-vs-FPGA validation.")


if __name__ == "__main__":
    main()
