"""Fixed-point deployment: one compile call, one artifact, zero recompiles.

The paper's Graffitist flow emits a hardware-accurate inference graph whose
CPU execution is bit-accurate to the FPGA fixed-point implementation
(Section 4.2).  This example goes from that graph to a *shippable*
deployment through the unified API:

1. ``repro.deploy.compile`` — build, statically quantize (TQT power-of-2
   thresholds), lower to an integer plan, run the optimizer pass pipeline
   and autotune kernel variants, all driven by one typed ``CompileConfig``;
2. inspect the lowered plan: per-step listing plus the manifest rows a
   deployment target cares about (weight codes, shift scales, accumulator
   bounds, int32-MAC fit);
3. show what the optimizer bought — unoptimized-vs-optimized throughput
   with bit-exact parity — and the per-step profile;
4. verify the whole network is bit-exact against the fake-quant simulation;
5. ``deployment.save`` / ``Deployment.load`` — persist the plan artifact
   (prepacked weights + autotuned kernel choices, content-addressed) and
   reload it with *zero* re-lowering/re-optimization/re-profiling,
   bit-exact with the fresh compile;
6. serve a request stream through ``deployment.runner()`` — including the
   multicore ``workers=N`` sharded mode.

Run with:  PYTHONPATH=src python examples/fixed_point_deployment.py
(or just ``python examples/...`` after ``pip install -e .``)
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import deploy
from repro.analysis import format_table
from repro.engine import PIPELINE_COUNTERS, check_engine_parity, check_plan_parity, lower_graph


def main() -> None:
    rng = np.random.default_rng(0)
    config = deploy.CompileConfig(
        num_classes=6,
        image_size=16,
        quant=deploy.QuantConfig(calibration_samples=32, calibration_batch_size=8),
        runtime=deploy.RuntimeConfig(batch_size=8),
    )
    deployment = deploy.compile("vgg_nano", config)

    # ------------------------------------------------------------------ #
    # The lowered integer plan: one line per step, plus the manifest rows
    # a deployment target cares about.
    # ------------------------------------------------------------------ #
    print(deployment.summary())
    manifest = deployment.manifest()
    rows = []
    for layer in manifest["steps"]:
        if "weight_dtype" in layer:
            rows.append([layer["name"], layer["weight_dtype"],
                         f"2^-{layer['weight_fraction']}",
                         layer["accumulator_bound"],
                         "yes" if layer["fits_int32_accumulator"] else "NO"])
    print()
    print(format_table(
        ["layer", "weight codes", "s_w", "worst-case accumulator", "fits int32 MAC"],
        rows,
        title="Compute layers of the integer plan (power-of-2 scales -> shifts)",
    ))
    print(f"\nTotal integer weight payload: {manifest['weight_bytes']} bytes; "
          f"int32-MAC compatible: {manifest['int32_mac_compatible']}")

    # ------------------------------------------------------------------ #
    # Optimizer pass pipeline: the deployment already went through it;
    # bind the *unoptimized* plan too and show what the passes bought.
    # ------------------------------------------------------------------ #
    batches = [rng.standard_normal((8, 3, 16, 16)) for _ in range(4)]
    baseline = lower_graph(deployment.graph).bind((8, 3, 16, 16))
    print(f"\nOptimizer pass log: {deployment.pass_log}")
    print(f"Autotuned kernel variants: {deployment.kernel_choices}")
    parity = check_plan_parity(baseline, deployment.engine, batches[:2])
    print(f"Optimized-vs-unoptimized parity: {parity}")

    def rate(engine) -> float:
        engine.run(batches[0])
        start = time.perf_counter()
        for _ in range(10):
            for batch in batches:
                engine.run(batch)
        return 10 * len(batches) * 8 / (time.perf_counter() - start)

    base_rate, opt_rate = rate(baseline), rate(deployment.engine)
    print(f"Unoptimized plan: {base_rate:.0f} img/s — optimized plan: "
          f"{opt_rate:.0f} img/s ({opt_rate / base_rate:.2f}x)")
    print("\nPer-step profile of the optimized engine:")
    print(deployment.profile(batches[0], repeats=5).table())

    # ------------------------------------------------------------------ #
    # Bit-exactness of the full network, not just one layer.
    # ------------------------------------------------------------------ #
    report = check_engine_parity(deployment.graph, deployment.engine, batches)
    print(f"\nWhole-network parity vs fake-quant simulation: {report}")
    if report.bit_exact:
        print("The integer engine reproduces the quantized inference graph bit-exactly, "
              "matching the paper's CPU-vs-FPGA validation.")

    # ------------------------------------------------------------------ #
    # Persistent plan artifact: save, reload, verify zero recompilation.
    # ------------------------------------------------------------------ #
    with tempfile.TemporaryDirectory() as tmp:
        path = deployment.save(Path(tmp) / "vgg_nano.rpa")
        size_kb = path.stat().st_size / 1024
        before = PIPELINE_COUNTERS.snapshot()
        start = time.perf_counter()
        warm = deploy.Deployment.load(path)
        load_ms = (time.perf_counter() - start) * 1e3
        delta = PIPELINE_COUNTERS.delta(before)
        identical = np.array_equal(warm.run(batches[0]).codes,
                                   deployment.run(batches[0]).codes)
        print(f"\nArtifact {path.name}: {size_kb:.0f} KiB, fingerprint "
              f"{deployment.fingerprint[:12]}…")
        print(f"Reloaded in {load_ms:.0f} ms with pipeline work {delta} "
              f"(no re-lowering/re-optimization/re-profiling); "
              f"bit-exact with the fresh compile: {identical}")

    # ------------------------------------------------------------------ #
    # Serving-style batched execution, single-engine and multicore-sharded.
    # ------------------------------------------------------------------ #
    runner = deployment.runner()
    requests = rng.standard_normal((100, 3, 16, 16))
    results, stats = runner.run(requests)
    print(f"\nServed {stats.requests} requests in {stats.batches} batches of "
          f"{stats.batch_size} ({stats.padded_requests} padded): "
          f"{stats.throughput_rps:.0f} req/s, "
          f"p50 {stats.latency_p50_ms:.2f} ms, p99 {stats.latency_p99_ms:.2f} ms, "
          f"max {stats.latency_max_ms:.2f} ms")
    top1 = np.argmax(results[0].codes)
    print(f"First request predicted class {top1} "
          f"(codes are int8 logits at scale 2^-{deployment.output_meta.fraction}).")

    with deployment.runner(workers=2) as sharded:
        sharded_results, sharded_stats = sharded.run(requests)
    identical = all(np.array_equal(a.codes, b.codes)
                    for a, b in zip(results, sharded_results))
    print(f"Sharded across 2 workers (BLAS releases the GIL): "
          f"{sharded_stats.throughput_rps:.0f} req/s, codes identical: {identical}")


if __name__ == "__main__":
    main()
