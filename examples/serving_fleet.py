"""Serving a fleet of integer-compiled models under realistic traffic.

The paper's deployment story ends at a fixed-point inference graph; a
production deployment starts there.  This example stands up a fleet server
through the unified deployment API (``repro.deploy``) and walks the serving
trade-offs end to end:

1. compile one deployment with a typed config and serve it as a fleet via
   ``deployment.serve(ServeConfig(...))`` — extra models compile on demand;
2. generate a bursty request stream with a per-request latency SLO, serve
   it under fixed full-batch coalescing and under dynamic
   max-batch/max-wait batching, and compare tail latency;
3. dispatch across ``workers=2`` — batches for *different models* overlap
   on the virtual clock (each model still serializes on its own engine);
4. back the plan cache with a disk artifact tier: a second server warms
   every model from content-addressed artifacts with zero recompilation;
5. shrink the plan cache below the fleet size and watch eviction/recompile
   counters move;
6. run the same fleet on a real thread pool, then on the **process
   backend** (worker processes bootstrapped from ``.rpa`` artifacts,
   shared-memory data plane) with open-loop arrival pacing;
7. overload the server and watch admission control trade goodput for
   bounded latency instead of unbounded queueing.

Run with:  PYTHONPATH=src python examples/serving_fleet.py
(or just ``python examples/...`` after ``pip install -e .``)
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import deploy
from repro.analysis import format_table
from repro.engine import PIPELINE_COUNTERS
from repro.serving import (
    SCENARIOS,
    Request,
    Scenario,
    fleet_input_shapes,
    generate_requests,
)

FLEET = ("lenet_nano", "vgg_nano", "mobilenet_v1_nano")
IMAGE_SIZE = 8
BATCH = 8

COMPILE = deploy.CompileConfig(
    image_size=IMAGE_SIZE,
    quant=deploy.QuantConfig(calibration_samples=8, calibration_batch_size=4),
    runtime=deploy.RuntimeConfig(batch_size=BATCH),
)


def main() -> None:
    deployment = deploy.compile("lenet_nano", COMPILE)

    scenario = Scenario(
        "bursty_fleet", "bursty", duration_s=2.0,
        model_mix=(("lenet_nano", 0.5), ("vgg_nano", 0.3), ("mobilenet_v1_nano", 0.2)),
        slo_ms=250.0, params=dict(burst_rate_rps=400.0, on_s=0.15, off_s=0.35))
    requests = generate_requests(scenario, fleet_input_shapes(list(FLEET), IMAGE_SIZE),
                                 seed=0)
    print(f"Workload: {len(requests)} requests over {scenario.duration_s:.0f}s "
          f"({scenario.arrival} arrivals), SLO {scenario.slo_ms:.0f}ms, "
          f"fleet mix over {len(FLEET)} models\n")

    # ------------------------------------------------------------------ #
    # Dynamic batching vs. fixed full-batch coalescing.
    # ------------------------------------------------------------------ #
    rows = []
    for label, max_wait_s in [("full_batch", None), ("dynamic", 5e-3)]:
        server = deployment.serve(deploy.ServeConfig(
            fleet=FLEET, max_wait_s=max_wait_s, max_queue_depth=64))
        report = server.serve(requests)
        fleet = report.fleet
        rows.append([label, fleet["completed"], fleet["shed"],
                     f"{fleet['goodput_rps']:.0f}",
                     f"{fleet['latency_ms']['p50']:.2f}",
                     f"{fleet['latency_ms']['p99']:.2f}",
                     f"{fleet['utilization'] * 100:.0f}%"])
    print(format_table(
        ["policy", "completed", "shed", "goodput rps", "p50 ms", "p99 ms", "util"],
        rows, title="Batching policy under bursty traffic"))
    print("Partial batches launched on the max-wait timeout keep tail latency "
          "bounded through the bursts.\n")

    # ------------------------------------------------------------------ #
    # Multi-worker dispatch: workers=2 overlaps different models' batches
    # on the virtual clock; codes are bit-identical to one worker.
    # ------------------------------------------------------------------ #
    dispatch = deployment.serve(deploy.ServeConfig(
        fleet=FLEET, max_wait_s=5e-3, max_queue_depth=64, workers=2))
    dispatch_report = dispatch.serve(requests)
    print(f"Same stream with workers=2 dispatch: "
          f"{dispatch_report.fleet['completed']} completed, "
          f"p99 {dispatch_report.latency_ms('p99'):.2f}ms "
          f"(single-worker p99 was {rows[-1][5]}ms; different models' batches "
          f"overlap, identical output codes)\n")
    dispatch.close()

    # ------------------------------------------------------------------ #
    # Disk-backed plan cache: the second server warms from artifacts.
    # ------------------------------------------------------------------ #
    with tempfile.TemporaryDirectory() as tmp:
        cold = deployment.serve(deploy.ServeConfig(
            fleet=FLEET, max_wait_s=5e-3, artifact_dir=Path(tmp)))
        stats = cold.cache.stats()
        print(f"Cold fleet with artifact_dir: compiled {stats['misses']} models, "
              f"persisted {stats['disk_stores']} artifacts "
              f"({len(list(Path(tmp).glob('*.rpa')))} files)")
        before = PIPELINE_COUNTERS.snapshot()
        warm = deploy.compile("lenet_nano", COMPILE).serve(deploy.ServeConfig(
            fleet=FLEET, max_wait_s=5e-3, artifact_dir=Path(tmp)))
        warm_stats = warm.cache.stats()
        delta = PIPELINE_COUNTERS.delta(before)
        print(f"Warm fleet: {warm_stats['disk_hits']} models loaded from disk; "
              f"pipeline work beyond the preloaded deployment's compile: "
              f"optimizations={delta['optimizations'] - 1}, "
              f"autotune_runs={delta['autotune_runs'] - 1} for "
              f"{len(FLEET) - 1} fleet models\n")

    # ------------------------------------------------------------------ #
    # Plan cache pressure: fleet of 3 through a cache of 2.
    # ------------------------------------------------------------------ #
    small_cache = deployment.serve(deploy.ServeConfig(
        fleet=FLEET, max_wait_s=5e-3, max_queue_depth=64, cache_capacity=2))
    report = small_cache.serve(requests)
    cache = report.cache
    print(f"Cache capacity 2 over a fleet of {len(FLEET)}: "
          f"{cache['hits']} hits, {cache['misses']} misses, "
          f"{cache['evictions']} evictions, {cache['recompiles']} recompiles "
          f"({cache['total_compile_s'] * 1e3:.0f}ms total compile); "
          f"resident now: {cache['resident']}\n")

    # ------------------------------------------------------------------ #
    # Real-clock execution: the same fleet on an actual thread pool.
    # ------------------------------------------------------------------ #
    real = deployment.serve(deploy.ServeConfig(
        fleet=FLEET, max_wait_s=5e-3, workers=2, execution="real"))
    report = real.serve(requests)
    real.close()
    fleet_stats = report.fleet
    print(f"Real execution (2 dispatch workers, wall clock): "
          f"{fleet_stats['completed']} served at "
          f"{fleet_stats['goodput_rps']:.0f} req/s measured, "
          f"p99 {fleet_stats['latency_ms']['p99']:.1f}ms over "
          f"{report.metrics['makespan_s'] * 1e3:.0f}ms makespan\n")

    # ------------------------------------------------------------------ #
    # Process backend: each dispatch worker drives a worker process that
    # bootstrapped its engines from .rpa artifacts; images/codes move
    # through shared-memory arenas.  Codes stay bit-identical.
    # ------------------------------------------------------------------ #
    proc = deployment.serve(deploy.ServeConfig(
        fleet=FLEET, max_wait_s=5e-3, workers=2, execution="real",
        backend="process"))
    proc_report = proc.serve(requests)
    proc.close()
    print(f"Process backend (2 worker processes, shared-memory data plane): "
          f"{proc_report.fleet['completed']} served at "
          f"{proc_report.fleet['goodput_rps']:.0f} req/s measured, "
          f"backend={proc_report.backend}\n")

    # ------------------------------------------------------------------ #
    # Open-loop pacing: replay the scenario's arrival process on the wall
    # clock, 4x sped up — arrivals are independent of completions, the
    # load shape that exposes queueing collapse (flooding measures peak
    # throughput instead).
    # ------------------------------------------------------------------ #
    paced = deployment.serve(deploy.ServeConfig(
        fleet=FLEET, max_wait_s=5e-3, workers=2, execution="real"))
    paced_report = paced.serve(requests, pacing="open", time_scale=0.25)
    paced.close()
    print(f"Open-loop pacing (time_scale=0.25): "
          f"{paced_report.fleet['completed']} served, "
          f"p99 {paced_report.latency_ms('p99'):.1f}ms at the offered rate "
          f"(pacing={paced_report.pacing})\n")

    # ------------------------------------------------------------------ #
    # Overload: admission control sheds instead of queueing unboundedly.
    # ------------------------------------------------------------------ #
    rng = np.random.default_rng(1)
    arrivals = np.sort(rng.uniform(0.0, 0.5, size=600))
    overload = [Request(i, "lenet_nano", float(t),
                        rng.standard_normal((3, IMAGE_SIZE, IMAGE_SIZE)),
                        deadline_s=0.05)
                for i, t in enumerate(arrivals)]
    server = deployment.serve(
        deploy.ServeConfig(max_batch=4, max_wait_s=2e-3, max_queue_depth=16),
        compute_time_fn=lambda m, f: 0.02)
    report = server.serve(overload)
    fleet = report.fleet
    shed = report.metrics["per_model"]["lenet_nano"]["shed"]
    print(f"Overload (1200 rps offered vs ~200 rps capacity): "
          f"{fleet['completed']} served / {fleet['shed']} shed "
          f"({fleet['shed_rate'] * 100:.0f}%), by reason {shed}; "
          f"served p99 {fleet['latency_ms']['p99']:.1f}ms stays bounded "
          f"(max queue depth {report.metrics['queue_depth']['max_depth']}).")
    print("\nFull scenario sweep: "
          f"PYTHONPATH=src python -m pytest benchmarks/test_serving_scenarios.py -q -s "
          f"(scenarios: {', '.join(SCENARIOS)})")


if __name__ == "__main__":
    main()
