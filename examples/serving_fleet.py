"""Serving a fleet of integer-compiled models under realistic traffic.

The paper's deployment story ends at a fixed-point inference graph; a
production deployment starts there.  This example stands up a
:class:`repro.serving.FleetServer` over three registry models and walks the
serving trade-offs end to end:

1. generate a bursty request stream with a per-request latency SLO;
2. serve it under fixed full-batch coalescing (PR 1's ``BatchedRunner``
   policy) and under dynamic max-batch/max-wait batching, and compare tail
   latency;
3. shrink the plan cache below the fleet size and watch eviction/recompile
   counters move;
4. overload the server and watch admission control trade goodput for
   bounded latency instead of unbounded queueing.

Run with:  PYTHONPATH=src python examples/serving_fleet.py
(or just ``python examples/...`` after ``pip install -e .``)
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.serving import (
    SCENARIOS,
    AdmissionPolicy,
    BatchingPolicy,
    FleetServer,
    Request,
    Scenario,
    fleet_input_shapes,
    generate_requests,
)

FLEET = ["lenet_nano", "vgg_nano", "mobilenet_v1_nano"]
IMAGE_SIZE = 8
BATCH = 8
COMPILE_KWARGS = dict(calibration_samples=8, calibration_batch_size=4)


def make_server(policy: BatchingPolicy, **kwargs) -> FleetServer:
    kwargs.setdefault("admission", AdmissionPolicy(max_queue_depth=64))
    return FleetServer(FLEET, batch_size=BATCH, image_size=IMAGE_SIZE, policy=policy,
                       compile_kwargs=COMPILE_KWARGS, **kwargs)


def main() -> None:
    scenario = Scenario(
        "bursty_fleet", "bursty", duration_s=2.0,
        model_mix=(("lenet_nano", 0.5), ("vgg_nano", 0.3), ("mobilenet_v1_nano", 0.2)),
        slo_ms=250.0, params=dict(burst_rate_rps=400.0, on_s=0.15, off_s=0.35))
    requests = generate_requests(scenario, fleet_input_shapes(FLEET, IMAGE_SIZE), seed=0)
    print(f"Workload: {len(requests)} requests over {scenario.duration_s:.0f}s "
          f"({scenario.arrival} arrivals), SLO {scenario.slo_ms:.0f}ms, "
          f"fleet mix over {len(FLEET)} models\n")

    # ------------------------------------------------------------------ #
    # Dynamic batching vs. fixed full-batch coalescing.
    # ------------------------------------------------------------------ #
    rows = []
    for label, policy in [("full_batch", BatchingPolicy.full_batch(BATCH)),
                          ("dynamic", BatchingPolicy.dynamic(BATCH, 5e-3))]:
        report = make_server(policy).serve(requests)
        fleet = report.fleet
        rows.append([label, fleet["completed"], fleet["shed"],
                     f"{fleet['goodput_rps']:.0f}",
                     f"{fleet['latency_ms']['p50']:.2f}",
                     f"{fleet['latency_ms']['p99']:.2f}",
                     f"{fleet['utilization'] * 100:.0f}%"])
    print(format_table(
        ["policy", "completed", "shed", "goodput rps", "p50 ms", "p99 ms", "util"],
        rows, title="Batching policy under bursty traffic"))
    print("Partial batches launched on the max-wait timeout keep tail latency "
          "bounded through the bursts.\n")

    # ------------------------------------------------------------------ #
    # Multicore sharded execution: workers=N splits every batch across a
    # thread pool of per-shard engines (BLAS releases the GIL).  Codes are
    # bit-identical; on multicore hosts compute time drops per batch.
    # ------------------------------------------------------------------ #
    sharded_server = make_server(BatchingPolicy.dynamic(BATCH, 5e-3), workers=2)
    sharded_report = sharded_server.serve(requests)
    print(f"Same stream with workers=2 sharded engines: "
          f"{sharded_report.fleet['completed']} completed, "
          f"p99 {sharded_report.latency_ms('p99'):.2f}ms "
          f"(single-worker p99 was {rows[-1][5]}ms; identical output codes, "
          f"gains need >1 physical core)\n")
    sharded_server.close()

    # ------------------------------------------------------------------ #
    # Plan cache pressure: fleet of 3 through a cache of 2.
    # ------------------------------------------------------------------ #
    small_cache = make_server(BatchingPolicy.dynamic(BATCH, 5e-3), cache_capacity=2)
    report = small_cache.serve(requests)
    cache = report.cache
    print(f"Cache capacity 2 over a fleet of {len(FLEET)}: "
          f"{cache['hits']} hits, {cache['misses']} misses, "
          f"{cache['evictions']} evictions, {cache['recompiles']} recompiles "
          f"({cache['total_compile_s'] * 1e3:.0f}ms total compile); "
          f"resident now: {cache['resident']}\n")

    # ------------------------------------------------------------------ #
    # Overload: admission control sheds instead of queueing unboundedly.
    # ------------------------------------------------------------------ #
    rng = np.random.default_rng(1)
    arrivals = np.sort(rng.uniform(0.0, 0.5, size=600))
    overload = [Request(i, "lenet_nano", float(t),
                        rng.standard_normal((3, IMAGE_SIZE, IMAGE_SIZE)),
                        deadline_s=0.05)
                for i, t in enumerate(arrivals)]
    server = FleetServer(["lenet_nano"], batch_size=BATCH, image_size=IMAGE_SIZE,
                         policy=BatchingPolicy.dynamic(4, 2e-3),
                         admission=AdmissionPolicy(max_queue_depth=16),
                         compile_kwargs=COMPILE_KWARGS,
                         compute_time_fn=lambda m, f: 0.02)
    report = server.serve(overload)
    fleet = report.fleet
    shed = report.metrics["per_model"]["lenet_nano"]["shed"]
    print(f"Overload (1200 rps offered vs ~200 rps capacity): "
          f"{fleet['completed']} served / {fleet['shed']} shed "
          f"({fleet['shed_rate'] * 100:.0f}%), by reason {shed}; "
          f"served p99 {fleet['latency_ms']['p99']:.1f}ms stays bounded "
          f"(max queue depth {report.metrics['queue_depth']['max_depth']}).")
    print("\nFull scenario sweep: "
          f"PYTHONPATH=src python -m pytest benchmarks/test_serving_scenarios.py -q -s "
          f"(scenarios: {', '.join(SCENARIOS)})")


if __name__ == "__main__":
    main()
