"""Quickstart: quantize a small CNN with TQT in five steps.

This walks the complete flow of the paper on a miniature network and the
synthetic dataset:

1. train a floating-point baseline;
2. run the Graffitist-style graph optimizations (BN folding etc.);
3. static INT8 quantization (calibrate-only);
4. TQT retraining (weights + thresholds trained jointly);
5. compare validation accuracy across the three models.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.data import DataLoader, Preprocessor, SyntheticImageNet, sample_calibration_batches
from repro.graph import prepare_retrain, quantize_static, transforms
from repro.models import build_model
from repro.training import Evaluator, PaperHyperparameters, Trainer


def main() -> None:
    # ------------------------------------------------------------------ #
    # 0. Data: a deterministic synthetic stand-in for ImageNet.
    # ------------------------------------------------------------------ #
    dataset = SyntheticImageNet(num_classes=6, image_size=12, train_size=192, val_size=96,
                                noise_level=0.25, seed=0)
    preprocessor = Preprocessor()
    train_loader = DataLoader(dataset, dataset.train, batch_size=16, preprocessor=preprocessor)
    val_loader = DataLoader(dataset, dataset.val, batch_size=16, shuffle=False,
                            preprocessor=preprocessor)
    calibration = sample_calibration_batches(dataset, num_samples=32, batch_size=8,
                                             preprocessor=preprocessor)
    evaluator = Evaluator(val_loader)

    # ------------------------------------------------------------------ #
    # 1. Floating-point baseline ("pre-trained checkpoint").
    # ------------------------------------------------------------------ #
    graph = build_model("lenet_nano", num_classes=6, seed=0)
    fp32_hparams = PaperHyperparameters(batch_size=16, weight_lr=5e-3, max_epochs=5,
                                        bn_freeze_epochs=4, freeze_thresholds=False)
    Trainer(graph, train_loader, val_loader, hparams=fp32_hparams).train(5)
    fp32 = evaluator.evaluate(graph)
    print(f"FP32 baseline: {fp32}")

    # ------------------------------------------------------------------ #
    # 2. Graph optimizations (batch-norm folding, identity splicing, ...).
    # ------------------------------------------------------------------ #
    graph.eval()
    report = transforms.run_default_optimizations(graph)
    print(f"Graph optimizations: {report}")

    # ------------------------------------------------------------------ #
    # 3. Static INT8 quantization: MAX weights, KL-J activations, no training.
    # ------------------------------------------------------------------ #
    static_model = quantize_static(graph, calibration)
    static = evaluator.evaluate(static_model.graph)
    print(f"Static INT8:   {static}")

    # ------------------------------------------------------------------ #
    # 4. TQT retraining: thresholds + weights trained on the task loss.
    # ------------------------------------------------------------------ #
    tqt_model = prepare_retrain(graph, calibration, mode="wt,th")
    retrain_hparams = PaperHyperparameters(batch_size=16, weight_lr=1e-3, threshold_lr=1e-2,
                                           max_epochs=3)
    result = Trainer(tqt_model.graph, train_loader, val_loader,
                     hparams=retrain_hparams).train(3)
    print(f"TQT INT8:      top-1 {result.best_top1 * 100:.1f}%  "
          f"top-5 {result.best_top5 * 100:.1f}%  (best epoch {result.best_epoch:.1f})")

    # ------------------------------------------------------------------ #
    # 5. Summary.
    # ------------------------------------------------------------------ #
    rows = [
        ["FP32", "32/32", f"{fp32.top1 * 100:.1f}", f"{fp32.top5 * 100:.1f}"],
        ["Static INT8", "8/8", f"{static.top1 * 100:.1f}", f"{static.top5 * 100:.1f}"],
        ["TQT (wt,th) INT8", "8/8", f"{result.best_top1 * 100:.1f}",
         f"{result.best_top5 * 100:.1f}"],
    ]
    print()
    print(format_table(["Mode", "W/A", "top-1 (%)", "top-5 (%)"], rows,
                       title="Quickstart summary (lenet_nano, synthetic data)"))


if __name__ == "__main__":
    main()
