"""Calibration-method comparison (Table 2 context).

Shows how the threshold initialization methods of Table 2 — MAX, 3SD,
percentile and KL-J — behave on (a) synthetic weight/activation
distributions and (b) the actual tensors of a small network, and how much of
each distribution they clip at 8 and 4 bits.

Run with:  python examples/calibration_methods_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.graph import OpKind
from repro.models import build_model
from repro.quant import calibrate, kl_j_calibration


def clipped_fraction(values: np.ndarray, threshold: float) -> float:
    return float(np.mean(np.abs(values) > threshold))


def describe(name: str, values: np.ndarray) -> list[list[str]]:
    rows = []
    for method_name, threshold in [
        ("MAX", calibrate(values, "max")),
        ("3SD", calibrate(values, "3sd")),
        ("99.9 percentile", calibrate(values, "percentile", percentile=99.9)),
        ("KL-J (8-bit)", kl_j_calibration(values, bits=8)),
        ("KL-J (4-bit)", kl_j_calibration(values, bits=4)),
    ]:
        rows.append([name, method_name, f"{threshold:.4f}",
                     f"{clipped_fraction(values, threshold) * 100:.2f}%"])
    return rows


def main() -> None:
    rng = np.random.default_rng(0)

    rows: list[list[str]] = []
    # Synthetic distributions: well-behaved Gaussian vs long-tailed mixture.
    rows += describe("gaussian weights", rng.normal(0, 0.05, 50_000))
    rows += describe("long-tailed activations",
                     np.abs(np.concatenate([rng.normal(0, 1.0, 50_000),
                                            rng.normal(0, 12.0, 300)])))

    # Real tensors from the MobileNet-style model: dense vs depthwise weights.
    graph = build_model("mobilenet_v1_nano", num_classes=6, seed=0,
                        channel_range_spread=16.0)
    dense = next(node for node in graph.nodes_of_kind(OpKind.CONV)
                 if node.module.kernel_size == (3, 3))
    depthwise = graph.nodes_of_kind(OpKind.DEPTHWISE_CONV)[0]
    rows += describe(f"{dense.name} (dense conv weights)", dense.module.weight.data.ravel())
    rows += describe(f"{depthwise.name} (depthwise weights)",
                     depthwise.module.weight.data.ravel())

    print(format_table(
        ["tensor", "method", "threshold", "clipped"],
        rows,
        title="Table 2 context: threshold initialization methods and how much they clip",
    ))
    print()
    print("MAX never clips but wastes integer range on outliers; 3SD / percentile / KL-J")
    print("trade a small clipped fraction for finer resolution of the bulk — the same")
    print("range-precision trade-off that TQT later optimizes with gradients.")


if __name__ == "__main__":
    main()
