"""Figure 6 — histograms of threshold deviations under INT8 vs INT4 retraining.

Paper: thresholds deviate from their calibrated initialization during TQT
training; larger *positive* deviations (more range) appear in the 8-bit case
than in the 4-bit case, because with fewer bits the method cuts back on
range to preserve precision.
"""

from __future__ import annotations


from repro.analysis import (
    collect_threshold_deviations,
    deviation_histogram,
    format_histogram,
)


def _mean_deviation(histogram: dict[int, int]) -> float:
    total = sum(histogram.values())
    if total == 0:
        return 0.0
    return sum(dev * count for dev, count in histogram.items()) / total


def test_figure6_deviation_histogram(benchmark, mobilenet_v1_tqt_int8, mobilenet_v1_tqt_int4,
                                     report_writer):
    int8 = mobilenet_v1_tqt_int8
    int4 = mobilenet_v1_tqt_int4

    hist8 = deviation_histogram(collect_threshold_deviations(int8["result"], int8["graph"]))
    hist4 = deviation_histogram(collect_threshold_deviations(int4["result"], int4["graph"]))

    report = "\n\n".join([
        format_histogram(hist8, title="Figure 6a — INT8 (8/8) threshold deviations"),
        format_histogram(hist4, title="Figure 6b — INT4 (4/8) threshold deviations"),
        f"mean deviation: INT8 {_mean_deviation(hist8):+.2f} bins, "
        f"INT4 {_mean_deviation(hist4):+.2f} bins",
    ])
    report_writer("figure6_deviation_histogram", report)

    # Both runs actually moved thresholds.
    assert sum(hist8.values()) > 0 and sum(hist4.values()) > 0
    # The 8-bit run is at least as range-hungry as the 4-bit run (its largest
    # positive deviation and its mean deviation are >= the 4-bit ones).
    assert max(hist8) >= max(hist4)
    assert _mean_deviation(hist8) >= _mean_deviation(hist4) - 0.25

    benchmark(lambda: deviation_histogram(
        collect_threshold_deviations(int8["result"], int8["graph"])))
