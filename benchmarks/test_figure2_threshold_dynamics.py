"""Figure 2 — trained thresholds move inward or outward to trade range for precision.

Three panels in the paper: (left) a threshold initialized too wide moves
*inward* because the cumulative gradient from within-range samples is
positive; (center) a threshold initialized too tight moves *outward* because
clipped samples dominate with negative gradients; (right) at convergence the
two contributions cancel.
"""

from __future__ import annotations


from repro.analysis import ToyL2Problem, train_threshold


def test_figure2_threshold_dynamics(benchmark, report_writer):
    problem = ToyL2Problem(sigma=1.0, bits=8, num_samples=2000, seed=0)
    optimum = problem.optimal_log_threshold()

    # Panel 1: threshold too large -> positive gradient -> log2 t decreases (moves in).
    _, grad_wide = problem.loss_and_log_grad(optimum + 3.0)
    # Panel 2: threshold too small -> negative gradient -> log2 t increases (moves out).
    _, grad_tight = problem.loss_and_log_grad(optimum - 3.0)
    # Panel 3: at convergence the cumulative gradient is (approximately) zero.
    _, grad_converged = problem.loss_and_log_grad(optimum)

    trajectory_wide = train_threshold(problem, init_log2_t=optimum + 3.0, steps=300, lr=0.05,
                                      method="adam", batch_size=2000, seed=1)
    trajectory_tight = train_threshold(problem, init_log2_t=optimum - 3.0, steps=300, lr=0.05,
                                       method="adam", batch_size=2000, seed=1)

    report = "\n".join([
        "Figure 2 — range/precision trade-off through threshold gradients",
        f"optimal log2 t* (brute force): {optimum:.2f}",
        f"gradient at t* + 3 bins: {grad_wide:+.4f}  (positive -> threshold moves IN)",
        f"gradient at t* - 3 bins: {grad_tight:+.4f}  (negative -> threshold moves OUT)",
        f"gradient at t*:          {grad_converged:+.4f}  (near zero at convergence)",
        f"trained from t*+3: final log2 t = {trajectory_wide.final:.2f}",
        f"trained from t*-3: final log2 t = {trajectory_tight.final:.2f}",
    ])
    report_writer("figure2_threshold_dynamics", report)

    assert grad_wide > 0 and grad_tight < 0
    assert abs(grad_converged) < min(abs(grad_wide), abs(grad_tight))
    # Both trajectories converge to within one integer bin of the optimum.
    assert abs(trajectory_wide.final - optimum) < 1.0
    assert abs(trajectory_tight.final - optimum) < 1.0

    benchmark(lambda: problem.loss_and_log_grad(optimum + 1.0))
