"""Interpreter overhead — step interpreter vs. tape executor vs. fused tape.

PR 3 made the *kernels* fast; this benchmark tracks the third act: executing
them without paying Python per step.  For each model the same engine
buffers run through three execution paths:

* **steps** — the bound-step interpreter (``mode="steps"``), one dispatch
  plus env-slot indirection plus a chain of small NumPy calls per step;
* **tape** — the flat instruction program with elementwise-chain fusion
  *disabled* (``fuse=False``): prebound kernel calls, aliased reshapes,
  tape-autotuned macro kernels (the stacked-shift GEMM included);
* **tape+fusion** — the default path: provably-identity scale/round/clip
  operations eliminated and activation clips slid into the output clamp.

Bit-exactness between all three is asserted before any speed number is
recorded.  ``BENCH_overhead.json`` lands at the repo root; the CI gate
requires the fused tape to beat the step interpreter by
``OVERHEAD_BENCH_MIN_SPEEDUP`` (default 1.25x) on the two gate models.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.analysis import format_table
from repro.deploy import CompileConfig, QuantConfig, RuntimeConfig
from repro.deploy import compile as deploy_compile

BENCH_JSON = Path(__file__).parent.parent / "BENCH_overhead.json"

MODELS = ["lenet_nano", "mobilenet_v1_nano", "resnet_nano", "darknet_nano"]
GATE_MODELS = ["mobilenet_v1_nano", "resnet_nano"]
IMAGE_SIZE = 16
BATCH_SIZE = 8
BATCHES = 4
SWEEPS = 12
MIN_TAPE_SPEEDUP = float(os.environ.get("OVERHEAD_BENCH_MIN_SPEEDUP", "1.25"))


def _interleaved_rates(runs: dict, batches, repeats: int = SWEEPS) -> dict:
    """Images/second per execution path from the best observed batch latency.

    The paths' sweeps are interleaved (A B C, A B C, ...) and the per-path
    minimum taken, so the speedup ratios stay stable under shared-host load
    noise (one quiet scheduling window per path suffices).
    """
    for run in runs.values():
        run(batches[0])
        run(batches[0])  # double warmup: fault in every buffer before timing
    best = {key: float("inf") for key in runs}
    for _ in range(repeats):
        for key, run in runs.items():
            for batch in batches:
                start = time.perf_counter()
                run(batch)
                best[key] = min(best[key], time.perf_counter() - start)
    return {key: batches[0].shape[0] / elapsed for key, elapsed in best.items()}


def test_tape_overhead(report_writer):
    rng = np.random.default_rng(0)
    batches = [rng.standard_normal((BATCH_SIZE, 3, IMAGE_SIZE, IMAGE_SIZE))
               for _ in range(BATCHES)]
    config = CompileConfig(
        image_size=IMAGE_SIZE,
        quant=QuantConfig(calibration_samples=16, calibration_batch_size=8),
        runtime=RuntimeConfig(batch_size=BATCH_SIZE),
    )
    rows = []
    results = {}
    for name in MODELS:
        deployment = deploy_compile(name, config)
        fused = deployment.engine                     # mode="tape", fuse=True
        shape = fused.input_shape
        steps = deployment.plan.bind(shape, mode="steps")
        unfused = deployment.plan.bind(shape, mode="tape", fuse=False)

        # Bit-exactness across all three paths before any timing.
        for batch in batches:
            reference = steps.run(batch).codes
            np.testing.assert_array_equal(fused.run(batch).codes, reference)
            np.testing.assert_array_equal(unfused.run(batch).codes, reference)

        rates = _interleaved_rates({
            "steps": steps.run,
            "tape": unfused.run,
            "tape_fused": fused.run,
        }, batches)
        tape_speedup = rates["tape_fused"] / rates["steps"]
        fusion_gain = rates["tape_fused"] / rates["tape"]
        report = fused.tape.report
        results[name] = {
            "steps_img_per_s": rates["steps"],
            "tape_img_per_s": rates["tape"],
            "tape_fused_img_per_s": rates["tape_fused"],
            "tape_speedup": tape_speedup,
            "fusion_gain": fusion_gain,
            "bit_exact": True,
            "instructions": report["instructions"],
            "native_steps": report["native_steps"],
            "fallback_steps": report["fallback_steps"],
            "aliased_views": report["aliased_views"],
            "chain_ops_recorded": report["chain_ops_recorded"],
            "chain_ops_emitted": report["chain_ops_emitted"],
            "eliminated": dict(report["eliminated"]),
            "tape_kernel_choices": fused.tape.choices(),
        }
        rows.append([
            name, f"{rates['steps']:.0f}", f"{rates['tape']:.0f}",
            f"{rates['tape_fused']:.0f}", f"{tape_speedup:.2f}x",
            f"{fusion_gain:.2f}x", report["instructions"],
            report["chain_ops_emitted"],
        ])

    report_writer("engine_overhead", format_table(
        ["model", "steps img/s", "tape img/s", "tape+fuse img/s",
         "tape speedup", "fusion gain", "instrs", "chain ops"],
        rows,
        title=f"Tape executor vs step interpreter — image {IMAGE_SIZE}, "
              f"batch {BATCH_SIZE}, best-of interleaved timing",
    ))

    payload = {
        "benchmark": "engine_overhead",
        "image_size": IMAGE_SIZE,
        "batch_size": BATCH_SIZE,
        "cpu_count": os.cpu_count(),
        "blas_threads_pinned": os.environ.get("OPENBLAS_NUM_THREADS"),
        "min_tape_speedup_gate": MIN_TAPE_SPEEDUP,
        "gate_models": GATE_MODELS,
        "models": results,
        "unix_time": time.time(),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    for name in GATE_MODELS:
        speedup = results[name]["tape_speedup"]
        assert speedup >= MIN_TAPE_SPEEDUP, (
            f"{name}: fused tape is {speedup:.2f}x over the step interpreter, "
            f"below the {MIN_TAPE_SPEEDUP:.2f}x gate"
        )
