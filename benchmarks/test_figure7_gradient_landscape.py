"""Figure 7 — L2-loss gradients w.r.t. raw / log / normed-log thresholds.

For Gaussian inputs whose standard deviation spans four orders of magnitude,
the gradient magnitude of the raw- and log-threshold parameterizations
depends strongly on both the threshold position and the input scale; the
normed-log gradients (Eq. 17/18) are the "desired" scale-invariant curves.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import compute_gradient_landscape, format_series, scale_invariance_metrics

SIGMAS = [1e-2, 1e-1, 1e0, 1e1, 1e2]


def test_figure7_gradient_landscape(benchmark, report_writer):
    landscapes = [compute_gradient_landscape(sigma, bits=8, num_points=81, seed=0)
                  for sigma in SIGMAS]
    spreads = scale_invariance_metrics(landscapes)

    lines = ["Figure 7 — threshold-gradient landscapes (b=8)"]
    for landscape in landscapes:
        lines.append(format_series(landscape.log2_t, landscape.log_grad,
                                   f"log grad, sigma={landscape.sigma:g}", max_points=7))
    lines.append("")
    lines.append("gradient-magnitude spread across input scales (1.0 = scale invariant):")
    for name, spread in spreads.items():
        lines.append(f"  {name:<18s} {spread:12.1f}x")
    report_writer("figure7_gradient_landscape", "\n".join(lines))

    # Raw and log gradients are strongly scale dependent (orders of magnitude);
    # normed gradients stay within a small constant factor.
    assert spreads["raw_grad"] > 1e2
    assert spreads["log_grad"] > 1e2
    assert spreads["normed_log_grad"] < 50
    assert spreads["normed_log_grad"] < spreads["log_grad"] / 100
    # Normed gradients are bounded by 1 in magnitude (Eq. 18 tanh clipping).
    assert all(np.abs(l.normed_log_grad).max() <= 1.0 + 1e-9 for l in landscapes)
    # Every landscape has negative gradients left of its optimum and positive to the right.
    for landscape in landscapes:
        optimum = landscape.log2_t[int(np.argmin(landscape.loss))]
        left = landscape.log_grad[landscape.log2_t < optimum - 1.0]
        right = landscape.log_grad[landscape.log2_t > optimum + 1.0]
        assert left.mean() < 0 < right.mean()

    benchmark(lambda: compute_gradient_landscape(1.0, bits=8, num_points=41, seed=0))
