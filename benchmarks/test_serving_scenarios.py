"""Serving scenarios — fleet server under realistic traffic shapes.

Sweeps the workload scenarios (Poisson, bursty, diurnal, heavy-tailed
arrivals) against the two batching policies (dynamic max-batch/max-wait vs.
fixed full-batch coalescing) over a two-model fleet, with measured engine
compute driving the virtual clock.  A separate deterministic pass (fixed
per-batch cost on the virtual clock, seeded workload) proves the headline
serving claim: under sparse arrivals the dynamic batcher beats full-batch
coalescing on p99 latency by an order of magnitude while admission control
sheds nothing.

Emits machine-readable ``BENCH_serving.json`` at the repo root (per
scenario × policy: percentile latency, goodput vs. shed rate, batch fill,
cache counters) so the serving trajectory is trackable across PRs, plus a
human-readable table under ``benchmarks/reports/``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analysis import format_table
from repro.serving import (
    SCENARIOS,
    AdmissionPolicy,
    BatchingPolicy,
    FleetServer,
    TelemetryConfig,
    fleet_input_shapes,
    generate_requests,
)

BENCH_JSON = Path(__file__).parent.parent / "BENCH_serving.json"

FLEET = ["lenet_nano", "mobilenet_v1_nano"]
IMAGE_SIZE = 8
BATCH = 8
MAX_WAIT_S = 5e-3
SEED = 0
COMPILE_KWARGS = dict(calibration_samples=8, calibration_batch_size=4)
SWEEP = ["steady_poisson", "bursty", "diurnal", "heavy_tail"]

POLICIES = {
    "dynamic": BatchingPolicy.dynamic(BATCH, MAX_WAIT_S),
    "full_batch": BatchingPolicy.full_batch(BATCH),
}


def _server(policy: BatchingPolicy, compute_time_fn=None) -> FleetServer:
    return FleetServer(FLEET, batch_size=BATCH, image_size=IMAGE_SIZE, policy=policy,
                       admission=AdmissionPolicy(max_queue_depth=128),
                       compile_kwargs=COMPILE_KWARGS, compute_time_fn=compute_time_fn)


def _requests(scenario_name: str):
    return generate_requests(SCENARIOS[scenario_name],
                             fleet_input_shapes(FLEET, IMAGE_SIZE), seed=SEED)


def test_serving_scenarios(benchmark, report_writer):
    rows = []
    cells = {}
    for scenario_name in SWEEP:
        requests = _requests(scenario_name)
        for policy_name, policy in POLICIES.items():
            report = _server(policy).serve(requests)
            fleet = report.fleet
            latency = fleet["latency_ms"]
            per_model = report.metrics["per_model"]
            # Every cell must exercise the whole fleet (>= 2 models).
            for model in FLEET:
                assert per_model[model]["arrivals"] > 0, \
                    f"{scenario_name}: no {model} traffic generated"
            assert fleet["completed"] + fleet["shed"] == fleet["arrivals"] == len(requests)
            cells[f"{scenario_name}/{policy_name}"] = report.to_dict()
            batches = sum(per_model[m]["batches"] for m in FLEET)
            slots = sum(per_model[m]["mean_fill"] * per_model[m]["batches"] for m in FLEET)
            attainment = fleet["slo_attainment"]
            rows.append([
                scenario_name, policy_name, fleet["arrivals"], fleet["completed"],
                fleet["shed"], f"{fleet['goodput_rps']:.0f}",
                f"{latency['p50']:.2f}", f"{latency['p99']:.2f}",
                f"{attainment * 100:.0f}%" if attainment is not None else "-",
                f"{slots / batches:.1f}" if batches else "-",
            ])

    # ------------------------------------------------------------------ #
    # Deterministic acceptance pass: sparse arrivals, fixed 2ms batches.
    # ------------------------------------------------------------------ #
    fixed_cost = lambda model, fill: 2e-3
    sparse = _requests("sparse_poisson")
    dynamic = _server(POLICIES["dynamic"], compute_time_fn=fixed_cost).serve(sparse)
    full = _server(POLICIES["full_batch"], compute_time_fn=fixed_cost).serve(sparse)
    assert dynamic.shed == 0, "admission control must shed nothing on sparse traffic"
    assert dynamic.completed == full.completed == len(sparse)
    assert dynamic.latency_ms("p99") < full.latency_ms("p99") / 5, (
        f"dynamic batching p99 {dynamic.latency_ms('p99'):.2f}ms must beat "
        f"full-batch coalescing p99 {full.latency_ms('p99'):.2f}ms on sparse arrivals"
    )
    # Goodput alone can't separate the policies (both complete everything);
    # SLO attainment can: dynamic meets every 250ms deadline, full-batch
    # coalescing busts it for the majority of requests.
    assert dynamic.fleet["slo_attainment"] == 1.0
    assert full.fleet["slo_attainment"] < 0.5
    for rep, policy_name in [(dynamic, "dynamic"), (full, "full_batch")]:
        rows.append(["sparse_poisson*", policy_name, rep.fleet["arrivals"],
                     rep.completed, rep.shed, f"{rep.fleet['goodput_rps']:.0f}",
                     f"{rep.latency_ms('p50'):.2f}", f"{rep.latency_ms('p99'):.2f}",
                     f"{rep.fleet['slo_attainment'] * 100:.0f}%", "-"])

    # ------------------------------------------------------------------ #
    # Wall-clock pass: the same steady stream on a REAL dispatch thread
    # pool (execution="real") — measured throughput/latency, not virtual.
    # ------------------------------------------------------------------ #
    steady = _requests("steady_poisson")
    real_server = FleetServer(FLEET, batch_size=BATCH, image_size=IMAGE_SIZE,
                              policy=POLICIES["dynamic"],
                              admission=AdmissionPolicy(max_queue_depth=128),
                              compile_kwargs=COMPILE_KWARGS,
                              workers=2, execution="real")
    wall = real_server.serve(steady)
    real_server.close()
    assert wall.execution == "real"
    assert wall.completed > 0 and wall.fleet["goodput_rps"] > 0
    assert wall.metrics["makespan_s"] > 0
    rows.append(["steady_poisson(wall)", "dynamic", wall.fleet["arrivals"],
                 wall.completed, wall.shed, f"{wall.fleet['goodput_rps']:.0f}",
                 f"{wall.latency_ms('p50'):.2f}", f"{wall.latency_ms('p99'):.2f}",
                 "-", "-"])

    # Open-loop pacing on the same thread-pool server: arrivals released on
    # the wall clock independent of completions.  time_scale compresses the
    # scenario clock — smaller scale = higher offered load, so the pair
    # shows the open-loop overload trajectory (latency grows, sheds appear)
    # that flood ingestion can't express.
    open_cells = {}
    for scale in (0.25, 0.05):
        open_server = FleetServer(FLEET, batch_size=BATCH, image_size=IMAGE_SIZE,
                                  policy=POLICIES["dynamic"],
                                  admission=AdmissionPolicy(max_queue_depth=128),
                                  compile_kwargs=COMPILE_KWARGS,
                                  workers=2, execution="real")
        open_report = open_server.serve(steady, pacing="open", time_scale=scale)
        open_server.close()
        assert open_report.pacing == "open"
        assert open_report.completed + open_report.shed == len(steady)
        open_cells[f"time_scale={scale}"] = open_report.to_dict()
        rows.append([f"steady_poisson(open x{scale})", "dynamic",
                     open_report.fleet["arrivals"], open_report.completed,
                     open_report.shed, f"{open_report.fleet['goodput_rps']:.0f}",
                     f"{open_report.latency_ms('p50'):.2f}",
                     f"{open_report.latency_ms('p99'):.2f}", "-", "-"])

    # Same stream once more on the PROCESS backend: two worker processes,
    # per-process engines warmed from .rpa artifacts, codes over shared
    # memory.  This is the measured multiprocess row that sits next to the
    # virtual-clock prediction of the same scenario in BENCH_serving.json.
    proc_server = FleetServer(FLEET, batch_size=BATCH, image_size=IMAGE_SIZE,
                              policy=POLICIES["dynamic"],
                              admission=AdmissionPolicy(max_queue_depth=128),
                              compile_kwargs=COMPILE_KWARGS,
                              workers=2, execution="real", backend="process")
    proc_wall = proc_server.serve(steady)
    # One more traced pass on the live process fleet: a 25%-sampled request
    # trace whose Chrome JSON lands next to the report tables (CI uploads it
    # as an artifact — load it in Perfetto to see the run).
    traced = proc_server.serve(
        steady, telemetry=TelemetryConfig(sample_rate=0.25))
    trace_path = Path(__file__).parent / "reports" / "trace.json"
    traced.save_trace(trace_path)
    proc_server.close()
    assert traced.trace.spans, "sampled process-backend run must record spans"
    assert proc_wall.backend == "process"
    assert proc_wall.completed > 0 and proc_wall.fleet["goodput_rps"] > 0
    rows.append(["steady_poisson(proc)", "dynamic", proc_wall.fleet["arrivals"],
                 proc_wall.completed, proc_wall.shed,
                 f"{proc_wall.fleet['goodput_rps']:.0f}",
                 f"{proc_wall.latency_ms('p50'):.2f}",
                 f"{proc_wall.latency_ms('p99'):.2f}", "-", "-"])

    report_writer("serving_scenarios", format_table(
        ["scenario", "policy", "offered", "completed", "shed", "goodput rps",
         "p50 ms", "p99 ms", "SLO met", "mean fill"],
        rows,
        title=f"Fleet serving — {' + '.join(FLEET)}, batch {BATCH}, "
              f"max_wait {MAX_WAIT_S * 1e3:.0f}ms (* = deterministic 2ms batches; "
              f"(wall) = real thread pool; (proc) = real worker processes; "
              f"(open xS) = open-loop pacing at time_scale S)",
    ))

    payload = {
        "benchmark": "serving_scenarios",
        "fleet": FLEET,
        "image_size": IMAGE_SIZE,
        "batch_size": BATCH,
        "max_wait_s": MAX_WAIT_S,
        "seed": SEED,
        "scenarios": cells,
        "sparse_deterministic": {
            "compute_time_s_per_batch": 2e-3,
            "dynamic": dynamic.to_dict(),
            "full_batch": full.to_dict(),
            "p99_improvement": full.latency_ms("p99") / dynamic.latency_ms("p99"),
        },
        "wall_clock": {
            "scenario": "steady_poisson",
            "workers": 2,
            # Virtual-clock prediction of the same scenario/policy cell, for
            # the MLSYSIM-style predicted-vs-measured comparison.
            "virtual_goodput_rps":
                cells["steady_poisson/dynamic"]["metrics"]["fleet"]["goodput_rps"],
            "thread": wall.to_dict(),
            "process": proc_wall.to_dict(),
        },
        "open_loop": {
            "scenario": "steady_poisson",
            "workers": 2,
            **open_cells,
        },
        "unix_time": time.time(),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    # Timed kernel for pytest-benchmark trend tracking: one dynamic-policy
    # serve of the sparse stream on the deterministic clock.
    server = _server(POLICIES["dynamic"], compute_time_fn=fixed_cost)
    benchmark(lambda: server.serve(sparse))
