"""Figure 1 — TQT quantizer forward/backward transfer curves (b=3, t=1.0).

Reproduces the signed and unsigned transfer curves and checks the analytic
features the figure displays: the staircase forward function with its
saturation levels, the exact clipping limits x_n = s(n-0.5), x_p = s(p+0.5),
the binary input gradient, and the piecewise threshold gradient that is
negative outside the clipping range and sawtooth-like inside it.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_series, tqt_transfer_curves


def test_figure1_transfer_curves(benchmark, report_writer):
    signed = tqt_transfer_curves(threshold=1.0, bits=3, signed=True)
    unsigned = tqt_transfer_curves(threshold=1.0, bits=3, signed=False)

    report = "\n".join([
        "Figure 1 — TQT transfer curves (b=3, t=1.0)",
        f"signed clipping limits:   ({signed.clip_low:.3f}, {signed.clip_high:.3f})  "
        "(paper: -1.125, 0.875)",
        f"unsigned clipping limits: ({unsigned.clip_low:.3f}, {unsigned.clip_high:.3f})",
        format_series(signed.x, signed.forward, "signed forward q(x)"),
        format_series(signed.x, signed.grad_input, "signed local dq/dx"),
        format_series(signed.x, signed.grad_threshold, "signed local dq/dlog2t"),
        format_series(signed.x, signed.loss_grad_threshold, "signed dL2/dlog2t"),
        format_series(unsigned.x, unsigned.forward, "unsigned forward q(x)"),
    ])
    report_writer("figure1_transfer_curves", report)

    # Signed: 2^b levels, saturating at n*s and p*s.
    assert len(np.unique(np.round(signed.forward, 9))) == 8
    assert signed.forward.min() == -1.0 and signed.forward.max() == 0.75
    assert (signed.clip_low, signed.clip_high) == (-1.125, 0.875)
    # Unsigned: non-negative staircase.
    assert unsigned.forward.min() == 0.0
    assert len(np.unique(np.round(unsigned.forward, 9))) == 8
    # Input gradient is exactly the clipping-range indicator.
    assert set(np.unique(signed.grad_input)).issubset({0.0, 1.0})
    # Threshold gradient saturates to s*ln2*n / s*ln2*p outside the range.
    s = 0.25
    assert np.isclose(signed.grad_threshold[0], s * np.log(2) * -4)
    assert np.isclose(signed.grad_threshold[-1], s * np.log(2) * 3)
    # L2-loss threshold gradient is positive inside (pull in) and negative outside (push out).
    inside = (signed.x > -1.0) & (signed.x < 0.75)
    outside = (signed.x < -1.2) | (signed.x > 1.0)
    assert signed.loss_grad_threshold[inside].max() > 0
    assert signed.loss_grad_threshold[outside].max() < 0

    benchmark(lambda: tqt_transfer_curves(threshold=1.0, bits=3, signed=True, num_points=101))
