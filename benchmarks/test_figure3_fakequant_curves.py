"""Figure 3 — TensorFlow FakeQuant transfer curves with clipped gradients.

The forward staircase matches TQT's (Fig. 1), but the backward treats
rounding as identity: threshold gradients are zero inside (n, p), so with
the L2 loss the limits only ever get pushed outward — range is always
favoured over precision (Section 3.5).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import fakequant_transfer_curves, format_series, tqt_transfer_curves


def test_figure3_fakequant_transfer_curves(benchmark, report_writer):
    curves = fakequant_transfer_curves(clip_min=-1.125, clip_max=0.875, bits=3)
    tqt = tqt_transfer_curves(threshold=1.0, bits=3, signed=True)

    report = "\n".join([
        "Figure 3 — FakeQuant transfer curves (b=3, n=-1.125, p=0.875)",
        format_series(curves.x, curves.forward, "forward q(x)"),
        format_series(curves.x, curves.grad_input, "local dq/dx"),
        format_series(curves.x, curves.grad_threshold, "local dq/dmax (clipped)"),
        format_series(curves.x, curves.loss_grad_threshold, "dL2/dmax"),
    ])
    report_writer("figure3_fakequant_curves", report)

    inside = (curves.x > -1.0) & (curves.x < 0.8)
    above = curves.x > 1.0
    # Forward is an 8-level staircase like TQT's.
    assert len(np.unique(np.round(curves.forward, 9))) == 8
    # Clipped threshold gradient: exactly zero inside, one above the max threshold.
    np.testing.assert_allclose(curves.grad_threshold[inside], 0.0, atol=1e-12)
    np.testing.assert_allclose(curves.grad_threshold[above], 1.0)
    # Overall L2 gradient never pulls the threshold inward (<= 0 everywhere) —
    # the contrast with TQT's sign-changing gradient in Figure 1.
    assert curves.loss_grad_threshold.max() <= 1e-12
    assert tqt.loss_grad_threshold.max() > 0

    benchmark(lambda: fakequant_transfer_curves(num_points=101))
