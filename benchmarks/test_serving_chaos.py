"""Goodput under chaos — the fleet's resilience benchmark.

Replays a seeded :class:`~repro.faults.FaultPlan` (worker crash + task hang
+ task errors) against the fleet server twice:

* a **deterministic virtual pass** on the discrete-event clock with fixed
  per-batch compute — the modeled supervisor pays detection + respawn costs
  and the retry policy requeues failed batches, so ``goodput_retained``
  (chaos completions over fault-free completions) is an exactly
  reproducible, machine-independent number the regression gate can hold a
  floor against;
* a **measured process-backend pass** — a live 2-process fleet takes the
  same schedule on the wall clock; worker respawn latency and chaos goodput
  are real recovery numbers.

Emits ``BENCH_faults.json`` at the repo root (gated by
``benchmarks/check_regression.py``: ``faults.goodput_retained`` must stay
>= 0.7) plus a human-readable table under ``benchmarks/reports/``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analysis import format_table
from repro.faults import FaultEvent, FaultPlan, RetryPolicy
from repro.serving import (
    AdmissionPolicy,
    BatchingPolicy,
    FleetServer,
    Scenario,
    fleet_input_shapes,
    generate_requests,
)

BENCH_JSON = Path(__file__).parent.parent / "BENCH_faults.json"

FLEET = ["lenet_nano", "mobilenet_v1_nano"]
IMAGE_SIZE = 8
BATCH = 8
SEED = 0
COMPILE_KWARGS = dict(calibration_samples=8, calibration_batch_size=4)
FIXED_COST = lambda model, fill: 2e-3

#: the chaos schedule: one crash, one hang past the recv deadline, a burst
#: of task errors — addressed in worker-task coordinates so both clocks and
#: both backends replay it identically
PLAN = FaultPlan(events=(
    FaultEvent("worker_crash", worker=0, task_index=1),
    FaultEvent("task_hang", worker=1, task_index=2, duration_s=5.0),
    FaultEvent("task_error", count=2),
), seed=8)
RETRY = RetryPolicy(max_attempts=3, task_timeout_s=0.75,
                    respawn_backoff_s=0.01)

GOODPUT_RETAINED_FLOOR = 0.7


def _requests():
    scenario = Scenario("chaos_bench", "poisson", duration_s=1.0,
                        model_mix=(("lenet_nano", 0.5),
                                   ("mobilenet_v1_nano", 0.5)),
                        slo_ms=None, params=dict(rate_rps=120.0))
    return generate_requests(scenario, fleet_input_shapes(FLEET, IMAGE_SIZE),
                             seed=SEED)


def _server(execution: str, **kwargs) -> FleetServer:
    return FleetServer(FLEET, batch_size=BATCH, image_size=IMAGE_SIZE,
                       policy=BatchingPolicy.dynamic(BATCH, 5e-3),
                       admission=AdmissionPolicy(max_queue_depth=None,
                                                 slo_shed=False),
                       compile_kwargs=COMPILE_KWARGS, workers=2,
                       execution=execution, **kwargs)


def test_serving_faults(benchmark, report_writer):
    requests = _requests()

    # ------------------------------------------------------------------ #
    # Deterministic virtual pass: fault-free vs. chaos on the same clock.
    # ------------------------------------------------------------------ #
    server = _server("virtual", compute_time_fn=FIXED_COST)
    baseline = server.serve(requests)
    chaos = server.serve(requests, faults=PLAN, retry=RETRY)
    replay = server.serve(requests, faults=PLAN, retry=RETRY)
    server.close()

    assert baseline.completed == len(requests)
    # The chaos run is exactly reproducible — outcomes and makespan.
    assert chaos.metrics["makespan_s"] == replay.metrics["makespan_s"]
    assert [(o.request_id, o.status) for o in chaos.outcomes] == \
        [(o.request_id, o.status) for o in replay.outcomes]

    goodput_retained = chaos.completed / baseline.completed
    makespan_overhead = (chaos.metrics["makespan_s"]
                         / baseline.metrics["makespan_s"])
    supervisor = chaos.faults["supervisor"]
    assert goodput_retained >= GOODPUT_RETAINED_FLOOR, (
        f"chaos goodput retained {goodput_retained:.3f} fell below the "
        f"{GOODPUT_RETAINED_FLOOR} floor")
    assert supervisor["crashes"] == 1 and supervisor["timeouts"] == 1

    # ------------------------------------------------------------------ #
    # Measured pass: the same schedule on a live 2-process fleet.
    # ------------------------------------------------------------------ #
    proc_server = _server("real", backend="process")
    proc_chaos = proc_server.serve(requests, faults=PLAN, retry=RETRY)
    proc_server.close()

    proc_faults = proc_chaos.faults
    proc_supervisor = proc_faults["supervisor"]
    terminal = proc_chaos.completed + proc_chaos.shed \
        + proc_chaos.metrics["fleet"]["failed"]
    assert terminal == len(requests), "every request must reach a terminal status"
    assert proc_supervisor["respawns"] >= 1
    recovery_s = proc_supervisor["respawn_s"]
    mean_recovery_s = sum(recovery_s) / len(recovery_s)
    proc_goodput_retained = proc_chaos.completed / len(requests)

    rows = [
        ["virtual (no faults)", baseline.completed, 0, 0, "-",
         f"{baseline.fleet['goodput_rps']:.0f}", "-"],
        ["virtual (chaos)", chaos.completed,
         chaos.metrics["fleet"]["failed"], chaos.metrics["fleet"]["retries"],
         f"{supervisor['respawns']}",
         f"{chaos.fleet['goodput_rps']:.0f}",
         f"{goodput_retained:.3f}"],
        ["process (chaos)", proc_chaos.completed,
         proc_chaos.metrics["fleet"]["failed"],
         proc_chaos.metrics["fleet"]["retries"],
         f"{proc_supervisor['respawns']} ({mean_recovery_s * 1e3:.0f}ms)",
         f"{proc_chaos.fleet['goodput_rps']:.0f}",
         f"{proc_goodput_retained:.3f}"],
    ]
    report_writer("serving_faults", format_table(
        ["pass", "completed", "failed", "retries", "respawns", "goodput rps",
         "retained"],
        rows,
        title=f"Goodput under chaos — {' + '.join(FLEET)}, "
              f"{len(requests)} requests, plan seed {PLAN.seed} "
              f"(1 crash + 1 hang + 2 task errors), "
              f"retry x{RETRY.max_attempts}, "
              f"recv deadline {RETRY.task_timeout_s:g}s",
    ))

    payload = {
        "benchmark": "serving_faults",
        "fleet": FLEET,
        "requests": len(requests),
        "plan": PLAN.to_dict(),
        "retry": RETRY.to_dict(),
        "virtual": {
            "compute_time_s_per_batch": 2e-3,
            "goodput_retained": goodput_retained,
            "makespan_overhead": makespan_overhead,
            "baseline": baseline.to_dict(),
            "chaos": chaos.to_dict(),
        },
        "process_chaos": {
            "workers": 2,
            "goodput_retained": proc_goodput_retained,
            "goodput_rps": proc_chaos.fleet["goodput_rps"],
            "mean_recovery_s": mean_recovery_s,
            "recovery_s": recovery_s,
            "report": proc_chaos.to_dict(),
        },
        "unix_time": time.time(),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    # Timed kernel for pytest-benchmark trend tracking: one chaos serve on
    # the deterministic virtual clock (injection + supervision included).
    timed = _server("virtual", compute_time_fn=FIXED_COST)
    benchmark(lambda: timed.serve(requests, faults=PLAN, retry=RETRY))
    timed.close()
