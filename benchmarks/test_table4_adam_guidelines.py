"""Table 4 — Adam hyperparameter guidelines for log-threshold training.

Paper (Appendix C):  alpha <= 0.1 / sqrt(2^(b-1) - 1),  beta1 >= 1/e,
beta2 >= 1 - 0.1 / (2^(b-1) - 1),  steps ≈ 1/alpha + 1/(1 - beta2),
giving roughly (0.035, 1/e, 0.99, 100) for 4 bits and (0.009, 1/e, 0.999,
1000) for 8 bits.

The bench reproduces the table from the closed forms and then validates the
guidelines *behaviourally* on the toy-L2 problem: a learning rate at the
bound keeps post-convergence oscillations inside one integer bin, a learning
rate 10x above it does not.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ToyL2Problem, format_table, train_threshold
from repro.training import adam_guidelines

TABLE4_PAPER = {
    4: {"alpha": 0.035, "beta2": 0.99, "steps": 100},
    8: {"alpha": 0.009, "beta2": 0.999, "steps": 1000},
}


def test_table4_adam_guidelines(benchmark, report_writer):
    rows = []
    for bits in (4, 8):
        guide = adam_guidelines(bits)
        paper = TABLE4_PAPER[bits]
        rows.append([bits, f"{guide.max_learning_rate:.3f}", f"{paper['alpha']:.3f}",
                     f"{guide.min_beta1:.3f}", "1/e",
                     f"{guide.min_beta2:.4f}", f"{paper['beta2']:.4f}",
                     f"{guide.expected_steps:.0f}", f"{paper['steps']}"])
        # closed-form agreement with the paper's (conservatively rounded) entries
        assert guide.max_learning_rate == np.float64(0.1) / np.sqrt(2 ** (bits - 1) - 1)
        assert abs(guide.max_learning_rate - paper["alpha"]) < 4e-3
        assert abs(guide.min_beta2 - paper["beta2"]) < 5e-3

    report_writer("table4_adam_guidelines",
                  format_table(["b", "alpha max", "paper", "beta1 min", "paper",
                                "beta2 min", "paper", "steps", "paper"],
                               rows, title="Table 4 — Adam guidelines for log-threshold training"))

    # Behavioural check (8-bit): guideline LR keeps oscillations within one bin,
    # a 10x larger LR does not.
    problem = ToyL2Problem(sigma=1.0, bits=8, num_samples=500, seed=0)
    guide = adam_guidelines(8)
    within = train_threshold(problem, init_log2_t=1.0, steps=1500,
                             lr=guide.max_learning_rate, method="adam",
                             batch_size=500, seed=1)
    beyond = train_threshold(problem, init_log2_t=1.0, steps=1500,
                             lr=10 * guide.max_learning_rate, method="adam",
                             batch_size=500, seed=1)
    assert within.oscillation_amplitude(tail=400) < 1.0
    assert beyond.oscillation_amplitude(tail=400) > within.oscillation_amplitude(tail=400)

    # Timed kernel: one toy-L2 threshold gradient evaluation.
    benchmark(lambda: problem.loss_and_log_grad(0.0))
