"""Table 1 — MobileNet 8-bit quantization: Google-QAT baselines vs TQT.

Paper rows (top-1 %, ImageNet):

    MobileNet v1: FP32 70.9 | QAT per-channel sym 70.7 | QAT per-tensor asym 70.0
                  | TQT FP32 71.1 | TQT per-tensor sym pow-2 71.1
    MobileNet v2: FP32 71.9 | QAT 71.1 / 70.9 | TQT 71.7 / 71.8

The claim reproduced here: TQT, despite using the *strictest* scheme
(per-tensor, symmetric, power-of-2), matches FP32 accuracy and is at least
as good as the clipped-gradient FakeQuant (QAT) baselines trained the same
way on the same schedule.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.autograd import Tensor
from repro.quant import QuantScheme

TABLE1_PAPER = {
    "mobilenet_v1": {"fp32": 70.9, "qat_per_channel": 70.7, "qat_per_tensor_asym": 70.0,
                     "tqt": 71.1},
    "mobilenet_v2": {"fp32": 71.9, "qat_per_channel": 71.1, "qat_per_tensor_asym": 70.9,
                     "tqt": 71.8},
}


def _qat_trial(runner, per_channel: bool):
    """Run a Google-QAT style baseline: FakeQuant (clipped threshold gradients),
    real-valued scale factors, per-channel symmetric or per-tensor asymmetric."""
    from repro.graph import calibrate_activations, quantize_graph
    from repro.training import Trainer

    graph = runner._optimized_copy()
    scheme = QuantScheme(
        method="fake_quant",
        power_of_2=False,
        symmetric=per_channel,            # per-channel row is symmetric, per-tensor row is asymmetric
        per_channel_weights=per_channel,
        train_thresholds=True,
        weight_init="max",
        activation_init="kl-j",
    )
    quantize_graph(graph, scheme)
    calibrate_activations(graph, runner.calibration_batches)
    trainer = Trainer(graph, runner.train_loader, runner.val_loader,
                      hparams=runner.config.make_hparams())
    result = trainer.train(runner.config.retrain_epochs)
    return result.best_top1


def _collect_rows(runner, name):
    fp32 = runner.evaluate_fp32()
    qat_pc = _qat_trial(runner, per_channel=True)
    qat_pt = _qat_trial(runner, per_channel=False)
    tqt_trial, _ = runner.run_retrain("wt,th")
    return {
        "name": name,
        "fp32": fp32.top1,
        "qat_per_channel": qat_pc,
        "qat_per_tensor_asym": qat_pt,
        "tqt": tqt_trial.top1,
    }


def test_table1_mobilenet_qat_vs_tqt(benchmark, mobilenet_v1_runner, mobilenet_v2_runner,
                                     report_writer):
    results = [
        _collect_rows(mobilenet_v1_runner, "MobileNet v1 (nano)"),
        _collect_rows(mobilenet_v2_runner, "MobileNet v2 (nano)"),
    ]

    rows = []
    for measured in results:
        paper = TABLE1_PAPER["mobilenet_v1" if "v1" in measured["name"] else "mobilenet_v2"]
        for key, label in [("fp32", "FP32"),
                           ("qat_per_channel", "QAT INT8 per-channel, symmetric, real"),
                           ("qat_per_tensor_asym", "QAT INT8 per-tensor, asymmetric, real"),
                           ("tqt", "TQT INT8 per-tensor, symmetric, pow-2")]:
            rows.append([measured["name"], label, f"{measured[key] * 100:.1f}",
                         f"{paper[key]:.1f}"])
    report_writer("table1_mobilenet_qat_vs_tqt",
                  format_table(["Network", "Scheme", "top-1 measured (%)", "top-1 paper (%)"],
                               rows, title="Table 1 — MobileNet QAT vs TQT (synthetic scale)"))

    # Qualitative claims: TQT matches FP32 (within noise) and is not worse than
    # either clipped-gradient baseline on these depthwise networks.
    for measured in results:
        assert measured["tqt"] >= measured["fp32"] - 0.05
        assert measured["tqt"] >= measured["qat_per_tensor_asym"] - 0.03
        assert measured["tqt"] >= measured["qat_per_channel"] - 0.05

    # Timed kernel: one TQT-quantized MobileNet forward pass (the per-step cost
    # the quantized training graph adds).
    graph = mobilenet_v1_runner.last_quantized_model.graph
    batch = np.random.default_rng(0).standard_normal(
        (4, 3, mobilenet_v1_runner.config.image_size, mobilenet_v1_runner.config.image_size))
    benchmark(lambda: graph(Tensor(batch)))
