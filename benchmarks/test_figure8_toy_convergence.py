"""Figure 8 — toy-L2 threshold training across optimizers, domains, bit-widths and scales.

Paper: raw-gradient SGD fails for large sigma and is slow for small sigma;
log-gradient SGD is weak for small sigma and unstable for large sigma;
normed-log-gradient SGD and log-gradient Adam converge in every setting and
settle within a single integer threshold bin.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ToyL2Problem, format_table, train_threshold

SIGMAS = [1e-2, 1e-1, 1e0, 1e1, 1e2]
METHODS = [
    ("Raw Grad - SGD", dict(method="sgd", domain="raw")),
    ("Log Grad - SGD", dict(method="sgd", domain="log")),
    ("Norm Log Grad - SGD", dict(method="normed_sgd", domain="log")),
    ("Log Grad - Adam", dict(method="adam", domain="log")),
]
STEPS = 600
LEARNING_RATE = 0.1


def _final_errors(bits: int) -> dict[str, dict[float, float]]:
    errors: dict[str, dict[float, float]] = {name: {} for name, _ in METHODS}
    for sigma in SIGMAS:
        problem = ToyL2Problem(sigma=sigma, bits=bits, num_samples=400, seed=0)
        optimum = problem.optimal_log_threshold()
        for name, kwargs in METHODS:
            trajectory = train_threshold(problem, init_log2_t=1.0, steps=STEPS,
                                         lr=LEARNING_RATE, batch_size=400, seed=1, **kwargs)
            errors[name][sigma] = abs(trajectory.final - optimum)
    return errors


def test_figure8_toy_convergence(benchmark, report_writer):
    errors = {bits: _final_errors(bits) for bits in (4, 8)}

    sections = []
    for bits, per_method in errors.items():
        rows = [[name] + [f"{per_method[name][sigma]:.2f}" for sigma in SIGMAS]
                for name, _ in METHODS]
        sections.append(format_table(
            ["method"] + [f"sigma={s:g}" for s in SIGMAS], rows,
            title=f"Figure 8 (b={bits}) — |log2 t error| after {STEPS} steps, lr={LEARNING_RATE}"))
    report_writer("figure8_toy_convergence", "\n\n".join(sections))

    for bits in (4, 8):
        adam = errors[bits]["Log Grad - Adam"]
        normed = errors[bits]["Norm Log Grad - SGD"]
        log_sgd = errors[bits]["Log Grad - SGD"]
        # Adaptive methods converge (within ~1.5 bins) for every input scale.
        assert max(adam.values()) < 1.5
        assert max(normed.values()) < 1.5
        # Log-grad SGD stalls for the smallest scale (gradient magnitude ~ sigma^2)
        # and diverges (or blows up) for the largest scale — the Figure 8 failure modes.
        assert log_sgd[1e-2] > 2.0
        assert (not np.isfinite(log_sgd[1e2])) or log_sgd[1e2] > 100
    # Raw-grad SGD converges far more slowly than the adaptive methods for
    # small input scales (8-bit panel of Figure 8).
    assert errors[8]["Raw Grad - SGD"][1e-2] > 2.0

    problem = ToyL2Problem(sigma=1.0, bits=8, num_samples=400, seed=0)
    benchmark(lambda: train_threshold(problem, init_log2_t=1.0, steps=20, lr=0.1,
                                      method="adam", batch_size=400, seed=1))
