"""Optimizer pass pipeline — unoptimized vs optimized vs optimized+sharded.

PR 1's engine beat the per-op fake-quant simulation by lowering to a
compiled integer plan; this benchmark tracks the *second* act: the plan
optimizer (GEMM-epilogue fusion, weight prepacking, im2col elimination,
per-layer backend autotuning) and multicore sharded execution.  For each
model the three execution modes run the same request stream; bit-exactness
between all of them is asserted before any speed number is recorded, and
``BENCH_optimizer.json`` is written at the repo root so future PRs can track
the trajectory.

The speedup gate applies to the single-thread pass pipeline on MobileNet
(the paper's headline network): ≥1.5x locally, relaxed via
``OPT_BENCH_MIN_SPEEDUP`` on shared CI runners.  Sharded scaling is recorded
but only asserted when the host actually has more than one core — BLAS
releases the GIL, so the shards need real cores to overlap.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.analysis import format_table
from repro.engine import ShardedRunner, check_plan_parity, optimize_plan
from repro.models import compile_registry_model

BENCH_JSON = Path(__file__).parent.parent / "BENCH_optimizer.json"

MODELS = ["mobilenet_v1_nano", "resnet_nano", "inception_nano", "darknet_nano"]
HEADLINE = "mobilenet_v1_nano"
IMAGE_SIZE = 16
BATCH_SIZE = 8
BATCHES = 5       # short sweeps ...
SWEEPS = 12       # ... many times over: each mode gets many chances to catch
                  # a quiet scheduling window on a shared host, and best-of
                  # converges to true per-mode capability
WORKERS = 4
MIN_OPT_SPEEDUP = float(os.environ.get("OPT_BENCH_MIN_SPEEDUP", "1.5"))


def _interleaved_rates(runs: dict, batches, repeats: int = SWEEPS) -> dict:
    """Images/second per execution mode from the best observed batch latency.

    Every individual engine call is timed and the per-mode minimum taken
    (``repeats * len(batches)`` samples each), with the modes' sweeps
    interleaved (A B C, A B C, ...) rather than measured back to back.  On a
    shared host this converges to each mode's true capability — a single
    quiet scheduling window per mode suffices — so the speedup *ratios*
    stay stable under load noise that would swamp aggregate-sweep timing.
    """
    for run in runs.values():
        run(batches[0])
        run(batches[0])  # double warmup: fault in every buffer before timing
    best = {key: float("inf") for key in runs}
    for _ in range(repeats):
        for key, run in runs.items():
            for batch in batches:
                start = time.perf_counter()
                run(batch)
                best[key] = min(best[key], time.perf_counter() - start)
    return {key: batches[0].shape[0] / elapsed for key, elapsed in best.items()}


def test_optimizer_and_sharding(report_writer):
    rng = np.random.default_rng(0)
    batches = [rng.standard_normal((BATCH_SIZE, 3, IMAGE_SIZE, IMAGE_SIZE))
               for _ in range(BATCHES)]
    cores = os.cpu_count() or 1
    rows = []
    results = {}
    for name in MODELS:
        compiled = compile_registry_model(name, image_size=IMAGE_SIZE,
                                          batch_size=BATCH_SIZE,
                                          calibration_samples=16,
                                          calibration_batch_size=8,
                                          optimize=False)
        baseline = compiled.engine
        optimized_plan = optimize_plan(compiled.plan)
        optimized = optimized_plan.bind((BATCH_SIZE, 3, IMAGE_SIZE, IMAGE_SIZE))

        parity = check_plan_parity(baseline, optimized, batches[:3])
        assert parity.bit_exact, f"{name}: optimized plan diverged: {parity}"

        with ShardedRunner(optimized_plan, (BATCH_SIZE, 3, IMAGE_SIZE, IMAGE_SIZE),
                           workers=WORKERS) as sharded:
            sharded_parity = check_plan_parity(baseline, sharded, batches[:2])
            assert sharded_parity.bit_exact, \
                f"{name}: sharded execution diverged: {sharded_parity}"
            rates = _interleaved_rates(
                {"baseline": baseline.run, "optimized": optimized.run,
                 "sharded": sharded.run}, batches)
        base_rate = rates["baseline"]
        opt_rate = rates["optimized"]
        sharded_rate = rates["sharded"]

        speedup = opt_rate / base_rate
        scaling = sharded_rate / opt_rate
        results[name] = {
            "baseline_img_per_s": base_rate,
            "optimized_img_per_s": opt_rate,
            "sharded_img_per_s": sharded_rate,
            "optimizer_speedup": speedup,
            "sharded_scaling": scaling,
            "bit_exact": parity.bit_exact and sharded_parity.bit_exact,
            "kernel_choices": dict(optimized_plan.kernel_choices or {}),
            "optimizer_report": optimized_plan.report.to_dict(),
        }
        rows.append([name, f"{base_rate:.0f}", f"{opt_rate:.0f}",
                     f"{speedup:.2f}x", f"{sharded_rate:.0f}", f"{scaling:.2f}x"])

    # Per-step profile of the headline model's optimized plan.
    headline = compile_registry_model(HEADLINE, image_size=IMAGE_SIZE,
                                      batch_size=BATCH_SIZE, calibration_samples=16,
                                      calibration_batch_size=8)
    profile = headline.engine.profile(batches[0], repeats=5)

    report_writer("engine_optimizer", format_table(
        ["model", "baseline img/s", "optimized img/s", "speedup",
         f"sharded x{WORKERS} img/s", "scaling"],
        rows,
        title=f"Optimizer pass pipeline + sharded execution — batch {BATCH_SIZE}, "
              f"{IMAGE_SIZE}x{IMAGE_SIZE} inputs, {cores} core(s)",
    ) + "\n\n" + profile.table())

    payload = {
        "benchmark": "engine_optimizer",
        "image_size": IMAGE_SIZE,
        "batch_size": BATCH_SIZE,
        "workers": WORKERS,
        "cpu_count": cores,
        "blas_threads_pinned": os.environ.get("OPENBLAS_NUM_THREADS"),
        "models": results,
        "headline_profile": profile.to_dict(),
        "unix_time": time.time(),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    headline_speedup = results[HEADLINE]["optimizer_speedup"]
    assert headline_speedup >= MIN_OPT_SPEEDUP, (
        f"optimizer pass pipeline is only {headline_speedup:.2f}x on {HEADLINE} "
        f"(required {MIN_OPT_SPEEDUP}x)"
    )
    if cores > 1:
        # Sharding can only overlap when real cores exist; on single-core
        # hosts the numbers are recorded but thread overhead is not a failure.
        assert results[HEADLINE]["sharded_scaling"] > 1.05, (
            f"sharded execution shows no scaling on a {cores}-core host: "
            f"{results[HEADLINE]['sharded_scaling']:.2f}x"
        )
