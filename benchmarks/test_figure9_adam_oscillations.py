"""Figure 9 / Appendix C — post-convergence Adam oscillations of log thresholds.

Paper: with power-of-2 scaling the threshold oscillates around the critical
integer log2 t*; the oscillation period is T ≈ r_g (the ratio of the
gradient magnitudes on either side of the boundary) and the worst-case
excursion is bounded by alpha * sqrt(r_g) (with a 10x over-design margin
recommended).  For sigma = 1e-2 and b = 8 the paper measures T ≈ 280 with
r_g ≈ 272.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    ToyL2Problem,
    estimate_gradient_ratio,
    format_table,
    max_excursion_bound,
    measure_oscillations,
    simulate_bang_bang_adam,
    train_threshold,
)

SIGMAS = [1e-2, 1e-1, 1e0]
LEARNING_RATE = 0.01


def test_figure9_adam_oscillations(benchmark, report_writer):
    rows = []
    checks = []
    for sigma in SIGMAS:
        problem = ToyL2Problem(sigma=sigma, bits=8, num_samples=500, seed=0)
        ratio = estimate_gradient_ratio(problem)
        trajectory = train_threshold(problem, init_log2_t=1.0, steps=2500, lr=LEARNING_RATE,
                                     method="adam", batch_size=500, seed=2)
        stats = measure_oscillations(trajectory, tail=1000)
        bound = max_excursion_bound(ratio, LEARNING_RATE)
        rows.append([f"{sigma:g}", f"{ratio:.0f}", f"{stats['period']:.0f}",
                     f"{stats['amplitude']:.3f}", f"{bound:.3f}", f"{10 * bound:.3f}"])
        checks.append((ratio, stats, bound))

    # Idealized bang-bang simulation for the Appendix C closed forms.
    sim = simulate_bang_bang_adam(gradient_ratio=244.0, learning_rate=LEARNING_RATE,
                                  steps=40000)
    rows.append(["(bang-bang, r_g=244)", "244", f"{sim.period:.0f}", f"{sim.excursion:.3f}",
                 f"{sim.excursion_bound:.3f}", f"{10 * sim.excursion_bound:.3f}"])

    report_writer("figure9_adam_oscillations",
                  format_table(["sigma", "r_g", "period T", "amplitude",
                                "alpha*sqrt(r_g)", "10x bound"],
                               rows,
                               title="Figure 9 — Adam oscillations of log2 t after convergence"))

    # Bang-bang model: T ~= r_g and the excursion respects the closed-form bound.
    assert sim.period == pytest.approx(244.0, rel=0.35)
    assert sim.excursion <= sim.excursion_bound * 1.05
    # Toy-L2 trajectories: the oscillation amplitude never spans more than one
    # integer bin (the paper's design goal; the 10x over-design margin absorbs
    # the stochastic-gradient effects it describes at the end of Appendix C).
    for ratio, stats, bound in checks:
        assert stats["amplitude"] < 1.0

    problem = ToyL2Problem(sigma=1.0, bits=8, num_samples=500, seed=0)
    benchmark(lambda: estimate_gradient_ratio(problem))
