"""Engine vs. simulation — integer inference throughput on MobileNet.

The paper's deployment claim is that trained power-of-2 thresholds turn the
quantized graph into *pure fixed-point inference*.  The repo's fake-quant
simulation executes that graph as dozens of float autograd ops per layer;
the integer engine executes the same network as a compiled plan of integer
kernels.  This benchmark measures both paths on the MobileNet v1 nano
(the paper's headline network), asserts the engine is bit-exact and at
least 3x faster than the per-op autograd path, and emits a machine-readable
``BENCH_engine.json`` at the repo root so future PRs can track the
performance trajectory.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.analysis import format_table
from repro.autograd import Tensor, no_grad
from repro.engine import BatchedRunner, check_engine_parity
from repro.models import compile_registry_model

BENCH_JSON = Path(__file__).parent.parent / "BENCH_engine.json"

MODEL = "mobilenet_v1_nano"
IMAGE_SIZE = 16
BATCH_SIZE = 8
BATCHES = 20
REQUESTS = 128
# 3x is the local acceptance bar (~4.5x observed); shared CI runners can set
# ENGINE_BENCH_MIN_SPEEDUP lower to tolerate timing noise without losing the
# bit-exactness gate.
MIN_SPEEDUP = float(os.environ.get("ENGINE_BENCH_MIN_SPEEDUP", "3.0"))


def _best_rate(fn, batches, repeats: int = 3) -> float:
    """Images/second, best of ``repeats`` timed sweeps (noise-robust)."""
    fn(batches[0])  # warmup
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for batch in batches:
            fn(batch)
        best = min(best, time.perf_counter() - start)
    return len(batches) * batches[0].shape[0] / best


def test_engine_vs_simulation(benchmark, report_writer):
    compiled = compile_registry_model(MODEL, image_size=IMAGE_SIZE, batch_size=BATCH_SIZE,
                                      calibration_samples=16, calibration_batch_size=8)
    graph = compiled.graph
    engine = compiled.engine
    rng = np.random.default_rng(0)
    batches = [rng.standard_normal((BATCH_SIZE, 3, IMAGE_SIZE, IMAGE_SIZE))
               for _ in range(BATCHES)]

    # The engine must be bit-exact before its speed means anything.
    parity = check_engine_parity(graph, engine, batches[:4])
    assert parity.bit_exact, f"engine diverged from the simulation: {parity}"

    # Per-op autograd simulation (the training-graph execution path).
    autograd_rate = _best_rate(lambda b: graph(Tensor(b)), batches)

    # Inference-mode simulation (no tape, still one float op per quantizer).
    def nograd_forward(b):
        with no_grad():
            graph(Tensor(b))

    nograd_rate = _best_rate(nograd_forward, batches)

    engine_rate = _best_rate(lambda b: engine.run(b), batches)
    speedup_autograd = engine_rate / autograd_rate
    speedup_nograd = engine_rate / nograd_rate

    # Serving statistics through the batched runner.
    runner = BatchedRunner(engine)
    requests = rng.standard_normal((REQUESTS, 3, IMAGE_SIZE, IMAGE_SIZE))
    _, stats = runner.run(requests)

    report_writer("engine_vs_simulation", format_table(
        ["execution path", "img/s", "speedup"],
        [
            ["fake-quant simulation (autograd tape)", f"{autograd_rate:.0f}", "1.00x"],
            ["fake-quant simulation (no_grad)", f"{nograd_rate:.0f}",
             f"{nograd_rate / autograd_rate:.2f}x"],
            ["integer engine (compiled plan)", f"{engine_rate:.0f}",
             f"{speedup_autograd:.2f}x"],
        ],
        title=f"Engine vs simulation — {MODEL}, batch {BATCH_SIZE}, "
              f"{IMAGE_SIZE}x{IMAGE_SIZE} inputs (bit-exact: {parity.bit_exact})",
    ))

    payload = {
        "benchmark": "engine_vs_simulation",
        "model": MODEL,
        "image_size": IMAGE_SIZE,
        "batch_size": BATCH_SIZE,
        "bit_exact": parity.bit_exact,
        "parity_codes_checked": parity.total_codes,
        "simulation_autograd_img_per_s": autograd_rate,
        "simulation_nograd_img_per_s": nograd_rate,
        "engine_img_per_s": engine_rate,
        "speedup_vs_autograd": speedup_autograd,
        "speedup_vs_nograd": speedup_nograd,
        "serving": stats.to_dict(),
        "plan": {
            "steps": len(compiled.plan.steps),
            "weight_bytes": compiled.plan.manifest()["weight_bytes"],
            "int32_mac_compatible": compiled.plan.manifest()["int32_mac_compatible"],
            "buffers_allocated": engine.buffers_created,
            "buffer_bytes": engine.buffer_bytes,
        },
        "unix_time": time.time(),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    assert speedup_autograd >= MIN_SPEEDUP, (
        f"integer engine is only {speedup_autograd:.2f}x the per-op autograd path "
        f"(required {MIN_SPEEDUP}x)"
    )

    # Timed kernel for pytest-benchmark trend tracking: one engine batch.
    benchmark(lambda: engine.run(batches[0]))
