"""Appendix A — the cost of the affine quantizer.

The paper motivates its constraints by the arithmetic they remove:

* zero-points add rank-1 correction terms to every integer matrix product
  (Eq. 13); setting z = 0 removes them (Eq. 14);
* real-valued scale factors require a normalized fixed-point multiply per
  output (Eq. 15); power-of-2 scale factors reduce that to a single
  arithmetic shift (Eq. 16).

The bench counts the extra operations for a representative matmul, verifies
the algebraic identities, and times symmetric/power-of-2 re-quantization
against the affine/real-scaled versions.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.quant import (
    QuantConfig,
    affine_matmul_with_zero_points,
    count_affine_cost,
    fixed_point_multiplier,
    integer_matmul,
    multiplier_requantize,
    shift_requantize,
)

M, K, N = 64, 256, 64


def test_appendixA_affine_quantizer_cost(benchmark, report_writer):
    rng = np.random.default_rng(0)
    q1 = rng.integers(-128, 128, (M, K))
    q2 = rng.integers(-128, 128, (K, N))

    # --- algebraic identities -------------------------------------------- #
    z1, z2 = 3, -7
    expanded = affine_matmul_with_zero_points(q1, q2, z1, z2)
    np.testing.assert_array_equal(expanded, (q1 - z1) @ (q2 - z2))
    np.testing.assert_array_equal(affine_matmul_with_zero_points(q1, q2, 0, 0), q1 @ q2)

    config = QuantConfig(bits=8)
    accumulator = integer_matmul(q1, q2)
    shifted = shift_requantize(accumulator, 9, config)
    multiplied = multiplier_requantize(accumulator, 2.0 ** -9, config)
    np.testing.assert_array_equal(shifted, multiplied)   # pow-2 multiplier == shift
    m0, shift = fixed_point_multiplier(0.0037)
    assert m0 * 2.0 ** (-shift) == np.float64(0.0037).item() or abs(
        m0 * 2.0 ** (-shift) - 0.0037) < 1e-9

    # --- operation counts -------------------------------------------------- #
    schemes = [
        ("symmetric, power-of-2 (TQT)", True, True),
        ("symmetric, real scale", True, False),
        ("affine (zero-point), real scale", False, False),
    ]
    rows = []
    for label, symmetric, power_of_2 in schemes:
        cost = count_affine_cost(M, K, N, symmetric=symmetric, power_of_2=power_of_2)
        rows.append([label, cost.multiply_accumulates, cost.zero_point_corrections,
                     cost.rescale_multiplies, cost.rescale_shifts])
    report_writer("appendixA_affine_cost",
                  format_table(["scheme", "MACs", "zero-point ops", "rescale multiplies",
                                "rescale shifts"],
                               rows,
                               title=f"Appendix A — arithmetic for a {M}x{K} @ {K}x{N} "
                                     "quantized matmul"))

    tqt_cost = count_affine_cost(M, K, N, True, True)
    affine_cost = count_affine_cost(M, K, N, False, False)
    assert tqt_cost.total_extra_ops == 0
    assert affine_cost.total_extra_ops > 0
    assert affine_cost.multiply_accumulates == tqt_cost.multiply_accumulates

    # --- timing: shift vs fixed-point-multiply re-quantization ------------- #
    benchmark(lambda: shift_requantize(accumulator, 9, config))
