"""Table 5 / Appendix D — best-checkpoint vs mean-of-final-epoch validation.

Paper: keeping the best top-1 checkpoint (validated every 1000 steps)
introduces only a small positive bias relative to averaging five fixed
validations in the final epoch — 0.1% for MobileNet v1 and 0.2% for VGG 16.

The bench retrains the nano MobileNet with TQT while validating every epoch,
compares best vs mean-of-last-validations top-1 and asserts the bias is
small and non-negative.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.training import Trainer


def test_table5_best_vs_mean_validation(benchmark, mobilenet_v1_runner, report_writer):
    runner = mobilenet_v1_runner
    model = None
    from repro.graph import prepare_retrain

    graph = runner._optimized_copy()
    model = prepare_retrain(graph, runner.calibration_batches, mode="wt,th", copy=False)
    hparams = runner.config.make_hparams()
    # validate twice per epoch so the "mean of the final validations" has support
    hparams.validate_every_steps = max(1, runner.train_loader.steps_per_epoch // 2)
    trainer = Trainer(model.graph, runner.train_loader, runner.val_loader, hparams=hparams)
    result = trainer.train(runner.config.retrain_epochs)

    keeper = result.checkpoints
    best_top1, best_top5 = keeper.best_top1, keeper.best_top5
    mean_top1, mean_top5 = keeper.final_epoch_mean(last_fraction=0.4)
    bias = best_top1 - mean_top1

    rows = [
        ["Mean (final validations)", f"{mean_top1 * 100:.1f}", f"{mean_top5 * 100:.1f}", "-"],
        ["Best (cherry-picked)", f"{best_top1 * 100:.1f}", f"{best_top5 * 100:.1f}",
         f"{keeper.best_epoch:.1f}"],
        ["Bias (best - mean)", f"{bias * 100:.1f}", "-", "-"],
    ]
    report_writer("table5_best_vs_mean_validation",
                  format_table(["Validation", "top-1 (%)", "top-5 (%)", "Epochs"], rows,
                               title="Table 5 — best vs mean validation (MobileNet v1 nano, TQT INT8)"))

    assert bias >= -1e-9                     # best is by definition at least the mean
    assert bias <= 0.10                      # and the cherry-picking bias stays small
    assert len(keeper.history) >= 4

    # Timed kernel: one validation pass over the synthetic validation split.
    benchmark(lambda: trainer.evaluator.evaluate(model.graph))
