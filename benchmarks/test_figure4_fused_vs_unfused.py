"""Figure 4 — fused vs unfused quantization kernels.

The paper ships fused CPU/GPU kernels because the unfused (native-op +
``tf.stop_gradient``) construction keeps every intermediate tensor alive for
the backward pass, inflating training memory and time.  This bench verifies
the two implementations are numerically identical (forward and gradients)
and measures the training-step overhead of the unfused composition; the
memory argument is quantified by counting the tape nodes each keeps alive.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.autograd import Tensor
from repro.quant import QuantConfig, tqt_quantize, tqt_quantize_unfused


def _count_tape_nodes(output: Tensor) -> int:
    """Number of distinct autograd nodes reachable from ``output``."""
    seen: set[int] = set()
    stack = [output]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.extend(parent for parent, _ in node._parents)
    return len(seen)


def _train_step(quantize_fn, x_values: np.ndarray, config: QuantConfig) -> float:
    x = Tensor(x_values, requires_grad=True)
    log2_t = Tensor(np.asarray(-0.7), requires_grad=True)
    out = quantize_fn(x, log2_t, config)
    loss = (out * out).sum()
    loss.backward()
    return float(log2_t.grad)


def test_figure4_fused_vs_unfused(benchmark, report_writer):
    config = QuantConfig(bits=8)
    rng = np.random.default_rng(0)
    x_values = rng.standard_normal(1 << 16)

    fused_grad = _train_step(tqt_quantize, x_values, config)
    unfused_grad = _train_step(tqt_quantize_unfused, x_values, config)
    assert np.isclose(fused_grad, unfused_grad, rtol=1e-9)

    x = Tensor(x_values, requires_grad=True)
    t = Tensor(np.asarray(-0.7), requires_grad=True)
    fused_nodes = _count_tape_nodes(tqt_quantize(x, t, config))
    unfused_nodes = _count_tape_nodes(tqt_quantize_unfused(x, t, config))

    import time
    def timed(fn, repeats=5):
        start = time.perf_counter()
        for _ in range(repeats):
            _train_step(fn, x_values, config)
        return (time.perf_counter() - start) / repeats

    fused_time = timed(tqt_quantize)
    unfused_time = timed(tqt_quantize_unfused)

    rows = [
        ["fused", f"{fused_nodes}", f"{fused_time * 1e3:.2f}"],
        ["unfused (stop-gradient composition)", f"{unfused_nodes}", f"{unfused_time * 1e3:.2f}"],
        ["unfused / fused", f"{unfused_nodes / fused_nodes:.1f}x",
         f"{unfused_time / fused_time:.1f}x"],
    ]
    report_writer("figure4_fused_vs_unfused",
                  format_table(["kernel", "live tape nodes", "train-step time (ms)"], rows,
                               title="Figure 4 — fused vs unfused quantization kernel"))

    # The fused kernel keeps fewer intermediates alive and is not slower.
    assert fused_nodes < unfused_nodes
    assert fused_time <= unfused_time * 1.2

    benchmark(lambda: _train_step(tqt_quantize, x_values, config))
