#!/usr/bin/env python
"""Compare emitted BENCH_*.json files against committed baselines.

CI's ``bench-regression`` job runs the serving and overhead benchmarks,
then calls this script to gate the run:

* **ratio / deterministic metrics** (virtual-clock p99 improvement, tape
  speedup) are machine-independent and compared with a strict tolerance
  band (default 15%, ``--tolerance`` / ``BENCH_REGRESSION_TOL``);
* **wall-clock metrics** (measured goodput on the thread and process
  backends) additionally honour ``BENCH_WALL_TOL`` so hosted runners that
  are slower than the baseline machine don't flake the job — the band is
  ``max(tolerance, BENCH_WALL_TOL)`` for those metrics only;
* **absolute floors** fail regardless of the baseline: tape speedup must
  stay >= the 1.25x gate, the deterministic p99 improvement >= 5x, and
  telemetry-disabled serving throughput must stay within
  ``TELEMETRY_OVERHEAD_MAX_PCT`` of the no-telemetry baseline (the
  ``telemetry.disabled_relative_throughput`` ratio is floored at
  ``1 - pct/100``).

``--update-baselines`` rewrites ``benchmarks/baselines/bench_baselines.json``
from the current BENCH files (run the benchmarks first).  Exit status: 0 on
pass, 1 on regression, 2 when an input file is missing or malformed.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = Path(__file__).resolve().parent / "baselines" / "bench_baselines.json"

DEFAULT_TOLERANCE = 0.15        # ISSUE gate: fail if goodput drops >15%
TAPE_SPEEDUP_FLOOR = 1.25       # ISSUE gate: overhead speedup < 1.25x fails
P99_IMPROVEMENT_FLOOR = 5.0     # the serving bench already asserts > 5x
#: telemetry-disabled serving may cost at most this much throughput vs. the
#: no-telemetry baseline (mirrors the bench's own gate; env-overridable for
#: noisy shared runners)
TELEMETRY_OVERHEAD_MAX_PCT = float(
    os.environ.get("TELEMETRY_OVERHEAD_MAX_PCT", "2"))
#: chaos goodput floor: the deterministic virtual chaos run must retain at
#: least this fraction of fault-free completions (ISSUE gate, env-overridable)
FAULTS_MIN_RETAINED = float(os.environ.get("FAULTS_MIN_RETAINED", "0.7"))


@dataclass(frozen=True)
class Metric:
    """One tracked number: where it lives and how strictly it is held."""

    key: str
    value: float
    wall_clock: bool = False    # True -> widen the band by BENCH_WALL_TOL
    floor: float | None = None  # absolute minimum, baseline-independent


def _load(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        print(f"error: missing benchmark output {path} "
              f"(run the benchmarks first)", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as exc:
        print(f"error: malformed JSON in {path}: {exc}", file=sys.stderr)
        sys.exit(2)


def extract_metrics(serving: dict, overhead: dict,
                    telemetry: dict | None = None,
                    faults: dict | None = None) -> list[Metric]:
    """Pull the gated numbers out of the BENCH payloads."""
    try:
        wall = serving["wall_clock"]
        metrics = [
            Metric("serving.sparse_p99_improvement",
                   float(serving["sparse_deterministic"]["p99_improvement"]),
                   floor=P99_IMPROVEMENT_FLOOR),
            Metric("serving.wall_thread_goodput_rps",
                   float(wall["thread"]["metrics"]["fleet"]["goodput_rps"]),
                   wall_clock=True),
            Metric("serving.wall_process_goodput_rps",
                   float(wall["process"]["metrics"]["fleet"]["goodput_rps"]),
                   wall_clock=True),
        ]
        for model in overhead.get("gate_models", sorted(overhead["models"])):
            metrics.append(Metric(f"overhead.{model}.tape_speedup",
                                  float(overhead["models"][model]["tape_speedup"]),
                                  floor=TAPE_SPEEDUP_FLOOR))
        if telemetry is not None:
            metrics.append(Metric(
                "telemetry.disabled_relative_throughput",
                float(telemetry["disabled_relative_throughput"]),
                wall_clock=True,
                floor=1.0 - TELEMETRY_OVERHEAD_MAX_PCT / 100.0))
        if faults is not None:
            metrics.append(Metric(
                "faults.goodput_retained",
                float(faults["virtual"]["goodput_retained"]),
                floor=FAULTS_MIN_RETAINED))
            metrics.append(Metric(
                "faults.process_goodput_rps",
                float(faults["process_chaos"]["goodput_rps"]),
                wall_clock=True))
    except KeyError as exc:
        print(f"error: BENCH payload is missing expected key {exc} — "
              f"schema drift? update this script and the baselines together",
              file=sys.stderr)
        sys.exit(2)
    return metrics


def check(metrics: list[Metric], baselines: dict, tolerance: float,
          wall_tolerance: float) -> bool:
    ok = True
    width = max(len(m.key) for m in metrics)
    print(f"{'metric':<{width}}  {'baseline':>10}  {'current':>10}  "
          f"{'limit':>10}  status")
    for metric in metrics:
        band = max(tolerance, wall_tolerance) if metric.wall_clock else tolerance
        baseline = baselines.get(metric.key)
        limit = baseline * (1.0 - band) if baseline is not None else None
        if metric.floor is not None:
            limit = metric.floor if limit is None else max(limit, metric.floor)
        failures = []
        if baseline is None:
            failures.append("no baseline (run --update-baselines)")
        if metric.floor is not None and metric.value < metric.floor:
            failures.append(f"below absolute floor {metric.floor:g}")
        if baseline is not None and metric.value < baseline * (1.0 - band):
            failures.append(f"dropped >{band:.0%} below baseline")
        status = "FAIL: " + "; ".join(failures) if failures else "ok"
        ok &= not failures
        print(f"{metric.key:<{width}}  "
              f"{baseline if baseline is not None else float('nan'):>10.3f}  "
              f"{metric.value:>10.3f}  "
              f"{limit if limit is not None else float('nan'):>10.3f}  {status}")
    return ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--serving", type=Path,
                        default=REPO_ROOT / "BENCH_serving.json")
    parser.add_argument("--overhead", type=Path,
                        default=REPO_ROOT / "BENCH_overhead.json")
    parser.add_argument("--telemetry", type=Path,
                        default=REPO_ROOT / "BENCH_telemetry.json")
    parser.add_argument("--faults", type=Path,
                        default=REPO_ROOT / "BENCH_faults.json")
    parser.add_argument("--baselines", type=Path, default=BASELINE_PATH)
    parser.add_argument("--tolerance", type=float,
                        default=float(os.environ.get("BENCH_REGRESSION_TOL",
                                                     DEFAULT_TOLERANCE)),
                        help="relative drop allowed vs. baseline "
                             "(default %(default)s, env BENCH_REGRESSION_TOL)")
    parser.add_argument("--update-baselines", action="store_true",
                        help="rewrite the baseline file from the current "
                             "BENCH outputs instead of checking")
    args = parser.parse_args(argv)

    wall_tolerance = float(os.environ.get("BENCH_WALL_TOL", args.tolerance))
    metrics = extract_metrics(_load(args.serving), _load(args.overhead),
                              _load(args.telemetry), _load(args.faults))

    if args.update_baselines:
        args.baselines.parent.mkdir(parents=True, exist_ok=True)
        payload = {m.key: m.value for m in metrics}
        args.baselines.write_text(json.dumps(payload, indent=2, sort_keys=True)
                                  + "\n")
        print(f"wrote {len(payload)} baseline metrics to {args.baselines}")
        return 0

    try:
        baselines = json.loads(args.baselines.read_text())
    except FileNotFoundError:
        print(f"error: no baseline file at {args.baselines}; "
              f"run with --update-baselines and commit it", file=sys.stderr)
        return 2
    if check(metrics, baselines, args.tolerance, wall_tolerance):
        print("bench-regression: PASS")
        return 0
    print("bench-regression: FAIL", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
