"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper at the
scaled-down (synthetic-data, nano-model) operating point and

* prints the reproduced rows/series (run ``pytest benchmarks -s`` to see
  them live),
* writes the same report under ``benchmarks/reports/`` so the numbers quoted
  in ``EXPERIMENTS.md`` can be regenerated,
* asserts the paper's *qualitative* claims (who wins, direction of effects),
* times a representative kernel through pytest-benchmark.

Heavy experiments (FP32 pre-training + quantized retraining) run once in
session-scoped fixtures and are shared by the table/figure benches that need
them, mirroring how the paper reuses one pre-trained checkpoint per network.
"""

from __future__ import annotations

import os

# Pin BLAS threading BEFORE numpy loads so every benchmark measures
# single-threaded kernels: sharded-vs-single comparisons stay
# apples-to-apples (our thread pool is the only parallelism) and CI timings
# stop drifting with the runner's core count.  The CI workflow exports the
# same variables at the job level as a belt-and-braces guarantee.
for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
             "NUMEXPR_NUM_THREADS", "VECLIB_MAXIMUM_THREADS"):
    os.environ.setdefault(_var, "1")

from pathlib import Path  # noqa: E402  (imports follow the BLAS pinning)

import pytest  # noqa: E402

from repro.training import ExperimentConfig, ExperimentRunner  # noqa: E402

REPORT_DIR = Path(__file__).parent / "reports"

# One scaled-down operating point shared by all accuracy experiments.
BENCH_SETTINGS = dict(
    num_classes=10,
    image_size=12,
    train_size=240,
    val_size=96,
    batch_size=16,
    noise_level=0.35,
    pretrain_epochs=24,
    retrain_epochs=3,
    calibration_samples=24,
)

# Per-channel scale diversity of the depthwise blocks; chosen so the nano
# MobileNets show the paper's calibrate-only collapse while still training to
# a usable FP32 accuracy (see DESIGN.md, substitution table).
MOBILENET_SPREAD = 64.0


def pytest_runtest_protocol(item, nextitem):
    """Automatic rerun of failed benches when ``BENCH_RETRIES`` is set.

    Wall-clock benchmarks (real thread pools, spawned worker processes) can
    flake on loaded shared runners; CI exports ``BENCH_RETRIES=1`` so one
    transient failure retries once before the job goes red.  Unset or ``0``
    (the local default) leaves pytest's stock protocol untouched, so flakes
    stay visible during development.  Only the final attempt's reports are
    logged; earlier failed attempts are announced on stdout.
    """
    retries = int(os.environ.get("BENCH_RETRIES", "0") or 0)
    if retries <= 0:
        return None
    from _pytest.runner import runtestprotocol

    ihook = item.ihook
    for attempt in range(retries + 1):
        ihook.pytest_runtest_logstart(nodeid=item.nodeid, location=item.location)
        reports = runtestprotocol(item, nextitem=nextitem, log=False)
        if not any(report.failed for report in reports) or attempt == retries:
            for report in reports:
                ihook.pytest_runtest_logreport(report=report)
            ihook.pytest_runtest_logfinish(nodeid=item.nodeid,
                                           location=item.location)
            return True
        ihook.pytest_runtest_logfinish(nodeid=item.nodeid, location=item.location)
        print(f"\n[bench-retry] {item.nodeid} failed on attempt "
              f"{attempt + 1}/{retries + 1}; retrying")
        # Drop cached fixture state so the rerun sets up from scratch
        # (session-scoped fixtures survive, mirroring a plain rerun).
        if hasattr(item, "_initrequest"):
            item._initrequest()
    return True


@pytest.fixture(scope="session")
def report_writer():
    REPORT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (REPORT_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return write


def _make_runner(model: str, seed: int = 1, **model_kwargs) -> ExperimentRunner:
    config = ExperimentConfig(model=model, seed=seed, model_kwargs=model_kwargs,
                              **BENCH_SETTINGS)
    runner = ExperimentRunner(config)
    runner.pretrain_fp32()
    return runner


@pytest.fixture(scope="session")
def mobilenet_v1_runner() -> ExperimentRunner:
    return _make_runner("mobilenet_v1_nano", channel_range_spread=MOBILENET_SPREAD)


@pytest.fixture(scope="session")
def mobilenet_v2_runner() -> ExperimentRunner:
    return _make_runner("mobilenet_v2_nano", channel_range_spread=MOBILENET_SPREAD)


@pytest.fixture(scope="session")
def vgg_runner() -> ExperimentRunner:
    return _make_runner("vgg_nano")


@pytest.fixture(scope="session")
def darknet_runner() -> ExperimentRunner:
    return _make_runner("darknet_nano")


@pytest.fixture(scope="session")
def mobilenet_v1_tqt_int8(mobilenet_v1_runner):
    """TQT (wt,th) INT8 retraining of the MobileNet v1 nano, with threshold tracking."""
    trial, result = mobilenet_v1_runner.run_retrain("wt,th", track_thresholds=True)
    return {"trial": trial, "result": result,
            "graph": mobilenet_v1_runner.last_quantized_model.graph}


@pytest.fixture(scope="session")
def mobilenet_v1_tqt_int4(mobilenet_v1_runner):
    """TQT (wt,th) INT4 (4/8) retraining of the MobileNet v1 nano."""
    from repro.quant import INT4_PRECISION

    trial, result = mobilenet_v1_runner.run_retrain("wt,th", INT4_PRECISION,
                                                    track_thresholds=True)
    return {"trial": trial, "result": result,
            "graph": mobilenet_v1_runner.last_quantized_model.graph}
