"""Telemetry overhead — disabled tracing must be (nearly) free.

The telemetry subsystem's standing promise is *zero cost when off*: a
server constructed with a default ``TelemetryConfig()`` (sample_rate=0)
routes every instrumentation point through the no-op ``NULL_TRACER``, so a
serve run must cost the same as one with no telemetry argument at all.
This benchmark measures three configurations of the same single-model
real-execution serve — no telemetry, telemetry disabled, telemetry fully
sampled — with interleaved best-of-N timing (the same noise discipline as
``test_engine_overhead.py``) and gates the disabled-vs-baseline regression
at ``TELEMETRY_OVERHEAD_MAX_PCT`` (default 2%).

Emits ``BENCH_telemetry.json`` at the repo root;
``benchmarks/check_regression.py`` tracks
``telemetry.disabled_relative_throughput`` across PRs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.analysis import format_table
from repro.serving import (
    SCENARIOS,
    AdmissionPolicy,
    BatchingPolicy,
    FleetServer,
    TelemetryConfig,
    fleet_input_shapes,
    generate_requests,
)

BENCH_JSON = Path(__file__).parent.parent / "BENCH_telemetry.json"

MODEL = "lenet_nano"
IMAGE_SIZE = 8
BATCH = 8
SWEEPS = 7
SEED = 0
COMPILE_KWARGS = dict(calibration_samples=8, calibration_batch_size=4)
MAX_OVERHEAD_PCT = float(os.environ.get("TELEMETRY_OVERHEAD_MAX_PCT", "2"))

#: the three measured configurations: no telemetry argument at all, a
#: constructed-but-disabled config (the zero-cost claim under test), and
#: full sampling (informational — tracing is allowed to cost something)
CONFIGS = {
    "baseline": None,
    "disabled": TelemetryConfig(),
    "sampled": TelemetryConfig(sample_rate=1.0),
}


def test_telemetry_disabled_overhead(report_writer):
    scenario = SCENARIOS["steady_poisson"]
    requests = generate_requests(scenario,
                                 fleet_input_shapes(scenario.models, IMAGE_SIZE),
                                 seed=SEED)
    # Single-model fleet: keep the scenario's arrival process, drop the
    # other model's share of the mix.
    requests = [r for r in requests if r.model == MODEL]
    assert len(requests) >= 50, "steady_poisson must offer a real stream"

    servers = {
        key: FleetServer([MODEL], batch_size=BATCH, image_size=IMAGE_SIZE,
                         policy=BatchingPolicy.dynamic(BATCH, 2e-3),
                         admission=AdmissionPolicy(max_queue_depth=None,
                                                   slo_shed=False),
                         compile_kwargs=COMPILE_KWARGS,
                         workers=2, execution="real", telemetry=config)
        for key, config in CONFIGS.items()
    }
    try:
        # Warm every server (engines resident, queues exercised) before any
        # timed sweep, then interleave the sweeps so shared-host load noise
        # hits all three configurations alike; best-of-N is the comparison.
        for server in servers.values():
            server.serve(requests)
        best = {key: float("inf") for key in servers}
        last_reports = {}
        for _ in range(SWEEPS):
            for key, server in servers.items():
                start = time.perf_counter()
                report = server.serve(requests)
                best[key] = min(best[key], time.perf_counter() - start)
                last_reports[key] = report
    finally:
        for server in servers.values():
            server.close()

    assert last_reports["baseline"].trace is None
    assert last_reports["disabled"].trace is None
    assert last_reports["sampled"].trace is not None
    assert last_reports["sampled"].trace.spans

    disabled_pct = (best["disabled"] / best["baseline"] - 1.0) * 100.0
    sampled_pct = (best["sampled"] / best["baseline"] - 1.0) * 100.0
    rows = [
        [key, f"{best[key] * 1e3:.1f}",
         f"{len(requests) / best[key]:.0f}",
         f"{(best[key] / best['baseline'] - 1.0) * 100.0:+.2f}%"]
        for key in CONFIGS
    ]
    report_writer("telemetry_overhead", format_table(
        ["config", "best serve ms", "req/s", "vs baseline"],
        rows,
        title=f"Telemetry overhead — {MODEL}, steady_poisson flood, "
              f"2 workers, best of {SWEEPS} interleaved sweeps "
              f"(gate: disabled <= +{MAX_OVERHEAD_PCT:.0f}%)",
    ))

    payload = {
        "benchmark": "telemetry_overhead",
        "model": MODEL,
        "image_size": IMAGE_SIZE,
        "batch_size": BATCH,
        "requests": len(requests),
        "sweeps": SWEEPS,
        "cpu_count": os.cpu_count(),
        "max_overhead_pct_gate": MAX_OVERHEAD_PCT,
        "best_serve_s": dict(best),
        "disabled_overhead_pct": disabled_pct,
        "sampled_overhead_pct": sampled_pct,
        #: >= 1.0 means disabled telemetry served at least as fast as the
        #: no-telemetry baseline; the regression tracker floors this ratio
        "disabled_relative_throughput": best["baseline"] / best["disabled"],
        "sampled_spans": len(last_reports["sampled"].trace.spans),
        "unix_time": time.time(),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    assert disabled_pct <= MAX_OVERHEAD_PCT, (
        f"telemetry-disabled serving is {disabled_pct:+.2f}% vs the "
        f"no-telemetry baseline, above the +{MAX_OVERHEAD_PCT:.0f}% gate"
    )
