"""Figures 5 and 10 — MobileNet weight/activation distributions and trained thresholds.

After TQT retraining the paper plots, for every quantized layer whose
threshold moved by a non-zero integer amount in the log domain, the tensor
distribution together with the initial (calibrated) and trained thresholds.
Depthwise-convolution weight thresholds move inward by up to three bins
(precision over range); some activation thresholds move outward.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    collect_layer_distributions,
    collect_threshold_deviations,
    deviation_histogram,
    format_table,
)


def test_figure5_distribution_shift(benchmark, mobilenet_v1_tqt_int8, report_writer):
    result = mobilenet_v1_tqt_int8["result"]
    graph = mobilenet_v1_tqt_int8["graph"]

    deviations = collect_threshold_deviations(result, graph)
    panels = collect_layer_distributions(graph, result, only_changed=True)

    rows = []
    for panel in panels:
        rows.append([
            panel.name.replace("node_", ""),
            panel.kind,
            panel.bits,
            f"{panel.initial_threshold:.4f}",
            f"{panel.trained_threshold:.4f}",
            int(np.ceil(np.log2(panel.trained_threshold)) - np.ceil(np.log2(panel.initial_threshold))),
            f"{panel.clipped_fraction * 100:.2f}%",
        ])
    report = format_table(
        ["layer", "kind", "b", "t initial", "t trained", "d", "clipped"],
        rows,
        title="Figure 5/10 — layers whose thresholds moved by a non-zero integer amount",
    )
    weight_moves = deviation_histogram(deviations, kinds=("weight",))
    report += f"\nweight-threshold deviation histogram: {weight_moves}"
    report_writer("figure5_distribution_shift", report)

    # At least one quantizer moved by a whole bin, and thresholds stay positive/finite.
    moved = [d for d in deviations if d.deviation != 0]
    assert moved, "TQT retraining should move at least one threshold across an integer bin"
    assert all(np.isfinite(d.trained_log2_t) for d in deviations)
    # Trained thresholds never collapse to (near) zero — the quantizer stays usable.
    assert all(d.trained_threshold > 1e-6 for d in deviations)

    benchmark(lambda: collect_threshold_deviations(result, graph))
