"""Max-pool kernel vectorization — before/after the offset-shift rewrite.

The per-step profiler flagged max-pool as ~38% of the optimized VGG plan:
the old kernel reduced over the trailing two axes of a 6-D strided window
view, which walks memory kernel-element-by-window.  The shipped kernel
(:func:`repro.engine.kernels.max_pool_codes`) instead folds the ``KH*KW``
kernel offsets into the output with dense elementwise maxima — bit-identical
output, near-contiguous traffic.  This benchmark times the retained
reference (:func:`max_pool_codes_reference`) against the shipped kernel on
the pool shapes the model zoo actually runs, asserts bit-exactness first,
and records the before/after in ``benchmarks/reports/`` plus the end-to-end
effect on the optimized VGG plan's max-pool share.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import deploy
from repro.analysis import format_table
from repro.autograd.conv import conv_output_size
from repro.engine.kernels import max_pool_codes, max_pool_codes_reference

#: shared CI runners jitter; the double-digit local speedup leaves headroom
MIN_SPEEDUP = float(os.environ.get("MAXPOOL_BENCH_MIN_SPEEDUP", "2.0"))

#: (label, input shape, kernel, stride, padding) — the zoo's pool configs
CASES = [
    ("vgg_stage1", (8, 16, 16, 16), (2, 2), (2, 2), (0, 0)),
    ("vgg_stage2", (8, 32, 8, 8), (2, 2), (2, 2), (0, 0)),
    ("vgg_wide", (8, 64, 16, 16), (2, 2), (2, 2), (0, 0)),
    ("overlap_k3s2p1", (8, 32, 16, 16), (3, 3), (2, 2), (1, 1)),
    ("dense_k3s1p1", (4, 16, 16, 16), (3, 3), (1, 1), (1, 1)),
]


def _time_best(fn, repeats: int = 9, inner: int = 10) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


def test_maxpool_vectorization(report_writer):
    rng = np.random.default_rng(0)
    rows = []
    speedups = {}
    for label, shape, kernel, stride, padding in CASES:
        n, c, h, w = shape
        x = np.rint(rng.standard_normal(shape) * 30.0)
        oh = conv_output_size(h, kernel[0], stride[0], padding[0])
        ow = conv_output_size(w, kernel[1], stride[1], padding[1])
        out_new = np.empty((n, c, oh, ow))
        out_ref = np.empty((n, c, oh, ow))
        pad_shape = (n, c, h + 2 * padding[0], w + 2 * padding[1])
        padded_new = np.zeros(pad_shape) if any(padding) else None
        padded_ref = np.zeros(pad_shape) if any(padding) else None

        max_pool_codes(x, kernel, stride, padding, padded_new, out_new)
        max_pool_codes_reference(x, kernel, stride, padding, padded_ref, out_ref)
        np.testing.assert_array_equal(out_new, out_ref, err_msg=label)

        t_new = _time_best(lambda: max_pool_codes(
            x, kernel, stride, padding, padded_new, out_new))
        t_ref = _time_best(lambda: max_pool_codes_reference(
            x, kernel, stride, padding, padded_ref, out_ref))
        speedups[label] = t_ref / t_new
        rows.append([label, f"{n}x{c}x{h}x{w}",
                     f"{kernel[0]}x{kernel[1]}/s{stride[0]}/p{padding[0]}",
                     f"{t_ref * 1e6:.1f}", f"{t_new * 1e6:.1f}",
                     f"{t_ref / t_new:.2f}x"])

    # End-to-end: where does max-pool sit in the optimized VGG plan now?
    deployment = deploy.compile("vgg_nano", image_size=16, batch_size=8,
                                calibration_samples=8, calibration_batch_size=8)
    profile = deployment.profile(repeats=5)
    pool_share = sum(t.share for t in profile.steps if t.op == "maxpool")

    report = format_table(
        ["case", "input", "pool", "before us", "after us", "speedup"],
        rows,
        title="Max-pool kernel: window-view reduction (before) vs "
              "offset-shift maxima (after)",
    )
    report += (f"\n\nOptimized vgg_nano plan: max-pool now "
               f"{pool_share * 100:.1f}% of the per-pass time "
               f"(was ~38% before vectorization)\n\n" + profile.table())
    report_writer("maxpool_vectorization", report)

    worst = min(speedups, key=speedups.get)
    assert speedups[worst] >= MIN_SPEEDUP, (
        f"max-pool vectorization regressed: {worst} is only "
        f"{speedups[worst]:.2f}x over the window-view reduction "
        f"(required {MIN_SPEEDUP}x)")
