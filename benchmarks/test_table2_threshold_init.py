"""Table 2 — Threshold initialization scheme.

Paper: static mode initializes weight thresholds with MAX and activation
thresholds with KL-J; retrain ``wt`` keeps MAX weights, retrain ``wt,th``
uses 3SD weights; activations are always KL-J calibrated.

The benchmark verifies that the mode drivers apply exactly that scheme and
reports the thresholds each method produces on real weight/activation
tensors (showing the range-precision character of each initializer).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.graph import prepare_retrain, quantize_static
from repro.graph.transforms import run_default_optimizations
from repro.models import build_model
from repro.data import SyntheticImageNet, sample_calibration_batches
from repro.quant import calibrate, kl_j_calibration

TABLE2_PAPER = [
    ("Static", "MAX", "KL-J"),
    ("Retrain wt", "MAX", "KL-J"),
    ("Retrain wt,th", "3SD", "KL-J"),
]


def test_table2_threshold_initialization(benchmark, report_writer, rng=np.random.default_rng(0)):
    dataset = SyntheticImageNet(num_classes=6, image_size=12, train_size=64, val_size=64, seed=0)
    calibration = sample_calibration_batches(dataset, num_samples=24, batch_size=8)

    graph = build_model("vgg_nano", num_classes=6, seed=0)
    graph.eval()
    run_default_optimizations(graph)

    static = quantize_static(graph, calibration)
    retrain_wt = prepare_retrain(graph, calibration, mode="wt")
    retrain_wtth = prepare_retrain(graph, calibration, mode="wt,th")

    measured = [
        ("Static", static.scheme.weight_init.upper(), static.scheme.activation_init.upper()),
        ("Retrain wt", retrain_wt.scheme.weight_init.upper(),
         retrain_wt.scheme.activation_init.upper()),
        ("Retrain wt,th", retrain_wtth.scheme.weight_init.upper(),
         retrain_wtth.scheme.activation_init.upper()),
    ]

    # Thresholds the different initializers produce on representative tensors.
    sample_weights = np.random.default_rng(1).normal(0, 0.05, 20_000)
    init_rows = [
        ["weights (gaussian)", "MAX", f"{calibrate(sample_weights, 'max'):.4f}"],
        ["weights (gaussian)", "3SD", f"{calibrate(sample_weights, '3sd'):.4f}"],
        ["activations (long tail)", "KL-J",
         f"{kl_j_calibration(np.abs(np.random.default_rng(2).standard_t(3, 20_000))):.4f}"],
    ]

    scheme_rows = [[mode, w, a] for (mode, w, a) in measured]
    report = format_table(["Mode", "weights", "activations"], scheme_rows,
                          title="Table 2 — threshold initialization scheme (measured)")
    report += "\n\n" + format_table(["tensor", "method", "threshold"], init_rows,
                                    title="Example thresholds per initializer")
    report_writer("table2_threshold_init", report)

    # The measured scheme must match the paper's table exactly.
    paper_normalized = [(m, w, a) for (m, w, a) in TABLE2_PAPER]
    measured_normalized = [(m, w.replace("KL-J", "KL-J"), a) for (m, w, a) in measured]
    assert measured_normalized == paper_normalized

    # Timed kernel: KL-J calibration of one activation tensor.
    activations = np.abs(np.random.default_rng(3).standard_normal(50_000))
    benchmark(lambda: kl_j_calibration(activations, bits=8))
