"""Table 3 — quantization accuracy across the network suite.

Paper: for every network it reports FP32, static INT8, retrain-wt FP32,
retrain-wt INT8, retrain-wt,th INT8 and retrain-wt,th INT4 accuracy, with
the headline observations:

* static quantization loses the most accuracy, catastrophically so for
  depthwise networks (MobileNets: 0.6% / 0.3% top-1);
* wt-only retraining suffices for easy networks (VGG/ResNet/Inception) but
  leaves several points on the table for MobileNets/DarkNet;
* TQT (wt,th) recovers (near-)FP32 accuracy for every network at INT8;
* INT4 (4/8) needs threshold training and lands slightly below FP32.

This bench reproduces the sweep on three representative networks — an easy
one (VGG), a depthwise one (MobileNet v1) and a leaky-ReLU one (DarkNet) —
at the synthetic-data scale, prints the rows in the paper's format and
asserts the ordering claims.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.autograd import Tensor
from repro.quant import INT4_PRECISION

# Paper top-1 numbers for the three networks reproduced here (for the report).
TABLE3_PAPER_TOP1 = {
    "vgg_nano": {"fp32": 70.9, "static": 70.4, "wt_fp32": 71.9, "wt_int8": 71.8,
                 "wtth_int8": 71.7, "wtth_int4": 71.5, "paper_name": "VGG 16"},
    "mobilenet_v1_nano": {"fp32": 71.0, "static": 0.6, "wt_fp32": 71.1, "wt_int8": 67.0,
                          "wtth_int8": 71.1, "wtth_int4": None,
                          "paper_name": "MobileNet v1 1.0 224"},
    "darknet_nano": {"fp32": 73.0, "static": 68.7, "wt_fp32": 74.4, "wt_int8": 72.9,
                     "wtth_int8": 74.5, "wtth_int4": 73.2, "paper_name": "DarkNet 19"},
}


def _sweep(runner, include_int4: bool):
    rows = {}
    rows["fp32"] = runner.evaluate_fp32().top1
    rows["static"] = runner.run_static().top1
    rows["wt_fp32"] = runner.run_retrain_fp32().top1
    rows["wt_int8"] = runner.run_retrain("wt")[0].top1
    rows["wtth_int8"] = runner.run_retrain("wt,th")[0].top1
    if include_int4:
        rows["wtth_int4"] = runner.run_retrain("wt,th", INT4_PRECISION)[0].top1
    return rows


def test_table3_network_sweep(benchmark, vgg_runner, mobilenet_v1_runner, darknet_runner,
                              report_writer):
    runners = {"vgg_nano": vgg_runner, "mobilenet_v1_nano": mobilenet_v1_runner,
               "darknet_nano": darknet_runner}
    measured = {name: _sweep(runner, include_int4=(name != "mobilenet_v1_nano"))
                for name, runner in runners.items()}

    table_rows = []
    labels = [("fp32", "FP32", "32/32"), ("static", "Static INT8", "8/8"),
              ("wt_fp32", "Retrain wt FP32", "32/32"), ("wt_int8", "Retrain wt INT8", "8/8"),
              ("wtth_int8", "Retrain wt,th INT8", "8/8"),
              ("wtth_int4", "Retrain wt,th INT4", "4/8")]
    for name, rows in measured.items():
        paper = TABLE3_PAPER_TOP1[name]
        for key, label, bits in labels:
            if key not in rows:
                continue
            paper_value = paper.get(key)
            table_rows.append([paper["paper_name"], label, bits, f"{rows[key] * 100:.1f}",
                               "-" if paper_value is None else f"{paper_value:.1f}"])
    report_writer("table3_network_sweep",
                  format_table(["Network", "Mode", "W/A", "top-1 measured (%)",
                                "top-1 paper (%)"],
                               table_rows,
                               title="Table 3 — quantization sweep (synthetic scale)"))

    vgg, mobilenet, darknet = (measured["vgg_nano"], measured["mobilenet_v1_nano"],
                               measured["darknet_nano"])

    # Easy network: static INT8 and wt-only retraining already track FP32.
    assert vgg["static"] >= vgg["fp32"] - 0.05
    assert vgg["wt_int8"] >= vgg["fp32"] - 0.05
    # INT4 on the easy network stays close to FP32 with TQT.
    assert vgg["wtth_int4"] >= vgg["fp32"] - 0.10

    # Depthwise network: static collapses, wt-only recovers partially, TQT fully.
    assert mobilenet["static"] < mobilenet["fp32"] - 0.10
    assert mobilenet["wt_int8"] > mobilenet["static"]
    assert mobilenet["wtth_int8"] > mobilenet["wt_int8"]
    assert mobilenet["wtth_int8"] >= mobilenet["fp32"] - 0.05

    # Difficult networks benefit from threshold training; easy ones show no added benefit.
    assert (mobilenet["wtth_int8"] - mobilenet["wt_int8"]) >= \
           (vgg["wtth_int8"] - vgg["wt_int8"]) - 0.02
    # DarkNet: TQT at least matches wt-only.
    assert darknet["wtth_int8"] >= darknet["wt_int8"] - 0.03

    # Timed kernel: static-quantized VGG forward pass.
    graph = vgg_runner.last_quantized_model.graph
    batch = np.random.default_rng(0).standard_normal(
        (4, 3, vgg_runner.config.image_size, vgg_runner.config.image_size))
    benchmark(lambda: graph(Tensor(batch)))
