"""Admission control: bounded queues and SLO-aware shedding.

An overloaded server that queues everything converts overload into unbounded
latency; shedding at admission converts it into bounded latency plus an
explicit, measurable reject rate.  Two gates run at arrival time:

* **bounded queue** — reject when the target model's queue is already at
  ``max_queue_depth`` (backpressure);
* **SLO shed** — reject when the *predicted* completion time of the request
  would bust its deadline.  The prediction sums the worker's residual busy
  time, the backlog of queued batches priced by a per-model **EWMA cost
  model** of measured batch compute time, the policy's batch-formation
  timeout, and the request's own batch cost.

Both gates are **priority-aware** (``AdmissionPolicy.priority_shed``): when a
gate would shed an arrival, queued requests of strictly *lower* priority on
the same model are preempted first (lowest tier, youngest first) — shedding
under pressure always lands on the lowest tier present, and a batch of equal
priorities degrades to plain FIFO admission.  Preemption victims surface on
:attr:`AdmissionDecision.evicted`; the server records them as shed with
reason ``"preempted"``.

The prediction is deliberately a cheap heuristic (it prices partial batches
at full-batch EWMA cost and assumes FIFO service); its job is to keep the
shed decision monotone in load, not to be a simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .batcher import BatchingPolicy, DynamicBatcher
from .workload import Request

__all__ = ["EwmaCostModel", "AdmissionPolicy", "AdmissionDecision", "AdmissionController"]


class EwmaCostModel:
    """Exponentially weighted moving average of per-batch compute seconds.

    One scalar per model: TQT engines run a fixed-shape plan, so per-batch
    cost is nearly fill-independent (padding rows are computed either way),
    which makes the per-batch EWMA the right granularity.
    """

    def __init__(self, alpha: float = 0.3, default_s: float = 5e-3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.default_s = default_s
        self._estimates: dict[str, float] = {}

    def prime(self, model: str, seconds: float) -> None:
        """Seed the estimate from a warmup measurement."""
        self._estimates[model] = float(seconds)

    def observe(self, model: str, seconds: float) -> None:
        prev = self._estimates.get(model)
        if prev is None:
            self._estimates[model] = float(seconds)
        else:
            self._estimates[model] = self.alpha * float(seconds) + (1.0 - self.alpha) * prev

    def estimate(self, model: str) -> float:
        """Current per-batch cost estimate (``default_s`` before any data)."""
        return self._estimates.get(model, self.default_s)

    def to_dict(self) -> dict:
        return {model: est for model, est in sorted(self._estimates.items())}


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs for the admission gates; ``None`` depth disables backpressure."""

    max_queue_depth: int | None = 128
    slo_shed: bool = True
    #: preempt queued strictly-lower-priority requests before shedding an
    #: arrival (a no-op while every request carries the same priority)
    priority_shed: bool = True

    def __post_init__(self) -> None:
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {self.max_queue_depth}")


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    reason: str | None = None           # "queue_full" | "slo" when shed
    predicted_latency_s: float | None = None
    #: queued lower-priority requests preempted to make room; the caller
    #: must remove them from their queue and record them as shed
    evicted: tuple[Request, ...] = ()


class AdmissionController:
    """Applies an :class:`AdmissionPolicy` using the EWMA cost model.

    Decision tallies accumulate on :attr:`counters` across the
    controller's lifetime (Prometheus-counter semantics); the server
    reports per-run deltas by snapshotting :meth:`stats` around a serve.
    """

    def __init__(self, policy: AdmissionPolicy, cost_model: EwmaCostModel) -> None:
        self.policy = policy
        self.cost_model = cost_model
        self.counters = {"considered": 0, "admitted": 0, "shed_queue_full": 0,
                         "shed_slo": 0, "preempted": 0}

    def stats(self) -> dict[str, int]:
        """Cumulative decision counts (copy; safe to mutate)."""
        return dict(self.counters)

    def predicted_latency_s(self, request: Request, now: float, worker_free: float,
                            queues: dict[str, DynamicBatcher],
                            batching: BatchingPolicy,
                            depth_adjust: dict[str, int] | None = None) -> float:
        """Predicted completion latency if the request were admitted now.

        ``depth_adjust`` subtracts hypothetically evicted requests from a
        model's queue depth, so preemption can re-price the backlog without
        mutating the queue.
        """
        residual = max(0.0, worker_free - now)
        backlog = 0.0
        for model, queue in queues.items():
            depth = queue.depth - (depth_adjust or {}).get(model, 0)
            if depth > 0:
                batches_ahead = math.ceil(depth / batching.max_batch)
                backlog += batches_ahead * self.cost_model.estimate(model)
        formation = batching.max_wait_s if batching.max_wait_s is not None else 0.0
        return residual + backlog + formation + self.cost_model.estimate(request.model)

    def consider(self, request: Request, now: float, worker_free: float,
                 queues: dict[str, DynamicBatcher],
                 batching: BatchingPolicy) -> AdmissionDecision:
        decision = self._consider(request, now, worker_free, queues, batching)
        self.counters["considered"] += 1
        if decision.admitted:
            self.counters["admitted"] += 1
            self.counters["preempted"] += len(decision.evicted)
        else:
            self.counters[f"shed_{decision.reason}"] += 1
        return decision

    def _consider(self, request: Request, now: float, worker_free: float,
                  queues: dict[str, DynamicBatcher],
                  batching: BatchingPolicy) -> AdmissionDecision:
        policy = self.policy
        queue = queues[request.model]
        evicted: list[Request] = []

        def depth() -> int:
            return queue.depth - len(evicted)

        def preempt_one() -> bool:
            if not policy.priority_shed:
                return False
            victim = queue.shed_candidate(request.priority, exclude=evicted)
            if victim is None:
                return False
            evicted.append(victim)
            return True

        if policy.max_queue_depth is not None and depth() >= policy.max_queue_depth:
            if not preempt_one() or depth() >= policy.max_queue_depth:
                return AdmissionDecision(False, reason="queue_full")
        if policy.slo_shed and request.deadline_s is not None:
            while True:
                predicted = self.predicted_latency_s(
                    request, now, worker_free, queues, batching,
                    depth_adjust={request.model: len(evicted)})
                if predicted <= request.deadline_s:
                    return AdmissionDecision(True, predicted_latency_s=predicted,
                                             evicted=tuple(evicted))
                if not preempt_one():
                    # Shedding the arrival itself: no preemption happens, so
                    # the queue is left exactly as found.
                    return AdmissionDecision(False, reason="slo",
                                             predicted_latency_s=predicted)
        return AdmissionDecision(True, evicted=tuple(evicted))
