"""Dynamic batching: per-model request queues with a max-batch/max-wait policy.

PR 1's ``BatchedRunner`` coalesces *fixed full batches*: a request waits
until ``batch_size - 1`` more requests show up, which is catastrophic for
tail latency under sparse traffic.  A :class:`DynamicBatcher` instead
launches a batch as soon as either (a) ``max_batch`` requests are queued, or
(b) the oldest queued request has waited ``max_wait_s`` — the timeout policy
every production serving stack (Triton, TF-Serving, Clipper) converges on.
``max_wait_s=None`` recovers full-batch coalescing (wait for a full batch,
flush leftovers only once the stream has drained), so both policies run
through the same scheduler and can be compared head-to-head.

The batcher is a *scheduling* object on the fleet's virtual clock: it
answers "when is this queue ready to launch?" and hands out batches; the
:class:`~repro.serving.server.FleetServer` owns clock advancement and
execution.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Sequence

from .workload import Request

__all__ = ["BatchingPolicy", "DynamicBatcher"]


@dataclass(frozen=True)
class BatchingPolicy:
    """When to close a batch: size trigger always, timeout trigger optionally.

    ``max_wait_s=None`` means *full-batch coalescing*: only a full batch (or
    end-of-stream flush) launches.  A finite ``max_wait_s`` bounds how long
    the oldest queued request may age before its (possibly partial) batch
    launches.
    """

    max_batch: int
    max_wait_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_s is not None and self.max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {self.max_wait_s}")

    @classmethod
    def full_batch(cls, max_batch: int) -> "BatchingPolicy":
        return cls(max_batch=max_batch, max_wait_s=None)

    @classmethod
    def dynamic(cls, max_batch: int, max_wait_s: float) -> "BatchingPolicy":
        if max_wait_s is None:
            raise ValueError("dynamic policy requires a finite max_wait_s")
        return cls(max_batch=max_batch, max_wait_s=max_wait_s)

    @property
    def kind(self) -> str:
        return "full_batch" if self.max_wait_s is None else "dynamic"

    def describe(self) -> str:
        if self.max_wait_s is None:
            return f"full_batch(max_batch={self.max_batch})"
        return f"dynamic(max_batch={self.max_batch}, max_wait={self.max_wait_s * 1e3:.1f}ms)"


class DynamicBatcher:
    """FIFO request queue for one model, scheduled by a :class:`BatchingPolicy`."""

    def __init__(self, model: str, policy: BatchingPolicy) -> None:
        self.model = model
        self.policy = policy
        self._queue: deque[Request] = deque()
        # Lifetime observability tallies (surfaced per model in reports).
        self.pushes = 0
        self.popped_batches = 0
        self.max_depth = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def depth(self) -> int:
        return len(self._queue)

    @property
    def head_arrival_s(self) -> float:
        """Arrival time of the oldest queued request (inf when empty)."""
        return self._queue[0].arrival_s if self._queue else math.inf

    def push(self, request: Request) -> None:
        if request.model != self.model:
            raise ValueError(f"request for {request.model!r} routed to the "
                             f"{self.model!r} queue")
        self._queue.append(request)
        self.pushes += 1
        if len(self._queue) > self.max_depth:
            self.max_depth = len(self._queue)

    def ready_time(self, pending_arrivals: int) -> float:
        """Earliest virtual time this queue can launch a batch.

        ``pending_arrivals`` is how many future requests for this model have
        not yet arrived; a full-batch policy keeps waiting while more are
        coming, but flushes a partial batch once the stream has drained
        (matching ``BatchedRunner``'s final-batch semantics).  Returns
        ``math.inf`` when nothing can launch yet.
        """
        if not self._queue:
            return math.inf
        policy = self.policy
        if len(self._queue) >= policy.max_batch:
            # Ready the moment the batch-filling request arrived.
            return self._queue[policy.max_batch - 1].arrival_s
        if policy.max_wait_s is not None:
            return self._queue[0].arrival_s + policy.max_wait_s
        if pending_arrivals == 0:
            return self._queue[0].arrival_s  # end-of-stream flush
        return math.inf

    def pop_batch(self) -> list[Request]:
        """Dequeue up to ``max_batch`` requests in arrival order."""
        take = min(self.policy.max_batch, len(self._queue))
        self.popped_batches += 1
        return [self._queue.popleft() for _ in range(take)]

    def stats(self) -> dict[str, int]:
        """Lifetime queue tallies: pushes, batches popped, peak depth."""
        return {"pushes": self.pushes, "popped_batches": self.popped_batches,
                "max_depth": self.max_depth}

    # ------------------------------------------------------------------ #
    # Priority preemption (see AdmissionController)
    # ------------------------------------------------------------------ #
    def shed_candidate(self, below_priority: int,
                       exclude: Sequence[Request] = ()) -> Request | None:
        """The queued request to preempt for an arrival of ``below_priority``.

        Lowest tier first; within a tier the *youngest* request goes (it has
        waited least, so evicting it wastes the least queueing investment).
        Only strictly lower priorities are candidates — equal-priority
        requests are never preempted, so FIFO fairness holds within a class.
        """
        candidate: Request | None = None
        excluded = {id(req) for req in exclude}
        for req in self._queue:
            if req.priority >= below_priority or id(req) in excluded:
                continue
            if (candidate is None or req.priority < candidate.priority
                    or (req.priority == candidate.priority
                        and req.arrival_s >= candidate.arrival_s)):
                candidate = req
        return candidate

    def remove(self, request: Request) -> None:
        """Drop one queued request (a preemption victim) by identity."""
        for index, queued in enumerate(self._queue):
            if queued is request:
                del self._queue[index]
                return
        raise ValueError(f"request {request.request_id} is not queued on "
                         f"the {self.model!r} queue")
