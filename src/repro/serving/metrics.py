"""Serving metrics: per-model and fleet-wide latency, goodput, queue depth.

Collects events from one :meth:`FleetServer.serve` run and reduces them
into a JSON-serializable report: percentile latency per model and
fleet-wide, goodput vs. shed rate, batch fill (variable-fill batches mean
partial batches are *not* reported at full batch size — padded slots are a
separate counter), worker utilization, a queue-depth timeline downsampled
to a bounded number of points, and a periodic **time-series** (arrivals,
goodput, shed rate, queue depth and utilization per fixed interval — see
:func:`repro.telemetry.snapshot.build_timeseries`), which is the
structured successor of the raw timeline.

Event recorders accept an optional ``now`` timestamp (virtual seconds or
wall-clock offsets from serve start, whichever clock the run is on);
timestamped events feed the time-series, untimestamped ones only the
aggregate counters — existing callers keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..telemetry.snapshot import build_timeseries

__all__ = ["percentiles_ms", "ModelStats", "MetricsCollector"]

#: Maximum points kept in the queue-depth timeline of a report.
TIMELINE_POINTS = 200


def percentiles_ms(latencies_s: list[float]) -> dict:
    """Latency summary in milliseconds; zeros for an empty population."""
    if not latencies_s:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0, "p95": 0.0,
                "p99": 0.0, "max": 0.0}
    ms = np.asarray(latencies_s) * 1e3
    return {
        "count": int(ms.size),
        "mean": float(ms.mean()),
        "p50": float(np.percentile(ms, 50)),
        "p90": float(np.percentile(ms, 90)),
        "p95": float(np.percentile(ms, 95)),
        "p99": float(np.percentile(ms, 99)),
        "max": float(ms.max()),
    }


@dataclass
class ModelStats:
    """Mutable per-model accumulators."""

    arrivals: int = 0
    completed: int = 0
    shed: dict[str, int] = field(default_factory=dict)
    latencies_s: list[float] = field(default_factory=list)
    batches: int = 0
    filled_slots: int = 0
    padded_slots: int = 0
    compute_s: float = 0.0
    slo_met: int = 0
    slo_missed: int = 0
    #: megabatch coalescing: policy batches that shared a packed engine
    #: pass, and how many extra passes the packing saved
    megabatch_batches: int = 0
    megabatch_saved_executions: int = 0
    #: fault plane: requests that terminated as failed (by fault kind) and
    #: retry attempts the resilience policy spent on this model
    failed: dict[str, int] = field(default_factory=dict)
    retries: int = 0

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    @property
    def failed_total(self) -> int:
        return sum(self.failed.values())

    def to_dict(self) -> dict:
        deadline_pop = self.slo_met + self.slo_missed
        return {
            "arrivals": self.arrivals,
            "completed": self.completed,
            "shed": dict(self.shed),
            "shed_total": self.shed_total,
            "failed": dict(self.failed),
            "failed_total": self.failed_total,
            "retries": self.retries,
            "slo_attainment": self.slo_met / deadline_pop if deadline_pop else None,
            "latency_ms": percentiles_ms(self.latencies_s),
            "batches": self.batches,
            "mean_fill": self.filled_slots / self.batches if self.batches else 0.0,
            "padded_slots": self.padded_slots,
            "compute_s": self.compute_s,
            "megabatch_batches": self.megabatch_batches,
            "megabatch_saved_executions": self.megabatch_saved_executions,
        }


class MetricsCollector:
    """Event sink for one serve run; ``report()`` reduces to a dict."""

    def __init__(self, models: list[str]) -> None:
        self.models = list(models)
        self.per_model: dict[str, ModelStats] = {m: ModelStats() for m in self.models}
        self._depth_t: list[float] = []
        self._depth: list[int] = []
        self._busy_s = 0.0
        self._first_arrival_s: float | None = None
        self._last_arrival_s: float | None = None
        # Timestamped event streams feeding the interval time-series.
        self._arrival_t: list[float] = []
        self._completion_t: list[float] = []
        self._shed_t: list[float] = []
        self._batch_events: list[tuple[float, float]] = []

    def record_arrival(self, model: str, now: float) -> None:
        self.per_model[model].arrivals += 1
        if self._first_arrival_s is None:
            self._first_arrival_s = now
        self._last_arrival_s = now
        self._arrival_t.append(now)

    def record_shed(self, model: str, reason: str,
                    now: float | None = None) -> None:
        shed = self.per_model[model].shed
        shed[reason] = shed.get(reason, 0) + 1
        if now is not None:
            self._shed_t.append(now)

    def record_retry(self, model: str) -> None:
        """One retry attempt spent on a request of ``model``."""
        self.per_model[model].retries += 1

    def record_failed(self, model: str, reason: str,
                      now: float | None = None) -> None:
        """A request terminated as failed (retries/deadline exhausted).

        Failed requests are neither completions nor sheds: they were
        admitted, consumed attempts, and still produced no codes — the
        report's ``fleet.failed`` counter keeps the three disjoint.
        """
        failed = self.per_model[model].failed
        failed[reason] = failed.get(reason, 0) + 1
        if now is not None:
            self._shed_t.append(now)

    def record_batch(self, model: str, fill: int, batch_size: int,
                     compute_s: float, now: float | None = None) -> None:
        """``batch_size`` is the engine's bound batch shape — the padding base.

        ``now`` is the batch's finish time; the compute is credited to the
        finishing interval of the time-series.
        """
        stats = self.per_model[model]
        stats.batches += 1
        stats.filled_slots += fill
        stats.padded_slots += batch_size - fill
        stats.compute_s += compute_s
        self._busy_s += compute_s
        if now is not None:
            self._batch_events.append((now, compute_s))

    def record_megabatch(self, model: str, packed_batches: int) -> None:
        """``packed_batches`` policy batches shared one packed engine pass."""
        stats = self.per_model[model]
        stats.megabatch_batches += packed_batches
        stats.megabatch_saved_executions += packed_batches - 1

    def record_completion(self, model: str, latency_s: float,
                          deadline_s: float | None = None,
                          now: float | None = None) -> None:
        """Completions with a deadline also feed SLO attainment — a completed
        request that busts its deadline is not goodput in the SLO sense."""
        stats = self.per_model[model]
        stats.completed += 1
        stats.latencies_s.append(latency_s)
        if deadline_s is not None:
            if latency_s <= deadline_s:
                stats.slo_met += 1
            else:
                stats.slo_missed += 1
        if now is not None:
            self._completion_t.append(now)

    def record_queue_depth(self, now: float, total_depth: int) -> None:
        self._depth_t.append(now)
        self._depth.append(total_depth)

    # ------------------------------------------------------------------ #
    def _timeline(self) -> dict:
        if not self._depth_t:
            return {"t_s": [], "depth": [], "max_depth": 0}
        stride = max(1, len(self._depth_t) // TIMELINE_POINTS)
        t_s = [round(t, 6) for t in self._depth_t[::stride]]
        depth = self._depth[::stride]
        # Strided slices drop the final sample unless (n-1) % stride == 0;
        # the timeline must end at the true end of the run.
        if (len(self._depth_t) - 1) % stride != 0:
            t_s.append(round(self._depth_t[-1], 6))
            depth = [*depth, self._depth[-1]]
        return {
            "t_s": t_s,
            "depth": list(depth),
            "max_depth": int(max(self._depth)),
        }

    def report(self, makespan_s: float, workers: int = 1,
               execution: str = "virtual",
               snapshot_interval_s: float | None = None) -> dict:
        """Fleet-wide + per-model reduction over the collected events.

        ``workers`` is the dispatch-worker count; utilization is busy time
        over ``workers * makespan`` so it stays in [0, 1] for concurrent
        fleets.  ``execution`` labels the clock the events were recorded on:
        ``"virtual"`` (the discrete-event simulation) or ``"real"``
        (measured wall time on a live thread pool) — on a real run,
        ``makespan_s``, ``goodput_rps`` and every latency percentile are
        measured wall-clock numbers.  ``snapshot_interval_s`` sets the
        bucket width of the ``timeseries`` reduction (``None`` -> auto).

        ``offered_rps`` is arrivals over the first-to-last arrival span;
        a single-arrival run has a zero span, so it falls back to the
        makespan (one request over the whole run) — the rate is finite
        whenever any work happened.
        """
        arrivals = sum(s.arrivals for s in self.per_model.values())
        completed = sum(s.completed for s in self.per_model.values())
        shed = sum(s.shed_total for s in self.per_model.values())
        failed = sum(s.failed_total for s in self.per_model.values())
        retries = sum(s.retries for s in self.per_model.values())
        slo_met = sum(s.slo_met for s in self.per_model.values())
        deadline_pop = slo_met + sum(s.slo_missed for s in self.per_model.values())
        all_latencies = [lat for s in self.per_model.values() for lat in s.latencies_s]
        span = ((self._last_arrival_s - self._first_arrival_s)
                if self._first_arrival_s is not None and self._last_arrival_s is not None
                else 0.0)
        if span > 0.0:
            offered_rps = arrivals / span
        elif makespan_s:
            offered_rps = arrivals / makespan_s   # single-arrival fallback
        else:
            offered_rps = 0.0
        return {
            "makespan_s": makespan_s,
            "execution": execution,
            "fleet": {
                "arrivals": arrivals,
                "completed": completed,
                "shed": shed,
                "shed_rate": shed / arrivals if arrivals else 0.0,
                "failed": failed,
                "retries": retries,
                "slo_attainment": slo_met / deadline_pop if deadline_pop else None,
                "offered_rps": offered_rps,
                "goodput_rps": completed / makespan_s if makespan_s else 0.0,
                "utilization": (self._busy_s / (workers * makespan_s)
                                if makespan_s else 0.0),
                "latency_ms": percentiles_ms(all_latencies),
            },
            "per_model": {m: s.to_dict() for m, s in self.per_model.items()},
            "queue_depth": self._timeline(),
            "timeseries": build_timeseries(
                makespan_s=makespan_s, workers=workers,
                arrivals=self._arrival_t, completions=self._completion_t,
                sheds=self._shed_t, batches=self._batch_events,
                depth_samples=list(zip(self._depth_t, self._depth)),
                interval_s=snapshot_interval_s),
        }
