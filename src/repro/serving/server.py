"""Multi-model fleet server on the engine's virtual clock.

:class:`FleetServer` serves a stream of :class:`~repro.serving.workload.Request`
objects against a fleet of registry models.  Per-model request queues are
scheduled by a :class:`~repro.serving.batcher.BatchingPolicy`, engines come
from a bounded :class:`~repro.serving.cache.PlanCache` (compile-on-demand
through :func:`repro.deploy.compile`, LRU eviction, optional disk-backed
artifact tier), and arrivals pass through
:class:`~repro.serving.admission.AdmissionController` before queueing.

Time is *virtual* by default, following ``BatchedRunner``'s convention: a
batch starts once its queue's launch condition and a worker's availability
allow, and advances the clock by its **measured** compute time (or by a
caller-supplied ``compute_time_fn(model, fill) -> seconds`` for
deterministic simulation — the engine still executes for real so outputs
stay bit-exact).  ``execution="real"`` instead drives the dispatch workers
as an actual thread pool over per-model tape engines and reports measured
wall-clock throughput/latency, with megabatch coalescing of backlogged
policy batches (see :meth:`FleetServer._serve_real`).

Two orthogonal concurrency knobs:

* ``workers=N`` — N dispatch workers on the virtual clock.  Batches for
  *different models* launch concurrently (each model still serializes on
  its own engine); with one worker the server degrades to the strict
  single-worker serialization where batching policy and admission control
  matter most.
* ``shard_workers=M`` — data parallelism inside one batch: every batch is
  split across M per-shard engines on a thread pool (BLAS releases the
  GIL).  Output codes are identical either way.

The discrete-event loop interleaves two event kinds in time order: request
arrivals (admission + enqueue) and batch launches (earliest ready queue,
ties broken by oldest queued request then model name).  Arrivals at or
before a launch instant are ingested first so they can join the batch.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..deploy import compile as deploy_compile
from ..deploy.artifact import config_key
from ..deploy.config import CompileConfig
from ..engine.parallel import ShardedRunner
from ..engine.runner import run_partial_groups
from ..models.registry import MODEL_REGISTRY, available_models
from .admission import AdmissionController, AdmissionPolicy, EwmaCostModel
from .batcher import BatchingPolicy, DynamicBatcher
from .cache import PlanCache
from .metrics import MetricsCollector
from .workload import Request, fleet_input_shapes

__all__ = ["ServedRequest", "FleetReport", "FleetServer"]


@dataclass(frozen=True)
class ServedRequest:
    """Terminal outcome of one request: completed with codes, or shed."""

    request_id: int
    model: str
    status: str                          # "completed" | "shed"
    latency_s: float | None = None
    codes: np.ndarray | None = None
    shed_reason: str | None = None
    batch_index: int | None = None
    batch_fill: int | None = None
    worker_index: int | None = None      # dispatch worker that ran the batch

    @property
    def completed(self) -> bool:
        return self.status == "completed"


@dataclass
class FleetReport:
    """Everything one serve run produced: outcomes, metrics, cache counters."""

    policy: str
    outcomes: list[ServedRequest]
    metrics: dict
    cache: dict
    cost_model_s: dict
    wall_time_s: float = 0.0
    workers: int = 1
    execution: str = "virtual"

    @property
    def fleet(self) -> dict:
        return self.metrics["fleet"]

    @property
    def completed(self) -> int:
        return self.fleet["completed"]

    @property
    def shed(self) -> int:
        return self.fleet["shed"]

    def latency_ms(self, percentile: str = "p99") -> float:
        return self.fleet["latency_ms"][percentile]

    def to_dict(self) -> dict:
        """JSON-serializable view (outcomes elided — they carry arrays)."""
        return {
            "policy": self.policy,
            "workers": self.workers,
            "execution": self.execution,
            "metrics": self.metrics,
            "cache": self.cache,
            "cost_model_s": self.cost_model_s,
            "wall_time_s": self.wall_time_s,
        }


class FleetServer:
    """Serve a multi-model request stream with dynamic batching + admission."""

    def __init__(self, fleet: Sequence[str], *,
                 batch_size: int = 8,
                 image_size: int | None = None,
                 policy: BatchingPolicy | None = None,
                 admission: AdmissionPolicy | None = None,
                 cache_capacity: int | None = None,
                 compile_kwargs: dict | None = None,
                 compile_config: CompileConfig | None = None,
                 artifact_dir=None,
                 compute_time_fn: Callable[[str, int], float] | None = None,
                 warm: bool = True,
                 workers: int = 1,
                 shard_workers: int = 1,
                 execution: str = "virtual",
                 disk_max_bytes: int | None = None) -> None:
        fleet = list(fleet)
        if not fleet:
            raise ValueError("fleet must name at least one registry model")
        unknown = [name for name in fleet if name not in MODEL_REGISTRY]
        if unknown:
            raise ValueError(f"unknown fleet models {unknown}; "
                             f"available: {available_models()}")
        if len(set(fleet)) != len(fleet):
            raise ValueError(f"fleet has duplicate model names: {fleet}")
        self.fleet = fleet
        self.policy = policy if policy is not None else BatchingPolicy.dynamic(
            max_batch=batch_size, max_wait_s=5e-3)
        if self.policy.max_batch > batch_size:
            raise ValueError(f"policy max_batch {self.policy.max_batch} exceeds the "
                             f"engine batch size {batch_size}")
        self.batch_size = batch_size

        # One typed compile config drives every cache compile (and the disk
        # tier's content address); legacy flat compile_kwargs are routed in.
        config = (compile_config if compile_config is not None
                  else CompileConfig.create(**dict(compile_kwargs or {})))
        config = config.with_overrides(batch_size=batch_size)
        if image_size is not None:
            config = config.with_overrides(image_size=image_size)
        self.compile_config = config
        if execution not in ("virtual", "real"):
            raise ValueError(f"execution must be 'virtual' or 'real', "
                             f"got {execution!r}")
        self.execution = execution
        self.cache = PlanCache(
            cache_capacity if cache_capacity is not None else len(fleet),
            compile_fn=lambda name: deploy_compile(name, config),
            artifact_dir=artifact_dir,
            key_fn=lambda name: config_key(name, config),
            disk_max_bytes=disk_max_bytes,
        )
        self.cost_model = EwmaCostModel()
        self.admission = AdmissionController(
            admission if admission is not None else AdmissionPolicy(), self.cost_model)
        self.compute_time_fn = compute_time_fn
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if shard_workers < 1:
            raise ValueError(f"shard_workers must be >= 1, got {shard_workers}")
        self.workers = int(workers)
        self.shard_workers = int(shard_workers)
        #: per-model sharded executors; a PlanCache recompile produces a new
        #: plan object, which invalidates the old executor (identity check on
        #: the live plan the runner holds — never on a freeable id())
        self._sharded: dict[str, ShardedRunner] = {}
        if warm:
            self.warm_up()

    def warm_up(self) -> None:
        """Compile the fleet and prime the cost model with one batch cost.

        Models beyond the cache capacity are compiled and immediately LRU
        evicted (their first mid-stream request recompiles), but the cost
        model keeps every model's batch cost either way.  With a
        deterministic ``compute_time_fn`` the prime comes from it too, so
        admission predictions stay machine-independent; otherwise one probe
        batch is measured.
        """
        for name in self.fleet:
            compiled = self.cache.get(name)
            if self.compute_time_fn is not None:
                self.cost_model.prime(name, self.compute_time_fn(name, self.batch_size))
                continue
            engine = self._engine(name, compiled)
            probe = np.zeros(compiled.engine.input_shape)
            start = time.perf_counter()
            engine.run(probe)
            self.cost_model.prime(name, time.perf_counter() - start)

    def _engine(self, name: str, compiled):
        """The executor for one compiled model: plain or sharded (shard_workers>1)."""
        if self.shard_workers <= 1:
            return compiled.engine
        runner = self._sharded.get(name)
        if runner is not None and runner.plan is compiled.plan:
            return runner
        if runner is not None:
            runner.close()
        runner = ShardedRunner(compiled.plan, compiled.engine.input_shape,
                               workers=self.shard_workers,
                               accumulate=compiled.engine.accumulate)
        self._sharded[name] = runner
        return runner

    def close(self) -> None:
        """Release the sharded executors' thread pools (no-op for shard_workers=1)."""
        for runner in self._sharded.values():
            runner.close()
        self._sharded.clear()

    @property
    def input_shapes(self) -> dict[str, tuple[int, int, int]]:
        """Per-model request image shapes the fleet engines expect."""
        shapes = {}
        for name in self.fleet:
            compiled = self.cache.peek(name)   # no LRU / hit-counter side effects
            if compiled is not None:
                shapes[name] = tuple(compiled.engine.input_shape[1:])
            else:
                shapes.update(fleet_input_shapes(
                    [name], self.compile_config.image_size))
        return shapes

    # ------------------------------------------------------------------ #
    def serve(self, requests: Sequence[Request]) -> FleetReport:
        """Serve a request stream.

        ``execution="virtual"`` (default) runs the discrete-event loop on
        the virtual clock; ``execution="real"`` drives the dispatch workers
        as an actual thread pool over per-model tape engines and reports
        measured wall-clock throughput/latency (see :meth:`_serve_real`).
        Output codes per request are bit-identical between the two modes.
        """
        reqs = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        seen_ids: set[int] = set()
        for req in reqs:
            if req.model not in self.fleet:
                raise ValueError(f"request {req.request_id} targets {req.model!r}, "
                                 f"which is not in the fleet {self.fleet}")
            if req.arrival_s < 0:
                raise ValueError(f"request {req.request_id} has negative arrival time")
            if req.request_id in seen_ids:
                raise ValueError(f"duplicate request_id {req.request_id}; outcomes are "
                                 f"keyed by id, so ids must be unique per stream")
            seen_ids.add(req.request_id)
        if self.execution == "real":
            return self._serve_real(reqs)
        return self._serve_virtual(reqs)

    def _serve_virtual(self, reqs: list[Request]) -> FleetReport:
        """The discrete-event loop over a pre-validated, sorted stream."""
        wall_start = time.perf_counter()
        pending = {m: 0 for m in self.fleet}
        for req in reqs:
            pending[req.model] += 1
        queues = {m: DynamicBatcher(m, self.policy) for m in self.fleet}
        metrics = MetricsCollector(self.fleet)
        outcomes: dict[int, ServedRequest] = {}

        # N dispatch workers on the virtual clock; a batch launches on the
        # earliest-free worker.  Each model additionally serializes on its
        # own engine (one resident engine per model), so concurrency is
        # *across* models — exactly what a real fleet with one engine
        # instance per model can overlap.
        worker_free = [0.0] * self.workers
        model_free = {m: 0.0 for m in self.fleet}
        last_event = 0.0
        batch_index = 0
        i, n = 0, len(reqs)
        while True:
            free_slot = min(worker_free)
            # Earliest possible batch launch across the fleet.
            best: tuple[float, float, str] | None = None
            for model in self.fleet:
                queue = queues[model]
                ready = queue.ready_time(pending[model])
                if ready == math.inf:
                    continue
                key = (max(ready, free_slot, model_free[model]),
                       queue.head_arrival_s, model)
                if best is None or key < best:
                    best = key

            next_arrival = reqs[i].arrival_s if i < n else math.inf
            if i < n and (best is None or next_arrival <= best[0]):
                req = reqs[i]
                i += 1
                pending[req.model] -= 1
                last_event = max(last_event, req.arrival_s)
                metrics.record_arrival(req.model, req.arrival_s)
                # The request cannot start before a worker is free AND its
                # model's engine is free (one engine per model).
                earliest_start = max(free_slot, model_free[req.model])
                decision = self.admission.consider(req, req.arrival_s,
                                                   earliest_start,
                                                   queues, self.policy)
                if decision.admitted:
                    queues[req.model].push(req)
                else:
                    metrics.record_shed(req.model, decision.reason)
                    outcomes[req.request_id] = ServedRequest(
                        request_id=req.request_id, model=req.model, status="shed",
                        shed_reason=decision.reason)
                metrics.record_queue_depth(req.arrival_s,
                                           sum(q.depth for q in queues.values()))
                continue
            if best is None:
                break

            # Launch the chosen model's batch on the earliest-free worker.
            launch_t, _, model = best
            worker_index = worker_free.index(free_slot)
            batch = queues[model].pop_batch()
            fill = len(batch)
            compiled = self.cache.get(model)
            engine = self._engine(model, compiled)
            images = np.stack([r.image for r in batch])
            start = time.perf_counter()
            output = engine.run_partial(images)
            measured = time.perf_counter() - start
            compute = (self.compute_time_fn(model, fill)
                       if self.compute_time_fn is not None else measured)
            self.cost_model.observe(model, compute)
            finish = launch_t + compute
            worker_free[worker_index] = finish
            model_free[model] = finish
            last_event = max(last_event, finish)
            for offset, req in enumerate(batch):
                latency = finish - req.arrival_s
                metrics.record_completion(model, latency, req.deadline_s)
                outcomes[req.request_id] = ServedRequest(
                    request_id=req.request_id, model=model, status="completed",
                    latency_s=latency, codes=output.codes[offset].copy(),
                    batch_index=batch_index, batch_fill=fill,
                    worker_index=worker_index)
            # Padding is relative to the engine's bound batch shape: even a
            # "full" policy batch below batch_size pays padded compute rows.
            metrics.record_batch(model, fill, self.batch_size, compute)
            metrics.record_queue_depth(finish, sum(q.depth for q in queues.values()))
            batch_index += 1

        report = metrics.report(makespan_s=last_event, workers=self.workers)
        return FleetReport(
            policy=self.policy.describe(),
            outcomes=[outcomes[rid] for rid in sorted(outcomes)],
            metrics=report,
            cache=self.cache.stats(),
            cost_model_s=self.cost_model.to_dict(),
            wall_time_s=time.perf_counter() - wall_start,
            workers=self.workers,
            execution="virtual",
        )

    # ------------------------------------------------------------------ #
    def _serve_real(self, reqs: list[Request]) -> FleetReport:
        """Wall-clock serving: N dispatch workers on a real thread pool.

        Ingestion is a deterministic single-threaded pass — every request
        runs through admission control (using real queue depths and the
        EWMA cost model) and lands in its model's queue before any worker
        starts, so the set of shed requests and every output code are
        reproducible run to run.  The dispatch workers then drain the
        queues concurrently: each worker claims the deepest idle model's
        queue, pops up to ``max_batch`` requests (packing **several** policy
        batches into one tape execution when the backlog allows — megabatch
        coalescing), and runs the model's engine outside the scheduler lock.
        NumPy's BLAS releases the GIL, so different models' batches overlap
        on real cores; each model serializes on its own engine, matching the
        virtual mode's one-engine-per-model semantics.

        Latency is measured wall time from serve start (the stream is
        offered as a flood: scenario arrival offsets shape admission order
        and the offered-rps metric, not the wall clock), and throughput is
        completed requests over the measured makespan.  Batch composition
        under thread scheduling is nondeterministic, but every plan op is
        per-sample independent, so per-request output codes are not.
        """
        wall_start = time.perf_counter()
        metrics = MetricsCollector(self.fleet)
        outcomes: dict[int, ServedRequest] = {}
        queues = {m: DynamicBatcher(m, self.policy) for m in self.fleet}

        # Deterministic admission pass (flood ingestion).
        for req in reqs:
            metrics.record_arrival(req.model, req.arrival_s)
            decision = self.admission.consider(req, req.arrival_s, req.arrival_s,
                                               queues, self.policy)
            if decision.admitted:
                queues[req.model].push(req)
            else:
                metrics.record_shed(req.model, decision.reason)
                outcomes[req.request_id] = ServedRequest(
                    request_id=req.request_id, model=req.model, status="shed",
                    shed_reason=decision.reason)
            # Ingestion happens before the wall clock starts; stamping the
            # samples at t=0 keeps the depth timeline on one (wall) clock.
            metrics.record_queue_depth(0.0, sum(q.depth for q in queues.values()))

        # Pin the admitted models' engines resident for the drain (the LRU
        # cache is not touched from worker threads).
        engines = {}
        for model in self.fleet:
            if queues[model].depth:
                compiled = self.cache.get(model)
                engines[model] = self._engine(model, compiled)

        lock = threading.Lock()
        work_ready = threading.Condition(lock)
        model_busy = {m: False for m in self.fleet}
        state = {"remaining": sum(q.depth for q in queues.values()),
                 "batch_index": 0}
        serve_start = time.perf_counter()

        def pop_work():
            """Claim the deepest idle queue; returns (model, policy batches).

            Under the full-batch policy a short queue is a final partial
            batch (the flood has fully arrived), so it flushes rather than
            waits — matching the virtual loop's end-of-stream semantics.
            """
            best_model = None
            for model in self.fleet:
                queue = queues[model]
                if model_busy[model] or not queue.depth:
                    continue
                if best_model is None or queue.depth > queues[best_model].depth:
                    best_model = model
            if best_model is None:
                return None
            queue = queues[best_model]
            engine = engines[best_model]
            groups = [queue.pop_batch()]
            total = len(groups[0])
            # Megabatch: pack further policy batches into the same tape pass.
            while queue.depth and total + min(queue.depth, self.policy.max_batch) \
                    <= engine.batch_size:
                batch = queue.pop_batch()
                groups.append(batch)
                total += len(batch)
            model_busy[best_model] = True
            state["remaining"] -= total
            return best_model, groups

        failures: list[BaseException] = []

        def worker(worker_index: int) -> None:
            while True:
                with work_ready:
                    claim = pop_work()
                    while claim is None:
                        if state["remaining"] == 0 or failures:
                            return
                        work_ready.wait()
                        claim = pop_work()
                model, groups = claim
                engine = engines[model]
                try:
                    images = [np.stack([r.image for r in batch])
                              for batch in groups]
                    start = time.perf_counter()
                    group_outputs, executions = run_partial_groups(engine, images)
                    elapsed = time.perf_counter() - start
                except BaseException as exc:
                    # A dead worker must not strand the fleet: surface the
                    # failure, release the model, and wake the others so
                    # they can drain or exit.
                    with work_ready:
                        failures.append(exc)
                        model_busy[model] = False
                        work_ready.notify_all()
                    return
                finish_wall = time.perf_counter() - serve_start
                with work_ready:
                    self.cost_model.observe(model, elapsed / max(1, executions))
                    per_batch_s = elapsed / len(groups)
                    if len(groups) > 1:
                        metrics.record_megabatch(model, len(groups))
                    for batch, output in zip(groups, group_outputs):
                        batch_index = state["batch_index"]
                        state["batch_index"] += 1
                        fill = len(batch)
                        metrics.record_batch(model, fill, self.batch_size,
                                             per_batch_s)
                        for offset, req in enumerate(batch):
                            latency = finish_wall
                            metrics.record_completion(model, latency,
                                                      req.deadline_s)
                            outcomes[req.request_id] = ServedRequest(
                                request_id=req.request_id, model=model,
                                status="completed", latency_s=latency,
                                codes=output.codes[offset].copy(),
                                batch_index=batch_index, batch_fill=fill,
                                worker_index=worker_index)
                    metrics.record_queue_depth(
                        finish_wall, sum(q.depth for q in queues.values()))
                    model_busy[model] = False
                    work_ready.notify_all()

        threads = [threading.Thread(target=worker, args=(i,),
                                    name=f"fleet-dispatch-{i}", daemon=True)
                   for i in range(self.workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            raise failures[0]
        makespan = time.perf_counter() - serve_start

        report = metrics.report(makespan_s=makespan, workers=self.workers,
                                execution="real")
        return FleetReport(
            policy=self.policy.describe(),
            outcomes=[outcomes[rid] for rid in sorted(outcomes)],
            metrics=report,
            cache=self.cache.stats(),
            cost_model_s=self.cost_model.to_dict(),
            wall_time_s=time.perf_counter() - wall_start,
            workers=self.workers,
            execution="real",
        )
