"""Multi-model fleet server on the engine's virtual clock.

:class:`FleetServer` serves a stream of :class:`~repro.serving.workload.Request`
objects against a fleet of registry models.  Per-model request queues are
scheduled by a :class:`~repro.serving.batcher.BatchingPolicy`, engines come
from a bounded :class:`~repro.serving.cache.PlanCache` (compile-on-demand
through :func:`repro.deploy.compile`, LRU eviction, optional disk-backed
artifact tier), and arrivals pass through
:class:`~repro.serving.admission.AdmissionController` before queueing.

Time is *virtual* by default, following ``BatchedRunner``'s convention: a
batch starts once its queue's launch condition and a worker's availability
allow, and advances the clock by its **measured** compute time (or by a
caller-supplied ``compute_time_fn(model, fill) -> seconds`` for
deterministic simulation — the engine still executes for real so outputs
stay bit-exact).  ``execution="real"`` instead drives the dispatch workers
as an actual thread pool over per-model tape engines and reports measured
wall-clock throughput/latency, with megabatch coalescing of backlogged
policy batches (see :meth:`FleetServer._serve_real`).

Two orthogonal concurrency knobs:

* ``workers=N`` — N dispatch workers on the virtual clock.  Batches for
  *different models* launch concurrently (each model still serializes on
  its own engine); with one worker the server degrades to the strict
  single-worker serialization where batching policy and admission control
  matter most.
* ``shard_workers=M`` — data parallelism inside one batch: every batch is
  split across M per-shard engines on a thread pool (BLAS releases the
  GIL).  Output codes are identical either way.

Real execution picks its **backend**: ``backend="thread"`` (default) drives
the dispatch workers as a thread pool in-process; ``backend="process"``
scales out to N worker *processes* (see
:class:`~repro.serving.procfleet.ProcessFleetBackend`), each hosting
per-process tape engines warmed from ``.rpa`` artifacts, with request
images and output codes moving through ``multiprocessing.shared_memory``
arenas — the pure-int64 kernel lane stops being GIL-bound.  Real execution
also picks its **pacing**: ``"flood"`` (deterministic ingestion, then
drain), ``"open"`` (arrival-paced releases independent of completions) or
``"closed"`` (completion-gated releases); see
:mod:`repro.serving.workload`.

The discrete-event loop interleaves two event kinds in time order: request
arrivals (admission + enqueue) and batch launches (earliest ready queue,
ties broken by oldest queued request then model name).  Arrivals at or
before a launch instant are ingested first so they can join the batch.
"""

from __future__ import annotations

import math
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..deploy import compile as deploy_compile
from ..deploy.artifact import config_key
from ..deploy.config import CompileConfig
from ..engine.parallel import ShardedRunner
from ..faults import (
    BreakerPolicy,
    CircuitBreaker,
    FaultError,
    FaultPlan,
    InjectedFault,
    RetryPolicy,
    WorkerCrashed,
    WorkerTimeout,
)
from ..engine.runner import run_partial_groups
from ..models.registry import MODEL_REGISTRY, available_models
from ..telemetry.trace import (NULL_TRACER, TelemetryConfig, Trace, Tracer,
                               attach_tape_sink)
from .admission import AdmissionController, AdmissionPolicy, EwmaCostModel
from .batcher import BatchingPolicy, DynamicBatcher
from .cache import PlanCache
from .metrics import MetricsCollector
from .workload import ClosedLoopPacer, OpenLoopPacer, Request, fleet_input_shapes

__all__ = ["ServedRequest", "FleetReport", "FleetServer"]

#: modeled virtual-clock cost of *detecting* a crash or task error (a hang
#: instead costs the recv deadline); keeps chaos makespans deterministic
_VIRTUAL_FAULT_DETECT_S = 1e-3


@dataclass(frozen=True)
class ServedRequest:
    """Terminal outcome of one request: completed, shed, or failed.

    ``"failed"`` is the fault plane's terminal state: the request was
    admitted, its batch(es) faulted, and the retry budget (attempts or
    deadline) ran out — ``failure_reason`` names the last fault kind and
    ``retries`` counts the extra attempts that were spent.  Completed
    requests also carry ``retries`` (> 0 when a fault made them run more
    than once before succeeding).
    """

    request_id: int
    model: str
    status: str                          # "completed" | "shed" | "failed"
    latency_s: float | None = None
    codes: np.ndarray | None = None
    shed_reason: str | None = None       # "queue_full" | "slo" | "preempted" | "breaker"
    batch_index: int | None = None
    batch_fill: int | None = None
    worker_index: int | None = None      # dispatch worker that ran the batch
    priority: int = 0
    #: wall-clock offset (s from serve start) the request was offered at —
    #: set by paced real serving, ``None`` on the virtual clock and floods
    release_s: float | None = None
    #: extra executions spent on this request beyond the first attempt
    retries: int = 0
    #: fault kind that terminated a ``"failed"`` request
    failure_reason: str | None = None

    @property
    def completed(self) -> bool:
        return self.status == "completed"

    @property
    def failed(self) -> bool:
        return self.status == "failed"


@dataclass
class FleetReport:
    """Everything one serve run produced: outcomes, metrics, cache counters."""

    policy: str
    outcomes: list[ServedRequest]
    metrics: dict
    cache: dict
    cost_model_s: dict
    wall_time_s: float = 0.0
    workers: int = 1
    execution: str = "virtual"
    backend: str = "event-loop"          # "event-loop" | "thread" | "process"
    pacing: str = "virtual"              # "virtual" | "flood" | "open" | "closed"
    #: request-span trace when the run was served with telemetry enabled
    trace: Trace | None = None

    @property
    def fleet(self) -> dict:
        return self.metrics["fleet"]

    @property
    def faults(self) -> dict | None:
        """Fault-plane block (injection, retries, breaker, supervisor) when
        the run was served with any resilience feature active."""
        return self.metrics.get("faults")

    @property
    def completed(self) -> int:
        return self.fleet["completed"]

    @property
    def shed(self) -> int:
        return self.fleet["shed"]

    def latency_ms(self, percentile: str = "p99") -> float:
        return self.fleet["latency_ms"][percentile]

    def to_dict(self) -> dict:
        """JSON-serializable view (outcomes and trace elided — use
        :meth:`save_trace` for the trace)."""
        return {
            "policy": self.policy,
            "workers": self.workers,
            "execution": self.execution,
            "backend": self.backend,
            "pacing": self.pacing,
            "metrics": self.metrics,
            "cache": self.cache,
            "cost_model_s": self.cost_model_s,
            "wall_time_s": self.wall_time_s,
        }

    def save_trace(self, path) -> Path:
        """Write the run's Chrome ``trace_event`` JSON (Perfetto-loadable)."""
        if self.trace is None:
            raise ValueError(
                "this report carries no trace; serve with "
                "telemetry=TelemetryConfig(sample_rate=...) to record one")
        return self.trace.save(path)

    def prometheus(self, namespace: str = "repro") -> str:
        """Prometheus text exposition of the run's metrics."""
        from ..telemetry.export import prometheus_text
        return prometheus_text(self.metrics, namespace=namespace)


class FleetServer:
    """Serve a multi-model request stream with dynamic batching + admission."""

    def __init__(self, fleet: Sequence[str], *,
                 batch_size: int = 8,
                 image_size: int | None = None,
                 policy: BatchingPolicy | None = None,
                 admission: AdmissionPolicy | None = None,
                 cache_capacity: int | None = None,
                 compile_kwargs: dict | None = None,
                 compile_config: CompileConfig | None = None,
                 artifact_dir=None,
                 compute_time_fn: Callable[[str, int], float] | None = None,
                 warm: bool = True,
                 workers: int = 1,
                 shard_workers: int = 1,
                 execution: str = "virtual",
                 backend: str = "thread",
                 mp_context: str = "spawn",
                 disk_max_bytes: int | None = None,
                 telemetry: TelemetryConfig | None = None,
                 faults: FaultPlan | None = None,
                 retry: RetryPolicy | None = None,
                 breaker: BreakerPolicy | None = None) -> None:
        fleet = list(fleet)
        if not fleet:
            raise ValueError("fleet must name at least one registry model")
        unknown = [name for name in fleet if name not in MODEL_REGISTRY]
        if unknown:
            raise ValueError(f"unknown fleet models {unknown}; "
                             f"available: {available_models()}")
        if len(set(fleet)) != len(fleet):
            raise ValueError(f"fleet has duplicate model names: {fleet}")
        self.fleet = fleet
        self.policy = policy if policy is not None else BatchingPolicy.dynamic(
            max_batch=batch_size, max_wait_s=5e-3)
        if self.policy.max_batch > batch_size:
            raise ValueError(f"policy max_batch {self.policy.max_batch} exceeds the "
                             f"engine batch size {batch_size}")
        self.batch_size = batch_size

        # One typed compile config drives every cache compile (and the disk
        # tier's content address); legacy flat compile_kwargs are routed in.
        config = (compile_config if compile_config is not None
                  else CompileConfig.create(**dict(compile_kwargs or {})))
        config = config.with_overrides(batch_size=batch_size)
        if image_size is not None:
            config = config.with_overrides(image_size=image_size)
        self.compile_config = config
        if execution not in ("virtual", "real"):
            raise ValueError(f"execution must be 'virtual' or 'real', "
                             f"got {execution!r}")
        if backend not in ("thread", "process"):
            raise ValueError(f"backend must be 'thread' or 'process', "
                             f"got {backend!r}")
        if backend == "process" and execution != "real":
            raise ValueError("backend='process' requires execution='real' "
                             "(the virtual clock runs in-process)")
        self.execution = execution
        self.backend = backend
        self.mp_context = mp_context
        self.cache = PlanCache(
            cache_capacity if cache_capacity is not None else len(fleet),
            compile_fn=lambda name: deploy_compile(name, config),
            artifact_dir=artifact_dir,
            key_fn=lambda name: config_key(name, config),
            disk_max_bytes=disk_max_bytes,
        )
        self.cost_model = EwmaCostModel()
        self.admission = AdmissionController(
            admission if admission is not None else AdmissionPolicy(), self.cost_model)
        self.compute_time_fn = compute_time_fn
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if shard_workers < 1:
            raise ValueError(f"shard_workers must be >= 1, got {shard_workers}")
        if backend == "process" and shard_workers > 1:
            raise ValueError("backend='process' already parallelizes across "
                             "processes; shard_workers must be 1")
        if telemetry is not None and not isinstance(telemetry, TelemetryConfig):
            raise TypeError(f"telemetry must be a TelemetryConfig or None, "
                            f"got {type(telemetry).__name__}")
        self.telemetry = telemetry
        if faults is not None and not isinstance(faults, FaultPlan):
            raise TypeError(f"faults must be a FaultPlan or None, "
                            f"got {type(faults).__name__}")
        if retry is not None and not isinstance(retry, RetryPolicy):
            raise TypeError(f"retry must be a RetryPolicy or None, "
                            f"got {type(retry).__name__}")
        if breaker is not None and not isinstance(breaker, BreakerPolicy):
            raise TypeError(f"breaker must be a BreakerPolicy or None, "
                            f"got {type(breaker).__name__}")
        self.faults = faults
        self.retry = retry
        self.breaker = breaker
        self.workers = int(workers)
        self.shard_workers = int(shard_workers)
        #: per-model sharded executors; a PlanCache recompile produces a new
        #: plan object, which invalidates the old executor (identity check on
        #: the live plan the runner holds — never on a freeable id())
        self._sharded: dict[str, ShardedRunner] = {}
        if warm:
            self.warm_up()

    def warm_up(self) -> None:
        """Compile the fleet and prime the cost model with one batch cost.

        Models beyond the cache capacity are compiled and immediately LRU
        evicted (their first mid-stream request recompiles), but the cost
        model keeps every model's batch cost either way.  With a
        deterministic ``compute_time_fn`` the prime comes from it too, so
        admission predictions stay machine-independent; otherwise one probe
        batch is measured.
        """
        for name in self.fleet:
            compiled = self.cache.get(name)
            if self.compute_time_fn is not None:
                self.cost_model.prime(name, self.compute_time_fn(name, self.batch_size))
                continue
            engine = self._engine(name, compiled)
            probe = np.zeros(compiled.engine.input_shape)
            start = time.perf_counter()
            engine.run(probe)
            self.cost_model.prime(name, time.perf_counter() - start)

    def _engine(self, name: str, compiled):
        """The executor for one compiled model: plain or sharded (shard_workers>1)."""
        if self.shard_workers <= 1:
            return compiled.engine
        runner = self._sharded.get(name)
        if runner is not None and runner.plan is compiled.plan:
            return runner
        if runner is not None:
            runner.close()
        runner = ShardedRunner(compiled.plan, compiled.engine.input_shape,
                               workers=self.shard_workers,
                               accumulate=compiled.engine.accumulate)
        self._sharded[name] = runner
        return runner

    @staticmethod
    def _tape_of(engine):
        """The engine's compiled TapeProgram, or None when it has none
        (sharded runners and non-tape modes are served without tape spans)."""
        tape = getattr(engine, "tape", None)
        if tape is None and getattr(engine, "mode", None) == "tape":
            ensure = getattr(engine, "_ensure_tape", None)
            if ensure is not None:
                tape = ensure()
        return tape

    def close(self) -> None:
        """Release the sharded executors' thread pools (no-op for shard_workers=1)."""
        for runner in self._sharded.values():
            runner.close()
        self._sharded.clear()

    @property
    def input_shapes(self) -> dict[str, tuple[int, int, int]]:
        """Per-model request image shapes the fleet engines expect."""
        shapes = {}
        for name in self.fleet:
            compiled = self.cache.peek(name)   # no LRU / hit-counter side effects
            if compiled is not None:
                shapes[name] = tuple(compiled.engine.input_shape[1:])
            else:
                shapes.update(fleet_input_shapes(
                    [name], self.compile_config.image_size))
        return shapes

    # ------------------------------------------------------------------ #
    def serve(self, requests: Sequence[Request], *,
              pacing: object = None,
              time_scale: float = 1.0,
              closed_concurrency: int | None = None,
              telemetry: TelemetryConfig | None = None,
              faults: FaultPlan | None = None,
              retry: RetryPolicy | None = None,
              breaker: BreakerPolicy | None = None) -> FleetReport:
        """Serve a request stream.

        ``execution="virtual"`` (default) runs the discrete-event loop on
        the virtual clock; ``execution="real"`` drives the dispatch workers
        as an actual thread pool (``backend="thread"``) or worker-process
        fleet (``backend="process"``) over per-model tape engines and
        reports measured wall-clock throughput/latency (see
        :meth:`_serve_real`).  Output codes per request are bit-identical
        across all modes.

        ``pacing`` selects how real execution offers the stream to the
        server: ``"flood"`` (default — deterministic ingestion, then
        concurrent drain), ``"open"`` (arrival-paced on the wall clock,
        independent of completions), ``"closed"`` (completion-gated, at
        most ``closed_concurrency`` in flight), or an explicit pacer
        instance from :mod:`repro.serving.workload`.  ``time_scale``
        stretches the scenario clock for open-loop pacing.  The virtual
        loop is open-loop by construction and accepts only flood pacing.

        ``telemetry`` overrides the server's configured
        :class:`~repro.telemetry.TelemetryConfig` for this run; a config
        with ``sample_rate > 0`` records request spans (admission,
        queueing, batch execution) and attaches the resulting
        :class:`~repro.telemetry.Trace` to :attr:`FleetReport.trace`.

        ``faults`` / ``retry`` / ``breaker`` override the server's
        configured fault plane for this run (see :mod:`repro.faults`): a
        :class:`~repro.faults.FaultPlan` injects a deterministic failure
        schedule, a :class:`~repro.faults.RetryPolicy` turns batch faults
        into bounded retries (without one, fault errors propagate), and a
        :class:`~repro.faults.BreakerPolicy` sheds fast into sick models
        (shed reason ``"breaker"``).  The report's ``metrics["faults"]``
        block summarizes what happened.
        """
        reqs = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        seen_ids: set[int] = set()
        for req in reqs:
            if req.model not in self.fleet:
                raise ValueError(f"request {req.request_id} targets {req.model!r}, "
                                 f"which is not in the fleet {self.fleet}")
            if req.arrival_s < 0:
                raise ValueError(f"request {req.request_id} has negative arrival time")
            if req.request_id in seen_ids:
                raise ValueError(f"duplicate request_id {req.request_id}; outcomes are "
                                 f"keyed by id, so ids must be unique per stream")
            seen_ids.add(req.request_id)
        pacer, pacing_name = self._make_pacer(reqs, pacing, time_scale,
                                              closed_concurrency)
        config = telemetry if telemetry is not None else self.telemetry
        if config is not None and not isinstance(config, TelemetryConfig):
            raise TypeError(f"telemetry must be a TelemetryConfig or None, "
                            f"got {type(config).__name__}")
        tracer = (Tracer(config, clock="wall" if self.execution == "real"
                         else "virtual")
                  if config is not None and config.enabled else NULL_TRACER)
        plan = faults if faults is not None else self.faults
        retry_policy = retry if retry is not None else self.retry
        breaker_policy = breaker if breaker is not None else self.breaker
        if plan is not None and not isinstance(plan, FaultPlan):
            raise TypeError(f"faults must be a FaultPlan or None, "
                            f"got {type(plan).__name__}")
        if retry_policy is not None and not isinstance(retry_policy, RetryPolicy):
            raise TypeError(f"retry must be a RetryPolicy or None, "
                            f"got {type(retry_policy).__name__}")
        if breaker_policy is not None and not isinstance(breaker_policy,
                                                         BreakerPolicy):
            raise TypeError(f"breaker must be a BreakerPolicy or None, "
                            f"got {type(breaker_policy).__name__}")
        # The breaker state machine is per-run so reports stay self-contained.
        breaker_rt = (CircuitBreaker(breaker_policy)
                      if breaker_policy is not None else None)
        corrupted = (self._apply_artifact_faults(plan)
                     if plan is not None else {})
        injector = plan.injector() if plan is not None else None
        if self.execution == "real":
            return self._serve_real(reqs, pacer=pacer, pacing_name=pacing_name,
                                    tracer=tracer, telemetry=config,
                                    plan=plan, injector=injector,
                                    retry=retry_policy, breaker=breaker_rt,
                                    corrupted=corrupted)
        if pacer is not None:
            raise ValueError(f"pacing={pacing_name!r} requires execution='real'; "
                             f"the virtual discrete-event loop paces arrivals "
                             f"on its own clock (open-loop by construction)")
        return self._serve_virtual(reqs, tracer=tracer, telemetry=config,
                                   plan=plan, injector=injector,
                                   retry=retry_policy, breaker=breaker_rt,
                                   corrupted=corrupted)

    def _apply_artifact_faults(self, plan: FaultPlan) -> dict[str, int]:
        """Fire ``artifact_corrupt`` events: torn-write the disk-tier ``.rpa``
        and evict the resident entry, so the next ``cache.get`` exercises the
        quarantine + recompile path.  No disk tier -> nothing to corrupt."""
        corrupted: dict[str, int] = {}
        for event in plan.artifact_events:
            path = self.cache.artifact_path(event.model)
            if path is None or not Path(path).exists():
                continue
            Path(path).write_bytes(b"repro-fault: torn artifact write\x00")
            self.cache.evict(event.model)
            corrupted[event.model] = corrupted.get(event.model, 0) + 1
        return corrupted

    def _make_pacer(self, reqs: list[Request], pacing, time_scale: float,
                    closed_concurrency: int | None):
        """Resolve the ``pacing`` argument into (pacer, name)."""
        if pacing is None or pacing == "flood":
            return None, "flood"
        if isinstance(pacing, str):
            if pacing == "open":
                return OpenLoopPacer(reqs, time_scale=time_scale), "open"
            if pacing == "closed":
                concurrency = (closed_concurrency if closed_concurrency is not None
                               else max(1, self.workers))
                return ClosedLoopPacer(reqs, concurrency=concurrency), "closed"
            raise ValueError(f"pacing must be 'flood', 'open', 'closed' or a "
                             f"pacer instance, got {pacing!r}")
        return pacing, getattr(pacing, "kind", "custom")

    def _serve_virtual(self, reqs: list[Request], tracer=NULL_TRACER,
                       telemetry: TelemetryConfig | None = None,
                       plan: FaultPlan | None = None, injector=None,
                       retry: RetryPolicy | None = None, breaker=None,
                       corrupted: dict | None = None) -> FleetReport:
        """The discrete-event loop over a pre-validated, sorted stream.

        The fault plane runs on the virtual clock: injected failures fail
        the launched batch without an engine pass and advance the clock by
        the modeled detection cost (a ``task_hang`` costs
        ``min(duration_s, retry.task_timeout_s)``, crashes additionally
        hold the worker for the modeled respawn backoff), retries requeue
        per :class:`~repro.faults.RetryPolicy`, and the breaker gates
        arrivals — so a chaos run's outcomes and makespan are exactly
        reproducible, machine-independent numbers.
        """
        wall_start = time.perf_counter()
        pending = {m: 0 for m in self.fleet}
        for req in reqs:
            pending[req.model] += 1
        queues = {m: DynamicBatcher(m, self.policy) for m in self.fleet}
        metrics = MetricsCollector(self.fleet)
        outcomes: dict[int, ServedRequest] = {}
        admission_before = self.admission.stats()
        #: sampled requests still in flight: request_id -> span start (arrival)
        traced: dict[int, float] = {}
        #: fault plane: executions per request, models' consecutive-failure
        #: streaks (drive retry backoff), and modeled supervisor counters
        attempts: dict[int, int] = {}
        retried_ids: set[int] = set()
        fail_streak = {m: 0 for m in self.fleet}
        observed_faults: dict[str, int] = {}
        respawn_s: list[float] = []
        virtual_crashes = virtual_timeouts = 0

        # N dispatch workers on the virtual clock; a batch launches on the
        # earliest-free worker.  Each model additionally serializes on its
        # own engine (one resident engine per model), so concurrency is
        # *across* models — exactly what a real fleet with one engine
        # instance per model can overlap.
        worker_free = [0.0] * self.workers
        model_free = {m: 0.0 for m in self.fleet}
        last_event = 0.0
        batch_index = 0
        i, n = 0, len(reqs)
        while True:
            free_slot = min(worker_free)
            # Earliest possible batch launch across the fleet.
            best: tuple[float, float, str] | None = None
            for model in self.fleet:
                queue = queues[model]
                ready = queue.ready_time(pending[model])
                if ready == math.inf:
                    continue
                key = (max(ready, free_slot, model_free[model]),
                       queue.head_arrival_s, model)
                if best is None or key < best:
                    best = key

            next_arrival = reqs[i].arrival_s if i < n else math.inf
            if i < n and (best is None or next_arrival <= best[0]):
                req = reqs[i]
                i += 1
                pending[req.model] -= 1
                last_event = max(last_event, req.arrival_s)
                metrics.record_arrival(req.model, req.arrival_s)
                if breaker is not None and not breaker.allow(req.model,
                                                             req.arrival_s):
                    # Open breaker: shed fast instead of queueing into a
                    # model that keeps failing.
                    metrics.record_shed(req.model, "breaker",
                                        now=req.arrival_s)
                    outcomes[req.request_id] = ServedRequest(
                        request_id=req.request_id, model=req.model,
                        status="shed", shed_reason="breaker",
                        priority=req.priority)
                    if tracer.enabled and tracer.sampled(req.request_id):
                        tracer.record("request", "request", req.arrival_s,
                                      req.arrival_s,
                                      lane=f"req-{req.request_id}",
                                      trace_id=req.request_id,
                                      args={"status": "shed",
                                            "reason": "breaker",
                                            "model": req.model})
                    metrics.record_queue_depth(
                        req.arrival_s, sum(q.depth for q in queues.values()))
                    continue
                # The request cannot start before a worker is free AND its
                # model's engine is free (one engine per model).
                earliest_start = max(free_slot, model_free[req.model])
                decision = self.admission.consider(req, req.arrival_s,
                                                   earliest_start,
                                                   queues, self.policy)
                req_traced = tracer.enabled and tracer.sampled(req.request_id)
                if req_traced:
                    lane = f"req-{req.request_id}"
                    tracer.record(
                        "admission", "admission", req.arrival_s, req.arrival_s,
                        lane=lane, trace_id=req.request_id,
                        args={"admitted": decision.admitted,
                              "reason": decision.reason,
                              "predicted_ms": (decision.predicted_latency_s * 1e3
                                               if decision.predicted_latency_s
                                               is not None else None)})
                if decision.admitted:
                    for victim in decision.evicted:
                        queues[victim.model].remove(victim)
                        metrics.record_shed(victim.model, "preempted",
                                            now=req.arrival_s)
                        outcomes[victim.request_id] = ServedRequest(
                            request_id=victim.request_id, model=victim.model,
                            status="shed", shed_reason="preempted",
                            priority=victim.priority)
                        start = traced.pop(victim.request_id, None)
                        if start is not None:
                            vlane = f"req-{victim.request_id}"
                            tracer.record("queue", "queue", start, req.arrival_s,
                                          lane=vlane, trace_id=victim.request_id,
                                          args={"outcome": "preempted"})
                            tracer.record("request", "request", start,
                                          req.arrival_s, lane=vlane,
                                          trace_id=victim.request_id,
                                          args={"status": "shed",
                                                "reason": "preempted",
                                                "model": victim.model})
                    queues[req.model].push(req)
                    if req_traced:
                        traced[req.request_id] = req.arrival_s
                else:
                    metrics.record_shed(req.model, decision.reason,
                                        now=req.arrival_s)
                    outcomes[req.request_id] = ServedRequest(
                        request_id=req.request_id, model=req.model, status="shed",
                        shed_reason=decision.reason, priority=req.priority)
                    if req_traced:
                        tracer.record("request", "request", req.arrival_s,
                                      req.arrival_s, lane=lane,
                                      trace_id=req.request_id,
                                      args={"status": "shed",
                                            "reason": decision.reason,
                                            "model": req.model})
                metrics.record_queue_depth(req.arrival_s,
                                           sum(q.depth for q in queues.values()))
                continue
            if best is None:
                break

            # Launch the chosen model's batch on the earliest-free worker.
            launch_t, _, model = best
            worker_index = worker_free.index(free_slot)
            batch = queues[model].pop_batch()
            fill = len(batch)
            event = (injector.poll(worker_index, model)
                     if injector is not None else None)
            if event is not None and event.kind in ("worker_crash",
                                                    "task_hang", "task_error"):
                # Modeled batch failure: no engine pass, no codes.  The
                # clock advances by the detection cost; crashes and hangs
                # also hold the worker for the modeled respawn.
                observed_faults[event.kind] = observed_faults.get(event.kind,
                                                                  0) + 1
                if event.kind == "task_hang":
                    detect = (min(event.duration_s, retry.task_timeout_s)
                              if retry is not None else event.duration_s)
                    virtual_timeouts += 1
                else:
                    detect = _VIRTUAL_FAULT_DETECT_S
                    if event.kind == "worker_crash":
                        virtual_crashes += 1
                finish = launch_t + detect
                recovery = 0.0
                if event.kind in ("worker_crash", "task_hang"):
                    recovery = (retry.respawn_backoff_s
                                if retry is not None else 0.0)
                    respawn_s.append(recovery)
                worker_free[worker_index] = finish + recovery
                fail_streak[model] += 1
                backoff = (retry.attempt_backoff_s(fail_streak[model])
                           if retry is not None else 0.0)
                model_free[model] = finish + backoff
                last_event = max(last_event, finish + recovery)
                if breaker is not None:
                    breaker.record(model, False, finish)
                if tracer.enabled:
                    tracer.record(event.kind, "fault", launch_t, finish,
                                  lane=f"worker-{worker_index}",
                                  args={"model": model, "fill": fill,
                                        "batch_index": batch_index})
                    if recovery:
                        tracer.record("respawn", "fault", finish,
                                      finish + recovery,
                                      lane=f"worker-{worker_index}",
                                      args={"worker": worker_index,
                                            "recovery_s": recovery})
                for req in batch:
                    n_attempts = attempts.get(req.request_id, 0) + 1
                    attempts[req.request_id] = n_attempts
                    if retry is None or retry.exhausted(
                            n_attempts, finish - req.arrival_s):
                        metrics.record_failed(model, event.kind, now=finish)
                        outcomes[req.request_id] = ServedRequest(
                            request_id=req.request_id, model=model,
                            status="failed", failure_reason=event.kind,
                            retries=n_attempts - 1, priority=req.priority,
                            worker_index=worker_index)
                        start_t = traced.pop(req.request_id, None)
                        if start_t is not None:
                            lane = f"req-{req.request_id}"
                            tracer.record("queue", "queue", start_t, launch_t,
                                          lane=lane, trace_id=req.request_id,
                                          args={"model": model})
                            tracer.record("request", "request", start_t,
                                          finish, lane=lane,
                                          trace_id=req.request_id,
                                          args={"status": "failed",
                                                "reason": event.kind,
                                                "model": model})
                    else:
                        queues[model].push(req)
                        metrics.record_retry(model)
                        retried_ids.add(req.request_id)
                metrics.record_queue_depth(finish,
                                           sum(q.depth for q in queues.values()))
                batch_index += 1
                continue
            compiled = self.cache.get(model)
            engine = self._engine(model, compiled)
            images = np.stack([r.image for r in batch])
            batch_traced = tracer.enabled and any(
                r.request_id in traced for r in batch)
            detach = None
            if batch_traced and telemetry is not None and telemetry.tape_spans:
                tape = self._tape_of(engine)
                if tape is not None:
                    # Tape instructions are stamped on the wall clock; remap
                    # them onto the virtual clock relative to the launch.
                    wall0 = time.perf_counter()
                    tape_lane = f"worker-{worker_index}-tape"

                    def emit(name, args, t0, t1, _wall0=wall0,
                             _launch=launch_t, _lane=tape_lane):
                        tracer.record(name, "tape", _launch + (t0 - _wall0),
                                      _launch + (t1 - _wall0), lane=_lane,
                                      args=args)

                    detach = attach_tape_sink(tape, emit)
            try:
                start = time.perf_counter()
                output = engine.run_partial(images)
                measured = time.perf_counter() - start
            finally:
                if detach is not None:
                    detach()
            compute = (self.compute_time_fn(model, fill)
                       if self.compute_time_fn is not None else measured)
            if event is not None and event.kind == "slow_task":
                # Straggler: correct codes, degraded timing.
                observed_faults["slow_task"] = (
                    observed_faults.get("slow_task", 0) + 1)
                compute += event.duration_s
            self.cost_model.observe(model, compute)
            finish = launch_t + compute
            worker_free[worker_index] = finish
            model_free[model] = finish
            last_event = max(last_event, finish)
            fail_streak[model] = 0
            if breaker is not None:
                breaker.record(model, True, finish)
            if batch_traced:
                tracer.record(model, "batch", launch_t, finish,
                              lane=f"worker-{worker_index}",
                              args={"fill": fill, "batch_index": batch_index,
                                    "compute_ms_wall": measured * 1e3})
            for offset, req in enumerate(batch):
                latency = finish - req.arrival_s
                metrics.record_completion(model, latency, req.deadline_s,
                                          now=finish)
                outcomes[req.request_id] = ServedRequest(
                    request_id=req.request_id, model=model, status="completed",
                    latency_s=latency, codes=output.codes[offset].copy(),
                    batch_index=batch_index, batch_fill=fill,
                    worker_index=worker_index, priority=req.priority,
                    retries=attempts.get(req.request_id, 0))
                start_t = traced.pop(req.request_id, None)
                if start_t is not None:
                    lane = f"req-{req.request_id}"
                    tracer.record("queue", "queue", start_t, launch_t, lane=lane,
                                  trace_id=req.request_id, args={"model": model})
                    tracer.record("execute", "execute", launch_t, finish,
                                  lane=lane, trace_id=req.request_id,
                                  args={"model": model, "fill": fill,
                                        "batch_index": batch_index,
                                        "worker": worker_index})
                    tracer.record("request", "request", start_t, finish,
                                  lane=lane, trace_id=req.request_id,
                                  args={"status": "completed", "model": model,
                                        "latency_ms": latency * 1e3})
            # Padding is relative to the engine's bound batch shape: even a
            # "full" policy batch below batch_size pays padded compute rows.
            metrics.record_batch(model, fill, self.batch_size, compute,
                                 now=finish)
            metrics.record_queue_depth(finish, sum(q.depth for q in queues.values()))
            batch_index += 1

        report = metrics.report(
            makespan_s=last_event, workers=self.workers,
            snapshot_interval_s=(telemetry.snapshot_interval_s
                                 if telemetry is not None else None))
        admission_after = self.admission.stats()
        report["admission"] = {key: admission_after[key] - admission_before[key]
                               for key in admission_after}
        for model in self.fleet:
            report["per_model"][model]["queue"] = queues[model].stats()
        if plan is not None or retry is not None or breaker is not None:
            report["faults"] = {
                "plan": plan.to_dict() if plan is not None else None,
                "injected": injector.stats() if injector is not None else None,
                "observed": dict(observed_faults),
                "retried_requests": len(retried_ids),
                "retry_policy": retry.to_dict() if retry is not None else None,
                "breaker": breaker.snapshot() if breaker is not None else None,
                "supervisor": {
                    "crashes": virtual_crashes,
                    "timeouts": virtual_timeouts,
                    "respawns": len(respawn_s),
                    "respawn_s": [round(s, 6) for s in respawn_s],
                },
                "degraded_models": [],
                "dead_workers": [],
                "artifacts_corrupted": dict(corrupted or {}),
            }
        trace = tracer.finish({
            "execution": "virtual", "backend": "event-loop",
            "pacing": "virtual", "workers": self.workers,
            "sample_rate": telemetry.sample_rate if telemetry else 0.0})
        return FleetReport(
            policy=self.policy.describe(),
            outcomes=[outcomes[rid] for rid in sorted(outcomes)],
            metrics=report,
            cache=self.cache.stats(),
            cost_model_s=self.cost_model.to_dict(),
            wall_time_s=time.perf_counter() - wall_start,
            workers=self.workers,
            execution="virtual",
            trace=trace,
        )

    # ------------------------------------------------------------------ #
    def _export_artifacts(self, models: list[str]):
        """Persist ``.rpa`` artifacts for worker processes to warm from.

        With a disk tier configured the cache's content-addressed paths are
        reused (and populated if missing); otherwise artifacts go to a
        temporary directory that lives as long as the returned handle.
        """
        paths: dict[str, str] = {}
        tmpdir: tempfile.TemporaryDirectory | None = None
        for name in models:
            compiled = self.cache.get(name)
            path = self.cache.artifact_path(name)
            if path is None:
                if tmpdir is None:
                    tmpdir = tempfile.TemporaryDirectory(prefix="repro-fleet-")
                path = Path(tmpdir.name) / f"{name}.rpa"
            if not Path(path).exists():
                compiled.save(path)
            paths[name] = str(path)
        return paths, tmpdir

    def _serve_real(self, reqs: list[Request], pacer=None,
                    pacing_name: str = "flood", tracer=NULL_TRACER,
                    telemetry: TelemetryConfig | None = None,
                    plan: FaultPlan | None = None, injector=None,
                    retry: RetryPolicy | None = None, breaker=None,
                    corrupted: dict | None = None) -> FleetReport:
        """Wall-clock serving: N dispatch workers draining real queues.

        **Faults & supervision.** With ``retry`` set the dispatch workers
        are supervised: a :class:`~repro.faults.FaultError` from a dispatch
        (a crashed or hung worker process, an injected task error) fails the
        claimed batches, requeues their requests up to the retry budget,
        backs the model off, respawns crashed process workers, and — after
        ``retry.degrade_after`` consecutive failures on one model — degrades
        that model to the in-process thread path.  Without ``retry`` the
        typed fault error propagates to the caller unchanged.

        **Ingestion.** Flood pacing (default) is a deterministic
        single-threaded pass — every request runs through admission control
        (using real queue depths and the EWMA cost model) and lands in its
        model's queue before any worker starts, so the set of shed requests
        and every output code are reproducible run to run.  Open/closed
        pacing instead releases requests on the wall clock from a dedicated
        ingestion thread (see :mod:`repro.serving.workload`); admission then
        sees genuinely time-varying queue depths, and latency is measured
        from each request's release instant.

        **Drain.** The dispatch workers drain the queues concurrently: each
        worker claims the deepest idle model's queue, pops up to
        ``max_batch`` requests (packing **several** policy batches into one
        tape execution when the backlog allows — megabatch coalescing), and
        runs the model's engine outside the scheduler lock.  With
        ``backend="thread"`` NumPy's BLAS releases the GIL, so different
        models' batches overlap on real cores; with ``backend="process"``
        each dispatch worker proxies its claims to a dedicated worker
        *process* hosting its own tape engines (images and codes cross via
        shared memory), so even the pure-Python tape dispatch overlaps.
        Each model serializes on its own engine either way, matching the
        virtual mode's one-engine-per-model semantics.  Batch composition
        under thread/process scheduling is nondeterministic, but every plan
        op is per-sample independent, so per-request output codes are not.
        """
        wall_start = time.perf_counter()
        # Trace clock origin: flood ingestion and backend spawn happen before
        # serve_start, so spans measure from here (latency and makespan keep
        # measuring from serve_start — their semantics are unchanged).
        serve_origin = wall_start

        def now_s() -> float:
            return time.perf_counter() - serve_origin

        metrics = MetricsCollector(self.fleet)
        outcomes: dict[int, ServedRequest] = {}
        queues = {m: DynamicBatcher(m, self.policy) for m in self.fleet}
        admission_before = self.admission.stats()
        #: sampled requests still in flight: request_id -> admission stamp
        #: (trace clock); guarded by the scheduler lock like the queues
        traced: dict[int, float] = {}

        lock = threading.Lock()
        work_ready = threading.Condition(lock)
        model_busy = {m: False for m in self.fleet}
        state = {"remaining": 0, "batch_index": 0, "ingesting": pacer is not None}
        release: dict[int, float] = {}
        failures: list[BaseException] = []
        #: fault plane (guarded by the scheduler lock unless noted)
        supervised = retry is not None
        attempts: dict[int, int] = {}
        retried_ids: set[int] = set()
        fail_streak = {m: 0 for m in self.fleet}
        observed_faults: dict[str, int] = {}
        #: model -> wall deadline (perf_counter) before which pop_work skips it
        model_hold: dict[str, float] = {}
        degraded_models: set[str] = set()
        dead_workers: set[int] = set()

        def admit(req: Request, now: float, depth_t: float,
                  signal: list[int]) -> None:
            """One admission decision under the scheduler lock.

            Shed/preempted request ids are appended to ``signal`` so the
            caller can notify the pacer *after* releasing the lock.
            """
            metrics.record_arrival(req.model, req.arrival_s)
            if breaker is not None and not breaker.allow(req.model, now_s()):
                # Open breaker: shed fast instead of queueing into a model
                # that keeps failing.
                metrics.record_shed(req.model, "breaker", now=depth_t)
                outcomes[req.request_id] = ServedRequest(
                    request_id=req.request_id, model=req.model, status="shed",
                    shed_reason="breaker", priority=req.priority,
                    release_s=release.get(req.request_id))
                signal.append(req.request_id)
                if tracer.enabled and tracer.sampled(req.request_id):
                    span_t = now_s()
                    tracer.record("request", "request", span_t, span_t,
                                  lane=f"req-{req.request_id}",
                                  trace_id=req.request_id,
                                  args={"status": "shed", "reason": "breaker",
                                        "model": req.model})
                metrics.record_queue_depth(depth_t,
                                           sum(q.depth for q in queues.values()))
                return
            decision = self.admission.consider(req, now, now, queues, self.policy)
            req_traced = tracer.enabled and tracer.sampled(req.request_id)
            span_t = now_s() if tracer.enabled else 0.0
            if decision.admitted:
                for victim in decision.evicted:
                    queues[victim.model].remove(victim)
                    state["remaining"] -= 1
                    metrics.record_shed(victim.model, "preempted", now=depth_t)
                    outcomes[victim.request_id] = ServedRequest(
                        request_id=victim.request_id, model=victim.model,
                        status="shed", shed_reason="preempted",
                        priority=victim.priority,
                        release_s=release.get(victim.request_id))
                    signal.append(victim.request_id)
                    start = traced.pop(victim.request_id, None)
                    if start is not None:
                        vlane = f"req-{victim.request_id}"
                        tracer.record("queue", "queue", start, span_t,
                                      lane=vlane, trace_id=victim.request_id,
                                      args={"outcome": "preempted"})
                        tracer.record("request", "request", start, span_t,
                                      lane=vlane, trace_id=victim.request_id,
                                      args={"status": "shed",
                                            "reason": "preempted",
                                            "model": victim.model})
                queues[req.model].push(req)
                state["remaining"] += 1
                if req_traced:
                    traced[req.request_id] = span_t
            else:
                metrics.record_shed(req.model, decision.reason, now=depth_t)
                outcomes[req.request_id] = ServedRequest(
                    request_id=req.request_id, model=req.model, status="shed",
                    shed_reason=decision.reason, priority=req.priority,
                    release_s=release.get(req.request_id))
                signal.append(req.request_id)
            if req_traced:
                lane = f"req-{req.request_id}"
                tracer.record(
                    "admission", "admission", span_t, span_t, lane=lane,
                    trace_id=req.request_id,
                    args={"admitted": decision.admitted,
                          "reason": decision.reason,
                          "predicted_ms": (decision.predicted_latency_s * 1e3
                                           if decision.predicted_latency_s
                                           is not None else None)})
                if not decision.admitted:
                    tracer.record("request", "request", span_t, span_t,
                                  lane=lane, trace_id=req.request_id,
                                  args={"status": "shed",
                                        "reason": decision.reason,
                                        "model": req.model})
            metrics.record_queue_depth(depth_t,
                                       sum(q.depth for q in queues.values()))

        if pacer is None:
            # Deterministic admission pass (flood ingestion).  Ingestion
            # happens before the wall clock starts; stamping the depth
            # samples at t=0 keeps the timeline on one (wall) clock.
            for req in reqs:
                admit(req, req.arrival_s, 0.0, [])

        # Pin every requested model's engine resident before the drain (the
        # LRU cache is not touched from worker threads; paced arrivals may
        # target any model at any time).
        needed = sorted({r.model for r in reqs})
        engines = {}
        for model in needed:
            compiled = self.cache.get(model)
            engines[model] = self._engine(model, compiled)

        proc_backend = None
        tmpdir = None
        if self.backend == "process":
            from .procfleet import ProcessFleetBackend
            artifact_paths, tmpdir = self._export_artifacts(needed)
            specs = {m: {"input_shape": tuple(engines[m].input_shape),
                         "output_shape": tuple(engines[m].output_shape)}
                     for m in needed}
            proc_backend = ProcessFleetBackend(
                specs, artifact_paths, workers=self.workers,
                mp_context=self.mp_context, faults=plan,
                task_timeout_s=(retry.task_timeout_s if retry is not None
                                else 60.0),
                max_respawns=(retry.max_respawns if retry is not None else 2),
                respawn_backoff_s=(retry.respawn_backoff_s
                                   if retry is not None else 0.05))
            proc_backend.start()

        def pop_work():
            """Claim the deepest idle queue; returns (model, policy batches).

            Under the full-batch policy a short queue is a final partial
            batch (the stream has drained or a timeout fires), so it
            flushes rather than waits — matching the virtual loop's
            end-of-stream semantics.
            """
            best_model = None
            now_wall = time.perf_counter() if model_hold else 0.0
            for model in needed:
                queue = queues[model]
                if model_busy[model] or not queue.depth:
                    continue
                hold = model_hold.get(model)
                if hold is not None:
                    # Retry backoff: the model sits out until its hold
                    # expires (waiters use a timed wait while holds exist).
                    if hold > now_wall:
                        continue
                    del model_hold[model]
                if best_model is None or queue.depth > queues[best_model].depth:
                    best_model = model
            if best_model is None:
                return None
            queue = queues[best_model]
            engine = engines[best_model]
            groups = [queue.pop_batch()]
            total = len(groups[0])
            # Megabatch: pack further policy batches into the same tape pass.
            while queue.depth and total + min(queue.depth, self.policy.max_batch) \
                    <= engine.batch_size:
                batch = queue.pop_batch()
                groups.append(batch)
                total += len(batch)
            model_busy[best_model] = True
            state["remaining"] -= total
            return best_model, groups

        def execute(worker_index: int, model: str, images: list[np.ndarray],
                    trace_batch: bool = False):
            """Run megabatch groups; returns (per-group codes, passes, seconds).

            With ``trace_batch`` the process backend ships its worker-side
            spans back with the result (clamped into the parent-observed
            dispatch window), and the thread backend attaches a tape sink
            when ``telemetry.tape_spans`` asks for instruction spans.
            """
            if (proc_backend is not None and model not in degraded_models
                    and worker_index not in dead_workers):
                trace_req = None
                if trace_batch:
                    trace_req = {"now": now_s(),
                                 "tape": bool(telemetry is not None
                                              and telemetry.tape_spans)}
                group_codes, executions, elapsed, spans = proc_backend.run(
                    worker_index, model, images, trace=trace_req)
                if trace_req is not None and spans:
                    tracer.adopt(spans, clamp=(trace_req["now"], now_s()))
                return group_codes, executions, elapsed
            if injector is not None and proc_backend is None:
                # Thread backend: injection happens parent-side (the process
                # backend's workers carry their own injectors).
                event = injector.poll(worker_index, model)
                if event is not None and event.kind != "slow_task":
                    if event.kind == "task_hang":
                        limit = (min(event.duration_s, retry.task_timeout_s)
                                 if retry is not None else event.duration_s)
                        time.sleep(limit)
                        raise WorkerTimeout(
                            f"injected hang on worker {worker_index} "
                            f"({model}) exceeded {limit:.3f}s")
                    if event.kind == "worker_crash":
                        raise WorkerCrashed(
                            f"injected crash on worker {worker_index} ({model})")
                    raise InjectedFault(event)
                if event is not None:   # slow_task: straggle, then run
                    time.sleep(event.duration_s)
            detach = None
            if trace_batch and telemetry is not None and telemetry.tape_spans:
                tape = self._tape_of(engines[model])
                if tape is not None:
                    tape_lane = f"worker-{worker_index}-tape"

                    def emit(name, args, t0, t1, _lane=tape_lane):
                        tracer.record(name, "tape", t0 - serve_origin,
                                      t1 - serve_origin, lane=_lane, args=args)

                    detach = attach_tape_sink(tape, emit)
            try:
                start = time.perf_counter()
                group_outputs, executions = run_partial_groups(engines[model],
                                                               images)
                elapsed = time.perf_counter() - start
            finally:
                if detach is not None:
                    detach()
            return [out.codes for out in group_outputs], executions, elapsed

        def handle_failure(worker_index: int, model: str, groups,
                           exc: BaseException) -> None:
            """Supervised recovery from one failed megabatch dispatch.

            Requeues the claimed requests within the retry budget (failing
            the exhausted ones), backs the model off, records the breaker
            outcome, respawns a crashed/hung process worker, and degrades
            the model to the in-process path after a long failure streak.
            """
            kind = getattr(exc, "kind", "fault")
            now_fail = time.perf_counter() - serve_start
            span_t = now_s() if tracer.enabled else 0.0
            done_ids: list[int] = []
            with work_ready:
                observed_faults[kind] = observed_faults.get(kind, 0) + 1
                if breaker is not None:
                    breaker.record(model, False, now_s())
                fail_streak[model] += 1
                streak = fail_streak[model]
                for batch in groups:
                    for req in batch:
                        n_attempts = attempts.get(req.request_id, 0) + 1
                        attempts[req.request_id] = n_attempts
                        age = now_fail - release.get(req.request_id, 0.0)
                        if retry.exhausted(n_attempts, age):
                            metrics.record_failed(model, kind, now=now_fail)
                            outcomes[req.request_id] = ServedRequest(
                                request_id=req.request_id, model=model,
                                status="failed", failure_reason=kind,
                                retries=n_attempts - 1, priority=req.priority,
                                worker_index=worker_index,
                                release_s=release.get(req.request_id))
                            done_ids.append(req.request_id)
                            start = traced.pop(req.request_id, None)
                            if start is not None:
                                tracer.record(
                                    "request", "request", start, span_t,
                                    lane=f"req-{req.request_id}",
                                    trace_id=req.request_id,
                                    args={"status": "failed", "reason": kind,
                                          "model": model})
                        else:
                            queues[model].push(req)
                            state["remaining"] += 1
                            metrics.record_retry(model)
                            retried_ids.add(req.request_id)
                backoff = retry.attempt_backoff_s(streak)
                if backoff > 0.0:
                    model_hold[model] = time.perf_counter() + backoff
                metrics.record_queue_depth(
                    now_fail, sum(q.depth for q in queues.values()))
                model_busy[model] = False
                work_ready.notify_all()
            if tracer.enabled:
                tracer.record(kind, "fault", span_t, now_s(),
                              lane=f"worker-{worker_index}",
                              args={"model": model, "streak": streak,
                                    "requests": sum(len(b) for b in groups)})
            if pacer is not None:
                for request_id in done_ids:
                    pacer.on_completion(request_id)
            # A crashed or hung worker process needs a respawn before this
            # slot dispatches to the backend again; past the respawn budget
            # the slot falls back to the in-process path permanently.
            if (proc_backend is not None
                    and isinstance(exc, (WorkerCrashed, WorkerTimeout))
                    and worker_index not in dead_workers):
                t0 = now_s() if tracer.enabled else 0.0
                try:
                    recovery = proc_backend.respawn(worker_index)
                except FaultError:
                    with work_ready:
                        dead_workers.add(worker_index)
                else:
                    if tracer.enabled:
                        tracer.record("respawn", "fault", t0, now_s(),
                                      lane=f"worker-{worker_index}",
                                      args={"worker": worker_index,
                                            "recovery_s": recovery})
            if (proc_backend is not None and retry is not None
                    and streak >= retry.degrade_after
                    and model not in degraded_models):
                with work_ready:
                    degraded_models.add(model)
                if tracer.enabled:
                    tracer.record("degrade", "fault", now_s(), now_s(),
                                  lane=f"worker-{worker_index}",
                                  args={"model": model, "streak": streak,
                                        "fallback": "thread"})

        def worker(worker_index: int) -> None:
            while True:
                with work_ready:
                    claim = pop_work()
                    while claim is None:
                        if failures or (state["remaining"] == 0
                                        and not state["ingesting"]):
                            return
                        if model_hold:
                            # Timed wait: a hold expiring is not signaled.
                            work_ready.wait(timeout=0.02)
                        else:
                            work_ready.wait()
                        claim = pop_work()
                model, groups = claim
                claim_t = now_s() if tracer.enabled else 0.0
                batch_traced = tracer.enabled and any(
                    req.request_id in traced for batch in groups
                    for req in batch)
                try:
                    images = [np.stack([r.image for r in batch])
                              for batch in groups]
                    group_codes, executions, elapsed = execute(
                        worker_index, model, images, batch_traced)
                except BaseException as exc:
                    if supervised and isinstance(exc, FaultError):
                        handle_failure(worker_index, model, groups, exc)
                        continue
                    # A dead worker must not strand the fleet: surface the
                    # failure, release the model, and wake the others so
                    # they can drain or exit.
                    with work_ready:
                        failures.append(exc)
                        model_busy[model] = False
                        work_ready.notify_all()
                    if pacer is not None:
                        pacer.abort()
                    return
                finish_wall = time.perf_counter() - serve_start
                finish_t = now_s() if tracer.enabled else 0.0
                if batch_traced:
                    tracer.record(model, "batch", claim_t, finish_t,
                                  lane=f"worker-{worker_index}",
                                  args={"groups": len(groups),
                                        "fills": [len(b) for b in groups],
                                        "executions": executions,
                                        "backend": self.backend,
                                        "compute_ms": elapsed * 1e3})
                done_ids: list[int] = []
                with work_ready:
                    fail_streak[model] = 0
                    if breaker is not None:
                        breaker.record(model, True, now_s())
                    self.cost_model.observe(model, elapsed / max(1, executions))
                    per_batch_s = elapsed / len(groups)
                    if len(groups) > 1:
                        metrics.record_megabatch(model, len(groups))
                    for batch, codes in zip(groups, group_codes):
                        batch_index = state["batch_index"]
                        state["batch_index"] += 1
                        fill = len(batch)
                        metrics.record_batch(model, fill, self.batch_size,
                                             per_batch_s, now=finish_wall)
                        for offset, req in enumerate(batch):
                            latency = finish_wall - release.get(req.request_id, 0.0)
                            metrics.record_completion(model, latency,
                                                      req.deadline_s,
                                                      now=finish_wall)
                            outcomes[req.request_id] = ServedRequest(
                                request_id=req.request_id, model=model,
                                status="completed", latency_s=latency,
                                codes=codes[offset].copy(),
                                batch_index=batch_index, batch_fill=fill,
                                worker_index=worker_index,
                                priority=req.priority,
                                release_s=release.get(req.request_id),
                                retries=attempts.get(req.request_id, 0))
                            done_ids.append(req.request_id)
                            start = traced.pop(req.request_id, None)
                            if start is not None:
                                lane = f"req-{req.request_id}"
                                tracer.record("queue", "queue", start, claim_t,
                                              lane=lane,
                                              trace_id=req.request_id,
                                              args={"model": model})
                                tracer.record("execute", "execute", claim_t,
                                              finish_t, lane=lane,
                                              trace_id=req.request_id,
                                              args={"model": model,
                                                    "fill": fill,
                                                    "batch_index": batch_index,
                                                    "worker": worker_index,
                                                    "backend": self.backend})
                                tracer.record("request", "request", start,
                                              finish_t, lane=lane,
                                              trace_id=req.request_id,
                                              args={"status": "completed",
                                                    "model": model,
                                                    "latency_ms": latency * 1e3})
                    metrics.record_queue_depth(
                        finish_wall, sum(q.depth for q in queues.values()))
                    model_busy[model] = False
                    work_ready.notify_all()
                if pacer is not None:
                    for request_id in done_ids:
                        pacer.on_completion(request_id)

        def ingest() -> None:
            """Paced ingestion: release requests on the wall clock."""
            try:
                for req, now in pacer:
                    signal: list[int] = []
                    with work_ready:
                        if failures:
                            break
                        release[req.request_id] = now
                        admit(req, now, now, signal)
                        work_ready.notify_all()
                    for request_id in signal:
                        pacer.on_completion(request_id)
            finally:
                with work_ready:
                    state["ingesting"] = False
                    work_ready.notify_all()

        try:
            serve_start = time.perf_counter()
            ingest_thread = None
            if pacer is not None:
                ingest_thread = threading.Thread(target=ingest,
                                                 name="fleet-ingest", daemon=True)
                ingest_thread.start()
            threads = [threading.Thread(target=worker, args=(i,),
                                        name=f"fleet-dispatch-{i}", daemon=True)
                       for i in range(self.workers)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            if ingest_thread is not None:
                ingest_thread.join()
            if failures:
                raise failures[0]
            makespan = time.perf_counter() - serve_start
        finally:
            supervisor_stats = None
            if proc_backend is not None:
                supervisor_stats = proc_backend.fault_stats()
                proc_backend.close()
            if tmpdir is not None:
                tmpdir.cleanup()

        report = metrics.report(
            makespan_s=makespan, workers=self.workers, execution="real",
            snapshot_interval_s=(telemetry.snapshot_interval_s
                                 if telemetry is not None else None))
        admission_after = self.admission.stats()
        report["admission"] = {key: admission_after[key] - admission_before[key]
                               for key in admission_after}
        for model in self.fleet:
            report["per_model"][model]["queue"] = queues[model].stats()
        if plan is not None or retry is not None or breaker is not None:
            report["faults"] = {
                "plan": plan.to_dict() if plan is not None else None,
                # Parent-side injector stats are only meaningful on the
                # thread backend; process workers carry their own injectors.
                "injected": (injector.stats()
                             if injector is not None and self.backend != "process"
                             else None),
                "observed": dict(observed_faults),
                "retried_requests": len(retried_ids),
                "retry_policy": retry.to_dict() if retry is not None else None,
                "breaker": breaker.snapshot() if breaker is not None else None,
                "supervisor": (supervisor_stats if supervisor_stats is not None
                               else {"crashes": 0, "timeouts": 0,
                                     "respawns": 0, "respawn_counts": [],
                                     "respawn_s": []}),
                "degraded_models": sorted(degraded_models),
                "dead_workers": sorted(dead_workers),
                "artifacts_corrupted": dict(corrupted or {}),
            }
        trace = tracer.finish({
            "execution": "real", "backend": self.backend,
            "pacing": pacing_name, "workers": self.workers,
            "sample_rate": telemetry.sample_rate if telemetry else 0.0})
        return FleetReport(
            policy=self.policy.describe(),
            outcomes=[outcomes[rid] for rid in sorted(outcomes)],
            metrics=report,
            cache=self.cache.stats(),
            cost_model_s=self.cost_model.to_dict(),
            wall_time_s=time.perf_counter() - wall_start,
            workers=self.workers,
            execution="real",
            backend=self.backend,
            pacing=pacing_name,
            trace=trace,
        )
