"""LRU cache of compiled execution plans, keyed by registry model name.

A fleet server cannot afford to keep every model's compiled engine resident
— weight codes and preallocated activation buffers are the memory budget —
so plans are compiled on demand and held in a bounded LRU.  Evicting a model
means the next request for it pays a *recompile*; the cache counts hits,
misses, evictions and recompiles (a recompile is a miss on a model that was
resident before) and records per-model compile wall time so the serving
report can surface cold-start cost.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable

from ..models.compiled import CompiledModel, compile_registry_model

__all__ = ["PlanCache"]


class PlanCache:
    """Bounded LRU of :class:`~repro.models.compiled.CompiledModel` entries."""

    def __init__(self, capacity: int,
                 compile_fn: Callable[..., CompiledModel] | None = None,
                 **compile_kwargs) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._compile = compile_fn if compile_fn is not None else compile_registry_model
        self.compile_kwargs = compile_kwargs
        self._entries: OrderedDict[str, CompiledModel] = OrderedDict()
        self._ever_resident: set[str] = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.recompiles = 0
        self.compile_s: dict[str, float] = {}   # last compile wall time per model
        self.total_compile_s = 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    @property
    def resident(self) -> list[str]:
        """Model names currently resident, LRU-first."""
        return list(self._entries)

    def peek(self, name: str) -> CompiledModel | None:
        """Resident entry or ``None`` — no LRU reorder, no counter updates."""
        return self._entries.get(name)

    def get(self, name: str) -> CompiledModel:
        """Fetch a compiled model, compiling (and possibly evicting) on miss."""
        entry = self._entries.get(name)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(name)
            return entry
        self.misses += 1
        if name in self._ever_resident:
            self.recompiles += 1
        start = time.perf_counter()
        entry = self._compile(name, **self.compile_kwargs)
        elapsed = time.perf_counter() - start
        self.compile_s[name] = elapsed
        self.total_compile_s += elapsed
        while len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[name] = entry
        self._ever_resident.add(name)
        return entry

    def stats(self) -> dict:
        """JSON-serializable counters for the serving report."""
        return {
            "capacity": self.capacity,
            "resident": self.resident,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "recompiles": self.recompiles,
            "total_compile_s": self.total_compile_s,
            "compile_s": dict(self.compile_s),
        }
