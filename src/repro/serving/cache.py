"""LRU cache of compiled execution plans, keyed by registry model name.

A fleet server cannot afford to keep every model's compiled engine resident
— weight codes and preallocated activation buffers are the memory budget —
so plans are compiled on demand and held in a bounded LRU.  Evicting a model
means the next request for it pays a *recompile*; the cache counts hits,
misses, evictions and recompiles (a recompile is a miss on a model that was
resident before) and records per-model compile wall time so the serving
report can surface cold-start cost.

The cache optionally gains a **disk tier** (``artifact_dir``): in-memory
misses first try to load a persistent plan artifact
(:mod:`repro.deploy.artifact`), content-addressed by the compile config's
hash via ``key_fn``.  A disk hit rebuilds the engine from the serialized
plan — prepacked weights and cached autotune choices included — so the
model comes back *without* re-lowering, re-optimization or re-profiling.
Compiles triggered by a true miss write their artifact back, so the next
process starts warm.  Unreadable artifacts (corrupt, stale, wrong version)
are counted and fall through to a fresh compile — the disk tier can only
make things faster, never wronger.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from pathlib import Path
from typing import Callable

__all__ = ["PlanCache"]


class PlanCache:
    """Bounded LRU of compiled-model entries with an optional disk tier.

    Entries are whatever ``compile_fn`` returns — legacy
    :class:`~repro.models.compiled.CompiledModel` bundles or
    :class:`~repro.deploy.Deployment` objects (required for the disk tier,
    which round-trips entries through ``entry.save(path)`` /
    ``Deployment.load(path)``).
    """

    def __init__(self, capacity: int,
                 compile_fn: Callable | None = None,
                 artifact_dir: str | Path | None = None,
                 key_fn: Callable[[str], str] | None = None,
                 disk_max_bytes: int | None = None,
                 **compile_kwargs) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        if disk_max_bytes is not None and disk_max_bytes < 1:
            raise ValueError(f"disk_max_bytes must be >= 1, got {disk_max_bytes}")
        self.capacity = capacity
        if compile_fn is not None:
            self._compile = compile_fn
        else:
            from ..models.compiled import compile_registry_model
            self._compile = compile_registry_model
        self.compile_kwargs = compile_kwargs
        self.artifact_dir = Path(artifact_dir) if artifact_dir is not None else None
        self.disk_max_bytes = disk_max_bytes
        self._key_fn = key_fn
        self._entries: OrderedDict[str, object] = OrderedDict()
        self._ever_resident: set[str] = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.recompiles = 0
        self.disk_hits = 0
        self.disk_stores = 0
        self.disk_errors = 0
        self.disk_quarantined = 0
        self.disk_evictions = 0
        self.compile_s: dict[str, float] = {}   # last compile wall time per model
        self.total_compile_s = 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    @property
    def resident(self) -> list[str]:
        """Model names currently resident, LRU-first."""
        return list(self._entries)

    def artifact_path(self, name: str) -> Path | None:
        """Disk-tier location for one model (``None`` when the tier is off)."""
        if self.artifact_dir is None:
            return None
        from ..deploy.artifact import ARTIFACT_SUFFIX
        key = self._key_fn(name) if self._key_fn is not None else "plan"
        return self.artifact_dir / f"{name}-{key}{ARTIFACT_SUFFIX}"

    def peek(self, name: str) -> object | None:
        """Resident entry or ``None`` — no LRU reorder, no counter updates."""
        return self._entries.get(name)

    def evict(self, name: str) -> bool:
        """Drop one resident entry (no recompile accounting); True if held.

        Used by fault injection to force the next :meth:`get` through the
        disk tier; a production cache would call it on memory pressure.
        """
        if name in self._entries:
            del self._entries[name]
            return True
        return False

    def put(self, name: str, entry: object) -> None:
        """Seed a precompiled entry (e.g. a warm deployment), evicting LRU.

        With a disk tier configured, the seeded entry is persisted too (if
        its artifact is not already on disk) — a preloaded deployment should
        warm future processes just like a compiled-on-miss one does.
        """
        if name in self._entries:
            self._entries.move_to_end(name)
        self._entries[name] = entry
        self._ever_resident.add(name)
        path = self.artifact_path(name)
        if path is not None and not path.exists():
            self._store_to_disk(name, entry)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    # ------------------------------------------------------------------ #
    def _load_from_disk(self, name: str) -> object | None:
        path = self.artifact_path(name)
        if path is None or not path.exists():
            return None
        from ..deploy import ArtifactError, Deployment
        try:
            entry = Deployment.load(path)
        except ArtifactError:
            # Corrupt/stale artifact: quarantine it aside so the same bad
            # file isn't re-read (and re-failed) on every future miss — the
            # fresh compile below re-stores a good artifact at the live
            # path.  ``.corrupt`` doesn't match the tier's glob, so GC and
            # future loads ignore it; it stays on disk for post-mortems.
            self.disk_errors += 1
            try:
                path.replace(path.with_name(path.name + ".corrupt"))
                self.disk_quarantined += 1
            except OSError:
                pass
            return None
        except OSError:
            # Plain I/O failure (permissions, a cleanup racing the exists()
            # check): fall through to a fresh compile — the disk tier must
            # never make serving *fail*.
            self.disk_errors += 1
            return None
        self.disk_hits += 1
        try:
            path.touch()   # refresh the disk tier's LRU-by-mtime signal
        except OSError:
            pass
        return entry

    def _store_to_disk(self, name: str, entry: object) -> None:
        path = self.artifact_path(name)
        if path is None or not hasattr(entry, "save"):
            return
        try:
            entry.save(path)
            self.disk_stores += 1
        except OSError:
            self.disk_errors += 1
            return
        self._gc_disk(keep=path)

    def _gc_disk(self, keep: Path | None = None) -> None:
        """Bound the artifact dir to ``disk_max_bytes``, evicting LRU-by-mtime.

        Disk hits :meth:`Path.touch` their artifact, so modification time is
        the tier's recency signal.  The just-written artifact is never
        evicted — a store must not immediately undo itself — and unreadable
        directory entries are skipped (a concurrent cleanup is not an
        error).
        """
        if self.artifact_dir is None or self.disk_max_bytes is None:
            return
        from ..deploy.artifact import ARTIFACT_SUFFIX
        entries = []
        total = 0
        try:
            for path in self.artifact_dir.glob(f"*{ARTIFACT_SUFFIX}"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
                total += stat.st_size
        except OSError:
            return
        entries.sort()   # oldest mtime first
        for mtime, size, path in entries:
            if total <= self.disk_max_bytes:
                break
            if keep is not None and path == keep:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            self.disk_evictions += 1

    def get(self, name: str) -> object:
        """Fetch a compiled model: memory, then disk artifact, then compile."""
        entry = self._entries.get(name)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(name)
            return entry
        self.misses += 1
        entry = self._load_from_disk(name)
        if entry is None:
            # Only an actual compile of a previously resident model counts
            # as a recompile; a disk-tier load pays no compile cost.
            if name in self._ever_resident:
                self.recompiles += 1
            start = time.perf_counter()
            entry = self._compile(name, **self.compile_kwargs)
            elapsed = time.perf_counter() - start
            self.compile_s[name] = elapsed
            self.total_compile_s += elapsed
            self._store_to_disk(name, entry)
        while len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[name] = entry
        self._ever_resident.add(name)
        return entry

    def stats(self) -> dict:
        """JSON-serializable counters for the serving report."""
        return {
            "capacity": self.capacity,
            "resident": self.resident,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "recompiles": self.recompiles,
            "disk_hits": self.disk_hits,
            "disk_stores": self.disk_stores,
            "disk_errors": self.disk_errors,
            "disk_quarantined": self.disk_quarantined,
            "disk_evictions": self.disk_evictions,
            "disk_max_bytes": self.disk_max_bytes,
            "artifact_dir": str(self.artifact_dir) if self.artifact_dir else None,
            "total_compile_s": self.total_compile_s,
            "compile_s": dict(self.compile_s),
        }
