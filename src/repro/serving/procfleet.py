"""Process-level fleet scale-out: per-process tape engines + shared memory.

The thread backend's dispatch workers overlap only where NumPy releases the
GIL; the pure-Python tape dispatch (instruction decode, fused-chain calls,
requantize bookkeeping) serializes.  :class:`ProcessFleetBackend` removes
that ceiling: each dispatch worker proxies its batch claims to a dedicated
**worker process** hosting its own per-process engines, so N workers run N
tape interpreters truly concurrently.

Design points:

* **Engine bootstrap from the disk tier.**  Workers never pickle an engine —
  they load ``.rpa`` plan artifacts (prepacked weights, cached autotune
  choices) via :func:`repro.engine.parallel.bootstrap_process_engines`, the
  same zero-re-lowering path a warm restart takes.  The parent exports
  artifacts from its :class:`~repro.serving.cache.PlanCache` disk tier (or a
  temporary directory when no tier is configured).
* **Shared-memory data plane.**  Request images travel parent→worker and
  output codes worker→parent through per-worker
  ``multiprocessing.shared_memory`` arenas sized once for the largest
  fleet batch; only tiny control messages (model name, group fills, dtype)
  cross the task/result queues.  Codes are staged as int64 in the arena and
  cast back to the engine's exact dtype on receipt, which is lossless, so
  outputs stay bit-identical to in-process execution.
* **Spawn context by default.**  ``fork`` would duplicate the parent's BLAS
  state and compiled engines into every worker; ``spawn`` keeps workers
  minimal and portable (and is the only start method on some platforms).
* **Supervised recv.**  ``run()`` never blocks forever: the result recv
  polls with a per-task deadline (``task_timeout_s``) and checks
  ``Process.is_alive()`` between polls, raising typed
  :class:`~repro.faults.WorkerCrashed` / :class:`~repro.faults.WorkerTimeout`
  errors the server's supervisor can recover from.  :meth:`respawn`
  rebuilds a dead worker — bounded attempts with exponential backoff,
  engines re-bootstrapped from the same artifacts, the *same* parent-owned
  arenas re-attached — and offsets the replacement's fault-injection task
  counter so consumed :class:`~repro.faults.FaultPlan` events never
  re-fire.

The backend is deliberately synchronous per worker — ``run(worker_index,
...)`` blocks until that worker's result returns — because the
:class:`~repro.serving.server.FleetServer` already runs one dispatch thread
per worker; those threads spend their time blocked on the result queue, not
holding the GIL.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import time
from typing import Sequence

import numpy as np

from ..faults import FaultPlan, RespawnExhausted, TaskFailed, WorkerCrashed, WorkerTimeout

__all__ = ["ProcessFleetBackend"]

#: bytes per staged element — images stage as float64, codes as int64
_ITEMSIZE = 8

#: seconds between result-queue polls while waiting on a worker; bounds how
#: fast a crash is noticed without busy-waiting
_POLL_S = 0.05


def _worker_main(worker_index: int, artifact_paths: dict[str, str],
                 specs: dict[str, dict], in_name: str, out_name: str,
                 task_queue, result_queue, faults: FaultPlan | None = None,
                 task_offset: int = 0) -> None:
    """Worker-process entry point: bootstrap engines, then serve tasks.

    Protocol (task queue): ``("run", task_id, model, fills, trace)`` — the
    parent has written ``sum(fills)`` concatenated images into the input
    arena; execute them as megabatch groups, write the concatenated codes
    into the output arena, reply ``("done", task_id, elapsed_s, executions,
    dtype, shape, spans)``.  ``trace`` is ``None`` (tracing off) or
    ``{"now": parent_stamp_s, "tape": bool}``: the worker aligns its clock
    with the parent by ``offset = parent_stamp_s - perf_counter()`` at task
    receipt and ships span tuples (see
    :meth:`repro.telemetry.Span.to_tuple`) back in ``spans`` — a worker-lane
    execute span, plus per-instruction tape spans when ``tape`` is set and
    the engine runs in tape mode.  ``("stop",)`` exits.  Any failure replies
    ``("error", task_id_or_None, message, reason)``; bootstrap failures
    carry ``task_id=None`` and ``reason="bootstrap"``.

    ``faults`` is an optional :class:`~repro.faults.FaultPlan`; the worker
    builds its own injector over it, pre-advanced by ``task_offset`` (the
    number of tasks a previous incarnation of this worker slot already
    executed), and applies matching events *in-process*: ``worker_crash``
    hard-exits, ``task_hang``/``slow_task`` stall, ``task_error`` replies
    with a typed error — exactly the failure modes a real fleet sees.
    """
    from multiprocessing import shared_memory

    from ..engine.parallel import bootstrap_process_engines
    from ..engine.runner import run_partial_groups

    injector = (faults.injector(worker=worker_index, task_offset=task_offset)
                if faults is not None else None)
    try:
        # Attaching registers the segments with the resource tracker again;
        # spawn children share the parent's tracker process, where register
        # is idempotent, and only the parent (the single owner) ever calls
        # unlink — so no child-side unregister dance is needed.
        in_shm = shared_memory.SharedMemory(name=in_name)
        out_shm = shared_memory.SharedMemory(name=out_name)
        engines = bootstrap_process_engines(artifact_paths)
        result_queue.put(("ready", worker_index, sorted(engines)))
    except BaseException as exc:  # noqa: BLE001 - must cross the process edge
        result_queue.put(("error", None, f"worker {worker_index} bootstrap "
                                         f"failed: {exc!r}", "bootstrap"))
        return
    try:
        while True:
            message = task_queue.get()
            if message[0] == "stop":
                return
            _, task_id, model, fills, trace = message
            try:
                event = (injector.poll(worker_index, model)
                         if injector is not None else None)
                if event is not None:
                    if event.kind == "worker_crash":
                        # A real crash: no reply, no cleanup, nonzero exit.
                        os._exit(3)
                    if event.kind in ("task_hang", "slow_task"):
                        time.sleep(event.duration_s)
                    if event.kind == "task_error":
                        result_queue.put((
                            "error", task_id,
                            f"worker {worker_index} task {task_id} on "
                            f"{model!r}: injected task_error", "task_error"))
                        continue
                engine = engines[model]
                sample_shape = tuple(specs[model]["input_shape"][1:])
                total = int(sum(fills))
                staged = np.ndarray((total, *sample_shape), dtype=np.float64,
                                    buffer=in_shm.buf)
                groups, offset = [], 0
                for fill in fills:
                    groups.append(staged[offset:offset + fill])
                    offset += fill
                spans: list[tuple] = []
                detach = None
                clock_offset = 0.0
                if trace is not None:
                    # Align this process's clock with the parent's trace
                    # clock: the parent stamped "now" just before sending.
                    clock_offset = trace["now"] - time.perf_counter()
                    if trace.get("tape") and getattr(engine, "mode", None) == "tape":
                        from ..telemetry.trace import attach_tape_sink
                        tape = engine._ensure_tape()
                        lane = f"proc-worker-{worker_index}-tape"

                        def emit(name, args, t0, t1, _lane=lane):
                            spans.append((name, "tape", t0 + clock_offset,
                                          t1 + clock_offset, _lane, None, args))

                        detach = attach_tape_sink(tape, emit)
                try:
                    start = time.perf_counter()
                    outputs, executions = run_partial_groups(engine, groups)
                    elapsed = time.perf_counter() - start
                finally:
                    if detach is not None:
                        detach()
                if trace is not None:
                    spans.append((model, "execute", start + clock_offset,
                                  start + elapsed + clock_offset,
                                  f"proc-worker-{worker_index}", None,
                                  {"fills": list(fills),
                                   "executions": int(executions),
                                   "compute_ms": elapsed * 1e3}))
                codes = np.concatenate(
                    [out.codes[:fill] for out, fill in zip(outputs, fills)],
                    axis=0)
                out_view = np.ndarray(codes.shape, dtype=np.int64,
                                      buffer=out_shm.buf)
                out_view[:] = codes  # int32 -> int64 widening is lossless
                result_queue.put(("done", task_id, elapsed, executions,
                                  str(codes.dtype), tuple(codes.shape), spans))
            except BaseException as exc:  # noqa: BLE001
                result_queue.put(("error", task_id,
                                  f"worker {worker_index} task {task_id} on "
                                  f"{model!r} failed: {exc!r}", "task"))
    finally:
        in_shm.close()
        out_shm.close()


class ProcessFleetBackend:
    """N worker processes hosting per-process engines behind shared memory.

    ``specs`` maps each model to its parent-engine geometry
    (``{"input_shape": (B, C, H, W), "output_shape": (B, K)}``); arena sizes
    are the max over the fleet, so one pair of arenas per worker serves
    every model.  ``artifact_paths`` maps each model to the ``.rpa`` plan
    artifact its per-process engine bootstraps from.

    ``task_timeout_s`` is the default per-task recv deadline (override per
    call via ``run(..., timeout_s=...)``); ``faults`` threads a
    :class:`~repro.faults.FaultPlan` into every worker; ``max_respawns`` /
    ``respawn_backoff_s`` bound :meth:`respawn`.
    """

    def __init__(self, specs: dict[str, dict], artifact_paths: dict[str, str],
                 *, workers: int, mp_context: str = "spawn",
                 start_timeout_s: float = 120.0,
                 task_timeout_s: float = 60.0,
                 faults: FaultPlan | None = None,
                 max_respawns: int = 2,
                 respawn_backoff_s: float = 0.05,
                 respawn_backoff_max_s: float = 2.0) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if task_timeout_s <= 0:
            raise ValueError(f"task_timeout_s must be > 0, got {task_timeout_s}")
        if max_respawns < 0:
            raise ValueError(f"max_respawns must be >= 0, got {max_respawns}")
        missing = sorted(set(specs) - set(artifact_paths))
        if missing:
            raise ValueError(f"no artifact path for models {missing}")
        self.specs = {name: dict(spec) for name, spec in specs.items()}
        self.artifact_paths = dict(artifact_paths)
        self.workers = int(workers)
        self.start_timeout_s = float(start_timeout_s)
        self.task_timeout_s = float(task_timeout_s)
        self.faults = faults
        self.max_respawns = int(max_respawns)
        self.respawn_backoff_s = float(respawn_backoff_s)
        self.respawn_backoff_max_s = float(respawn_backoff_max_s)
        self._ctx = mp.get_context(mp_context)
        self._in_bytes = max(
            int(np.prod(spec["input_shape"])) * _ITEMSIZE
            for spec in self.specs.values())
        self._out_bytes = max(
            int(np.prod(spec["output_shape"])) * _ITEMSIZE
            for spec in self.specs.values())
        self._in_shms: list = []
        self._out_shms: list = []
        self._task_queues: list = [None] * self.workers
        self._result_queues: list = [None] * self.workers
        self._processes: list = [None] * self.workers
        self._task_counter = 0
        #: tasks dispatched per worker slot across its whole lifetime — the
        #: fault-injection task offset a respawned worker resumes from
        self._dispatched = [0] * self.workers
        self._respawn_counts = [0] * self.workers
        self._respawn_s: list[float] = []
        self._crashes = 0
        self._timeouts = 0
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------ #
    def _spawn_worker(self, index: int) -> None:
        """(Re)create one worker slot: fresh queues + process, same arenas."""
        task_queue = self._ctx.Queue()
        result_queue = self._ctx.Queue()
        self._task_queues[index] = task_queue
        self._result_queues[index] = result_queue
        process = self._ctx.Process(
            target=_worker_main,
            args=(index, self.artifact_paths, self.specs,
                  self._in_shms[index].name, self._out_shms[index].name,
                  task_queue, result_queue, self.faults,
                  self._dispatched[index]),
            name=f"fleet-worker-{index}", daemon=True)
        process.start()
        self._processes[index] = process

    def _wait_ready(self, index: int) -> None:
        message = self._result_queues[index].get(timeout=self.start_timeout_s)
        if message[0] != "ready":
            raise RuntimeError(message[2])

    def start(self) -> None:
        """Spawn the workers and block until every engine set is warm."""
        if self._started:
            raise RuntimeError("backend already started")
        from multiprocessing import shared_memory
        try:
            for index in range(self.workers):
                self._in_shms.append(shared_memory.SharedMemory(
                    create=True, size=self._in_bytes))
                self._out_shms.append(shared_memory.SharedMemory(
                    create=True, size=self._out_bytes))
                self._spawn_worker(index)
            for index in range(self.workers):
                self._wait_ready(index)
            self._started = True
        except BaseException:
            self.close()
            raise

    def __enter__(self) -> "ProcessFleetBackend":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def respawn(self, worker_index: int) -> float:
        """Rebuild a dead/hung worker slot; returns the recovery seconds.

        Bounded by ``max_respawns`` per slot (raises
        :class:`~repro.faults.RespawnExhausted` past the budget) with
        exponential backoff.  The old process is terminated (killed if it
        ignores SIGTERM), its queues retired without blocking on undelivered
        data, and a fresh process re-bootstraps its engines from the same
        artifacts against the same parent-owned arenas.  The replacement's
        fault-injection counter resumes at this slot's dispatched-task
        count, so plan events the old incarnation consumed never re-fire.
        """
        if not self._started or self._closed:
            raise RuntimeError("backend is not running (call start())")
        if not 0 <= worker_index < self.workers:
            raise ValueError(f"worker_index must be in [0, {self.workers}), "
                             f"got {worker_index}")
        attempt = self._respawn_counts[worker_index]
        if attempt >= self.max_respawns:
            raise RespawnExhausted(
                f"worker {worker_index} exceeded its respawn budget "
                f"({self.max_respawns})")
        self._respawn_counts[worker_index] = attempt + 1
        start = time.perf_counter()
        backoff = min(self.respawn_backoff_s * (2.0 ** attempt),
                      self.respawn_backoff_max_s)
        if backoff > 0:
            time.sleep(backoff)
        old = self._processes[worker_index]
        if old.is_alive():
            old.terminate()
            old.join(timeout=10.0)
            if old.is_alive():
                old.kill()
                old.join(timeout=10.0)
        for retired in (self._task_queues[worker_index],
                        self._result_queues[worker_index]):
            retired.close()
            # The dead worker will never drain these; don't block on the
            # feeder thread flushing to a pipe nobody reads.
            retired.cancel_join_thread()
        self._spawn_worker(worker_index)
        self._wait_ready(worker_index)
        elapsed = time.perf_counter() - start
        self._respawn_s.append(elapsed)
        return elapsed

    def fault_stats(self) -> dict:
        """Supervision counters for the serving report."""
        return {
            "crashes": self._crashes,
            "timeouts": self._timeouts,
            "respawns": sum(self._respawn_counts),
            "respawn_counts": list(self._respawn_counts),
            "respawn_s": [round(s, 6) for s in self._respawn_s],
        }

    # ------------------------------------------------------------------ #
    def run(self, worker_index: int, model: str,
            images: Sequence[np.ndarray], trace: dict | None = None,
            timeout_s: float | None = None):
        """Execute megabatch groups on one worker process.

        ``images`` is a list of stacked per-batch arrays (``(fill, C, H,
        W)`` each, total fill <= the engine batch size).  Returns
        ``(codes_per_group, executions, elapsed_s, spans)`` where each codes
        array has exactly its group's fill rows and the engine's exact
        dtype — bit-identical to in-process execution.  ``elapsed_s`` is the
        worker-measured compute time (IPC excluded), which feeds the EWMA
        cost model.  ``trace`` is ``None`` or ``{"now": parent_trace_stamp,
        "tape": bool}``; when set, ``spans`` carries the worker's span
        tuples aligned to the parent's trace clock (empty otherwise) — see
        :meth:`repro.telemetry.Tracer.adopt`.

        The recv is deadline-bounded (``timeout_s``, default
        ``task_timeout_s``) and liveness-checked: a worker that dies raises
        :class:`~repro.faults.WorkerCrashed`, one that stalls past the
        deadline raises :class:`~repro.faults.WorkerTimeout`, and a task
        that fails in a live worker raises
        :class:`~repro.faults.TaskFailed` — never an indefinite block.
        Stale results from a pre-timeout task on a worker that was *not*
        respawned are discarded, not mismatched.
        """
        if not self._started or self._closed:
            raise RuntimeError("backend is not running (call start())")
        if not 0 <= worker_index < self.workers:
            raise ValueError(f"worker_index must be in [0, {self.workers}), "
                             f"got {worker_index}")
        if model not in self.specs:
            raise ValueError(f"unknown model {model!r}; "
                             f"fleet: {sorted(self.specs)}")
        timeout = float(timeout_s) if timeout_s is not None else self.task_timeout_s
        fills = [int(np.asarray(group).shape[0]) for group in images]
        flat = np.concatenate([np.asarray(group, dtype=np.float64)
                               for group in images], axis=0)
        if flat.nbytes > self._in_bytes:
            raise ValueError(f"{flat.nbytes} bytes of images exceed the "
                             f"{self._in_bytes}-byte input arena")
        staged = np.ndarray(flat.shape, dtype=np.float64,
                            buffer=self._in_shms[worker_index].buf)
        staged[:] = flat
        task_id = self._task_counter
        self._task_counter += 1
        self._dispatched[worker_index] += 1
        result_queue = self._result_queues[worker_index]
        self._task_queues[worker_index].put(("run", task_id, model, fills,
                                             trace))
        deadline = time.monotonic() + timeout
        while True:
            try:
                message = result_queue.get(timeout=_POLL_S)
            except queue_mod.Empty:
                process = self._processes[worker_index]
                if not process.is_alive():
                    # One grace drain: the reply may have raced the death.
                    try:
                        message = result_queue.get(timeout=_POLL_S)
                    except queue_mod.Empty:
                        self._crashes += 1
                        raise WorkerCrashed(
                            f"worker {worker_index} died (exitcode "
                            f"{process.exitcode}) while running task "
                            f"{task_id} on {model!r}") from None
                elif time.monotonic() >= deadline:
                    self._timeouts += 1
                    raise WorkerTimeout(
                        f"worker {worker_index} produced no result for task "
                        f"{task_id} on {model!r} within {timeout:g}s") from None
                else:
                    continue
            if message[0] == "error":
                reason = message[3] if len(message) > 3 else "task"
                raise TaskFailed(message[2], reason=reason)
            _, done_id, elapsed, executions, dtype, shape, spans = message
            if done_id != task_id:
                continue  # stale pre-timeout result; keep waiting for ours
            break
        staged_out = np.ndarray(shape, dtype=np.int64,
                                buffer=self._out_shms[worker_index].buf)
        codes = staged_out.astype(np.dtype(dtype))  # exact narrowing cast
        group_codes, offset = [], 0
        for fill in fills:
            group_codes.append(codes[offset:offset + fill])
            offset += fill
        return group_codes, int(executions), float(elapsed), spans

    # ------------------------------------------------------------------ #
    def close(self, join_timeout_s: float = 10.0) -> None:
        """Stop the workers and release the arenas (idempotent).

        Arena close + unlink runs in a ``finally`` so shared-memory
        segments are released even when a worker ignores the stop message,
        outlives ``join_timeout_s`` and has to be terminated — or when
        queue teardown itself raises.
        """
        if self._closed:
            return
        self._closed = True
        try:
            for task_queue, process in zip(self._task_queues, self._processes):
                if process is not None and process.is_alive():
                    try:
                        task_queue.put(("stop",))
                    except (OSError, ValueError):
                        pass
            for process in self._processes:
                if process is None:
                    continue
                process.join(timeout=join_timeout_s)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=join_timeout_s)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=join_timeout_s)
            for queue in (*self._task_queues, *self._result_queues):
                if queue is None:
                    continue
                queue.close()
                # Never block teardown on a feeder thread flushing to a
                # worker that already exited.
                queue.cancel_join_thread()
        finally:
            for shm in (*self._in_shms, *self._out_shms):
                try:
                    shm.close()
                except OSError:
                    pass
                try:
                    shm.unlink()
                except (FileNotFoundError, OSError):
                    pass
            self._in_shms.clear()
            self._out_shms.clear()
            self._task_queues = [None] * self.workers
            self._result_queues = [None] * self.workers
            self._processes = [None] * self.workers
