"""Process-level fleet scale-out: per-process tape engines + shared memory.

The thread backend's dispatch workers overlap only where NumPy releases the
GIL; the pure-Python tape dispatch (instruction decode, fused-chain calls,
requantize bookkeeping) serializes.  :class:`ProcessFleetBackend` removes
that ceiling: each dispatch worker proxies its batch claims to a dedicated
**worker process** hosting its own per-process engines, so N workers run N
tape interpreters truly concurrently.

Design points:

* **Engine bootstrap from the disk tier.**  Workers never pickle an engine —
  they load ``.rpa`` plan artifacts (prepacked weights, cached autotune
  choices) via :func:`repro.engine.parallel.bootstrap_process_engines`, the
  same zero-re-lowering path a warm restart takes.  The parent exports
  artifacts from its :class:`~repro.serving.cache.PlanCache` disk tier (or a
  temporary directory when no tier is configured).
* **Shared-memory data plane.**  Request images travel parent→worker and
  output codes worker→parent through per-worker
  ``multiprocessing.shared_memory`` arenas sized once for the largest
  fleet batch; only tiny control messages (model name, group fills, dtype)
  cross the task/result queues.  Codes are staged as int64 in the arena and
  cast back to the engine's exact dtype on receipt, which is lossless, so
  outputs stay bit-identical to in-process execution.
* **Spawn context by default.**  ``fork`` would duplicate the parent's BLAS
  state and compiled engines into every worker; ``spawn`` keeps workers
  minimal and portable (and is the only start method on some platforms).

The backend is deliberately synchronous per worker — ``run(worker_index,
...)`` blocks until that worker's result returns — because the
:class:`~repro.serving.server.FleetServer` already runs one dispatch thread
per worker; those threads spend their time blocked on the result queue, not
holding the GIL.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import Sequence

import numpy as np

__all__ = ["ProcessFleetBackend"]

#: bytes per staged element — images stage as float64, codes as int64
_ITEMSIZE = 8


def _worker_main(worker_index: int, artifact_paths: dict[str, str],
                 specs: dict[str, dict], in_name: str, out_name: str,
                 task_queue, result_queue) -> None:
    """Worker-process entry point: bootstrap engines, then serve tasks.

    Protocol (task queue): ``("run", task_id, model, fills, trace)`` — the
    parent has written ``sum(fills)`` concatenated images into the input
    arena; execute them as megabatch groups, write the concatenated codes
    into the output arena, reply ``("done", task_id, elapsed_s, executions,
    dtype, shape, spans)``.  ``trace`` is ``None`` (tracing off) or
    ``{"now": parent_stamp_s, "tape": bool}``: the worker aligns its clock
    with the parent by ``offset = parent_stamp_s - perf_counter()`` at task
    receipt and ships span tuples (see
    :meth:`repro.telemetry.Span.to_tuple`) back in ``spans`` — a worker-lane
    execute span, plus per-instruction tape spans when ``tape`` is set and
    the engine runs in tape mode.  ``("stop",)`` exits.  Any failure replies
    ``("error", task_id_or_None, message)``; bootstrap failures carry
    ``task_id=None``.
    """
    from multiprocessing import shared_memory

    from ..engine.parallel import bootstrap_process_engines
    from ..engine.runner import run_partial_groups

    try:
        # Attaching registers the segments with the resource tracker again;
        # spawn children share the parent's tracker process, where register
        # is idempotent, and only the parent (the single owner) ever calls
        # unlink — so no child-side unregister dance is needed.
        in_shm = shared_memory.SharedMemory(name=in_name)
        out_shm = shared_memory.SharedMemory(name=out_name)
        engines = bootstrap_process_engines(artifact_paths)
        result_queue.put(("ready", worker_index, sorted(engines)))
    except BaseException as exc:  # noqa: BLE001 - must cross the process edge
        result_queue.put(("error", None, f"worker {worker_index} bootstrap "
                                         f"failed: {exc!r}"))
        return
    try:
        while True:
            message = task_queue.get()
            if message[0] == "stop":
                return
            _, task_id, model, fills, trace = message
            try:
                engine = engines[model]
                sample_shape = tuple(specs[model]["input_shape"][1:])
                total = int(sum(fills))
                staged = np.ndarray((total, *sample_shape), dtype=np.float64,
                                    buffer=in_shm.buf)
                groups, offset = [], 0
                for fill in fills:
                    groups.append(staged[offset:offset + fill])
                    offset += fill
                spans: list[tuple] = []
                detach = None
                clock_offset = 0.0
                if trace is not None:
                    # Align this process's clock with the parent's trace
                    # clock: the parent stamped "now" just before sending.
                    clock_offset = trace["now"] - time.perf_counter()
                    if trace.get("tape") and getattr(engine, "mode", None) == "tape":
                        from ..telemetry.trace import attach_tape_sink
                        tape = engine._ensure_tape()
                        lane = f"proc-worker-{worker_index}-tape"

                        def emit(name, args, t0, t1, _lane=lane):
                            spans.append((name, "tape", t0 + clock_offset,
                                          t1 + clock_offset, _lane, None, args))

                        detach = attach_tape_sink(tape, emit)
                try:
                    start = time.perf_counter()
                    outputs, executions = run_partial_groups(engine, groups)
                    elapsed = time.perf_counter() - start
                finally:
                    if detach is not None:
                        detach()
                if trace is not None:
                    spans.append((model, "execute", start + clock_offset,
                                  start + elapsed + clock_offset,
                                  f"proc-worker-{worker_index}", None,
                                  {"fills": list(fills),
                                   "executions": int(executions),
                                   "compute_ms": elapsed * 1e3}))
                codes = np.concatenate(
                    [out.codes[:fill] for out, fill in zip(outputs, fills)],
                    axis=0)
                out_view = np.ndarray(codes.shape, dtype=np.int64,
                                      buffer=out_shm.buf)
                out_view[:] = codes  # int32 -> int64 widening is lossless
                result_queue.put(("done", task_id, elapsed, executions,
                                  str(codes.dtype), tuple(codes.shape), spans))
            except BaseException as exc:  # noqa: BLE001
                result_queue.put(("error", task_id,
                                  f"worker {worker_index} task {task_id} on "
                                  f"{model!r} failed: {exc!r}"))
    finally:
        in_shm.close()
        out_shm.close()


class ProcessFleetBackend:
    """N worker processes hosting per-process engines behind shared memory.

    ``specs`` maps each model to its parent-engine geometry
    (``{"input_shape": (B, C, H, W), "output_shape": (B, K)}``); arena sizes
    are the max over the fleet, so one pair of arenas per worker serves
    every model.  ``artifact_paths`` maps each model to the ``.rpa`` plan
    artifact its per-process engine bootstraps from.
    """

    def __init__(self, specs: dict[str, dict], artifact_paths: dict[str, str],
                 *, workers: int, mp_context: str = "spawn",
                 start_timeout_s: float = 120.0) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        missing = sorted(set(specs) - set(artifact_paths))
        if missing:
            raise ValueError(f"no artifact path for models {missing}")
        self.specs = {name: dict(spec) for name, spec in specs.items()}
        self.artifact_paths = dict(artifact_paths)
        self.workers = int(workers)
        self.start_timeout_s = float(start_timeout_s)
        self._ctx = mp.get_context(mp_context)
        self._in_bytes = max(
            int(np.prod(spec["input_shape"])) * _ITEMSIZE
            for spec in self.specs.values())
        self._out_bytes = max(
            int(np.prod(spec["output_shape"])) * _ITEMSIZE
            for spec in self.specs.values())
        self._in_shms: list = []
        self._out_shms: list = []
        self._task_queues: list = []
        self._result_queues: list = []
        self._processes: list = []
        self._task_counter = 0
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Spawn the workers and block until every engine set is warm."""
        if self._started:
            raise RuntimeError("backend already started")
        from multiprocessing import shared_memory
        try:
            for index in range(self.workers):
                in_shm = shared_memory.SharedMemory(create=True,
                                                    size=self._in_bytes)
                out_shm = shared_memory.SharedMemory(create=True,
                                                     size=self._out_bytes)
                self._in_shms.append(in_shm)
                self._out_shms.append(out_shm)
                task_queue = self._ctx.Queue()
                result_queue = self._ctx.Queue()
                self._task_queues.append(task_queue)
                self._result_queues.append(result_queue)
                process = self._ctx.Process(
                    target=_worker_main,
                    args=(index, self.artifact_paths, self.specs,
                          in_shm.name, out_shm.name, task_queue, result_queue),
                    name=f"fleet-worker-{index}", daemon=True)
                process.start()
                self._processes.append(process)
            for index in range(self.workers):
                message = self._result_queues[index].get(
                    timeout=self.start_timeout_s)
                if message[0] != "ready":
                    raise RuntimeError(message[2])
            self._started = True
        except BaseException:
            self.close()
            raise

    def __enter__(self) -> "ProcessFleetBackend":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def run(self, worker_index: int, model: str,
            images: Sequence[np.ndarray], trace: dict | None = None):
        """Execute megabatch groups on one worker process.

        ``images`` is a list of stacked per-batch arrays (``(fill, C, H,
        W)`` each, total fill <= the engine batch size).  Returns
        ``(codes_per_group, executions, elapsed_s, spans)`` where each codes
        array has exactly its group's fill rows and the engine's exact
        dtype — bit-identical to in-process execution.  ``elapsed_s`` is the
        worker-measured compute time (IPC excluded), which feeds the EWMA
        cost model.  ``trace`` is ``None`` or ``{"now": parent_trace_stamp,
        "tape": bool}``; when set, ``spans`` carries the worker's span
        tuples aligned to the parent's trace clock (empty otherwise) — see
        :meth:`repro.telemetry.Tracer.adopt`.
        """
        if not self._started or self._closed:
            raise RuntimeError("backend is not running (call start())")
        if not 0 <= worker_index < self.workers:
            raise ValueError(f"worker_index must be in [0, {self.workers}), "
                             f"got {worker_index}")
        if model not in self.specs:
            raise ValueError(f"unknown model {model!r}; "
                             f"fleet: {sorted(self.specs)}")
        fills = [int(np.asarray(group).shape[0]) for group in images]
        flat = np.concatenate([np.asarray(group, dtype=np.float64)
                               for group in images], axis=0)
        if flat.nbytes > self._in_bytes:
            raise ValueError(f"{flat.nbytes} bytes of images exceed the "
                             f"{self._in_bytes}-byte input arena")
        staged = np.ndarray(flat.shape, dtype=np.float64,
                            buffer=self._in_shms[worker_index].buf)
        staged[:] = flat
        task_id = self._task_counter
        self._task_counter += 1
        self._task_queues[worker_index].put(("run", task_id, model, fills,
                                             trace))
        message = self._result_queues[worker_index].get()
        if message[0] == "error":
            raise RuntimeError(message[2])
        _, done_id, elapsed, executions, dtype, shape, spans = message
        if done_id != task_id:
            raise RuntimeError(f"worker {worker_index} answered task "
                               f"{done_id}, expected {task_id}")
        staged_out = np.ndarray(shape, dtype=np.int64,
                                buffer=self._out_shms[worker_index].buf)
        codes = staged_out.astype(np.dtype(dtype))  # exact narrowing cast
        group_codes, offset = [], 0
        for fill in fills:
            group_codes.append(codes[offset:offset + fill])
            offset += fill
        return group_codes, int(executions), float(elapsed), spans

    # ------------------------------------------------------------------ #
    def close(self, join_timeout_s: float = 10.0) -> None:
        """Stop the workers and release the arenas (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for task_queue, process in zip(self._task_queues, self._processes):
            if process.is_alive():
                try:
                    task_queue.put(("stop",))
                except (OSError, ValueError):
                    pass
        for process in self._processes:
            process.join(timeout=join_timeout_s)
            if process.is_alive():
                process.terminate()
                process.join(timeout=join_timeout_s)
        for queue in (*self._task_queues, *self._result_queues):
            queue.close()
            queue.join_thread()
        for shm in (*self._in_shms, *self._out_shms):
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        self._in_shms.clear()
        self._out_shms.clear()
        self._task_queues.clear()
        self._result_queues.clear()
        self._processes.clear()
