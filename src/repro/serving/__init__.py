"""Multi-model serving layer over the integer inference engine.

The TQT paper motivates integer-only inference by what deployment hardware
runs; this package supplies the layer *above* the engine that deployment
actually needs: a fleet server that routes requests by model name to
per-model queues, a dynamic batcher (max-batch / max-wait timeout policy),
a bounded LRU plan cache with compile-on-demand (through
``repro.deploy.compile``), recompile accounting and an optional disk-backed
artifact tier, multi-worker dispatch (``workers=N`` overlaps different
models' batches), SLO-aware admission control backed by an EWMA cost model,
workload generators (Poisson, bursty, diurnal, heavy-tailed) with open- and
closed-loop pacers, priority-class admission (lowest tier preempted first),
a multiprocess fleet backend (``backend="process"`` — per-process tape
engines behind shared-memory arenas) and first-class serving metrics — all
on the same virtual clock as ``repro.engine.BatchedRunner``.  Request-span
tracing rides along: serve with ``telemetry=TelemetryConfig(sample_rate=...)``
(re-exported from :mod:`repro.telemetry`) and the report carries a
Chrome-trace-exportable :class:`~repro.telemetry.Trace`.
"""

from ..faults import (
    BreakerPolicy,
    CircuitBreaker,
    FaultError,
    FaultEvent,
    FaultPlan,
    RetryPolicy,
    WorkerCrashed,
    WorkerTimeout,
)
from ..telemetry.trace import TelemetryConfig
from .admission import AdmissionController, AdmissionDecision, AdmissionPolicy, EwmaCostModel
from .batcher import BatchingPolicy, DynamicBatcher
from .cache import PlanCache
from .metrics import MetricsCollector, ModelStats, percentiles_ms
from .procfleet import ProcessFleetBackend
from .server import FleetReport, FleetServer, ServedRequest
from .workload import (
    SCENARIOS,
    ClosedLoopPacer,
    OpenLoopPacer,
    Request,
    Scenario,
    bursty_arrivals,
    diurnal_arrivals,
    fleet_input_shapes,
    generate_requests,
    heavy_tail_arrivals,
    poisson_arrivals,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionPolicy",
    "EwmaCostModel",
    "BatchingPolicy",
    "DynamicBatcher",
    "PlanCache",
    "MetricsCollector",
    "ModelStats",
    "percentiles_ms",
    "ProcessFleetBackend",
    "FleetReport",
    "FleetServer",
    "ServedRequest",
    "TelemetryConfig",
    "BreakerPolicy",
    "CircuitBreaker",
    "FaultError",
    "FaultEvent",
    "FaultPlan",
    "RetryPolicy",
    "WorkerCrashed",
    "WorkerTimeout",
    "SCENARIOS",
    "ClosedLoopPacer",
    "OpenLoopPacer",
    "Request",
    "Scenario",
    "bursty_arrivals",
    "diurnal_arrivals",
    "fleet_input_shapes",
    "generate_requests",
    "heavy_tail_arrivals",
    "poisson_arrivals",
]
