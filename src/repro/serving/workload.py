"""Workload generation: arrival processes, model mixes and named scenarios.

A serving system's end-to-end behavior is dominated by the *shape* of its
traffic, not just its mean rate — bursts fill queues that a Poisson stream
of the same average never would, and heavy-tailed gaps starve batches that
a steady stream keeps full.  This module produces request streams on the
fleet server's virtual clock from four arrival processes:

* **poisson** — memoryless exponential interarrivals (the classic open-loop
  baseline);
* **bursty** — an on/off source: exponentially distributed ON periods that
  emit a Poisson stream at a high rate, separated by silent OFF periods;
* **diurnal** — an inhomogeneous Poisson process whose rate follows a
  sinusoidal day/night curve, sampled by thinning;
* **heavy_tail** — Lomax (Pareto-II) interarrivals with finite mean but
  high variance, so occasional very long gaps punctuate dense clusters.

Each :class:`Scenario` pairs an arrival process with a model mix and an SLO
deadline; :data:`SCENARIOS` names the presets the serving benchmark sweeps.

**Pacing** (real-execution serving): an arrival process fixes *when* requests
exist; a pacer fixes when they are *offered* to the server on the wall clock.
:class:`OpenLoopPacer` releases each request at its scenario offset no matter
how far behind the server is — arrival timestamps are independent of
completions, so sustained overload shows up as queue growth (the collapse a
flood or closed loop hides).  :class:`ClosedLoopPacer` is the load-tester
baseline: at most ``concurrency`` requests outstanding, the next release
gated on a completion.  The virtual-clock discrete-event loop is open-loop by
construction; these pacers bring the same semantics to ``execution="real"``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

import numpy as np

from ..faults import FaultEvent, FaultPlan
from ..models.registry import MODEL_REGISTRY, available_models

__all__ = [
    "Request",
    "Scenario",
    "SCENARIOS",
    "poisson_arrivals",
    "bursty_arrivals",
    "diurnal_arrivals",
    "heavy_tail_arrivals",
    "fleet_input_shapes",
    "generate_requests",
    "OpenLoopPacer",
    "ClosedLoopPacer",
]


@dataclass(frozen=True)
class Request:
    """One inference request addressed to a named fleet model.

    ``deadline_s`` is the request's latency SLO (seconds from arrival);
    admission control sheds the request when its predicted completion would
    bust the deadline.  ``None`` disables SLO shedding for the request.
    ``priority`` is the request's admission class — higher is more important;
    under SLO pressure the controller sheds the lowest tier first (a queued
    lower-priority request can be preempted to admit a higher one).
    """

    request_id: int
    model: str
    arrival_s: float
    image: np.ndarray
    deadline_s: float | None = None
    priority: int = 0


# ---------------------------------------------------------------------- #
# Arrival processes — each returns sorted arrival offsets in [0, duration)
# ---------------------------------------------------------------------- #
def poisson_arrivals(rate_rps: float, duration_s: float,
                     rng: np.random.Generator) -> np.ndarray:
    """Homogeneous Poisson process: exponential interarrival times."""
    if rate_rps <= 0 or duration_s <= 0:
        return np.empty(0)
    # Draw enough gaps to overshoot the horizon with near-certainty.
    expect = max(8, int(rate_rps * duration_s * 2 + 10 * np.sqrt(rate_rps * duration_s)))
    times = np.cumsum(rng.exponential(1.0 / rate_rps, size=expect))
    while times.size and times[-1] < duration_s:
        times = np.concatenate([times, times[-1] + np.cumsum(
            rng.exponential(1.0 / rate_rps, size=expect))])
    return times[times < duration_s]


def bursty_arrivals(burst_rate_rps: float, duration_s: float,
                    rng: np.random.Generator, *, on_s: float = 0.15,
                    off_s: float = 0.35) -> np.ndarray:
    """On/off source: Poisson bursts at ``burst_rate_rps`` between silences.

    ON and OFF period lengths are exponential with means ``on_s`` / ``off_s``;
    the long-run average rate is ``burst_rate_rps * on_s / (on_s + off_s)``.
    """
    times: list[np.ndarray] = []
    t = 0.0
    while t < duration_s:
        on_end = t + rng.exponential(on_s)
        burst = t + poisson_arrivals(burst_rate_rps, on_end - t, rng)
        times.append(burst[burst < duration_s])
        t = on_end + rng.exponential(off_s)
    return np.concatenate(times) if times else np.empty(0)


def diurnal_arrivals(base_rps: float, peak_rps: float, duration_s: float,
                     rng: np.random.Generator, *, period_s: float = 1.0) -> np.ndarray:
    """Inhomogeneous Poisson with a sinusoidal rate, sampled by thinning.

    The rate swings from ``base_rps`` (trough, at t=0) to ``peak_rps``
    (mid-period), modeling a compressed day/night cycle of ``period_s``.
    """
    if peak_rps < base_rps:
        raise ValueError("peak_rps must be >= base_rps")
    candidates = poisson_arrivals(peak_rps, duration_s, rng)
    rate = base_rps + (peak_rps - base_rps) * 0.5 * (
        1.0 - np.cos(2.0 * np.pi * candidates / period_s))
    keep = rng.random(candidates.size) < rate / peak_rps
    return candidates[keep]


def heavy_tail_arrivals(rate_rps: float, duration_s: float,
                        rng: np.random.Generator, *, alpha: float = 1.7) -> np.ndarray:
    """Lomax (Pareto-II) interarrivals with mean ``1/rate_rps``.

    ``alpha`` is the tail index; ``1 < alpha <= 2`` keeps the mean finite
    while the variance is large (infinite at ``alpha <= 2``), producing long
    quiet gaps between clusters of arrivals.
    """
    if alpha <= 1.0:
        raise ValueError("alpha must be > 1 so the interarrival mean is finite")
    scale = (alpha - 1.0) / rate_rps
    expect = max(8, int(rate_rps * duration_s * 2 + 10 * np.sqrt(rate_rps * duration_s)))
    times = np.cumsum(rng.pareto(alpha, size=expect) * scale)
    while times.size and times[-1] < duration_s:
        times = np.concatenate([times, times[-1] + np.cumsum(
            rng.pareto(alpha, size=expect) * scale)])
    return times[times < duration_s]


_ARRIVALS = {
    "poisson": poisson_arrivals,
    "bursty": bursty_arrivals,
    "diurnal": diurnal_arrivals,
    "heavy_tail": heavy_tail_arrivals,
}


# ---------------------------------------------------------------------- #
# Scenarios
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class Scenario:
    """An arrival process plus a model mix and a latency SLO."""

    name: str
    arrival: str                               # key into the arrival-process table
    duration_s: float
    model_mix: tuple[tuple[str, float], ...]   # (model name, weight) pairs
    slo_ms: float | None = 250.0
    params: dict = field(default_factory=dict)
    #: optional (priority, weight) classes drawn i.i.d. per request; ``None``
    #: leaves every request at the default priority 0
    priority_mix: tuple[tuple[int, float], ...] | None = None
    #: optional deterministic fault schedule for chaos scenarios — pass it to
    #: ``FleetServer.serve(faults=scenario.faults)`` alongside a RetryPolicy
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.arrival not in _ARRIVALS:
            raise ValueError(f"unknown arrival process {self.arrival!r}; "
                             f"available: {sorted(_ARRIVALS)}")
        if not self.model_mix:
            raise ValueError("model_mix must name at least one model")

    @property
    def models(self) -> list[str]:
        return [name for name, _ in self.model_mix]

    def arrival_times(self, rng: np.random.Generator) -> np.ndarray:
        return _ARRIVALS[self.arrival](duration_s=self.duration_s, rng=rng, **self.params)


_DEFAULT_MIX = (("lenet_nano", 0.5), ("mobilenet_v1_nano", 0.5))

#: Preset traffic scenarios swept by ``benchmarks/test_serving_scenarios.py``.
SCENARIOS: dict[str, Scenario] = {
    "steady_poisson": Scenario(
        "steady_poisson", "poisson", duration_s=2.0, model_mix=_DEFAULT_MIX,
        params=dict(rate_rps=150.0)),
    "sparse_poisson": Scenario(
        "sparse_poisson", "poisson", duration_s=2.5, model_mix=_DEFAULT_MIX,
        params=dict(rate_rps=25.0)),
    "bursty": Scenario(
        "bursty", "bursty", duration_s=2.0,
        model_mix=(("lenet_nano", 0.7), ("mobilenet_v1_nano", 0.3)),
        params=dict(burst_rate_rps=450.0, on_s=0.15, off_s=0.35)),
    "diurnal": Scenario(
        "diurnal", "diurnal", duration_s=2.0, model_mix=_DEFAULT_MIX,
        params=dict(base_rps=40.0, peak_rps=320.0, period_s=1.0)),
    "heavy_tail": Scenario(
        "heavy_tail", "heavy_tail", duration_s=2.0,
        model_mix=(("lenet_nano", 0.6), ("mobilenet_v1_nano", 0.4)),
        params=dict(rate_rps=150.0, alpha=1.7)),
    # Chaos preset: steady traffic with a seeded fault schedule — one worker
    # crash, one long task hang (trips the recv deadline) and a short burst
    # of task errors.  Addressed in worker-task coordinates, so the same
    # events replay identically on both clocks and both backends.
    "chaos_steady": Scenario(
        "chaos_steady", "poisson", duration_s=2.0, model_mix=_DEFAULT_MIX,
        params=dict(rate_rps=150.0),
        faults=FaultPlan(events=(
            FaultEvent("worker_crash", worker=0, task_index=2),
            FaultEvent("task_hang", worker=1, task_index=3, duration_s=30.0),
            FaultEvent("task_error", count=2),
        ), seed=8)),
}


def fleet_input_shapes(models: list[str], image_size: int | None = None
                       ) -> dict[str, tuple[int, int, int]]:
    """Per-model ``(C, H, W)`` request shapes from the registry specs."""
    shapes: dict[str, tuple[int, int, int]] = {}
    for name in models:
        try:
            spec = MODEL_REGISTRY[name]
        except KeyError as exc:
            raise ValueError(f"unknown model {name!r}; "
                             f"available: {available_models()}") from exc
        size = image_size if image_size is not None else spec.input_size
        shapes[name] = (spec.in_channels, size, size)
    return shapes


def generate_requests(scenario: Scenario,
                      input_shapes: dict[str, tuple[int, int, int]],
                      seed: int = 0) -> list[Request]:
    """Materialize a scenario into a sorted request stream.

    Arrival times come from the scenario's process, model names are drawn
    i.i.d. from its mix, and images are synthetic standard-normal tensors
    shaped per ``input_shapes`` (see :func:`fleet_input_shapes`).  The same
    ``seed`` reproduces the stream exactly.
    """
    missing = [name for name in scenario.models if name not in input_shapes]
    if missing:
        raise ValueError(f"input_shapes missing entries for {missing}")
    rng = np.random.default_rng(seed)
    times = scenario.arrival_times(rng)
    names = scenario.models
    weights = np.asarray([w for _, w in scenario.model_mix], dtype=np.float64)
    weights = weights / weights.sum()
    picks = rng.choice(len(names), size=times.size, p=weights)
    if scenario.priority_mix is not None:
        tiers = [int(p) for p, _ in scenario.priority_mix]
        tier_w = np.asarray([w for _, w in scenario.priority_mix], dtype=np.float64)
        tier_picks = rng.choice(len(tiers), size=times.size, p=tier_w / tier_w.sum())
        priorities = [tiers[t] for t in tier_picks]
    else:
        priorities = [0] * times.size
    deadline = scenario.slo_ms / 1e3 if scenario.slo_ms is not None else None
    return [
        Request(request_id=i, model=names[picks[i]], arrival_s=float(times[i]),
                image=rng.standard_normal(input_shapes[names[picks[i]]]),
                deadline_s=deadline, priority=priorities[i])
        for i in range(times.size)
    ]


# ---------------------------------------------------------------------- #
# Load-generation pacing (real-execution serving)
# ---------------------------------------------------------------------- #
class OpenLoopPacer:
    """Release requests at their scenario arrival offsets on the wall clock.

    Open-loop load generation: release times follow the arrival process and
    **never** wait for completions — if the server falls behind, requests
    keep arriving and its queues grow, which is exactly the overload signal
    a closed loop (that politely waits) can never produce.
    :meth:`on_completion` is a no-op by contract.

    ``time_scale`` stretches (>1) or compresses (<1) the scenario clock;
    ``clock`` and ``sleep_fn`` are injectable for deterministic tests.  The
    default wait is interruptible: :meth:`abort` wakes a release mid-sleep
    instead of letting the ingest thread doze through the remaining gap.
    """

    kind = "open"

    def __init__(self, requests: Sequence[Request], *, time_scale: float = 1.0,
                 clock: Callable[[], float] = time.perf_counter,
                 sleep_fn: Callable[[float], None] | None = None) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be > 0, got {time_scale}")
        self.requests = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        self.time_scale = float(time_scale)
        self._clock = clock
        self._sleep = sleep_fn
        self._aborted = threading.Event()
        #: per-request release offsets (seconds from pacing start), recorded
        #: as each request is handed out
        self.released: dict[int, float] = {}

    def __iter__(self) -> Iterator[tuple[Request, float]]:
        start = self._clock()
        for req in self.requests:
            if self._aborted.is_set():
                return
            target = req.arrival_s * self.time_scale
            now = self._clock() - start
            if target > now:
                if self._sleep is not None:
                    self._sleep(target - now)
                else:
                    # Event.wait doubles as an abort-interruptible sleep.
                    self._aborted.wait(target - now)
                if self._aborted.is_set():
                    return
                now = self._clock() - start
            self.released[req.request_id] = now
            yield req, now

    def on_completion(self, request_id: int) -> None:
        """Open-loop pacing ignores completions — that is the point."""

    def abort(self) -> None:
        """Stop releasing (a server-side failure is tearing serving down)."""
        self._aborted.set()


class ClosedLoopPacer:
    """Completion-gated release: at most ``concurrency`` requests in flight.

    The classic load-tester loop — each of ``concurrency`` virtual users
    issues its next request only once the previous one finished — so the
    offered rate adapts to server capacity and arrival timestamps *depend on*
    completions.  Useful as the contrast baseline for the open-loop pacer;
    scenario arrival offsets only fix the release *order*.
    """

    kind = "closed"

    def __init__(self, requests: Sequence[Request], *, concurrency: int = 1,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        self.requests = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        self.concurrency = int(concurrency)
        self._clock = clock
        self._cond = threading.Condition()
        self._outstanding = 0
        self._aborted = False
        self.max_outstanding = 0
        self.released: dict[int, float] = {}

    def __iter__(self) -> Iterator[tuple[Request, float]]:
        start = self._clock()
        for req in self.requests:
            with self._cond:
                while self._outstanding >= self.concurrency and not self._aborted:
                    self._cond.wait()
                if self._aborted:
                    return
                self._outstanding += 1
                self.max_outstanding = max(self.max_outstanding, self._outstanding)
            now = self._clock() - start
            self.released[req.request_id] = now
            yield req, now

    def on_completion(self, request_id: int) -> None:
        """Free one in-flight slot (shed requests count as completed here)."""
        with self._cond:
            if self._outstanding > 0:
                self._outstanding -= 1
            self._cond.notify()

    def abort(self) -> None:
        """Unblock the release loop (a server-side failure is tearing down)."""
        with self._cond:
            self._aborted = True
            self._cond.notify_all()
