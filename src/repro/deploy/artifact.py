"""Persistent plan artifacts: content-addressed serialization of compiled plans.

An artifact is one ``.rpa`` file (a zip container) holding everything a
fresh process needs to serve a compiled model *without re-running any stage
of the compile pipeline*:

* ``plan.pkl`` — the (optimized) execution plan: lowered steps, weight
  codes, prepacked GEMM layouts, and the autotuner's cached kernel choices;
* ``manifest.json`` — format version, the plan's content fingerprint, the
  originating :class:`~repro.deploy.CompileConfig`, the optimizer pass log,
  the kernel-choice table, and a SHA-256 of the payload.

Two hashes with two jobs:

* :func:`config_key` — hash of *(model name, compile config)*.  Computable
  before compiling, so the serving cache's disk tier can look up an
  artifact for a model it has never compiled in this process.
* :func:`plan_fingerprint` — hash of the plan *content* (step structure,
  weight codes, quantization stages).  Recomputed at load and compared to
  the manifest; a mismatch means the payload no longer matches what the
  manifest claims (stale or tampered artifact) and loading refuses.

The payload checksum catches bit-rot and truncation before unpickling is
attempted.  Artifacts are trusted local files — the payload is a pickle,
so never load artifacts from untrusted sources.
"""

from __future__ import annotations

import hashlib
import io
import json
import pickle
import zipfile
from pathlib import Path

import numpy as np

from ..engine.optimizer import OptimizedPlan
from ..engine.plan import ExecutionPlan
from .config import CompileConfig

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "ARTIFACT_SUFFIX",
    "ArtifactError",
    "ArtifactVersionError",
    "plan_fingerprint",
    "config_key",
    "artifact_path",
    "save_artifact",
    "load_artifact",
]

ARTIFACT_FORMAT = "repro-plan-artifact"
#: Version 2: the tape executor changed the serialized plan payload
#: (``OptimizedPlan.tape_kernel_choices`` rides in the pickle, and the
#: manifest carries the tape section).  Version-1 artifacts are migrated by
#: re-lowering from their manifest's compile config — see
#: :meth:`repro.deploy.Deployment.load`.
ARTIFACT_VERSION = 2
ARTIFACT_SUFFIX = ".rpa"

#: step attributes derived deterministically from other fingerprinted state
#: (prepacked GEMM layouts are recomputed from the weight codes)
_DERIVED_STEP_KEYS = frozenset({"packed"})


class ArtifactError(RuntimeError):
    """The artifact cannot be read: missing, corrupt, stale, or wrong format."""


class ArtifactVersionError(ArtifactError):
    """The artifact is a readable older format version.

    Carries the parsed manifest so callers can migrate (re-lower from the
    stored compile config) instead of failing — see
    :meth:`repro.deploy.Deployment.load`.
    """

    def __init__(self, message: str, manifest: dict) -> None:
        super().__init__(message)
        self.manifest = manifest


# ---------------------------------------------------------------------- #
# Content fingerprinting
# ---------------------------------------------------------------------- #
def _feed(h, obj) -> None:
    """Canonical, recursive hash update over plan-step object graphs."""
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, (bool, np.bool_)):
        h.update(b"B1" if obj else b"B0")
    elif isinstance(obj, (int, np.integer)):
        h.update(b"I" + str(int(obj)).encode())
    elif isinstance(obj, (float, np.floating)):
        h.update(b"F" + repr(float(obj)).encode())
    elif isinstance(obj, str):
        data = obj.encode()
        h.update(b"S" + str(len(data)).encode() + b":" + data)
    elif isinstance(obj, bytes):
        h.update(b"Y" + str(len(obj)).encode() + b":" + obj)
    elif isinstance(obj, np.dtype):
        h.update(b"D" + obj.str.encode())
    elif isinstance(obj, np.ndarray):
        h.update(b"A" + obj.dtype.str.encode() + repr(obj.shape).encode())
        h.update(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, (list, tuple)):
        h.update(b"L" + str(len(obj)).encode())
        for item in obj:
            _feed(h, item)
    elif isinstance(obj, dict):
        h.update(b"M" + str(len(obj)).encode())
        for key in sorted(obj, key=repr):
            _feed(h, key)
            _feed(h, obj[key])
    elif hasattr(obj, "__dict__"):
        # Plan steps, QuantStage instances, fused-activation wrappers: hash
        # the class name plus the instance state, minus derived caches.
        h.update(b"O" + type(obj).__name__.encode())
        state = {k: v for k, v in vars(obj).items() if k not in _DERIVED_STEP_KEYS}
        _feed(h, state)
    else:
        raise TypeError(f"cannot fingerprint object of type {type(obj).__name__}")


def plan_fingerprint(plan: ExecutionPlan) -> str:
    """Content hash of a plan: graph identity, step structure, weight codes.

    Tuning state (autotune kernel choices, the optimizer report) is
    deliberately excluded — two plans that compute the same integer function
    through the same steps fingerprint identically regardless of which
    kernel variants they ended up running.
    """
    h = hashlib.sha256()
    _feed(h, (plan.graph_name, plan.input_name, plan.output_name))
    _feed(h, list(plan.steps))
    return h.hexdigest()


def config_key(model: str, config: CompileConfig) -> str:
    """Content address of *(model, compile config)* — computable pre-compile."""
    payload = json.dumps({"model": model, "config": config.to_dict()},
                         sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def artifact_path(directory: str | Path, model: str, config: CompileConfig) -> Path:
    """Canonical artifact location for a model/config pair in a cache dir."""
    return Path(directory) / f"{model}-{config_key(model, config)}{ARTIFACT_SUFFIX}"


# ---------------------------------------------------------------------- #
# Save / load
# ---------------------------------------------------------------------- #
def save_artifact(path: str | Path, plan: ExecutionPlan, *, model: str,
                  input_shape: tuple[int, ...], accumulate: str = "blas",
                  config: CompileConfig | None = None) -> dict:
    """Write a plan artifact; returns the manifest that was stored.

    The plan is serialized as-is — including prepacked weights and any
    cached autotune choices — so a load skips lowering, optimization and
    micro-profiling entirely.
    """
    path = Path(path)
    payload = pickle.dumps(plan, protocol=pickle.HIGHEST_PROTOCOL)
    optimized = isinstance(plan, OptimizedPlan)
    manifest = {
        "format": ARTIFACT_FORMAT,
        "version": ARTIFACT_VERSION,
        "model": model,
        "graph": plan.graph_name,
        "fingerprint": plan_fingerprint(plan),
        "config": config.to_dict() if config is not None else None,
        "input_shape": [int(s) for s in input_shape],
        "accumulate": accumulate,
        "optimized": optimized,
        "pass_log": (list(plan.report.passes)
                     if optimized and plan.report is not None else []),
        "optimizer_report": (plan.report.to_dict()
                             if optimized and plan.report is not None else None),
        "kernel_choices": (dict(plan.kernel_choices)
                           if optimized and plan.kernel_choices else None),
        "tape_kernel_choices": (
            dict(plan.tape_kernel_choices)
            if optimized and getattr(plan, "tape_kernel_choices", None) else None),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
        "payload_bytes": len(payload),
        "numpy": np.__version__,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w", compression=zipfile.ZIP_DEFLATED) as archive:
        archive.writestr("manifest.json", json.dumps(manifest, indent=2, sort_keys=True))
        archive.writestr("plan.pkl", payload)
    # Write-then-rename so a crashed save never leaves a half-written
    # artifact where the cache's disk tier would try to load it.
    temp = path.with_suffix(path.suffix + ".tmp")
    temp.write_bytes(buffer.getvalue())
    temp.replace(path)
    return manifest


def load_artifact(path: str | Path) -> tuple[ExecutionPlan, dict]:
    """Read an artifact back; returns ``(plan, manifest)``.

    Raises :class:`ArtifactError` with a specific reason when the file is
    missing, not an artifact, a different format version, corrupt (payload
    checksum mismatch), or stale (plan content no longer matches the
    manifest's fingerprint).
    """
    path = Path(path)
    if not path.exists():
        raise ArtifactError(f"artifact {path} does not exist")
    try:
        archive = zipfile.ZipFile(path)
    except zipfile.BadZipFile as exc:
        raise ArtifactError(f"{path} is not a plan artifact (not a zip "
                            f"container): {exc}") from exc
    with archive:
        names = set(archive.namelist())
        if "manifest.json" not in names or "plan.pkl" not in names:
            raise ArtifactError(
                f"artifact {path} is corrupt: missing "
                f"{sorted({'manifest.json', 'plan.pkl'} - names)}")
        try:
            manifest = json.loads(archive.read("manifest.json"))
        except (json.JSONDecodeError, UnicodeDecodeError,
                zipfile.BadZipFile) as exc:
            raise ArtifactError(f"artifact {path} is corrupt: unreadable "
                                f"manifest ({exc})") from exc
        try:
            payload = archive.read("plan.pkl")
        except zipfile.BadZipFile as exc:
            raise ArtifactError(f"artifact {path} is corrupt: plan payload "
                                f"unreadable ({exc})") from exc
    if manifest.get("format") != ARTIFACT_FORMAT:
        raise ArtifactError(f"{path} is not a plan artifact "
                            f"(format {manifest.get('format')!r})")
    version = manifest.get("version")
    if version != ARTIFACT_VERSION:
        if isinstance(version, int) and 0 < version < ARTIFACT_VERSION:
            raise ArtifactVersionError(
                f"artifact {path} has older format version {version}; this "
                f"build writes version {ARTIFACT_VERSION} — migrate by "
                f"re-lowering from the manifest config "
                f"(repro.deploy.Deployment.load does this automatically)",
                manifest)
        raise ArtifactError(f"artifact {path} has format version "
                            f"{version!r}; this build reads "
                            f"version {ARTIFACT_VERSION}")
    digest = hashlib.sha256(payload).hexdigest()
    if digest != manifest.get("payload_sha256"):
        raise ArtifactError(f"artifact {path} is corrupt: payload checksum "
                            f"{digest[:12]}… does not match the manifest")
    try:
        plan = pickle.loads(payload)
    except Exception as exc:
        raise ArtifactError(f"artifact {path} is corrupt: plan payload "
                            f"failed to deserialize ({exc})") from exc
    if not isinstance(plan, ExecutionPlan):
        raise ArtifactError(f"artifact {path} is corrupt: payload is a "
                            f"{type(plan).__name__}, not an execution plan")
    fingerprint = plan_fingerprint(plan)
    if fingerprint != manifest.get("fingerprint"):
        raise ArtifactError(
            f"artifact {path} is stale: plan content fingerprint "
            f"{fingerprint[:12]}… does not match the manifest's "
            f"{str(manifest.get('fingerprint'))[:12]}… — the artifact no "
            f"longer matches the graph/quantization state it claims; recompile")
    return plan, manifest
