"""The deployment front door: one compile call, one object to run and ship.

:func:`compile` goes from a registry name (or an already-quantized graph) to
a :class:`Deployment` in one step, driven by a single
:class:`~repro.deploy.CompileConfig` instead of kwargs scattered across
``compile_registry_model`` / ``optimize_plan`` / ``ExecutionPlan.bind`` /
``BatchedRunner`` / ``FleetServer``.  The deployment object then exposes the
whole serving surface:

* :meth:`Deployment.run` / :meth:`Deployment.run_partial` — direct engine
  execution;
* :meth:`Deployment.runner` — a batched serving runner, optionally sharded
  across worker threads;
* :meth:`Deployment.serve` — a :class:`~repro.serving.FleetServer` with this
  deployment preloaded into the plan cache;
* :meth:`Deployment.profile` — the per-step timing breakdown;
* :meth:`Deployment.save` / :meth:`Deployment.load` — persistent plan
  artifacts.  A loaded deployment binds the deserialized plan (prepacked
  weights, cached autotune choices) and performs **zero** re-lowering,
  re-optimization and re-profiling; it is bit-exact with a fresh compile of
  the same config.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import Sequence

import numpy as np

from ..data import SyntheticImageNet, sample_calibration_batches
from ..engine.optimizer import OptimizedPlan, optimize_plan
from ..engine.plan import (
    CompiledEngine,
    EngineOutput,
    ExecutionPlan,
    PlanProfile,
    StepTiming,
    lower_graph,
)
from ..engine.runner import BatchedRunner
from ..graph import GraphIR, QuantizedModel, quantize_static, transforms
from ..models.compiled import CompiledModel
from ..models.inception import avgpool_channel_hints
from ..models.registry import MODEL_REGISTRY, available_models
from .artifact import ArtifactVersionError, load_artifact, plan_fingerprint, save_artifact
from .config import CompileConfig, ServeConfig

__all__ = ["Deployment", "compile", "load"]


def _compile_registry(name: str, config: CompileConfig) -> CompiledModel:
    """Build → transform → statically quantize → lower → optimize → bind."""
    try:
        spec = MODEL_REGISTRY[name]
    except KeyError as exc:
        raise ValueError(f"unknown model {name!r}; available: "
                         f"{available_models()}") from exc
    image_size = config.image_size if config.image_size is not None else spec.input_size
    quant, runtime = config.quant, config.runtime

    graph = spec.build(num_classes=config.num_classes, seed=quant.seed,
                       **config.model_kwargs)
    graph.eval()
    transforms.run_default_optimizations(graph, channel_hints=avgpool_channel_hints(graph))

    dataset = SyntheticImageNet(num_classes=config.num_classes, image_size=image_size,
                                train_size=quant.calibration_samples,
                                val_size=max(quant.calibration_samples,
                                             quant.calibration_batch_size),
                                seed=quant.seed)
    calibration = sample_calibration_batches(dataset,
                                             num_samples=quant.calibration_samples,
                                             batch_size=quant.calibration_batch_size,
                                             seed=quant.seed)
    quantized = quantize_static(graph, calibration, precision=quant.precision,
                                sequential=quant.sequential_calibration, copy=False)

    plan = lower_graph(quantized.graph)
    optimization = None
    if config.optimize:
        plan = optimize_plan(plan, autotune=config.autotune)
        optimization = plan.report.to_dict()
    engine = plan.bind((runtime.batch_size, spec.in_channels, image_size, image_size),
                       accumulate=runtime.accumulate, mode=runtime.mode,
                       fuse=runtime.fuse)
    return CompiledModel(spec=spec, quantized=quantized, plan=plan, engine=engine,
                         calibration_batches=calibration, image_size=image_size,
                         num_classes=config.num_classes, optimization=optimization)


def compile(model_or_name: str | GraphIR | QuantizedModel,  # noqa: A001 - the API name
            config: CompileConfig | None = None, **overrides) -> "Deployment":
    """Compile a model for integer deployment.

    ``model_or_name`` is a registry name (the model is built, transformed
    and statically quantized from the config's recipe), an
    already-quantized :class:`~repro.graph.ir.GraphIR`, or a
    :class:`~repro.graph.QuantizedModel`.  Flat keyword ``overrides`` are
    routed into the nested config (``batch_size=4`` → runtime,
    ``calibration_samples=8`` → quant, unknown names → model kwargs), so
    call sites migrating from the legacy entry points keep their spelling.
    """
    config = (config if config is not None else CompileConfig())
    if overrides:
        config = config.with_overrides(**overrides)

    if isinstance(model_or_name, str):
        compiled = _compile_registry(model_or_name, config)
        return Deployment(model=model_or_name, config=config, plan=compiled.plan,
                          engine=compiled.engine, compiled=compiled, source="compiled")

    graph = (model_or_name.graph if isinstance(model_or_name, QuantizedModel)
             else model_or_name)
    if not isinstance(graph, GraphIR):
        raise TypeError(f"compile() expects a registry name, GraphIR or "
                        f"QuantizedModel, got {type(model_or_name).__name__}")
    if config.image_size is None:
        raise ValueError("compile(GraphIR, ...) requires config.image_size "
                         "(there is no registry spec to default from)")
    plan = lower_graph(graph)
    if config.optimize:
        plan = optimize_plan(plan, autotune=config.autotune)
    runtime = config.runtime
    engine = plan.bind((runtime.batch_size, config.in_channels,
                        config.image_size, config.image_size),
                       accumulate=runtime.accumulate, mode=runtime.mode,
                       fuse=runtime.fuse)
    return Deployment(model=graph.graph_name, config=config, plan=plan,
                      engine=engine, compiled=None, source="compiled",
                      graph=graph)


def load(path: str | Path) -> "Deployment":
    """Module-level alias for :meth:`Deployment.load`."""
    return Deployment.load(path)


class Deployment:
    """A compiled model plus everything needed to run, serve and ship it."""

    def __init__(self, *, model: str, config: CompileConfig, plan: ExecutionPlan,
                 engine: CompiledEngine, compiled: CompiledModel | None = None,
                 source: str = "compiled", manifest: dict | None = None,
                 graph: GraphIR | None = None) -> None:
        self.model = model
        self.config = config
        self.plan = plan
        self.engine = engine
        self.compiled = compiled
        self.source = source                   # "compiled" | "artifact"
        self.artifact_manifest = manifest      # set on loaded deployments
        self._graph = graph

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> GraphIR:
        """The fake-quant simulation graph (fresh compiles only)."""
        if self.compiled is not None:
            return self.compiled.quantized.graph
        if self._graph is not None:
            return self._graph
        raise AttributeError(
            "this deployment was loaded from an artifact; the fake-quant "
            "simulation graph is not serialized (recompile to parity-check)")

    @property
    def input_shape(self) -> tuple[int, ...]:
        return self.engine.input_shape

    @property
    def batch_size(self) -> int:
        return self.engine.batch_size

    @property
    def output_meta(self):
        return self.engine.output_meta

    @property
    def optimized(self) -> bool:
        return isinstance(self.plan, OptimizedPlan)

    @property
    def kernel_choices(self) -> dict[str, str] | None:
        """Cached autotune decisions riding on the plan (and its artifacts)."""
        return self.plan.kernel_choices if self.optimized else None

    @property
    def pass_log(self) -> list[str]:
        """Optimizer passes the plan went through (empty when unoptimized)."""
        if self.optimized and self.plan.report is not None:
            return list(self.plan.report.passes)
        return []

    @property
    def fingerprint(self) -> str:
        """Content hash of the plan (stable across save/load round trips)."""
        return plan_fingerprint(self.plan)

    def manifest(self) -> dict:
        """Plan manifest extended with deployment-level metadata."""
        data = self.plan.manifest()
        data["deployment"] = {
            "model": self.model,
            "source": self.source,
            "input_shape": list(self.engine.input_shape),
            "accumulate": self.engine.accumulate,
            "fingerprint": self.fingerprint,
            "pass_log": self.pass_log,
            "config": self.config.to_dict(),
        }
        return data

    def summary(self) -> str:
        return self.plan.summary()

    def __repr__(self) -> str:
        return (f"Deployment(model={self.model!r}, source={self.source!r}, "
                f"input_shape={self.engine.input_shape}, "
                f"optimized={self.optimized})")

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(self, x: np.ndarray) -> EngineOutput:
        """Execute one full batch through the compiled engine."""
        return self.engine.run(x)

    def run_partial(self, images: np.ndarray) -> EngineOutput:
        """Execute a partially filled batch (``1 <= fill <= batch_size``)."""
        return self.engine.run_partial(images)

    def profile(self, x: np.ndarray | None = None, repeats: int = 5,
                level: str = "steps") -> PlanProfile:
        """Timing breakdown of the bound engine.

        ``level="steps"`` (default) times the plan's step interpreter — one
        row per lowered plan step.  ``level="tape"`` times the compiled
        instruction program the default runtime actually executes: fused
        elementwise chains appear as single instructions and tunable groups
        resolve to their chosen kernel variant, so the rows are what the
        wall clock really pays per pass (requires a tape-mode engine).
        """
        if level == "steps":
            return self.engine.profile(x=x, repeats=repeats)
        if level != "tape":
            raise ValueError(f"level must be 'steps' or 'tape', got {level!r}")
        engine = self.engine
        if engine.mode != "tape":
            raise ValueError("level='tape' requires a tape-mode engine "
                             "(compile with runtime mode='tape')")
        tape = engine._ensure_tape()
        probe = np.zeros(engine.input_shape) if x is None else x
        probe = engine._check_input(probe)
        np.copyto(tape.input_buffer, probe)
        timings = tape.profile(repeats=repeats)
        total_s = sum(seconds for _, _, seconds in timings) or 1.0
        steps = [StepTiming(name=name, op=kind, mean_ms=seconds * 1e3,
                            share=seconds / total_s)
                 for name, kind, seconds in timings]
        return PlanProfile(graph_name=self.plan.graph_name,
                           input_shape=tuple(engine.input_shape),
                           repeats=repeats, steps=steps,
                           total_ms=sum(t.mean_ms for t in steps))

    def runner(self, workers: int | None = None) -> BatchedRunner:
        """A batched serving runner over this deployment's engine.

        ``workers`` defaults to the runtime config; ``workers > 1`` shards
        every batch across per-worker engines bound from the same plan (the
        cached autotune choices are reapplied, not re-profiled).
        """
        workers = workers if workers is not None else self.config.runtime.workers
        return BatchedRunner(self.engine, workers=workers)

    def serve(self, serve: ServeConfig | None = None, *, compute_time_fn=None,
              compile_config: CompileConfig | None = None,
              preload: "Sequence[Deployment]" = ()):
        """Stand up a :class:`~repro.serving.FleetServer` around this deployment.

        The fleet always contains this deployment's model (preloaded into
        the plan cache, so it is never recompiled); ``preload`` seeds
        *additional* already-compiled deployments the same way — a
        multi-model fleet can come up with zero mid-stream compiles —
        and ``serve.fleet`` adds registry models compiled on demand with
        this deployment's compile config (or ``compile_config`` when
        given).  When ``serve.artifact_dir`` is set the cache gains a disk
        tier: plans are loaded from / saved to content-addressed artifacts.
        """
        from ..serving import AdmissionPolicy, BatchingPolicy, FleetServer

        serve = serve if serve is not None else ServeConfig()
        preload = list(preload)
        batch_size = self.config.runtime.batch_size
        max_batch = serve.max_batch if serve.max_batch is not None else batch_size
        fleet = [self.model]
        for deployment in preload:
            if deployment.model in fleet:
                raise ValueError(f"duplicate preloaded deployment for "
                                 f"{deployment.model!r}")
            if deployment.batch_size < max_batch:
                raise ValueError(
                    f"preloaded deployment {deployment.model!r} is bound to "
                    f"batch_size {deployment.batch_size}, below the serving "
                    f"max_batch {max_batch}")
            fleet.append(deployment.model)
        fleet += [m for m in serve.fleet if m not in fleet]
        policy = (BatchingPolicy.full_batch(max_batch) if serve.max_wait_s is None
                  else BatchingPolicy.dynamic(max_batch, serve.max_wait_s))
        server = FleetServer(
            fleet,
            batch_size=batch_size,
            policy=policy,
            admission=AdmissionPolicy(max_queue_depth=serve.max_queue_depth,
                                      slo_shed=serve.slo_shed,
                                      priority_shed=serve.priority_shed),
            cache_capacity=serve.cache_capacity,
            compile_config=compile_config if compile_config is not None else self.config,
            compute_time_fn=compute_time_fn,
            warm=False,
            workers=serve.workers,
            shard_workers=serve.shard_workers,
            artifact_dir=serve.artifact_dir,
            disk_max_bytes=serve.disk_max_bytes,
            execution=serve.execution,
            backend=serve.backend,
            telemetry=serve.telemetry,
            faults=serve.faults,
            retry=serve.retry,
            breaker=serve.breaker,
        )
        server.cache.put(self.model, self)
        for deployment in preload:
            server.cache.put(deployment.model, deployment)
        if serve.warm:
            server.warm_up()
        return server

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> Path:
        """Write this deployment's plan artifact; returns the path.

        The artifact carries the lowered (optimized) plan with prepacked
        weights, the optimizer pass log, and the autotuned kernel choices,
        content-addressed by the plan fingerprint.  Loading it skips the
        whole compile pipeline.
        """
        path = Path(path)
        save_artifact(path, self.plan, model=self.model,
                      input_shape=self.engine.input_shape,
                      accumulate=self.engine.accumulate, config=self.config)
        return path

    @classmethod
    def load(cls, path: str | Path, migrate: bool = True) -> "Deployment":
        """Rebuild a deployment from an artifact — no recompilation.

        The deserialized plan already carries prepacked weights and the
        cached autotune choices (step-level *and* tape-level), so the only
        work performed is the buffer bind plus the tape compile; lowering,
        optimizer passes and kernel micro-profiling all stay at zero
        (observable via :data:`repro.engine.PIPELINE_COUNTERS`), and the
        engine is bit-exact with a fresh compile of the same config.

        **Version migration:** a version-1 artifact (pre-tape payload) is
        transparently migrated when ``migrate=True`` — the model is
        recompiled from the manifest's stored compile config (this *does*
        re-lower, once) and the artifact is rewritten in the current format,
        so shipped fleets roll forward instead of dying on
        :class:`~repro.deploy.ArtifactError`.
        """
        try:
            plan, manifest = load_artifact(path)
        except ArtifactVersionError as exc:
            if not migrate:
                raise
            return cls._migrate(path, exc.manifest)
        config = (CompileConfig.from_dict(manifest["config"])
                  if manifest.get("config") else CompileConfig())
        runtime = config.runtime
        engine = plan.bind(tuple(manifest["input_shape"]),
                           accumulate=manifest.get("accumulate", "blas"),
                           mode=runtime.mode, fuse=runtime.fuse)
        return cls(model=manifest["model"], config=config, plan=plan,
                   engine=engine, compiled=None, source="artifact",
                   manifest=manifest)

    @classmethod
    def _migrate(cls, path: str | Path, manifest: dict) -> "Deployment":
        """Re-lower a readable older-version artifact and rewrite it."""
        if not manifest.get("config"):
            raise ArtifactVersionError(
                f"artifact {path} is version {manifest.get('version')!r} and "
                f"carries no compile config to re-lower from; recompile and "
                f"re-save it", manifest)
        model = manifest.get("model")
        if model not in MODEL_REGISTRY:
            # GraphIR/QuantizedModel compiles store the graph name, not a
            # registry name — there is nothing to re-lower from.
            raise ArtifactVersionError(
                f"artifact {path} is version {manifest.get('version')!r} for "
                f"{model!r}, which is not a registry model; migration can "
                f"only re-lower registry compiles — recompile the graph and "
                f"re-save the artifact", manifest)
        config = CompileConfig.from_dict(manifest["config"])
        warnings.warn(
            f"artifact {path} is format version {manifest.get('version')}; "
            f"re-lowering {model!r} from its stored compile config and "
            f"rewriting the artifact in the current format",
            UserWarning, stacklevel=3)
        deployment = compile(model, config)
        deployment.save(path)
        deployment.source = "artifact-migrated"
        return deployment
