"""One compile-and-deploy API over the quantize → lower → optimize pipeline.

``repro.deploy`` is the single front door from a model to a served,
persistable integer deployment::

    from repro import deploy

    dep = deploy.compile("mobilenet_v1_nano",
                         deploy.CompileConfig(image_size=8,
                                              runtime=deploy.RuntimeConfig(batch_size=4)))
    out = dep.run(batch)                    # direct engine execution
    results, stats = dep.runner(workers=2).run(requests)
    server = dep.serve(deploy.ServeConfig(fleet=("lenet_nano",)))

    dep.save("mobilenet.rpa")               # persistent plan artifact
    warm = deploy.Deployment.load("mobilenet.rpa")   # zero recompilation

Typed config dataclasses (:class:`CompileConfig`, :class:`QuantConfig`,
:class:`RuntimeConfig`, :class:`ServeConfig`) replace the kwarg sprawl of
the legacy entry points; plan artifacts (:mod:`repro.deploy.artifact`)
persist the lowered plan, prepacked weights, optimizer pass log and
autotuned kernel choices across processes, content-addressed by a
graph/quant-parameter hash.
"""

from .artifact import (
    ARTIFACT_SUFFIX,
    ARTIFACT_VERSION,
    ArtifactError,
    ArtifactVersionError,
    artifact_path,
    config_key,
    load_artifact,
    plan_fingerprint,
    save_artifact,
)
from .config import CompileConfig, QuantConfig, RuntimeConfig, ServeConfig
from .deployment import Deployment, compile, load

__all__ = [
    "ARTIFACT_SUFFIX",
    "ARTIFACT_VERSION",
    "ArtifactError",
    "ArtifactVersionError",
    "artifact_path",
    "config_key",
    "load_artifact",
    "plan_fingerprint",
    "save_artifact",
    "CompileConfig",
    "QuantConfig",
    "RuntimeConfig",
    "ServeConfig",
    "Deployment",
    "compile",
    "load",
]
