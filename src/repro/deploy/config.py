"""Typed configuration objects for the deployment API.

One compile call used to mean threading a dozen loose kwargs through
``compile_registry_model`` → ``optimize_plan`` → ``ExecutionPlan.bind`` →
``BatchedRunner`` / ``FleetServer``.  These dataclasses replace that kwarg
sprawl with four nested, validated configs:

* :class:`QuantConfig` — how the model is statically quantized (calibration
  budget, per-layer precision, seed).  Distinct from
  :class:`repro.quant.config.QuantConfig`, which describes a *single
  quantizer*; this one describes the deployment-level quantization recipe.
* :class:`RuntimeConfig` — how the compiled plan executes (batch shape,
  accumulation backend, default shard workers).
* :class:`CompileConfig` — the full compile recipe: model parameters plus
  the two configs above plus the optimizer/autotune switches.  Its
  :meth:`CompileConfig.to_dict` form is canonical and feeds the
  content-address hash of plan artifacts (:func:`repro.deploy.config_key`).
* :class:`ServeConfig` — how a deployment is served: batching policy,
  admission control, cache capacity, dispatch/shard workers, and the
  artifact directory backing the plan cache's disk tier.

Every config is frozen; derive variants with :func:`dataclasses.replace` or
:meth:`CompileConfig.with_overrides` (which also understands the legacy flat
kwarg names, so migration from the old entry points is mechanical).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from pathlib import Path

from ..quant.config import LayerPrecision
from ..faults import BreakerPolicy, FaultPlan, RetryPolicy
from ..telemetry.trace import TelemetryConfig

__all__ = ["QuantConfig", "RuntimeConfig", "CompileConfig", "ServeConfig"]


@dataclass(frozen=True)
class QuantConfig:
    """Static-quantization recipe for one deployment."""

    calibration_samples: int = 16
    calibration_batch_size: int = 8
    sequential_calibration: bool = False
    precision: LayerPrecision | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.calibration_samples < 1:
            raise ValueError(f"calibration_samples must be >= 1, "
                             f"got {self.calibration_samples}")
        if self.calibration_batch_size < 1:
            raise ValueError(f"calibration_batch_size must be >= 1, "
                             f"got {self.calibration_batch_size}")

    def to_dict(self) -> dict:
        data = asdict(self)
        if self.precision is not None:
            data["precision"] = asdict(self.precision)
        return data


@dataclass(frozen=True)
class RuntimeConfig:
    """Execution parameters of the bound engine."""

    batch_size: int = 8
    accumulate: str = "blas"
    workers: int = 1          # default shard count for Deployment.runner()
    mode: str = "tape"        # "tape" (flat instruction program) | "steps"
    fuse: bool = True         # tape elementwise-chain fusion (A/B knob)

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.accumulate not in ("blas", "int"):
            raise ValueError(f"accumulate must be 'blas' or 'int', "
                             f"got {self.accumulate!r}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.mode not in ("tape", "steps"):
            raise ValueError(f"mode must be 'tape' or 'steps', got {self.mode!r}")

    def to_dict(self) -> dict:
        return asdict(self)


#: legacy flat kwarg name -> (nested config attribute, field name)
_FLAT_QUANT = ("calibration_samples", "calibration_batch_size",
               "sequential_calibration", "precision", "seed")
_FLAT_RUNTIME = ("batch_size", "accumulate", "workers", "mode", "fuse")


@dataclass(frozen=True)
class CompileConfig:
    """Everything :func:`repro.deploy.compile` needs beyond the model name."""

    num_classes: int = 10
    image_size: int | None = None     # None -> the registry spec's input size
    in_channels: int = 3
    quant: QuantConfig = field(default_factory=QuantConfig)
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)
    optimize: bool = True
    autotune: bool = True
    model_kwargs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_classes < 1:
            raise ValueError(f"num_classes must be >= 1, got {self.num_classes}")
        if self.image_size is not None and self.image_size < 1:
            raise ValueError(f"image_size must be >= 1, got {self.image_size}")
        if self.in_channels < 1:
            raise ValueError(f"in_channels must be >= 1, got {self.in_channels}")

    def to_dict(self) -> dict:
        """Canonical JSON-serializable form (feeds the artifact hash)."""
        return {
            "num_classes": self.num_classes,
            "image_size": self.image_size,
            "in_channels": self.in_channels,
            "quant": self.quant.to_dict(),
            "runtime": self.runtime.to_dict(),
            "optimize": self.optimize,
            "autotune": self.autotune,
            "model_kwargs": dict(self.model_kwargs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CompileConfig":
        quant = dict(data.get("quant", {}))
        if quant.get("precision") is not None:
            quant["precision"] = LayerPrecision(**quant["precision"])
        return cls(
            num_classes=data.get("num_classes", 10),
            image_size=data.get("image_size"),
            in_channels=data.get("in_channels", 3),
            quant=QuantConfig(**quant),
            runtime=RuntimeConfig(**data.get("runtime", {})),
            optimize=data.get("optimize", True),
            autotune=data.get("autotune", True),
            model_kwargs=dict(data.get("model_kwargs", {})),
        )

    def with_overrides(self, **overrides) -> "CompileConfig":
        """New config with flat (legacy-style) kwargs routed to their homes.

        ``batch_size=4`` lands in :attr:`runtime`, ``calibration_samples=8``
        in :attr:`quant`, ``num_classes=6`` on the top level; unknown names
        accumulate into :attr:`model_kwargs` (they are forwarded to the
        registry factory, exactly as the legacy entry point forwarded them).
        """
        top = {f.name for f in fields(CompileConfig)} - {"quant", "runtime",
                                                         "model_kwargs"}
        quant_updates, runtime_updates, top_updates = {}, {}, {}
        extra_kwargs = {}
        for name, value in overrides.items():
            if name in top or name in ("quant", "runtime"):
                top_updates[name] = value
            elif name in _FLAT_QUANT:
                quant_updates[name] = value
            elif name in _FLAT_RUNTIME:
                runtime_updates[name] = value
            elif name != "model_kwargs":
                extra_kwargs[name] = value
        # An explicit model_kwargs override replaces the base mapping; loose
        # unknown kwargs then merge on top of it.
        base_kwargs = (dict(overrides["model_kwargs"])
                       if "model_kwargs" in overrides else dict(self.model_kwargs))
        model_kwargs = {**base_kwargs, **extra_kwargs}
        config = self
        if quant_updates:
            config = replace(config, quant=replace(config.quant, **quant_updates))
        if runtime_updates:
            config = replace(config, runtime=replace(config.runtime, **runtime_updates))
        return replace(config, model_kwargs=model_kwargs, **top_updates)

    @classmethod
    def create(cls, **flat_kwargs) -> "CompileConfig":
        """Build a config from flat kwargs (the migration-friendly spelling)."""
        return cls().with_overrides(**flat_kwargs)


@dataclass(frozen=True)
class ServeConfig:
    """How a :class:`~repro.deploy.Deployment` is served as (part of) a fleet."""

    fleet: tuple[str, ...] = ()       # extra models; the deployment is always included
    max_batch: int | None = None      # None -> the runtime batch size
    max_wait_s: float | None = 5e-3   # None -> full-batch coalescing
    max_queue_depth: int | None = 128
    slo_shed: bool = True
    cache_capacity: int | None = None
    workers: int = 1                  # concurrent dispatch workers (across models)
    shard_workers: int = 1            # per-batch data-parallel shards
    artifact_dir: str | Path | None = None   # disk tier for the plan cache
    disk_max_bytes: int | None = None        # disk-tier size bound (LRU GC)
    execution: str = "virtual"        # "virtual" clock | "real" thread pool
    backend: str = "thread"           # real-execution workers: "thread" | "process"
    priority_shed: bool = True        # preempt lower-priority queued requests
    warm: bool = True
    #: request-span tracing + metrics time-series knobs (None -> telemetry off)
    telemetry: TelemetryConfig | None = None
    #: fault plane (see :mod:`repro.faults`): a deterministic injection
    #: schedule, the retry/supervision policy, and per-model circuit breaking
    faults: "FaultPlan | None" = None
    retry: "RetryPolicy | None" = None
    breaker: "BreakerPolicy | None" = None

    def __post_init__(self) -> None:
        if self.max_batch is not None and self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.shard_workers < 1:
            raise ValueError(f"shard_workers must be >= 1, got {self.shard_workers}")
        if self.execution not in ("virtual", "real"):
            raise ValueError(f"execution must be 'virtual' or 'real', "
                             f"got {self.execution!r}")
        if self.backend not in ("thread", "process"):
            raise ValueError(f"backend must be 'thread' or 'process', "
                             f"got {self.backend!r}")

    def to_dict(self) -> dict:
        data = asdict(self)
        data["fleet"] = list(self.fleet)
        if self.artifact_dir is not None:
            data["artifact_dir"] = str(self.artifact_dir)
        if self.faults is not None:
            data["faults"] = self.faults.to_dict()
        if self.retry is not None:
            data["retry"] = self.retry.to_dict()
        if self.breaker is not None:
            data["breaker"] = self.breaker.to_dict()
        return data
