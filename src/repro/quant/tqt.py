"""The TQT quantizer: forward pass of Eq. 4, backward pass of Eqs. 6–8.

Two implementations are provided, mirroring Section 4.4 of the paper:

* :func:`tqt_quantize` — the **fused** kernel.  A single autograd node whose
  backward closure computes the threshold and input gradients analytically;
  no intermediate tensors are kept alive, which is what the paper's fused
  CPU/GPU kernels do to save training memory.
* :func:`tqt_quantize_unfused` — the **unfused** reference, composed of
  primitive autograd ops with straight-through ``ceil``/``round``
  (Figure 4's ``tf.stop_gradient`` construction).  It produces bit-identical
  forward values and identical gradients, and exists both as a correctness
  oracle for the fused kernel and as the memory/runtime baseline for the
  Figure 4 benchmark.

The module-level class :class:`TQTQuantizer` owns the learnable
``log2_t`` parameter, handles signed/unsigned ranges, power-of-2 vs. real
scale-factors, per-tensor vs. per-channel granularity, calibration-based
initialization and freezing.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, as_tensor
from ..autograd.functional import ceil_ste, round_ste
from ..autograd.tensor import clip as clip_op
from ..nn import Module, Parameter
from .config import QuantConfig

__all__ = [
    "tqt_quantize",
    "tqt_quantize_unfused",
    "compute_scale",
    "TQTQuantizer",
]

_LN2 = float(np.log(2.0))


def compute_scale(log2_t: np.ndarray, config: QuantConfig) -> np.ndarray:
    """Scale factor ``s`` from the (log-domain) threshold.

    For power-of-2 scaling the raw threshold is first rounded up to the next
    power of two (``2^ceil(log2 t)``), so the clipping range is biased toward
    covering more of the distribution (Section 3.2, footnote 3).
    """
    log2_t = np.asarray(log2_t, dtype=np.float64)
    effective = np.ceil(log2_t) if config.power_of_2 else log2_t
    return 2.0 ** effective / config.levels


def tqt_quantize(x: Tensor, log2_t: Tensor, config: QuantConfig,
                 channel_axis: int | None = None) -> Tensor:
    """Fused TQT fake-quantization of ``x`` parameterized by ``log2_t``.

    Parameters
    ----------
    x: input tensor of any shape.
    log2_t: scalar log2-threshold (per-tensor) or a vector when
        ``channel_axis`` is given (per-channel, baseline configurations only).
    config: quantizer configuration (bits, signedness, power-of-2...).
    channel_axis: axis of ``x`` along which per-channel thresholds apply.

    Returns
    -------
    Fake-quantized tensor of the same shape as ``x``.  Gradients follow
    Eq. 7 (w.r.t. ``log2_t``) and Eq. 8 (w.r.t. ``x``).
    """
    x = as_tensor(x)
    log2_t = as_tensor(log2_t)
    n, p = config.qmin, config.qmax

    t_values = log2_t.data
    if channel_axis is not None:
        broadcast_shape = [1] * x.data.ndim
        broadcast_shape[channel_axis] = -1
        t_values = t_values.reshape(broadcast_shape)

    s = compute_scale(t_values, config)
    scaled = x.data / s
    rounded = np.rint(scaled)
    clipped = np.clip(rounded, n, p)
    out = clipped * s

    below = rounded < n
    above = rounded > p
    inside = ~(below | above)

    def grad_x(g: np.ndarray) -> np.ndarray:
        # Eq. 8: pass-through inside the clipping range, zero outside.
        return g * inside

    def grad_log2_t(g: np.ndarray) -> np.ndarray:
        # Eq. 7: s·ln2 · (⌊x/s⌉ - x/s | n | p), reduced over the elements that
        # share the threshold.
        per_element = np.where(inside, rounded - scaled, np.where(below, float(n), float(p)))
        grad = g * s * _LN2 * per_element
        if channel_axis is None:
            return np.asarray(grad.sum()).reshape(log2_t.data.shape)
        axes = tuple(i for i in range(grad.ndim) if i != channel_axis)
        return grad.sum(axis=axes).reshape(log2_t.data.shape)

    return Tensor._make(out, [(x, grad_x), (log2_t, grad_log2_t)])


def tqt_quantize_unfused(x: Tensor, log2_t: Tensor, config: QuantConfig) -> Tensor:
    """Unfused TQT quantizer built from primitive autograd ops (Figure 4).

    Keeps every intermediate tensor on the tape (scale, scaled input, rounded
    values), which is exactly the memory overhead the fused kernel avoids.
    Only per-tensor scaling is supported, matching the paper's constraint.
    """
    x = as_tensor(x)
    log2_t = as_tensor(log2_t)
    n, p = float(config.qmin), float(config.qmax)

    effective = ceil_ste(log2_t) if config.power_of_2 else log2_t
    # s = 2^effective / levels, expressed through exp/log so autograd tracks it.
    from ..autograd import exp  # local import to avoid cycle at module load

    s = exp(effective * _LN2) * (1.0 / config.levels)
    scaled = x / s
    rounded = round_ste(scaled)
    clipped = clip_op(rounded, n, p)
    return clipped * s


class TQTQuantizer(Module):
    """Trainable fake-quantization module with a learnable log2-threshold.

    Parameters
    ----------
    config: the quantizer's :class:`~repro.quant.config.QuantConfig`.
    init_log2_t: initial log2-threshold; usually overwritten by calibration
        (:meth:`initialize_from`).
    channel_count / channel_axis: when given, one threshold per channel
        (baseline configurations; the TQT scheme itself is per-tensor).
    trainable: when False the threshold is held fixed (static mode or
        wt-only retraining).
    fused: select the fused kernel (default) or the unfused composition.
    """

    def __init__(self, config: QuantConfig, init_log2_t: float = 0.0,
                 channel_count: int | None = None, channel_axis: int = 0,
                 trainable: bool = True, fused: bool = True, name: str | None = None) -> None:
        super().__init__()
        self.config = config
        self.channel_axis = channel_axis if channel_count is not None else None
        shape = (channel_count,) if channel_count is not None else ()
        self.log2_t = Parameter(np.full(shape, float(init_log2_t)), requires_grad=trainable)
        self.trainable = trainable
        self.fused = fused
        self.frozen = False
        self.name = name
        self.calibrated = False

    # ------------------------------------------------------------------ #
    # Threshold management
    # ------------------------------------------------------------------ #
    @property
    def threshold(self) -> np.ndarray:
        """Raw threshold ``t = 2^(log2_t)``."""
        return 2.0 ** self.log2_t.data

    @property
    def scale(self) -> np.ndarray:
        """Effective scale factor ``s`` used by the forward pass."""
        return compute_scale(self.log2_t.data, self.config)

    @property
    def fractional_length(self) -> np.ndarray:
        """Integer fractional length ``f`` with ``s = 2^-f`` (power-of-2 only)."""
        if not self.config.power_of_2:
            raise ValueError("fractional length is only defined for power-of-2 scaling")
        return -np.log2(self.scale).astype(np.int64)

    def set_log2_threshold(self, value) -> None:
        self.log2_t.data[...] = np.asarray(value, dtype=np.float64)

    def initialize_from(self, threshold) -> None:
        """Set the threshold from a calibration result given in the raw domain."""
        threshold = np.maximum(np.asarray(threshold, dtype=np.float64), 1e-12)
        self.set_log2_threshold(np.log2(threshold))
        self.calibrated = True

    def freeze(self) -> None:
        """Stop training this threshold (Section 5.2 incremental freezing)."""
        self.frozen = True
        self.log2_t.requires_grad = False

    def unfreeze(self) -> None:
        self.frozen = False
        self.log2_t.requires_grad = self.trainable

    def set_trainable(self, trainable: bool) -> None:
        self.trainable = trainable
        self.log2_t.requires_grad = trainable and not self.frozen

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def forward(self, x: Tensor) -> Tensor:
        if self.fused or self.channel_axis is not None:
            return tqt_quantize(x, self.log2_t, self.config, channel_axis=self.channel_axis)
        return tqt_quantize_unfused(x, self.log2_t, self.config)

    def quantize_to_integers(self, x: np.ndarray) -> np.ndarray:
        """Return the integer codes ``q`` for ``x`` (used by the fixed-point path)."""
        values = np.asarray(x, dtype=np.float64)
        s = self.scale
        if self.channel_axis is not None:
            shape = [1] * values.ndim
            shape[self.channel_axis] = -1
            s = s.reshape(shape)
        return np.clip(np.rint(values / s), self.config.qmin, self.config.qmax).astype(np.int64)

    def extra_repr(self) -> str:
        granularity = "per-channel" if self.channel_axis is not None else "per-tensor"
        return (f"bits={self.config.bits}, signed={self.config.signed}, "
                f"pow2={self.config.power_of_2}, {granularity}, trainable={self.trainable}")
