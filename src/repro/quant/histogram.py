"""Streaming histogram accumulation for activation calibration.

Activation thresholds are calibrated from a small unlabeled calibration set
(Section 5.1: a batch of 50 images sampled from the validation set).  The
histogram collector accumulates absolute-value statistics over any number of
calibration batches without keeping the activations themselves in memory.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TensorHistogram"]


class TensorHistogram:
    """Fixed-bin histogram of absolute values with a growable range.

    The histogram range expands to accommodate new maxima by rebinning the
    existing counts (conservative: counts are redistributed proportionally
    between overlapping bins), so the calibration result does not depend on
    the order the batches are observed in.
    """

    def __init__(self, num_bins: int = 1024, include_zeros: bool = True) -> None:
        if num_bins < 16:
            raise ValueError("num_bins must be at least 16")
        self.num_bins = int(num_bins)
        self.include_zeros = include_zeros
        self.counts = np.zeros(self.num_bins, dtype=np.float64)
        self.max_value = 0.0
        self.total = 0
        self.observed_min = np.inf
        self.observed_max = -np.inf

    def update(self, values: np.ndarray) -> None:
        """Accumulate one batch of values into the histogram.

        With ``include_zeros=False`` exact zeros are dropped before binning:
        ReLU activations place half their mass exactly at zero, which is
        representable at any scale and would otherwise dominate (and distort)
        KL-based threshold selection.
        """
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            return
        self.observed_min = min(self.observed_min, float(values.min()))
        self.observed_max = max(self.observed_max, float(values.max()))
        if not self.include_zeros:
            values = values[values != 0.0]
            if values.size == 0:
                return
        magnitudes = np.abs(values)
        batch_max = float(magnitudes.max())
        if batch_max == 0.0:
            self.total += values.size
            self.counts[0] += values.size
            return
        if batch_max > self.max_value:
            self._grow(batch_max)
        bin_width = self.max_value / self.num_bins
        indices = np.minimum((magnitudes / bin_width).astype(np.int64), self.num_bins - 1)
        self.counts += np.bincount(indices, minlength=self.num_bins)
        self.total += values.size

    def _grow(self, new_max: float) -> None:
        """Expand the histogram range to ``new_max`` by proportional rebinning."""
        if self.max_value == 0.0:
            self.max_value = new_max
            return
        old_edges = np.linspace(0.0, self.max_value, self.num_bins + 1)
        new_edges = np.linspace(0.0, new_max, self.num_bins + 1)
        new_counts = np.zeros_like(self.counts)
        old_width = old_edges[1] - old_edges[0]
        for i, count in enumerate(self.counts):
            if count == 0:
                continue
            lo, hi = old_edges[i], old_edges[i + 1]
            first = np.searchsorted(new_edges, lo, side="right") - 1
            last = np.searchsorted(new_edges, hi, side="left") - 1
            first = max(first, 0)
            last = min(max(last, first), self.num_bins - 1)
            if first == last:
                new_counts[first] += count
            else:
                # Split proportionally to bin overlap.
                for j in range(first, last + 1):
                    seg_lo = max(lo, new_edges[j])
                    seg_hi = min(hi, new_edges[j + 1])
                    overlap = max(seg_hi - seg_lo, 0.0)
                    new_counts[j] += count * overlap / old_width
        self.counts = new_counts
        self.max_value = new_max

    def bin_edges(self) -> np.ndarray:
        return np.linspace(0.0, self.max_value, self.num_bins + 1)

    def density(self) -> np.ndarray:
        total = self.counts.sum()
        if total == 0:
            return np.zeros_like(self.counts)
        return self.counts / total
