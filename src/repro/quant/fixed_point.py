"""Bit-accurate fixed-point (integer) inference kernels.

The paper validates that its quantized *inference graphs* run on CPU are
bit-accurate to the FPGA fixed-point implementation (Section 4.2).  This
module provides the integer-arithmetic reference the fake-quantized graphs
are checked against:

* integer matmul / conv with int64 accumulation;
* re-scaling of the accumulator either by a **bit shift** (power-of-2 scale
  factors, Eq. 16) or by a **normalized fixed-point multiplier** (real scale
  factors, Eq. 15), both with round-half-to-even;
* the affine (zero-point) product expansion of Appendix A.1, used to count
  the extra work real-valued/asymmetric quantization incurs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd.conv import conv_output_size, im2col
from ..autograd.functional import round_half_to_even
from .config import QuantConfig

__all__ = [
    "quantize_to_int",
    "dequantize",
    "code_dtype",
    "requantize_codes",
    "shift_requantize",
    "fixed_point_multiplier",
    "multiplier_requantize",
    "integer_matmul",
    "integer_conv2d",
    "affine_matmul_with_zero_points",
    "AffineCost",
    "count_affine_cost",
]


def quantize_to_int(values: np.ndarray, scale: float | np.ndarray,
                    config: QuantConfig) -> np.ndarray:
    """Map real values to integer codes ``q = clip(round(x / s))``."""
    codes = round_half_to_even(np.asarray(values, dtype=np.float64) / scale)
    return np.clip(codes, config.qmin, config.qmax).astype(np.int64)


def dequantize(codes: np.ndarray, scale: float | np.ndarray) -> np.ndarray:
    """Map integer codes back to the real domain ``r = s * q``."""
    return np.asarray(codes, dtype=np.float64) * scale


def code_dtype(bits: int) -> np.dtype:
    """Smallest signed integer dtype that can hold codes of ``bits`` bits."""
    if bits <= 8:
        return np.dtype(np.int8)
    if bits <= 16:
        return np.dtype(np.int16)
    return np.dtype(np.int32)


def requantize_codes(accumulator: np.ndarray, shift: int, qmin: int, qmax: int,
                     divisor: int = 1, out: np.ndarray | None = None) -> np.ndarray:
    """Vectorized requantization ``clip(rhe(acc * 2^-shift / divisor), qmin, qmax)``.

    The shared kernel behind :func:`shift_requantize` and the integer
    inference engine (:mod:`repro.engine`).  The arithmetic is carried in
    float64 lanes: every input is an integer and ``2^-shift / divisor`` is an
    exact power of two whenever ``divisor`` is one (the usual case) or a
    power of two (global average pooling over power-of-two windows), so the
    rounding is bit-identical to an integer shift with round-half-to-even.
    ``out`` may be a preallocated float64 buffer of the accumulator's shape.
    """
    factor = (2.0 ** float(-shift)) / float(divisor)
    scaled = np.multiply(accumulator, factor, out=out)
    np.rint(scaled, out=scaled)
    return np.clip(scaled, qmin, qmax, out=scaled)


def shift_requantize(accumulator: np.ndarray, shift: int,
                     config: QuantConfig) -> np.ndarray:
    """Re-scale an integer accumulator by ``2^-shift`` with round-half-to-even.

    This is the power-of-2 path (Eq. 16): the whole scale adjustment is a
    single arithmetic shift.
    Negative ``shift`` means a left shift (scale up).
    """
    accumulator = np.asarray(accumulator, dtype=np.float64)
    return requantize_codes(accumulator, shift, config.qmin, config.qmax).astype(np.int64)


def fixed_point_multiplier(real_multiplier: float, bits: int = 31) -> tuple[int, int]:
    """Decompose a real multiplier in (0, 1) as ``m0 * 2^-n`` (Eq. 15).

    Returns ``(m0, n)`` where ``m0`` is an integer multiplier with ``bits``
    bits of precision normalized into [0.5, 1), the gemmlowp construction.
    """
    if real_multiplier <= 0:
        raise ValueError("real multiplier must be positive")
    n = 0
    m = float(real_multiplier)
    while m < 0.5:
        m *= 2.0
        n += 1
    while m >= 1.0:
        m /= 2.0
        n -= 1
    m0 = int(round(m * (1 << bits)))
    return m0, n + bits


def multiplier_requantize(accumulator: np.ndarray, real_multiplier: float,
                          config: QuantConfig, bits: int = 31) -> np.ndarray:
    """Re-scale an integer accumulator by an arbitrary real multiplier using a
    normalized fixed-point multiply followed by a rounding right shift."""
    m0, shift = fixed_point_multiplier(real_multiplier, bits=bits)
    accumulator = np.asarray(accumulator, dtype=np.int64)
    product = accumulator.astype(np.float64) * m0
    scaled = product / (2.0 ** shift)
    return np.clip(round_half_to_even(scaled), config.qmin, config.qmax).astype(np.int64)


def integer_matmul(a_codes: np.ndarray, b_codes: np.ndarray) -> np.ndarray:
    """Integer matrix product with int64 accumulation."""
    return np.asarray(a_codes, dtype=np.int64) @ np.asarray(b_codes, dtype=np.int64)


def integer_conv2d(x_codes: np.ndarray, w_codes: np.ndarray, bias_codes: np.ndarray | None = None,
                   stride=1, padding=0, groups: int = 1) -> np.ndarray:
    """Integer convolution with int64 accumulation (NCHW layout).

    ``bias_codes`` must already be expressed at the accumulator scale
    (``s_in * s_w``), which the inference-graph exporter guarantees by the
    scale-merging rules of Section 4.3.
    """
    x_codes = np.asarray(x_codes, dtype=np.int64)
    w_codes = np.asarray(w_codes, dtype=np.int64)
    stride = (stride, stride) if isinstance(stride, int) else tuple(stride)
    padding = (padding, padding) if isinstance(padding, int) else tuple(padding)
    n, c_in, h, w = x_codes.shape
    c_out, c_in_per_group, kh, kw = w_codes.shape
    oh = conv_output_size(h, kh, stride[0], padding[0])
    ow = conv_output_size(w, kw, stride[1], padding[1])

    cols = im2col(x_codes.astype(np.float64), (kh, kw), stride, padding).astype(np.int64)
    cols_grouped = cols.reshape(n, groups, c_in_per_group, kh, kw, oh, ow)
    cols_mat = cols_grouped.transpose(1, 0, 5, 6, 2, 3, 4).reshape(
        groups, n * oh * ow, c_in_per_group * kh * kw
    )
    w_mat = w_codes.reshape(groups, c_out // groups, c_in_per_group * kh * kw)
    out_mat = np.einsum("gnk,gok->gno", cols_mat, w_mat, optimize=True)
    out = out_mat.reshape(groups, n, oh, ow, c_out // groups)
    out = out.transpose(1, 0, 4, 2, 3).reshape(n, c_out, oh, ow)
    if bias_codes is not None:
        out = out + np.asarray(bias_codes, dtype=np.int64).reshape(1, c_out, 1, 1)
    return out


# ---------------------------------------------------------------------- #
# Appendix A: cost of the affine quantizer
# ---------------------------------------------------------------------- #
@dataclass
class AffineCost:
    """Operation counts for a quantized matrix product (Appendix A)."""

    multiply_accumulates: int
    zero_point_corrections: int
    rescale_multiplies: int
    rescale_shifts: int

    @property
    def total_extra_ops(self) -> int:
        return self.zero_point_corrections + self.rescale_multiplies


def affine_matmul_with_zero_points(q1: np.ndarray, q2: np.ndarray,
                                   z1: int, z2: int) -> np.ndarray:
    """Evaluate the bracketed expression of Eq. 13: ``q1q2 - q1 z2 - q2 z1 + z1 z2``.

    The separate correction terms are computed explicitly so tests can verify
    that eliminating zero-points (``z = 0``) removes the cross terms and
    recovers the plain integer product of Eq. 14.
    """
    q1 = np.asarray(q1, dtype=np.int64)
    q2 = np.asarray(q2, dtype=np.int64)
    k = q1.shape[-1]
    product = q1 @ q2
    row_sums = q1.sum(axis=-1, keepdims=True)          # multiplies q1 by z2
    col_sums = q2.sum(axis=0, keepdims=True)           # multiplies q2 by z1
    return product - z2 * row_sums - z1 * col_sums + z1 * z2 * k


def count_affine_cost(m: int, k: int, n: int, symmetric: bool, power_of_2: bool) -> AffineCost:
    """Count the arithmetic a quantized (m,k)x(k,n) product needs.

    The multiply-accumulate count is the same in every scheme; asymmetric
    quantization adds the zero-point correction terms of Eq. 13 and real
    scale factors add a fixed-point multiply per output (Eq. 15) instead of
    the single shift of Eq. 16.
    """
    macs = m * k * n
    corrections = 0 if symmetric else (m * n * 2 + m * n)  # two rank-1 corrections + constant
    rescale_multiplies = 0 if power_of_2 else m * n
    rescale_shifts = m * n
    return AffineCost(
        multiply_accumulates=macs,
        zero_point_corrections=corrections,
        rescale_multiplies=rescale_multiplies,
        rescale_shifts=rescale_shifts,
    )
