"""Quantization configuration objects.

``QuantConfig`` captures the quantizer design axes that Section 3.1 of the
paper discusses: bit-width, signedness, symmetric vs affine (zero-point),
per-tensor vs per-channel granularity, and power-of-2 vs real-valued scale
factors.  The TQT scheme uses the strictest combination (symmetric,
per-tensor, power-of-2); looser combinations are retained so the baselines
in Table 1 (Google QAT-style per-channel / asymmetric quantization) can be
expressed in the same framework.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["QuantConfig", "LayerPrecision", "INT8_PRECISION", "INT4_PRECISION"]


@dataclass(frozen=True)
class QuantConfig:
    """Static description of a single quantizer.

    Attributes
    ----------
    bits: quantized bit-width ``b``.
    signed: signed two's-complement range ``[-2^(b-1), 2^(b-1)-1]`` when True,
        unsigned ``[0, 2^b - 1]`` when False (used after ReLU/ReLU6).
    symmetric: zero-point-free mapping ``r = s * q`` (Eq. 3). ``False`` gives
        the affine mapping of Eq. 2 used by the QAT baseline.
    power_of_2: constrain ``s = 2^-f`` so re-scaling is a bit shift.
    per_channel: per-output-channel scale factors (baseline only; TQT uses
        per-tensor).
    """

    bits: int = 8
    signed: bool = True
    symmetric: bool = True
    power_of_2: bool = True
    per_channel: bool = False

    def __post_init__(self) -> None:
        if self.bits < 2 or self.bits > 32:
            raise ValueError(f"unsupported bit-width {self.bits}")
        if not self.symmetric and self.power_of_2:
            raise ValueError("asymmetric quantization with power-of-2 scaling is not supported")

    @property
    def qmin(self) -> int:
        return -(2 ** (self.bits - 1)) if self.signed else 0

    @property
    def qmax(self) -> int:
        return 2 ** (self.bits - 1) - 1 if self.signed else 2 ** self.bits - 1

    @property
    def levels(self) -> int:
        """Denominator used to map the clipping threshold to the integer grid.

        The paper maps ``2^ceil(log2 t)`` to ``2^(b-1)`` for signed data and
        ``2^b`` for unsigned data (Section 3.2).
        """
        return 2 ** (self.bits - 1) if self.signed else 2 ** self.bits

    def with_bits(self, bits: int) -> "QuantConfig":
        return replace(self, bits=bits)

    def as_unsigned(self) -> "QuantConfig":
        return replace(self, signed=False)

    def as_signed(self) -> "QuantConfig":
        return replace(self, signed=True)


@dataclass(frozen=True)
class LayerPrecision:
    """Bit-width assignment for one compute layer (Section 4.3).

    The paper's two published operating points are INT8 = 8/8 (W/A) and
    INT4 = 4/8 (W/A); the internal accumulator / bias precision is 16 bits
    and the first/last layers never go below 8-bit weights.
    """

    weight_bits: int = 8
    activation_bits: int = 8
    bias_bits: int = 16
    internal_bits: int = 16
    min_first_last_weight_bits: int = 8

    @property
    def name(self) -> str:
        return f"W{self.weight_bits}A{self.activation_bits}"


INT8_PRECISION = LayerPrecision(weight_bits=8, activation_bits=8)
INT4_PRECISION = LayerPrecision(weight_bits=4, activation_bits=8)
