"""Threshold initialization / calibration schemes (Table 2 of the paper).

* ``max`` — maximum absolute value; used for weights in static mode and in
  wt-only retraining.
* ``n-std`` — ``n`` standard deviations of the distribution (the paper's
  "3SD" weight initialization for TQT retraining).
* ``percentile`` — the given percentile of the absolute values (the paper
  mentions percentile initialization as an alternative to 3SD).
* ``kl-j`` — the threshold minimizing the symmetric Kullback–Leibler-J
  distance between the clipped reference distribution and its quantized
  approximation (D'Alberto & Dasdan, 2009); used for activations.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .histogram import TensorHistogram

__all__ = [
    "max_calibration",
    "std_calibration",
    "percentile_calibration",
    "kl_j_calibration",
    "kl_j_distance",
    "calibrate",
    "CALIBRATION_METHODS",
]


def max_calibration(values: np.ndarray) -> float:
    """Threshold = max |x| (never clips anything)."""
    values = np.asarray(values)
    if values.size == 0:
        return 1e-8
    return float(np.abs(values).max()) or 1e-8


def std_calibration(values: np.ndarray, num_std: float = 3.0) -> float:
    """Threshold = ``num_std`` standard deviations (centred at zero).

    Weight distributions are roughly zero-mean, so ``3 * std`` trims the long
    tails that would otherwise waste integer range (Table 2, "3SD").
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return 1e-8
    spread = float(np.sqrt(np.mean(values ** 2)))
    return max(num_std * spread, 1e-8)


def percentile_calibration(values: np.ndarray, percentile: float = 99.9) -> float:
    """Threshold = the requested percentile of |x|."""
    values = np.asarray(values)
    if values.size == 0:
        return 1e-8
    return max(float(np.percentile(np.abs(values), percentile)), 1e-8)


def _quantized_reference(reference: np.ndarray, levels: int) -> np.ndarray:
    """Model the effect of quantizing a clipped histogram to ``levels`` bins.

    The reference histogram is collapsed into ``levels`` coarse bins and then
    expanded back, preserving the empty/occupied structure of the original
    bins, which is the standard construction used for KL-based calibration.
    """
    num_bins = reference.size
    if levels >= num_bins:
        return reference.copy()
    # Coarse bin index of every fine bin (nearly equal-sized chunks).
    chunk_ids = (np.arange(num_bins) * levels) // num_bins
    occupied = reference > 0
    mass_per_chunk = np.bincount(chunk_ids, weights=reference, minlength=levels)
    occupied_per_chunk = np.bincount(chunk_ids, weights=occupied.astype(np.float64),
                                     minlength=levels)
    with np.errstate(divide="ignore", invalid="ignore"):
        fill = np.where(occupied_per_chunk > 0, mass_per_chunk / occupied_per_chunk, 0.0)
    expanded = np.where(occupied, fill[chunk_ids], 0.0)
    return expanded


def kl_j_distance(p: np.ndarray, q: np.ndarray, epsilon: float = 1e-12) -> float:
    """Symmetric KL-J divergence ``KL(P||Q) + KL(Q||P)`` between histograms."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    p_sum, q_sum = p.sum(), q.sum()
    if p_sum <= 0 or q_sum <= 0:
        return float("inf")
    p = p / p_sum + epsilon
    q = q / q_sum + epsilon
    return float(np.sum(p * np.log(p / q)) + np.sum(q * np.log(q / p)))


def kl_j_calibration(values: np.ndarray | TensorHistogram, bits: int = 8,
                     num_bins: int = 1024, min_bin_start: int | None = None,
                     num_candidates: int = 128) -> float:
    """Activation threshold minimizing the symmetric KL-J distance.

    Parameters
    ----------
    values: raw activation samples or a pre-accumulated :class:`TensorHistogram`.
    bits: target activation bit-width (the quantized histogram has
        ``2^(bits-1)`` coarse bins, matching the unsigned/symmetric grid).
    num_bins: resolution of the reference histogram.
    min_bin_start: smallest candidate clipping bin; defaults to the number of
        quantization levels so the search never collapses the whole range.
    num_candidates: number of candidate clipping bins evaluated between
        ``min_bin_start`` and the histogram maximum (evenly spaced).
    """
    if isinstance(values, TensorHistogram):
        histogram = values
    else:
        histogram = TensorHistogram(num_bins=num_bins)
        histogram.update(np.asarray(values))
    counts = histogram.counts
    num_bins = histogram.num_bins
    if histogram.max_value == 0.0 or counts.sum() == 0:
        return 1e-8

    levels = 2 ** (bits - 1)
    start = min_bin_start if min_bin_start is not None else max(levels, num_bins // 16)
    start = int(np.clip(start, 1, num_bins - 1))
    edges = histogram.bin_edges()
    candidates = np.unique(np.linspace(start, num_bins, num=min(num_candidates,
                                                                num_bins - start + 1),
                                       dtype=np.int64))

    best_distance = np.inf
    best_threshold = histogram.max_value
    for i in candidates:
        reference = counts[:i].copy()
        outlier_mass = counts[i:].sum()
        reference[-1] += outlier_mass
        candidate_q = _quantized_reference(counts[:i], levels)
        distance = kl_j_distance(reference, candidate_q)
        if distance < best_distance:
            best_distance = distance
            best_threshold = edges[i]
    return max(float(best_threshold), 1e-8)


CALIBRATION_METHODS: dict[str, Callable[..., float]] = {
    "max": max_calibration,
    "3sd": lambda values: std_calibration(values, num_std=3.0),
    "std": std_calibration,
    "percentile": percentile_calibration,
    "kl-j": kl_j_calibration,
}


def calibrate(values: np.ndarray, method: str, **kwargs) -> float:
    """Dispatch to a calibration method by name (``max``, ``3sd``, ``std``,
    ``percentile``, ``kl-j``)."""
    try:
        fn = CALIBRATION_METHODS[method.lower()]
    except KeyError as exc:
        raise ValueError(f"unknown calibration method {method!r}; "
                         f"available: {sorted(CALIBRATION_METHODS)}") from exc
    return fn(values, **kwargs)
