"""TensorFlow-FakeQuant-style quantizer with *clipped* threshold gradients.

This is the baseline analysed in Section 3.5 / Figure 3 of the paper: the
forward pass is mathematically equivalent to the TQT quantizer (up to the
optional zero-point), but the backward pass treats the rounding as identity,
so the quantization function degenerates into a plain ``clip`` for gradient
purposes.  The gradients w.r.t. the ``min``/``max`` thresholds are then only
non-zero *outside* the clipping range, which pushes the thresholds outward
to the distribution extremes — range is always favoured over precision.

Both an asymmetric (min/max with nudged zero-point, as in Google QAT) and a
symmetric (±t) variant are provided, per-tensor or per-channel, so the QAT
rows of Table 1 can be reproduced.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, as_tensor
from ..nn import Module, Parameter
from .config import QuantConfig

__all__ = ["fake_quantize", "FakeQuantizer", "nudge_zero_point"]


def nudge_zero_point(min_val: np.ndarray, max_val: np.ndarray,
                     qmin: int, qmax: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Adjust (min, max) so that zero maps exactly to an integer zero-point.

    Implements the nudging used by TF FakeQuant / gemmlowp so the real zero
    is exactly representable, a requirement noted in the paper's footnote 1.
    Returns ``(scale, zero_point, nudged_min)``.
    """
    min_val = np.minimum(np.asarray(min_val, dtype=np.float64), 0.0)
    max_val = np.maximum(np.asarray(max_val, dtype=np.float64), 0.0)
    scale = (max_val - min_val) / (qmax - qmin)
    scale = np.where(scale <= 0, 1e-12, scale)
    zero_point_float = qmin - min_val / scale
    zero_point = np.clip(np.rint(zero_point_float), qmin, qmax)
    nudged_min = (qmin - zero_point) * scale
    return scale, zero_point, nudged_min


def fake_quantize(x: Tensor, min_val: Tensor, max_val: Tensor, config: QuantConfig,
                  channel_axis: int | None = None) -> Tensor:
    """FakeQuant forward (Eq. 11) with clipped threshold gradients.

    Backward definitions (matching the TF kernel referenced in Section 3.5):

    * grad wrt ``x``: 1 inside ``[min, max]``, 0 outside;
    * grad wrt ``min``: 1 where ``x < min`` (upstream gradient passes), else 0;
    * grad wrt ``max``: 1 where ``x > max``, else 0.
    """
    x = as_tensor(x)
    min_val = as_tensor(min_val)
    max_val = as_tensor(max_val)
    qmin, qmax = config.qmin, config.qmax

    mn = min_val.data
    mx = max_val.data
    if channel_axis is not None:
        shape = [1] * x.data.ndim
        shape[channel_axis] = -1
        mn = mn.reshape(shape)
        mx = mx.reshape(shape)

    scale, zero_point, nudged_min = nudge_zero_point(mn, mx, qmin, qmax)
    nudged_max = nudged_min + (qmax - qmin) * scale

    clipped = np.clip(x.data, nudged_min, nudged_max)
    quantized = np.rint((clipped - nudged_min) / scale)
    out = quantized * scale + nudged_min

    below = x.data < nudged_min
    above = x.data > nudged_max
    inside = ~(below | above)

    def grad_x(g: np.ndarray) -> np.ndarray:
        return g * inside

    def _reduce(grad: np.ndarray, target_shape: tuple[int, ...]) -> np.ndarray:
        if channel_axis is None:
            return np.asarray(grad.sum()).reshape(target_shape)
        axes = tuple(i for i in range(grad.ndim) if i != channel_axis)
        return grad.sum(axis=axes).reshape(target_shape)

    def grad_min(g: np.ndarray) -> np.ndarray:
        return _reduce(g * below, min_val.data.shape)

    def grad_max(g: np.ndarray) -> np.ndarray:
        return _reduce(g * above, max_val.data.shape)

    return Tensor._make(out, [(x, grad_x), (min_val, grad_min), (max_val, grad_max)])


class FakeQuantizer(Module):
    """Google-QAT-style quantizer module with trainable (clipped-grad) thresholds.

    Parameters
    ----------
    config: quantizer configuration.  ``symmetric=False`` gives the
        asymmetric per-tensor baseline; ``per_channel=True`` the per-channel
        symmetric baseline of Table 1.
    channel_count: number of channels when ``config.per_channel``.
    trainable: whether min/max receive gradient updates.
    """

    def __init__(self, config: QuantConfig, init_min: float = -1.0, init_max: float = 1.0,
                 channel_count: int | None = None, channel_axis: int = 0,
                 trainable: bool = True, name: str | None = None) -> None:
        super().__init__()
        if config.power_of_2:
            raise ValueError("FakeQuantizer models real-valued scaling baselines; "
                             "use TQTQuantizer for power-of-2 scaling")
        self.config = config
        self.channel_axis = channel_axis if channel_count is not None else None
        shape = (channel_count,) if channel_count is not None else ()
        self.min_val = Parameter(np.full(shape, float(init_min)), requires_grad=trainable)
        self.max_val = Parameter(np.full(shape, float(init_max)), requires_grad=trainable)
        self.trainable = trainable
        self.name = name
        self.calibrated = False

    @property
    def scale(self) -> np.ndarray:
        scale, _, _ = nudge_zero_point(self.min_val.data, self.max_val.data,
                                       self.config.qmin, self.config.qmax)
        return scale

    @property
    def zero_point(self) -> np.ndarray:
        _, zero_point, _ = nudge_zero_point(self.min_val.data, self.max_val.data,
                                            self.config.qmin, self.config.qmax)
        return zero_point

    def initialize_from(self, threshold) -> None:
        """Initialize from a symmetric threshold estimate (calibration result)."""
        threshold = np.asarray(threshold, dtype=np.float64)
        if self.config.symmetric:
            self.min_val.data[...] = -threshold
            self.max_val.data[...] = threshold
        else:
            # Asymmetric calibration callers pass (min, max) tuples instead.
            self.min_val.data[...] = -threshold
            self.max_val.data[...] = threshold
        self.calibrated = True

    def initialize_min_max(self, min_val, max_val) -> None:
        self.min_val.data[...] = np.asarray(min_val, dtype=np.float64)
        self.max_val.data[...] = np.asarray(max_val, dtype=np.float64)
        self.calibrated = True

    def set_trainable(self, trainable: bool) -> None:
        self.trainable = trainable
        self.min_val.requires_grad = trainable
        self.max_val.requires_grad = trainable

    def forward(self, x: Tensor) -> Tensor:
        min_val: Tensor = self.min_val
        if self.config.symmetric:
            # Symmetric variants tie min = -max so only one effective threshold.
            min_val = -self.max_val
        return fake_quantize(x, min_val, self.max_val, self.config,
                             channel_axis=self.channel_axis)

    def extra_repr(self) -> str:
        granularity = "per-channel" if self.channel_axis is not None else "per-tensor"
        mode = "symmetric" if self.config.symmetric else "asymmetric"
        return f"bits={self.config.bits}, {mode}, {granularity}, trainable={self.trainable}"
