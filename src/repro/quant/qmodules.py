"""Quantized layer wrappers implementing the Section 4.3 layer precisions.

The Graffitist-style quantization pass (:mod:`repro.graph.quantize`) rewrites
a floating-point model into these modules.  Each wrapper owns the quantizers
required by the paper's internal-precision rules:

* compute layers (conv / matmul / depthwise conv):
  ``q8(q'16(sum(q8/4(w) * q8(x))) + q'16(b))`` with the output stage delayed
  past a following ReLU/ReLU6 and switched to unsigned;
* eltwise-add: both inputs share a merged scale, output re-quantized;
* leaky-relu: 16-bit internal precision for the slope multiply;
* average pool: rewritten to a depthwise convolution with reciprocal weights
  by the graph transform, then quantized as a compute layer;
* concat: inputs share a merged scale, the op itself is lossless.

Scale *merging* (the ``q'`` marks in the paper) is expressed by routing the
tensors through the *same* quantizer module instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Sequence

import numpy as np

from ..autograd import Tensor, concatenate, conv2d, matmul, maximum, relu, relu6
from ..nn import Conv2d, Linear, Module, Parameter
from .calibration import calibrate, kl_j_calibration
from .config import LayerPrecision, QuantConfig
from .fake_quant import FakeQuantizer
from .histogram import TensorHistogram
from .lsq import LSQQuantizer
from .tqt import TQTQuantizer

__all__ = [
    "QuantScheme",
    "ActivationQuantizer",
    "QuantizedConv2d",
    "QuantizedLinear",
    "QuantizedAdd",
    "QuantizedConcat",
    "QuantizedLeakyReLU",
    "QuantizedInput",
]

ActivationKind = Literal["none", "relu", "relu6"]


@dataclass
class QuantScheme:
    """Quantization recipe shared by every quantizer a pass inserts.

    Attributes
    ----------
    method: ``"tqt"`` (paper), ``"fake_quant"`` (clipped-gradient baseline)
        or ``"lsq"``.
    precision: per-layer bit-widths (:class:`LayerPrecision`).
    power_of_2 / symmetric / per_channel_weights: quantizer constraints; the
        TQT configuration is (True, True, False).
    train_thresholds: whether inserted quantizers are trainable (retrain
        wt+th mode) or fixed after calibration (static / wt-only modes).
    weight_init / activation_init: calibration methods from Table 2.
    """

    method: str = "tqt"
    precision: LayerPrecision = field(default_factory=LayerPrecision)
    power_of_2: bool = True
    symmetric: bool = True
    per_channel_weights: bool = False
    train_thresholds: bool = True
    weight_init: str = "3sd"
    activation_init: str = "kl-j"

    # ------------------------------------------------------------------ #
    def _config(self, bits: int, signed: bool) -> QuantConfig:
        return QuantConfig(bits=bits, signed=signed, symmetric=self.symmetric,
                           power_of_2=self.power_of_2 and self.method == "tqt",
                           per_channel=False)

    def make_quantizer(self, bits: int, signed: bool, channel_count: int | None = None,
                       trainable: bool | None = None, name: str | None = None) -> Module:
        """Create a quantizer of the configured method."""
        trainable = self.train_thresholds if trainable is None else trainable
        if self.method == "tqt":
            config = self._config(bits, signed)
            return TQTQuantizer(config, channel_count=channel_count,
                                trainable=trainable, name=name)
        if self.method == "fake_quant":
            config = QuantConfig(bits=bits, signed=signed, symmetric=self.symmetric,
                                 power_of_2=False, per_channel=channel_count is not None)
            return FakeQuantizer(config, channel_count=channel_count,
                                 trainable=trainable, name=name)
        if self.method == "lsq":
            config = QuantConfig(bits=bits, signed=signed, symmetric=True,
                                 power_of_2=False)
            return LSQQuantizer(config, trainable=trainable, name=name)
        raise ValueError(f"unknown quantization method {self.method!r}")

    def make_weight_quantizer(self, out_channels: int, bits: int | None = None,
                              name: str | None = None) -> Module:
        bits = bits if bits is not None else self.precision.weight_bits
        channel_count = out_channels if self.per_channel_weights else None
        return self.make_quantizer(bits, signed=True, channel_count=channel_count, name=name)

    def make_bias_quantizer(self, name: str | None = None) -> Module:
        # Bias sits at the 16-bit internal precision and is never trained.
        return self.make_quantizer(self.precision.bias_bits, signed=True,
                                   trainable=False, name=name)

    def make_activation_quantizer(self, signed: bool, bits: int | None = None,
                                  name: str | None = None) -> "ActivationQuantizer":
        bits = bits if bits is not None else self.precision.activation_bits
        impl = self.make_quantizer(bits, signed=signed, name=name)
        return ActivationQuantizer(impl, init_method=self.activation_init, name=name)

    def make_internal_quantizer(self, name: str | None = None) -> "ActivationQuantizer":
        impl = self.make_quantizer(self.precision.internal_bits, signed=True,
                                   trainable=False, name=name)
        return ActivationQuantizer(impl, init_method="max", name=name)


class ActivationQuantizer(Module):
    """Activation quantizer with a calibration (statistics-collection) mode.

    In ``collect`` mode the input passes through unquantized while an
    absolute-value histogram and running min/max are accumulated; calling
    :meth:`finalize_calibration` turns the collected statistics into an
    initial threshold (KL-J by default, Table 2) and switches the module to
    ``quantize`` mode.
    """

    def __init__(self, impl: Module, init_method: str = "kl-j", name: str | None = None) -> None:
        super().__init__()
        self.impl = impl
        self.init_method = init_method
        self.name = name
        self.mode: Literal["collect", "quantize", "bypass"] = "quantize"
        # Exact zeros (e.g. from a preceding ReLU) carry no information about
        # the clipping range and are excluded from the calibration histogram.
        self.histogram = TensorHistogram(include_zeros=False)
        self._observed_values: list[np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    def start_calibration(self, keep_samples: bool = False) -> None:
        self.mode = "collect"
        self.histogram = TensorHistogram(include_zeros=False)
        self._observed_values = [] if keep_samples else None

    def finalize_calibration(self) -> float:
        """Set the initial threshold from collected statistics, return it."""
        bits = self.impl.config.bits
        if self.init_method == "kl-j":
            threshold = kl_j_calibration(self.histogram, bits=bits)
        else:
            samples = (np.concatenate(self._observed_values)
                       if self._observed_values else
                       np.array([self.histogram.max_value]))
            threshold = calibrate(samples, self.init_method)
        self._apply_threshold(threshold)
        self.mode = "quantize"
        return threshold

    def _apply_threshold(self, threshold: float) -> None:
        if isinstance(self.impl, TQTQuantizer):
            self.impl.initialize_from(threshold)
        elif isinstance(self.impl, FakeQuantizer):
            if self.impl.config.symmetric:
                self.impl.initialize_from(threshold)
            else:
                low = min(self.histogram.observed_min, 0.0)
                high = max(self.histogram.observed_max, 0.0)
                self.impl.initialize_min_max(low, high)
        elif isinstance(self.impl, LSQQuantizer):
            self.impl.step_size.data[...] = threshold / max(self.impl.config.qmax, 1)

    def set_mode(self, mode: Literal["collect", "quantize", "bypass"]) -> None:
        self.mode = mode

    @property
    def quantizer(self) -> Module:
        return self.impl

    def forward(self, x: Tensor) -> Tensor:
        if self.mode == "bypass":
            return x
        if self.mode == "collect":
            self.histogram.update(x.data)
            if self._observed_values is not None:
                self._observed_values.append(x.data.ravel().copy())
            return x
        return self.impl(x)

    def extra_repr(self) -> str:
        return f"mode={self.mode}, init={self.init_method}"


class QuantizedConv2d(Module):
    """Quantized compute layer: convolution (+ optional fused activation).

    The wrapped convolution is expected to already have batch norm folded in
    (the graph transform guarantees this), so weights/bias here are the
    deployable values.
    """

    def __init__(self, conv: Conv2d, scheme: QuantScheme,
                 activation: ActivationKind = "none",
                 weight_bits: int | None = None,
                 output_quantizer: ActivationQuantizer | None = None,
                 quantize_internal: bool = True,
                 name: str | None = None) -> None:
        super().__init__()
        self.conv = conv
        self.scheme = scheme
        self.activation: ActivationKind = activation
        self.name = name
        self.weight_quantizer = scheme.make_weight_quantizer(
            conv.out_channels, bits=weight_bits, name=f"{name}.weight" if name else None
        )
        self.bias_quantizer = scheme.make_bias_quantizer(
            name=f"{name}.bias" if name else None
        ) if conv.bias is not None else None
        self.internal_quantizer = (
            scheme.make_internal_quantizer(name=f"{name}.acc" if name else None)
            if quantize_internal else None
        )
        # The output stage is delayed past ReLU/ReLU6 and becomes unsigned
        # when an activation follows (Section 4.3).
        signed_output = activation == "none"
        self.output_quantizer = output_quantizer or scheme.make_activation_quantizer(
            signed=signed_output, name=f"{name}.out" if name else None
        )
        self.calibrate_parameters()

    # ------------------------------------------------------------------ #
    def calibrate_parameters(self) -> None:
        """Initialize weight/bias thresholds from the parameter values (Table 2)."""
        weights = self.conv.weight.data
        method = self.scheme.weight_init if self.scheme.train_thresholds else "max"
        if isinstance(self.weight_quantizer, TQTQuantizer):
            if self.weight_quantizer.channel_axis is not None:
                per_channel = np.abs(weights).reshape(weights.shape[0], -1).max(axis=1)
                self.weight_quantizer.initialize_from(per_channel)
            else:
                self.weight_quantizer.initialize_from(calibrate(weights, method))
        elif isinstance(self.weight_quantizer, FakeQuantizer):
            if self.weight_quantizer.channel_axis is not None:
                per_channel = np.abs(weights).reshape(weights.shape[0], -1).max(axis=1)
                self.weight_quantizer.initialize_min_max(-per_channel, per_channel)
            else:
                flat = weights.ravel()
                if self.weight_quantizer.config.symmetric:
                    self.weight_quantizer.initialize_from(calibrate(flat, "max"))
                else:
                    self.weight_quantizer.initialize_min_max(flat.min(), flat.max())
        elif isinstance(self.weight_quantizer, LSQQuantizer):
            self.weight_quantizer.initialize_from_tensor(weights)
        if self.bias_quantizer is not None and isinstance(self.bias_quantizer, TQTQuantizer):
            self.bias_quantizer.initialize_from(calibrate(self.conv.bias.data, "max"))

    def quantized_weight(self) -> Tensor:
        return self.weight_quantizer(self.conv.weight)

    def forward(self, x: Tensor) -> Tensor:
        weight = self.quantized_weight()
        bias = None
        if self.conv.bias is not None:
            bias = self.bias_quantizer(self.conv.bias) if self.bias_quantizer else self.conv.bias
        out = conv2d(x, weight, bias, stride=self.conv.stride,
                     padding=self.conv.padding, groups=self.conv.groups)
        if self.internal_quantizer is not None:
            # 16-bit accumulator emulation.  In collect/bypass mode the call is
            # needed so calibration statistics accumulate; in quantize mode it
            # is only applied once a threshold has been calibrated.
            if (self.internal_quantizer.mode != "quantize"
                    or getattr(self.internal_quantizer.impl, "calibrated", True)):
                out = self.internal_quantizer(out)
        if self.activation == "relu":
            out = relu(out)
        elif self.activation == "relu6":
            out = relu6(out)
        return self.output_quantizer(out)

    def extra_repr(self) -> str:
        return f"activation={self.activation}"


class QuantizedLinear(Module):
    """Quantized fully connected layer (same rules as the conv compute layer)."""

    def __init__(self, linear: Linear, scheme: QuantScheme,
                 activation: ActivationKind = "none",
                 weight_bits: int | None = None,
                 name: str | None = None) -> None:
        super().__init__()
        self.linear = linear
        self.scheme = scheme
        self.activation: ActivationKind = activation
        self.name = name
        self.weight_quantizer = scheme.make_weight_quantizer(
            linear.out_features, bits=weight_bits, name=f"{name}.weight" if name else None
        )
        self.bias_quantizer = scheme.make_bias_quantizer(
            name=f"{name}.bias" if name else None
        ) if linear.bias is not None else None
        signed_output = activation == "none"
        self.output_quantizer = scheme.make_activation_quantizer(
            signed=signed_output, name=f"{name}.out" if name else None
        )
        self.calibrate_parameters()

    def calibrate_parameters(self) -> None:
        weights = self.linear.weight.data
        method = self.scheme.weight_init if self.scheme.train_thresholds else "max"
        if isinstance(self.weight_quantizer, TQTQuantizer):
            self.weight_quantizer.initialize_from(calibrate(weights, method))
        elif isinstance(self.weight_quantizer, FakeQuantizer):
            if self.weight_quantizer.config.symmetric:
                self.weight_quantizer.initialize_from(calibrate(weights, "max"))
            else:
                self.weight_quantizer.initialize_min_max(weights.min(), weights.max())
        elif isinstance(self.weight_quantizer, LSQQuantizer):
            self.weight_quantizer.initialize_from_tensor(weights)
        if self.bias_quantizer is not None and isinstance(self.bias_quantizer, TQTQuantizer):
            self.bias_quantizer.initialize_from(calibrate(self.linear.bias.data, "max"))

    def forward(self, x: Tensor) -> Tensor:
        weight = self.weight_quantizer(self.linear.weight)
        out = matmul(x, weight.T)
        if self.linear.bias is not None:
            bias = self.bias_quantizer(self.linear.bias) if self.bias_quantizer else self.linear.bias
            out = out + bias
        if self.activation == "relu":
            out = relu(out)
        elif self.activation == "relu6":
            out = relu6(out)
        return self.output_quantizer(out)


class QuantizedAdd(Module):
    """Eltwise-add with merged input scales: ``q8(q'8(x) + q'8(y))``."""

    def __init__(self, scheme: QuantScheme, activation: ActivationKind = "none",
                 name: str | None = None) -> None:
        super().__init__()
        self.scheme = scheme
        self.activation: ActivationKind = activation
        self.name = name
        # One shared quantizer applied to both inputs merges their scales.
        self.input_quantizer = scheme.make_activation_quantizer(
            signed=True, name=f"{name}.in" if name else None
        )
        signed_output = activation == "none"
        self.output_quantizer = scheme.make_activation_quantizer(
            signed=signed_output, name=f"{name}.out" if name else None
        )

    def forward(self, a: Tensor, b: Tensor) -> Tensor:
        out = self.input_quantizer(a) + self.input_quantizer(b)
        if self.activation == "relu":
            out = relu(out)
        elif self.activation == "relu6":
            out = relu6(out)
        return self.output_quantizer(out)


class QuantizedConcat(Module):
    """Concat with explicitly merged input scales; the op itself is lossless."""

    def __init__(self, scheme: QuantScheme, axis: int = 1, name: str | None = None) -> None:
        super().__init__()
        self.scheme = scheme
        self.axis = axis
        self.name = name
        self.input_quantizer = scheme.make_activation_quantizer(
            signed=True, name=f"{name}.in" if name else None
        )

    def forward(self, tensors: Sequence[Tensor]) -> Tensor:
        quantized = [self.input_quantizer(t) for t in tensors]
        return concatenate(quantized, axis=self.axis)


class QuantizedLeakyReLU(Module):
    """Leaky ReLU quantized with 16-bit internal precision (Section 4.3).

    ``q8(max(q'16(x), q'16(q16(alpha) * q'16(x))))`` — the slope multiply
    happens at 16-bit precision, the input scale is shared between the two
    branches through a single internal quantizer, and the 8-bit stage of the
    preceding compute layer is skipped (the graph pass arranges that).
    """

    def __init__(self, scheme: QuantScheme, negative_slope: float = 0.1,
                 name: str | None = None) -> None:
        super().__init__()
        self.scheme = scheme
        self.negative_slope = negative_slope
        self.name = name
        self.alpha = Parameter(np.asarray(float(negative_slope)), requires_grad=False)
        self.alpha_quantizer = scheme.make_quantizer(
            scheme.precision.internal_bits, signed=True, trainable=False,
            name=f"{name}.alpha" if name else None,
        )
        if isinstance(self.alpha_quantizer, TQTQuantizer):
            self.alpha_quantizer.initialize_from(abs(negative_slope) or 1e-3)
        self.internal_quantizer = scheme.make_internal_quantizer(
            name=f"{name}.internal" if name else None
        )
        self.output_quantizer = scheme.make_activation_quantizer(
            signed=True, name=f"{name}.out" if name else None
        )

    def forward(self, x: Tensor) -> Tensor:
        x16 = self.internal_quantizer(x)
        alpha_q = self.alpha_quantizer(self.alpha)
        scaled = self.internal_quantizer(alpha_q * x16)
        out = maximum(x16, scaled)
        return self.output_quantizer(out)


class QuantizedInput(Module):
    """Quantization of the primary network input (explicitly quantized once)."""

    def __init__(self, scheme: QuantScheme, name: str | None = None) -> None:
        super().__init__()
        self.quantizer = scheme.make_activation_quantizer(signed=True,
                                                          name=f"{name}.in" if name else None)
        self.name = name

    def forward(self, x: Tensor) -> Tensor:
        return self.quantizer(x)
