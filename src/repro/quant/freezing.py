"""Incremental threshold freezing (Section 5.2).

With power-of-2 scaling, thresholds oscillate around a critical integer
value ``log2 t*`` after convergence (Appendix B.3).  Crossing that integer
changes the scale factor of the layer and therefore the distribution seen by
every downstream layer, so the paper freezes thresholds incrementally once
they settle: starting at ``1000 * (24 / N)`` steps, one threshold is frozen
every 50 steps, in order of increasing absolute gradient magnitude, provided
its exponentially-moving-average estimate agrees with its current integer
bin ("correct side of log2 t*").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .tqt import TQTQuantizer

__all__ = ["FreezingPolicy", "ThresholdFreezer"]


@dataclass
class FreezingPolicy:
    """Hyperparameters of the freezing schedule."""

    start_step: int = 1000
    interval: int = 50
    ema_decay: float = 0.9
    enabled: bool = True

    @classmethod
    def from_batch_size(cls, batch_size: int, reference_batch: int = 24,
                        **overrides) -> "FreezingPolicy":
        """Scale the paper's step counts by ``reference_batch / batch_size``."""
        start = max(1, round(1000 * reference_batch / max(batch_size, 1)))
        return cls(start_step=start, **overrides)


@dataclass
class _QuantizerState:
    quantizer: TQTQuantizer
    name: str
    ema: float = 0.0
    initialized: bool = False
    last_grad: float = 0.0


class ThresholdFreezer:
    """Tracks TQT quantizers during training and freezes them incrementally."""

    def __init__(self, quantizers: dict[str, TQTQuantizer] | list[TQTQuantizer],
                 policy: FreezingPolicy | None = None) -> None:
        self.policy = policy or FreezingPolicy()
        if isinstance(quantizers, dict):
            items = quantizers.items()
        else:
            items = ((q.name or f"quantizer_{i}", q) for i, q in enumerate(quantizers))
        self._states: list[_QuantizerState] = [
            _QuantizerState(quantizer=q, name=name) for name, q in items
            if q.trainable and q.log2_t.data.ndim == 0
        ]
        self.frozen_names: list[str] = []

    # ------------------------------------------------------------------ #
    @property
    def num_frozen(self) -> int:
        return len(self.frozen_names)

    @property
    def num_tracked(self) -> int:
        return len(self._states)

    def all_frozen(self) -> bool:
        return all(state.quantizer.frozen for state in self._states)

    # ------------------------------------------------------------------ #
    def observe(self) -> None:
        """Record gradients and update the EMA of each tracked threshold.

        Must be called after ``backward`` and before the optimizer clears the
        gradients for the step.
        """
        decay = self.policy.ema_decay
        for state in self._states:
            value = float(state.quantizer.log2_t.data)
            if not state.initialized:
                state.ema = value
                state.initialized = True
            else:
                state.ema = decay * state.ema + (1.0 - decay) * value
            grad = state.quantizer.log2_t.grad
            state.last_grad = float(np.abs(grad).sum()) if grad is not None else 0.0

    def step(self, global_step: int) -> str | None:
        """Possibly freeze one threshold at this step.

        Returns the name of the quantizer that was frozen, if any.
        """
        if not self.policy.enabled or global_step < self.policy.start_step:
            return None
        if (global_step - self.policy.start_step) % self.policy.interval != 0:
            return None
        candidates = [
            state for state in self._states
            if not state.quantizer.frozen and state.initialized
            and self._on_correct_side(state)
        ]
        if not candidates:
            return None
        # Freeze the threshold whose gradient magnitude is smallest: it has
        # settled the most.
        chosen = min(candidates, key=lambda s: s.last_grad)
        chosen.quantizer.freeze()
        self.frozen_names.append(chosen.name)
        return chosen.name

    @staticmethod
    def _on_correct_side(state: _QuantizerState) -> bool:
        """The current value and its EMA round up to the same integer bin,
        i.e. the threshold is on the correct side of the critical ``log2 t*``."""
        current_bin = np.ceil(float(state.quantizer.log2_t.data))
        ema_bin = np.ceil(state.ema)
        return current_bin == ema_bin
