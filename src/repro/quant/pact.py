"""PACT: Parameterized Clipping Activation (Choi et al., 2018).

Included as a second clipped-gradient baseline (Section 2 / Section 3.5).
PACT replaces ReLU by ``clip(x, 0, alpha)`` with a learnable clipping level
``alpha`` whose gradient is (Eq. 1 of the paper under reproduction)::

    d y_q / d alpha = 0   for x < alpha
                      1   for x >= alpha

i.e. the threshold only ever feels pressure to grow toward the maximum of
the input distribution; a manually tuned L2 regularizer on ``alpha`` is the
only force pulling it back in.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, as_tensor
from ..nn import Module, Parameter
from .config import QuantConfig

__all__ = ["pact_quantize", "PACTQuantizer"]


def pact_quantize(x: Tensor, alpha: Tensor, config: QuantConfig) -> Tensor:
    """PACT forward: clipped-ReLU then uniform (unsigned) quantization.

    Gradients: pass-through to ``x`` on ``0 <= x < alpha``; gradient to
    ``alpha`` equal to the upstream gradient where ``x >= alpha``.
    """
    x = as_tensor(x)
    alpha = as_tensor(alpha)
    levels = 2 ** config.bits - 1
    a = float(alpha.data)
    clipped = np.clip(x.data, 0.0, a)
    scale = max(a, 1e-12) / levels
    out = np.rint(clipped / scale) * scale

    in_range = (x.data >= 0.0) & (x.data < a)
    above = x.data >= a

    def grad_x(g: np.ndarray) -> np.ndarray:
        return g * in_range

    def grad_alpha(g: np.ndarray) -> np.ndarray:
        return np.asarray((g * above).sum()).reshape(alpha.data.shape)

    return Tensor._make(out, [(x, grad_x), (alpha, grad_alpha)])


class PACTQuantizer(Module):
    """Activation quantizer with a learnable clipping level ``alpha``.

    Parameters
    ----------
    config: unsigned quantizer configuration (PACT follows a ReLU).
    init_alpha: initial clipping level.
    alpha_decay: L2 regularization coefficient ``lambda_alpha``; the paper
        notes this extra hand-tuned hyperparameter as a drawback of PACT.
    """

    def __init__(self, config: QuantConfig, init_alpha: float = 6.0,
                 alpha_decay: float = 0.0, trainable: bool = True,
                 name: str | None = None) -> None:
        super().__init__()
        self.config = config
        self.alpha = Parameter(np.asarray(float(init_alpha)), requires_grad=trainable)
        self.alpha_decay = alpha_decay
        self.trainable = trainable
        self.name = name

    def regularization_loss(self) -> Tensor:
        """``lambda_alpha * alpha^2`` penalty term to be added to the loss."""
        return (self.alpha * self.alpha) * self.alpha_decay

    def forward(self, x: Tensor) -> Tensor:
        return pact_quantize(x, self.alpha, self.config)

    def extra_repr(self) -> str:
        return f"bits={self.config.bits}, alpha_decay={self.alpha_decay}"
