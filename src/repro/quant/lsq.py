"""LSQ: Learned Step-size Quantization (Esser et al., 2019).

LSQ learns the scale factor ``s`` directly (in the linear domain) instead of
the log2 threshold.  The paper under reproduction argues (Section 2,
Appendix B) that this parameterization has weaker stability guarantees —
updates to ``s`` are not scale invariant, so LSQ needs a per-layer gradient
rescaling heuristic and long fine-tuning schedules.  It is included here as
a comparison point for the threshold-training-dynamics studies.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, as_tensor
from ..nn import Module, Parameter
from .config import QuantConfig

__all__ = ["lsq_quantize", "LSQQuantizer"]


def lsq_quantize(x: Tensor, scale: Tensor, config: QuantConfig,
                 grad_scale: float = 1.0) -> Tensor:
    """LSQ fake quantization with the step-size gradient of Esser et al.

    The local gradient w.r.t. ``s`` is the same piecewise expression as
    TQT's Eq. 6 (because the forward functions agree), but it is applied to
    ``s`` directly and multiplied by LSQ's gradient-scale heuristic
    ``1/sqrt(N * p)``.
    """
    x = as_tensor(x)
    scale = as_tensor(scale)
    n, p = config.qmin, config.qmax
    s = float(np.maximum(scale.data, 1e-12))

    scaled = x.data / s
    rounded = np.rint(scaled)
    clipped = np.clip(rounded, n, p)
    out = clipped * s

    below = rounded < n
    above = rounded > p
    inside = ~(below | above)

    def grad_x(g: np.ndarray) -> np.ndarray:
        return g * inside

    def grad_s(g: np.ndarray) -> np.ndarray:
        per_element = np.where(inside, rounded - scaled, np.where(below, float(n), float(p)))
        return np.asarray((g * per_element).sum() * grad_scale).reshape(scale.data.shape)

    return Tensor._make(out, [(x, grad_x), (scale, grad_s)])


class LSQQuantizer(Module):
    """Quantizer that learns the step size ``s`` directly (LSQ baseline)."""

    def __init__(self, config: QuantConfig, init_scale: float = 0.1,
                 trainable: bool = True, use_grad_scale: bool = True,
                 name: str | None = None) -> None:
        super().__init__()
        self.config = config
        self.step_size = Parameter(np.asarray(float(init_scale)), requires_grad=trainable)
        self.trainable = trainable
        self.use_grad_scale = use_grad_scale
        self.name = name

    def initialize_from_tensor(self, values: np.ndarray) -> None:
        """LSQ initialization: ``2 * mean(|x|) / sqrt(p)``."""
        values = np.asarray(values)
        p = self.config.qmax
        self.step_size.data[...] = 2.0 * np.abs(values).mean() / np.sqrt(max(p, 1))

    def forward(self, x: Tensor) -> Tensor:
        grad_scale = 1.0
        if self.use_grad_scale:
            grad_scale = 1.0 / np.sqrt(max(x.size * self.config.qmax, 1))
        return lsq_quantize(x, self.step_size, self.config, grad_scale=grad_scale)

    def extra_repr(self) -> str:
        return f"bits={self.config.bits}, grad_scale={self.use_grad_scale}"
