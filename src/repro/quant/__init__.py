"""Quantization core: the TQT quantizer, baselines, calibration and fixed-point kernels."""

from .config import QuantConfig, LayerPrecision, INT8_PRECISION, INT4_PRECISION
from .tqt import TQTQuantizer, tqt_quantize, tqt_quantize_unfused, compute_scale
from .fake_quant import FakeQuantizer, fake_quantize, nudge_zero_point
from .pact import PACTQuantizer, pact_quantize
from .lsq import LSQQuantizer, lsq_quantize
from .calibration import (
    calibrate,
    max_calibration,
    std_calibration,
    percentile_calibration,
    kl_j_calibration,
    kl_j_distance,
    CALIBRATION_METHODS,
)
from .histogram import TensorHistogram
from .fixed_point import (
    quantize_to_int,
    dequantize,
    code_dtype,
    requantize_codes,
    shift_requantize,
    fixed_point_multiplier,
    multiplier_requantize,
    integer_matmul,
    integer_conv2d,
    affine_matmul_with_zero_points,
    AffineCost,
    count_affine_cost,
)
from .freezing import FreezingPolicy, ThresholdFreezer
from .qmodules import (
    QuantScheme,
    ActivationQuantizer,
    QuantizedConv2d,
    QuantizedLinear,
    QuantizedAdd,
    QuantizedConcat,
    QuantizedLeakyReLU,
    QuantizedInput,
)

__all__ = [
    "QuantConfig",
    "LayerPrecision",
    "INT8_PRECISION",
    "INT4_PRECISION",
    "TQTQuantizer",
    "tqt_quantize",
    "tqt_quantize_unfused",
    "compute_scale",
    "FakeQuantizer",
    "fake_quantize",
    "nudge_zero_point",
    "PACTQuantizer",
    "pact_quantize",
    "LSQQuantizer",
    "lsq_quantize",
    "calibrate",
    "max_calibration",
    "std_calibration",
    "percentile_calibration",
    "kl_j_calibration",
    "kl_j_distance",
    "CALIBRATION_METHODS",
    "TensorHistogram",
    "quantize_to_int",
    "dequantize",
    "code_dtype",
    "requantize_codes",
    "shift_requantize",
    "fixed_point_multiplier",
    "multiplier_requantize",
    "integer_matmul",
    "integer_conv2d",
    "affine_matmul_with_zero_points",
    "AffineCost",
    "count_affine_cost",
    "FreezingPolicy",
    "ThresholdFreezer",
    "QuantScheme",
    "ActivationQuantizer",
    "QuantizedConv2d",
    "QuantizedLinear",
    "QuantizedAdd",
    "QuantizedConcat",
    "QuantizedLeakyReLU",
    "QuantizedInput",
]
