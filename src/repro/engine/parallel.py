"""Multicore execution for compiled integer plans.

Two complementary parallel schemes, both bit-exact by construction:

* :class:`ShardedRunner` — data parallelism.  A batch is split into
  contiguous row shards, each executed by a private engine bound from the
  same plan, on a persistent thread pool.  Every plan op is per-sample
  independent, so shard outputs concatenate to exactly the codes a single
  engine would produce.  NumPy's BLAS releases the GIL during GEMM, which is
  where these plans spend their time, so the shards genuinely overlap on
  multicore hosts (pin BLAS itself to one thread — ``OMP_NUM_THREADS=1`` —
  to avoid oversubscription).
* :class:`BranchParallelEngine` — op parallelism.  The plan's step
  dependency graph is scheduled into levels; steps within a level have no
  producer/consumer relation and execute concurrently.  Useful for
  multi-branch topologies (inception blocks) where a single batch cannot be
  sharded further.  The engine binds with buffer reuse and scratch sharing
  disabled so concurrent steps never alias storage.

Both expose the :class:`~repro.engine.plan.CompiledEngine` execution
interface (``run`` / ``run_partial`` plus the shape/meta attributes), so
:class:`~repro.engine.runner.BatchedRunner` and the serving fleet can adopt
them through a ``workers=N`` knob without code changes.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from .plan import CompiledEngine, EngineOutput, ExecutionPlan

__all__ = ["ShardedRunner", "BranchParallelEngine", "bootstrap_process_engines"]


def bootstrap_process_engines(artifact_paths: dict[str, str]
                              ) -> dict[str, CompiledEngine]:
    """Load per-process engines from ``.rpa`` plan artifacts.

    The worker-process half of the serving fleet's process backend
    (:class:`repro.serving.procfleet.ProcessFleetBackend`): each spawned
    worker calls this once to warm its private engines from the disk tier.
    Loading an artifact performs zero re-lowering, re-optimization and
    re-profiling (prepacked weights and cached autotune choices ride in the
    payload), so worker start-up cost is the buffer bind plus the tape
    compile — and the engines are bit-exact with the parent's.
    """
    from ..deploy.deployment import Deployment

    engines: dict[str, CompiledEngine] = {}
    for name, path in artifact_paths.items():
        deployment = Deployment.load(path)
        engines[name] = deployment.engine
    return engines


def _unwrap_plan(plan) -> ExecutionPlan:
    """Accept an :class:`ExecutionPlan` or anything carrying one (a
    :class:`~repro.deploy.Deployment`, a compiled-model bundle, an engine)."""
    if isinstance(plan, ExecutionPlan):
        return plan
    inner = getattr(plan, "plan", None)
    if isinstance(inner, ExecutionPlan):
        return inner
    raise TypeError(f"expected an ExecutionPlan or an object with a .plan, "
                    f"got {type(plan).__name__}")


class ShardedRunner:
    """Split fixed-shape batches across per-worker engines bound to shards.

    ``auto_degrade=True`` checks whether sharding can possibly help before
    committing to it: on a single-core host (``os.cpu_count() == 1``) the
    shards only add dispatch overhead, and a quick calibration run (one
    batch single-engine vs. sharded) catches hosts where measured scaling
    still lands below 1.0x.  Either signal degrades the runner to the plain
    single-engine path; the decision and its reason are recorded on
    :attr:`workers` / :attr:`worker_decision` and surfaced through
    :class:`~repro.engine.runner.RunnerStats`.
    """

    def __init__(self, plan: ExecutionPlan, input_shape: tuple[int, ...] | None = None, *,
                 workers: int = 2, accumulate: str | None = None,
                 auto_degrade: bool = False, calibrate: bool = True) -> None:
        if input_shape is None:
            engine = getattr(plan, "engine", None)
            if engine is None:
                raise ValueError("input_shape is required unless the plan object "
                                 "carries a bound engine (a Deployment does)")
            input_shape = engine.input_shape
            if accumulate is None:   # inherit unless explicitly overridden
                accumulate = engine.accumulate
        if accumulate is None:
            accumulate = "blas"
        plan = _unwrap_plan(plan)
        input_shape = tuple(int(s) for s in input_shape)
        if len(input_shape) != 4:
            raise ValueError(f"expected an NCHW input shape, got {input_shape}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        batch = input_shape[0]
        self.workers_requested = int(workers)
        self.worker_decision = "as-requested"
        workers = min(int(workers), batch)
        if workers > 1 and auto_degrade and (os.cpu_count() or 1) <= 1:
            # Shards cannot overlap without cores; don't pay 0.4x dispatch.
            workers = 1
            self.worker_decision = "degraded: single-core host"
        base, remainder = divmod(batch, workers)
        self.shard_sizes = [base + (1 if i < remainder else 0) for i in range(workers)]
        self.plan = plan
        self.accumulate = accumulate
        self.input_shape = input_shape
        self.batch_size = batch
        self.workers = workers
        self.engines = [plan.bind((size, *input_shape[1:]), accumulate=accumulate)
                        for size in self.shard_sizes]
        self.input_dtype = self.engines[0].input_dtype
        self.output_meta = self.engines[0].output_meta
        self._offsets = np.concatenate([[0], np.cumsum(self.shard_sizes)])
        self._closed = False
        self._pool = (ThreadPoolExecutor(max_workers=workers,
                                         thread_name_prefix="engine-shard")
                      if workers > 1 else None)
        if self.workers > 1 and auto_degrade and calibrate:
            scaling, single = self.calibrate()
            if scaling < 1.0:
                self.worker_decision = (f"degraded: calibration scaling "
                                        f"{scaling:.2f}x < 1.0x")
                self._degrade_to_single(single)

    def _degrade_to_single(self, engine: CompiledEngine | None = None) -> None:
        """Collapse to one full-batch engine; keep the runner interface."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self.workers = 1
        self.shard_sizes = [self.batch_size]
        self._offsets = np.array([0, self.batch_size])
        if engine is None:
            engine = self.plan.bind(self.input_shape, accumulate=self.accumulate)
        self.engines = [engine]

    def calibrate(self, repeats: int = 3) -> tuple[float, CompiledEngine]:
        """Measured sharded-over-single scaling on one probe batch (best-of).

        Returns the scaling plus the full-batch probe engine, so a degrade
        decision can adopt it instead of binding a second identical one.
        """
        probe = np.zeros(self.input_shape, dtype=self.input_dtype)
        single = self.plan.bind(self.input_shape, accumulate=self.accumulate)
        single.run(probe)   # warm
        self.run(probe)
        best_single = best_sharded = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            single.run(probe)
            best_single = min(best_single, time.perf_counter() - start)
            start = time.perf_counter()
            self.run(probe)
            best_sharded = min(best_sharded, time.perf_counter() - start)
        scaling = best_single / best_sharded if best_sharded > 0 else 1.0
        return scaling, single

    # ------------------------------------------------------------------ #
    def run(self, x: np.ndarray) -> EngineOutput:
        """Execute a full batch, sharded across the worker engines."""
        if self._closed:
            raise RuntimeError("ShardedRunner is closed")
        x = np.asarray(x, dtype=self.input_dtype)
        if x.shape != self.input_shape:
            raise ValueError(f"runner is bound to input shape {self.input_shape}, "
                             f"got {x.shape}")
        shards = [x[self._offsets[i]:self._offsets[i + 1]]
                  for i in range(self.workers)]
        if self._pool is None:
            outputs = [engine.run(shard)
                       for engine, shard in zip(self.engines, shards)]
        else:
            futures = [self._pool.submit(engine.run, shard)
                       for engine, shard in zip(self.engines, shards)]
            outputs = [future.result() for future in futures]
        codes = np.concatenate([out.codes for out in outputs], axis=0)
        return EngineOutput(codes=codes, fraction=self.output_meta.fraction,
                            divisor=self.output_meta.divisor)

    def run_partial(self, images: np.ndarray) -> EngineOutput:
        """Execute ``1 <= fill <= batch_size`` images (variable-fill batches)."""
        if self._closed:
            raise RuntimeError("ShardedRunner is closed")
        images = np.asarray(images, dtype=self.input_dtype)
        if images.ndim != 4 or images.shape[1:] != self.input_shape[1:]:
            expected = ", ".join(str(s) for s in self.input_shape[1:])
            raise ValueError(f"expected images shaped (fill, {expected}), "
                             f"got {images.shape}")
        fill = images.shape[0]
        if not 1 <= fill <= self.batch_size:
            raise ValueError(f"fill must be in [1, {self.batch_size}], got {fill}")
        jobs = []
        for engine, size, offset in zip(self.engines, self.shard_sizes, self._offsets):
            begin, end = int(offset), min(int(offset) + size, fill)
            if begin >= fill:
                break
            jobs.append((engine, images[begin:end]))
        if self._pool is None or len(jobs) == 1:
            outputs = [engine.run_partial(chunk) for engine, chunk in jobs]
        else:
            futures = [self._pool.submit(engine.run_partial, chunk)
                       for engine, chunk in jobs]
            outputs = [future.result() for future in futures]
        codes = np.concatenate([out.codes for out in outputs], axis=0)
        return EngineOutput(codes=codes, fraction=self.output_meta.fraction,
                            divisor=self.output_meta.divisor)

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ShardedRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _schedule_levels(bound_steps: list) -> list[list]:
    """Group bound steps into dependency levels for concurrent execution.

    A step's level is one past the deepest level among its producers, so
    every step in a level only reads buffers written in strictly earlier
    levels — concurrent execution within a level is race-free as long as
    steps do not share output or scratch storage (``reuse_buffers=False``).
    """
    level_of = {0: 0}  # slot 0 is the plan input
    levels: list[list] = []
    for bound in bound_steps:
        level = 1 + max((level_of[slot] for slot in bound.input_slots), default=0)
        level_of[bound.output_slot] = level
        while len(levels) < level:
            levels.append([])
        levels[level - 1].append(bound)
    return levels


class BranchParallelEngine(CompiledEngine):
    """Execute independent plan branches concurrently (inception-style graphs).

    Binds the plan with private per-step buffers and runs the dependency
    levels of the step graph through a thread pool.  Linear chains degrade
    to sequential execution; the parallel win is proportional to how wide
    the graph's branches are.
    """

    def __init__(self, plan: ExecutionPlan, input_shape: tuple[int, ...], *,
                 workers: int = 2, accumulate: str = "blas") -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        plan = _unwrap_plan(plan)
        # Level-scheduled execution dispatches bound steps concurrently, so
        # this engine runs the steps interpreter, not the (sequential) tape.
        inner = plan.bind(input_shape, accumulate=accumulate, reuse_buffers=False,
                          mode="steps")
        # Adopt the bound engine's state wholesale; only execution changes.
        self.__dict__.update(inner.__dict__)
        self.workers = int(workers)
        self.levels = _schedule_levels(self.steps)
        self.max_width = max((len(level) for level in self.levels), default=0)
        self._pool = (ThreadPoolExecutor(max_workers=self.workers,
                                         thread_name_prefix="engine-branch")
                      if self.workers > 1 else None)

    def run(self, x: np.ndarray) -> EngineOutput:
        x = self._check_input(x)
        env = self._env
        env[0] = x
        for level in self.levels:
            if self._pool is None or len(level) == 1:
                for step in level:
                    step.run(env)
            else:
                list(self._pool.map(lambda step: step.run(env), level))
        codes = env[self.output_slot].astype(self._codes_dtype)
        return EngineOutput(codes=codes, fraction=self.output_meta.fraction,
                            divisor=self.output_meta.divisor)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "BranchParallelEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
