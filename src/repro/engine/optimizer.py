"""Plan-level optimization passes for the integer inference engine.

:func:`optimize_plan` rewrites a lowered :class:`~repro.engine.plan.ExecutionPlan`
into an :class:`OptimizedPlan` whose steps execute the same integer
arithmetic through faster kernels.  The pass pipeline runs between lowering
and binding:

1. **Compute-step fusion / GEMM-epilogue fusion** — every conv/matmul step
   is rewritten so the bias add, 16-bit accumulator stage, activation and
   requantization shift/clamp run directly on the GEMM accumulator; the
   intermediate NCHW "image" copy of the baseline conv step disappears and
   the requantized codes are written into the output buffer in one pass.
   Standalone ReLU / ReLU6 steps are folded into their producer when they
   are its sole consumer.
2. **Weight prepacking** — weight codes are packed into their GEMM-ready
   layout (transposed ``(G, K, O)`` matrices, per-channel depthwise filters,
   ``(O, C)`` pointwise matrices) once at optimization time, in both float64
   and float32 lanes, instead of on every bind.
3. **im2col elimination** — 1x1 ungrouped convolutions (the pointwise half
   of every depthwise-separable block) skip im2col entirely: the GEMM runs
   over the channel axis of the NCHW tensor and produces the output layout
   directly.  All remaining staging buffers (im2col columns, padded inputs,
   accumulators, cast staging) are shared across steps through the bind
   context's scratch pool, so a deep plan allocates each distinct shape once.
4. **Per-layer backend autotuning** — each rewritten step carries several
   bit-exact kernel variants (float64 BLAS lanes, float32 BLAS lanes when
   the worst-case accumulator provably fits 2^24, pure int64).  On the first
   bind the autotuner micro-profiles every variant in place and caches the
   winning choice on the plan, so later binds (shard engines, recompiles of
   the same plan) reuse the decision.

Every pass is semantics-preserving on the integer grid: the optimized plan
is *bit-exact* against the unoptimized plan (and therefore against the
fake-quant simulation), which the parity suite asserts for every registry
model.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field

import numpy as np

from ..graph.ir import OpKind
from .counters import PIPELINE_COUNTERS
from .kernels import (
    FLOAT32_ACCUMULATOR_LIMIT,
    ConvGeometry,
    _normalize_pair,
    depthwise_accumulate,
    pointwise_accumulate,
)
from .plan import (
    CompiledEngine,
    ExecutionPlan,
    PlanError,
    _ActivationOnlyStep,
    _apply_activation,
    _BoundStep,
    _ComputeStep,
    _ConvStep,
    _LinearStep,
    _relu6_bound,
)

__all__ = [
    "ElementwiseChain",
    "OptimizationReport",
    "OptimizedPlan",
    "optimize_plan",
    "autotune_engine",
    "tail_chain",
]


# ---------------------------------------------------------------------- #
# Reporting
# ---------------------------------------------------------------------- #
@dataclass
class OptimizationReport:
    """What the pass pipeline did to one plan."""

    passes: list[str] = field(default_factory=list)
    epilogue_fused: int = 0        # compute steps rewritten with fused epilogues
    pointwise_lowered: int = 0     # 1x1 convs rewritten as direct GEMM
    depthwise_direct: int = 0      # depthwise convs on the window-view contraction
    activations_fused: int = 0     # standalone relu/relu6 folded into producers
    prepacked_steps: int = 0       # steps with bind-ready weight layouts
    prepacked_bytes: int = 0

    def to_dict(self) -> dict:
        return {
            "passes": list(self.passes),
            "epilogue_fused": self.epilogue_fused,
            "pointwise_lowered": self.pointwise_lowered,
            "depthwise_direct": self.depthwise_direct,
            "activations_fused": self.activations_fused,
            "prepacked_steps": self.prepacked_steps,
            "prepacked_bytes": self.prepacked_bytes,
        }


# ---------------------------------------------------------------------- #
# Elementwise-chain fusion (the tape executor's epilogue compiler)
# ---------------------------------------------------------------------- #
_INF = float("inf")


def _array_is_integral(arr: np.ndarray) -> bool:
    return bool(np.all(arr == np.rint(arr)))


def _maximum_into(a, b, out) -> None:
    np.maximum(a, b, out=out)


def _minimum_into(a, b, out) -> None:
    np.minimum(a, b, out=out)


def _clip_into(a, lo, hi, out) -> None:
    np.clip(a, lo, hi, out=out)


class ElementwiseChain:
    """Compile a requantize/activation/copy chain into a minimal op list.

    The step interpreter executes its post-accumulation pipeline as a fixed
    sequence of small NumPy calls (scale, round, clip, activation, copy) —
    each a full pass over the tensor, each with fixed per-call overhead that
    dominates at nano feature-map sizes.  This builder records the chain
    *declaratively* and compiles it into prebound ``(ufunc, args)`` calls,
    eliminating every operation that is provably the identity on the integer
    grid:

    * ``scale(1.0)`` disappears;
    * ``round`` disappears when the running value is provably integral
      (integer codes scaled by integer factors stay on the grid);
    * ``clip`` disappears when the tracked magnitude bound proves the value
      already inside the clip range;
    * adjacent clips merge into one with intersected bounds;
    * a clip (ReLU is ``clip(0, inf)``, ReLU6 ``clip(0, b)``) slides forward
      past positive scales and rounds — exact whenever its finite bounds land
      on the integer grid after scaling, since monotone rounding commutes
      with clamping at integral thresholds — and merges into the final clamp.

    Every elimination is exactness-preserving, so the compiled chain is
    bit-identical to the naive sequence; ``fuse=False`` compiles the naive
    sequence for A/B benchmarking.  The compiled ops run in place on ``src``
    when ``src_mutable`` (scratch accumulators), otherwise the first op moves
    the value into ``dst``; an empty chain degenerates to one ``copyto`` (or
    nothing, when ``src is dst``).
    """

    def __init__(self, src: np.ndarray, dst: np.ndarray, *, bound: float = _INF,
                 integral: bool = True, src_mutable: bool = False,
                 fuse: bool = True) -> None:
        self.src = src
        self.dst = dst
        self.in_bound = float(bound)
        self.in_integral = integral
        self.src_mutable = src_mutable
        self.fuse = fuse
        self._ops: list[tuple] = []

    # -- recording ----------------------------------------------------- #
    def scale(self, factor: float) -> "ElementwiseChain":
        self._ops.append(("scale", float(factor)))
        return self

    def round(self) -> "ElementwiseChain":
        self._ops.append(("round",))
        return self

    def clip(self, lo: float, hi: float) -> "ElementwiseChain":
        self._ops.append(("clip", float(lo), float(hi)))
        return self

    def relu(self) -> "ElementwiseChain":
        return self.clip(0.0, _INF)

    def relu6(self, bound: float) -> "ElementwiseChain":
        return self.clip(0.0, float(bound))

    def add(self, addend: np.ndarray, bound_after: float | None = None
            ) -> "ElementwiseChain":
        self._ops.append(("add", addend, float(np.max(np.abs(addend), initial=0.0)),
                          _array_is_integral(addend), bound_after))
        return self

    # -- fusion -------------------------------------------------------- #
    def _eliminate(self) -> tuple[list[tuple], dict[str, int]]:
        """Value-tracked elimination + clip merging over the recorded ops."""
        eliminated = {"scale": 0, "round": 0, "clip": 0}
        out: list[tuple] = []
        bound, integral = self.in_bound, self.in_integral
        for op in self._ops:
            kind = op[0]
            if kind == "scale":
                factor = op[1]
                new_bound = bound * abs(factor)
                new_integral = integral and float(factor).is_integer()
                if factor == 1.0:
                    eliminated["scale"] += 1
                else:
                    out.append(op)
                bound, integral = new_bound, new_integral
            elif kind == "round":
                if integral:
                    eliminated["round"] += 1
                else:
                    out.append(op)
                    bound = bound + 0.5
                    integral = True
            elif kind == "clip":
                lo, hi = op[1], op[2]
                if bound <= hi and -bound >= lo:
                    eliminated["clip"] += 1
                    continue
                if (out and out[-1][0] == "clip"
                        and max(out[-1][1], lo) <= min(out[-1][2], hi)):
                    lo, hi = max(out[-1][1], lo), min(out[-1][2], hi)
                    out[-1] = ("clip", lo, hi)
                    eliminated["clip"] += 1
                else:
                    out.append(op)
                # Post-clip range is [max(-bound, lo), min(bound, hi)].
                bound = max(abs(max(-bound, lo)), abs(min(bound, hi)))
            else:  # add
                _, addend, addend_bound, addend_integral, bound_after = op
                out.append(op)
                bound = bound_after if bound_after is not None else bound + addend_bound
                integral = integral and addend_integral
        return out, eliminated

    @staticmethod
    def _slide_clips(ops: list[tuple]) -> tuple[list[tuple], int]:
        """Slide clips forward past positive scales/rounds into a later clip.

        Exact iff each finite clip bound stays on the integer grid after the
        intervening scales (monotone round then commutes with the clamp).
        """
        slid = 0
        changed = True
        while changed:
            changed = False
            for i, op in enumerate(ops):
                if op[0] != "clip":
                    continue
                lo, hi = op[1], op[2]

                def _on_grid(value: float, factor: float) -> bool:
                    return value in (-_INF, _INF) or float(value * factor).is_integer()

                factor = 1.0
                j = i + 1
                ok = True
                while j < len(ops) and ops[j][0] != "clip":
                    if ops[j][0] == "scale" and ops[j][1] > 0:
                        factor *= ops[j][1]
                    elif ops[j][0] == "round":
                        # Clamping commutes with monotone rounding only at
                        # integral thresholds — check at this point, not
                        # just at the destination clip.
                        if not (_on_grid(lo, factor) and _on_grid(hi, factor)):
                            ok = False
                            break
                    else:
                        ok = False
                        break
                    j += 1
                if not ok or j >= len(ops) or ops[j][0] != "clip":
                    continue
                lo_s = lo * factor if lo != -_INF else -_INF
                hi_s = hi * factor if hi != _INF else _INF
                if not (_on_grid(lo, factor) and _on_grid(hi, factor)):
                    continue
                nlo, nhi = ops[j][1], ops[j][2]
                if max(nlo, lo_s) > min(nhi, hi_s):
                    # Disjoint clamp ranges do not compose into one clip.
                    continue
                ops[j] = ("clip", max(nlo, lo_s), min(nhi, hi_s))
                del ops[i]
                slid += 1
                changed = True
                break
        return ops, slid

    # -- codegen ------------------------------------------------------- #
    def compile(self) -> tuple[list[tuple], dict[str, int]]:
        """Lower to prebound ``(callable, args)`` pairs plus fusion stats."""
        stats = {"ops_recorded": len(self._ops), "scale": 0, "round": 0,
                 "clip": 0, "slid_clips": 0, "copies": 0}
        if self.fuse:
            ops, eliminated = self._eliminate()
            ops, slid = self._slide_clips(ops)
            stats.update(eliminated)
            stats["slid_clips"] = slid
        else:
            ops = [op for op in self._ops]
        calls: list[tuple] = []
        src, dst = self.src, self.dst
        if not ops:
            if src is not dst:
                calls.append((np.copyto, (dst, src)))
                stats["copies"] = 1
            stats["ops_emitted"] = len(calls)
            return calls, stats
        cur = src
        for index, op in enumerate(ops):
            last = index == len(ops) - 1
            if last:
                target = dst
            elif cur is not src or self.src_mutable:
                target = cur
            else:
                target = dst
            kind = op[0]
            if kind == "scale":
                calls.append((np.multiply, (cur, op[1], target)))
            elif kind == "round":
                calls.append((np.rint, (cur, target)))
            elif kind == "clip":
                lo, hi = op[1], op[2]
                if lo == -_INF:
                    calls.append((_minimum_into, (cur, hi, target)))
                elif hi == _INF:
                    calls.append((_maximum_into, (cur, lo, target)))
                else:
                    calls.append((_clip_into, (cur, lo, hi, target)))
            else:  # add
                calls.append((np.add, (cur, op[1], target)))
            cur = target
        stats["ops_emitted"] = len(calls)
        return calls, stats


def tail_chain(constants: dict, src: np.ndarray, dst: np.ndarray, *,
               src_mutable: bool = True, fuse: bool = True,
               extra_activation: str | None = None,
               extra_relu6_bound: float | None = None) -> tuple[list[tuple], dict]:
    """Compile a compute step's post-accumulation tail as a fused chain.

    Mirrors :func:`_run_compute_tail` / :func:`_fused_tail` semantics — bias
    add, 16-bit accumulator stage, activation, output requantize — from the
    step's resolved tail ``constants``, with the chain compiler's elimination
    rules subsuming the ``_augment_tail`` shortcuts.  ``extra_activation``
    appends a folded standalone ReLU/ReLU6 on the output codes.
    """
    chain = ElementwiseChain(src, dst, bound=float(constants.get("acc_bound", _INF)),
                             integral=True, src_mutable=src_mutable, fuse=fuse)
    divisor = constants["divisor"]
    if constants["bias_addend"] is not None:
        if constants["acc_shift_up"] != 1.0:
            chain.scale(constants["acc_shift_up"])
        chain.add(constants["bias_addend"],
                  bound_after=float(constants.get("acc_bound", _INF)))
    if constants["internal_shift"] is not None:
        stage = constants["internal"]
        chain.scale((2.0 ** float(-constants["internal_shift"])) / float(divisor))
        chain.round()
        chain.clip(stage.qmin, stage.qmax)
        divisor = 1
    if constants["activation"] == "relu":
        chain.relu()
    elif constants["activation"] == "relu6":
        chain.relu6(constants["relu6_bound"])
    if constants["output_shift"] is not None:
        stage = constants["output_stage"]
        chain.scale((2.0 ** float(-constants["output_shift"])) / float(divisor))
        chain.round()
        chain.clip(stage.qmin, stage.qmax)
    if extra_activation == "relu":
        chain.relu()
    elif extra_activation == "relu6":
        chain.relu6(extra_relu6_bound)
    return chain.compile()


# ---------------------------------------------------------------------- #
# Tunable bound steps
# ---------------------------------------------------------------------- #
class _TunableBound(_BoundStep):
    """Bound step dispatching through one of several bit-exact kernel variants.

    Subclasses are created per bind with ``_impls`` (variant name ->
    ``fn(bound, env)``) and ``_default`` filled in; the autotuner flips
    ``variant`` after micro-profiling.
    """

    _impls: dict = {}
    _default: str = ""
    #: bind-time kernel metadata for the tape compiler (set per bind)
    _tape: dict | None = None

    def __init__(self, step, input_slots, output_slot, output) -> None:
        super().__init__(step, input_slots, output_slot, output)
        self.variant = self._default

    @property
    def variants(self) -> tuple[str, ...]:
        return tuple(self._impls)

    @property
    def tunable(self) -> bool:
        return len(self._impls) > 1

    def set_variant(self, name: str) -> None:
        if name not in self._impls:
            raise ValueError(f"{self.step.name}: unknown kernel variant {name!r}; "
                             f"available: {list(self._impls)}")
        self.variant = name

    def run(self, env) -> None:
        self._impls[self.variant](self, env)


def _f32_exact(constants: dict, accumulator_bound: int, in_max_abs: int) -> bool:
    """True when every intermediate of the step provably fits float32 lanes.

    The GEMM partial sums are bounded by the (post-bias) accumulator bound;
    requantization stages scale by ``2^-shift`` *before* clipping, so a
    negative shift can grow the pre-clip value and must be checked too.
    """
    worst = current = float(accumulator_bound)
    if constants["internal_shift"] is not None:
        worst = max(worst, current * 2.0 ** float(-constants["internal_shift"]))
        current = float(constants["internal"].max_abs)
    if constants["output_shift"] is not None:
        worst = max(worst, current * 2.0 ** float(-constants["output_shift"]))
    return max(worst, float(in_max_abs)) < FLOAT32_ACCUMULATOR_LIMIT


def _out_dtype(constants: dict, ctx) -> np.dtype:
    """float32 output lanes when every output code provably fits 2^24.

    Post-requantize codes are bounded by the output meta's ``max_abs``;
    below the float32 exact-integer limit the half-width buffer halves the
    write+read traffic at the step boundary and every consumer stays exact
    (downstream GEMMs/reductions with float64 targets promote — verified —
    and staging copies cast on write).  GEMM accumulators never target these
    buffers directly when the lanes are narrow.
    """
    if (ctx.accumulate == "blas"
            and 0 < constants["out_meta"].max_abs < FLOAT32_ACCUMULATOR_LIMIT):
        return np.dtype(np.float32)
    return np.dtype(np.float64)


def _f32_constants(constants: dict) -> dict:
    """Tail constants with the bias addend staged in float32 lanes."""
    if constants["bias_addend"] is None:
        return constants
    lowered = dict(constants)
    lowered["bias_addend"] = constants["bias_addend"].astype(np.float32)
    return lowered


def _augment_tail(constants: dict, accumulator_bound: int) -> dict:
    """Precompute epilogue shortcuts that the accumulator bound proves safe.

    * ``skip_internal_clip`` — the 16-bit accumulator stage's clip is a
      no-op when the shifted worst-case accumulator provably stays inside
      the stage's range; the rounding still runs (it changes codes).
    * Activation folding — ``relu``/``relu6`` before an output stage
      commute with the monotone requantize shift, so they collapse into
      the output clip's bounds (``final_qmin``/``final_qmax``) and the
      separate full-tensor activation pass disappears.  ReLU6 folds only
      when its clip lands on the output integer grid; otherwise the
      baseline two-pass order is kept.
    """
    c = dict(constants)
    c["skip_internal_clip"] = False
    c["skip_activation"] = False
    c["final_qmin"] = c["final_qmax"] = None
    bound = float(accumulator_bound)
    if c["internal_shift"] is not None:
        stage = c["internal"]
        shifted = bound * 2.0 ** float(-c["internal_shift"]) / float(c["divisor"])
        if shifted + 1.0 <= stage.qmax and -(shifted + 1.0) >= stage.qmin:
            c["skip_internal_clip"] = True
    if c["output_shift"] is not None and c["activation"] in ("relu", "relu6"):
        stage = c["output_stage"]
        lo, hi = max(stage.qmin, 0), stage.qmax
        foldable = True
        if c["activation"] == "relu6":
            bound6 = 6.0 * 2.0 ** stage.fraction
            if bound6 == np.floor(bound6):
                hi = min(hi, int(bound6))
            else:
                foldable = False
        if foldable:
            c["skip_activation"] = True
            c["final_qmin"], c["final_qmax"] = lo, hi
    return c


def _epilogue_prologue(acc: np.ndarray, c: dict) -> int:
    """Shared epilogue head: bias add, internal accumulator stage, activation.

    Runs in place on the accumulator (any layout, any lane dtype) and
    returns the divisor remaining for the output shift.  The ``_augment_tail``
    shortcuts apply: a provably no-op internal clip is skipped, and a folded
    activation is deferred to the output clamp.
    """
    if c["bias_addend"] is not None:
        if c["acc_shift_up"] != 1.0:
            np.multiply(acc, c["acc_shift_up"], out=acc)
        acc += c["bias_addend"]
    divisor = c["divisor"]
    if c["internal_shift"] is not None:
        stage = c["internal"]
        np.multiply(acc, (2.0 ** float(-c["internal_shift"])) / float(divisor), out=acc)
        np.rint(acc, out=acc)
        if not c["skip_internal_clip"]:
            np.clip(acc, stage.qmin, stage.qmax, out=acc)
        divisor = 1
    if not c["skip_activation"]:
        _apply_activation(acc, c["activation"], c["relu6_bound"])
    return divisor


def _fused_tail(acc: np.ndarray, out: np.ndarray, c: dict) -> None:
    """Bias/stage/activation/requantize with the ``_augment_tail`` shortcuts."""
    divisor = _epilogue_prologue(acc, c)
    if c["output_shift"] is not None:
        stage = c["output_stage"]
        np.multiply(acc, (2.0 ** float(-c["output_shift"])) / float(divisor), out=out)
        np.rint(out, out=out)
        lo = stage.qmin if c["final_qmin"] is None else c["final_qmin"]
        hi = stage.qmax if c["final_qmax"] is None else c["final_qmax"]
        np.clip(out, lo, hi, out=out)
    else:
        np.copyto(out, acc)


def _conv_epilogue(acc: np.ndarray, out: np.ndarray, c: dict,
                   g: int, n: int, og: int, oh: int, ow: int) -> None:
    """Bias/stage/activation/requantize directly on the (G, M, O) accumulator.

    The final shift+clamp writes through a transposed view of the NCHW
    output buffer, so the baseline's separate accumulator→image transpose
    copy disappears; rint/clip then run on the contiguous output.  The
    ``_augment_tail`` shortcuts (no-op clip elimination, activation folding)
    apply here too.
    """
    divisor = _epilogue_prologue(acc, c)   # bias addend is the (G, 1, O) reshape
    acc_t = acc.reshape(g, n, oh, ow, og).transpose(0, 1, 4, 2, 3)
    out_v = out.reshape(n, g, og, oh, ow).transpose(1, 0, 2, 3, 4)
    if c["output_shift"] is not None:
        stage = c["output_stage"]
        factor = (2.0 ** float(-c["output_shift"])) / float(divisor)
        np.multiply(acc_t, factor, out=out_v)
        np.rint(out, out=out)
        lo = stage.qmin if c["final_qmin"] is None else c["final_qmin"]
        hi = stage.qmax if c["final_qmax"] is None else c["final_qmax"]
        np.clip(out, lo, hi, out=out)
    else:
        np.copyto(out_v, acc_t)


# ---------------------------------------------------------------------- #
# Optimized compute steps
# ---------------------------------------------------------------------- #
class _FusedConvStep(_ComputeStep):
    """Conv step with prepacked weights and the epilogue fused onto the GEMM.

    Depthwise convolutions contract the strided window view directly (no
    im2col, no group transpose); all other convolutions keep im2col but skip
    the baseline's accumulator→image copy.  Kernel variants: ``blas``
    (float64 lanes), ``blas32`` (float32 lanes, offered only when the
    accumulator bound fits 2^24), ``int`` (pure int64 reference).
    """

    def __init__(self, src: _ConvStep) -> None:
        super().__init__(src.name, src.op, list(src.inputs),
                         weight_codes=src.weight_codes,
                         weight_fraction=src.weight_fraction,
                         bias_codes=src.bias_codes, bias_fraction=src.bias_fraction,
                         internal=src.internal, activation=src.activation,
                         output=src.output_stage)
        self.out_channels = src.out_channels
        self.kernel_size = src.kernel_size
        self.stride = src.stride
        self.padding = src.padding
        self.groups = src.groups
        self.packed: dict[str, np.ndarray] = {}

    @property
    def is_depthwise(self) -> bool:
        return (self.groups > 1 and self.groups == self.out_channels
                and self.weight_codes.shape[1] == 1)

    def prepack(self) -> int:
        """Stage the weight codes in GEMM-ready layout (once, not per bind)."""
        g = self.groups
        if self.is_depthwise:
            kh, kw = self.weight_codes.shape[2], self.weight_codes.shape[3]
            packed = self.weight_codes.reshape(g, kh, kw).astype(np.float64)
            self.packed = {"f64": packed, "f32": packed.astype(np.float32)}
        else:
            o, cg, kh, kw = self.weight_codes.shape
            k = cg * kh * kw
            packed = np.ascontiguousarray(
                self.weight_codes.reshape(g, o // g, k).transpose(0, 2, 1)
                .astype(np.float64))
            self.packed = {"f64": packed, "f32": packed.astype(np.float32)}
            if g == 1:
                # (O, C, KH, KW) layout for the window-view einsum variant.
                w4 = self.weight_codes.astype(np.float64)
                self.packed["w4_f64"] = w4
                self.packed["w4_f32"] = w4.astype(np.float32)
            else:
                # (G, Og, Cg, KH, KW) layout for the grouped window-view
                # einsum variant (non-depthwise grouped convolutions).
                w5 = self.weight_codes.reshape(g, o // g, cg, kh, kw).astype(np.float64)
                self.packed["w5_f64"] = w5
                self.packed["w5_f32"] = w5.astype(np.float32)
        return sum(w.nbytes for w in self.packed.values())

    def describe(self) -> str:
        kind = "depthwise-direct" if self.is_depthwise else "im2col"
        return super().describe() + f", fused-epilogue[{kind}]"

    def bind(self, values, ctx):
        if not self.packed:
            self.prepack()
        (x,) = values
        n, c_in, h, w = x.shape
        geometry = ConvGeometry.from_module(
            n, c_in, h, w, self.out_channels, self.kernel_size, self.stride,
            self.padding, self.groups, scratch=ctx.scratch)
        g = self.groups
        k = (c_in // g) * geometry.kernel[0] * geometry.kernel[1]
        constants = _augment_tail(self._tail_constants(
            x.meta, k_per_output=k,
            weight_max_abs=int(np.max(np.abs(self.weight_codes), initial=0)),
        ), self.accumulator_bound)
        out = ctx.pool.acquire(geometry.output_shape, _out_dtype(constants, ctx))
        f32_ok = _f32_exact(constants, self.accumulator_bound, x.meta.max_abs)
        if self.is_depthwise:
            bound_cls = self._bind_depthwise(geometry, constants, ctx, f32_ok)
        else:
            bound_cls = self._bind_im2col(geometry, constants, ctx, f32_ok)
        return bound_cls, geometry.output_shape, constants["out_meta"], out

    # ------------------------------------------------------------------ #
    def _bind_depthwise(self, geometry, constants, ctx, f32_ok):
        n, c_in = geometry.batch, geometry.in_channels
        h, w = geometry.height, geometry.width
        weight64, weight32 = self.packed["f64"], self.packed["f32"]
        probe = geometry.windows(np.zeros((n, c_in, h, w)))
        path = np.einsum_path("nchwij,cij->nchw", probe, weight64, optimize=True)[0]
        image = ctx.scratch(("dw_image",), geometry.output_shape)
        if constants["bias_addend"] is not None:
            constants = dict(constants)
            constants["bias_addend"] = constants["bias_addend"].reshape(1, -1, 1, 1)

        def run_int(bound, env):
            depthwise_accumulate(geometry, env[bound.input_slots[0]], weight64,
                                 image, path, mode="int")
            _fused_tail(image, bound.output, constants)
            env[bound.output_slot] = bound.output

        impls = {"int": run_int}
        default = "int"
        tape_info = dict(kind="dw", step=self, geometry=geometry, geometry32=None,
                         weight64=weight64, weight32=weight32, path=path,
                         image=image, image32=None, constants_img=constants,
                         constants_img32=None, f32_ok=f32_ok, groups=self.groups)
        if ctx.accumulate == "blas":
            def run_blas(bound, env):
                depthwise_accumulate(geometry, env[bound.input_slots[0]], weight64,
                                     image, path, mode="blas")
                _fused_tail(image, bound.output, constants)
                env[bound.output_slot] = bound.output

            impls = {"blas": run_blas, "int": run_int}
            default = "blas"
            if f32_ok:
                geometry32 = ConvGeometry.from_module(
                    n, c_in, h, w, self.out_channels, self.kernel_size, self.stride,
                    self.padding, self.groups, dtype=np.float32, scratch=ctx.scratch)
                image32 = ctx.scratch(("dw_image",), geometry.output_shape, np.float32)
                constants32 = _f32_constants(constants)
                tape_info.update(geometry32=geometry32, image32=image32,
                                 constants_img32=constants32)

                def run_blas32(bound, env):
                    depthwise_accumulate(geometry32, env[bound.input_slots[0]], weight32,
                                         image32, path, mode="blas")
                    _fused_tail(image32, bound.output, constants32)
                    env[bound.output_slot] = bound.output

                impls["blas32"] = run_blas32

        class Bound(_TunableBound):
            _impls = impls
            _default = default
            _tape = tape_info

        return Bound

    def _bind_im2col(self, geometry, constants, ctx, f32_ok):
        g, n = self.groups, geometry.batch
        og = self.out_channels // g
        oh, ow = geometry.out_height, geometry.out_width
        m = n * oh * ow
        weight64, weight32 = self.packed["f64"], self.packed["f32"]
        acc = ctx.scratch(("conv_acc",), (g, m, og))
        constants_img = constants
        if constants["bias_addend"] is not None:
            constants = dict(constants)
            constants["bias_addend"] = constants["bias_addend"].reshape(g, 1, og)
            constants_img = dict(constants_img)
            constants_img["bias_addend"] = \
                constants_img["bias_addend"].reshape(1, -1, 1, 1)

        def run_int(bound, env):
            cols = geometry.fill_columns(env[bound.input_slots[0]])
            acc[...] = np.einsum("gmk,gko->gmo", cols.astype(np.int64),
                                 weight64.astype(np.int64), optimize=True)
            _conv_epilogue(acc, bound.output, constants, g, n, og, oh, ow)
            env[bound.output_slot] = bound.output

        impls = {"int": run_int}
        default = "int"
        tape_info = dict(kind="conv", step=self, geometry=geometry, geometry32=None,
                         constants_img=constants_img, constants_img32=None,
                         f32_ok=f32_ok, groups=g, grouped=g > 1,
                         image=None, image32=None, weight64=None, weight32=None,
                         path4=None, path5=None)
        if ctx.accumulate == "blas":
            def run_blas(bound, env):
                cols = geometry.fill_columns(env[bound.input_slots[0]])
                np.matmul(cols, weight64, out=acc)
                _conv_epilogue(acc, bound.output, constants, g, n, og, oh, ow)
                env[bound.output_slot] = bound.output

            impls = {"blas": run_blas, "int": run_int}
            default = "blas"
            geometry32 = None
            if f32_ok:
                geometry32 = ConvGeometry.from_module(
                    n, geometry.in_channels, geometry.height, geometry.width,
                    self.out_channels, self.kernel_size, self.stride, self.padding,
                    self.groups, dtype=np.float32, scratch=ctx.scratch)
                acc32 = ctx.scratch(("conv_acc",), (g, m, og), np.float32)
                constants32 = _f32_constants(constants)
                tape_info.update(geometry32=geometry32,
                                 constants_img32=_f32_constants(constants_img))

                def run_blas32(bound, env):
                    cols = geometry32.fill_columns(env[bound.input_slots[0]])
                    np.matmul(cols, weight32, out=acc32)
                    _conv_epilogue(acc32, bound.output, constants32, g, n, og, oh, ow)
                    env[bound.output_slot] = bound.output

                impls["blas32"] = run_blas32
            if g == 1:
                # Window-view einsum: contract the strided (N,C,OH,OW,KH,KW)
                # view against (O,C,KH,KW) weights straight into NCHW — no
                # explicit im2col copy, no accumulator transpose.  Wins at
                # small channel counts; the autotuner arbitrates per layer.
                w4_64 = self.packed["w4_f64"]
                probe = geometry.windows(
                    np.zeros((n, geometry.in_channels, geometry.height,
                              geometry.width)))
                path = np.einsum_path("nchwij,ocij->nohw", probe, w4_64,
                                      optimize=True)[0]
                image = ctx.scratch(("conv_image",), geometry.output_shape)
                tape_info.update(image=image, weight64=w4_64, path4=path)

                def run_wingemm(bound, env):
                    windows = geometry.windows(env[bound.input_slots[0]])
                    np.einsum("nchwij,ocij->nohw", windows, w4_64, out=image,
                              optimize=path)
                    _fused_tail(image, bound.output, constants_img)
                    env[bound.output_slot] = bound.output

                impls["wingemm"] = run_wingemm
                if f32_ok:
                    w4_32 = self.packed["w4_f32"]
                    image32 = ctx.scratch(("conv_image",), geometry.output_shape,
                                          np.float32)
                    constants_img32 = _f32_constants(constants_img)
                    tape_info.update(image32=image32, weight32=w4_32,
                                     constants_img32=constants_img32)

                    def run_wingemm32(bound, env):
                        windows = geometry32.windows(env[bound.input_slots[0]])
                        np.einsum("nchwij,ocij->nohw", windows, w4_32, out=image32,
                                  optimize=path)
                        _fused_tail(image32, bound.output, constants_img32)
                        env[bound.output_slot] = bound.output

                    impls["wingemm32"] = run_wingemm32
            else:
                # Grouped (non-depthwise) window-view einsum: splitting the
                # window view's channel axis into (G, Cg) is stride-free, so
                # each group contracts against its (Og, Cg, KH, KW) filter
                # block straight into the grouped NCHW output — no im2col
                # copy, no group-major accumulator transpose.  This was the
                # last conv family without a window-einsum variant.
                w5_64 = self.packed["w5_f64"]
                cg = geometry.in_channels // g
                kh, kw = geometry.kernel
                probe = geometry.windows(
                    np.zeros((n, geometry.in_channels, geometry.height,
                              geometry.width)))
                probe5 = probe.reshape(n, g, cg, oh, ow, kh, kw)
                path5 = np.einsum_path("ngchwij,gocij->ngohw", probe5, w5_64,
                                       optimize=True)[0]
                image = ctx.scratch(("conv_image",), geometry.output_shape)
                tape_info.update(image=image, weight64=w5_64, path5=path5)

                def run_wingemm(bound, env):
                    windows = geometry.windows(env[bound.input_slots[0]])
                    win5 = windows.reshape(n, g, cg, oh, ow, kh, kw)
                    np.einsum("ngchwij,gocij->ngohw", win5, w5_64,
                              out=image.reshape(n, g, og, oh, ow), optimize=path5)
                    _fused_tail(image, bound.output, constants_img)
                    env[bound.output_slot] = bound.output

                impls["wingemm"] = run_wingemm
                if f32_ok:
                    w5_32 = self.packed["w5_f32"]
                    image32 = ctx.scratch(("conv_image",), geometry.output_shape,
                                          np.float32)
                    constants_img32 = _f32_constants(constants_img)
                    tape_info.update(image32=image32, weight32=w5_32,
                                     constants_img32=constants_img32)

                    def run_wingemm32(bound, env):
                        windows = geometry32.windows(env[bound.input_slots[0]])
                        win5 = windows.reshape(n, g, cg, oh, ow, kh, kw)
                        np.einsum("ngchwij,gocij->ngohw", win5, w5_32,
                                  out=image32.reshape(n, g, og, oh, ow),
                                  optimize=path5)
                        _fused_tail(image32, bound.output, constants_img32)
                        env[bound.output_slot] = bound.output

                    impls["wingemm32"] = run_wingemm32

        class Bound(_TunableBound):
            _impls = impls
            _default = default
            _tape = tape_info

        return Bound


class _PointwiseConvStep(_ComputeStep):
    """1x1 ungrouped conv as a direct channel-axis GEMM (im2col eliminated)."""

    def __init__(self, src: _ConvStep) -> None:
        super().__init__(src.name, src.op, list(src.inputs),
                         weight_codes=src.weight_codes,
                         weight_fraction=src.weight_fraction,
                         bias_codes=src.bias_codes, bias_fraction=src.bias_fraction,
                         internal=src.internal, activation=src.activation,
                         output=src.output_stage)
        self.out_channels = src.out_channels
        self.kernel_size = src.kernel_size
        self.stride = src.stride
        self.padding = src.padding
        self.groups = src.groups
        self.packed: dict[str, np.ndarray] = {}

    @classmethod
    def eligible(cls, src) -> bool:
        return (isinstance(src, _ConvStep) and src.groups == 1
                and _normalize_pair(src.kernel_size) == (1, 1)
                and _normalize_pair(src.padding) == (0, 0))

    def prepack(self) -> int:
        packed = np.ascontiguousarray(
            self.weight_codes.reshape(self.out_channels, -1).astype(np.float64))
        self.packed = {"f64": packed, "f32": packed.astype(np.float32)}
        return sum(w.nbytes for w in self.packed.values())

    def describe(self) -> str:
        return super().describe() + ", pointwise-gemm[no-im2col]"

    def bind(self, values, ctx):
        if not self.packed:
            self.prepack()
        (x,) = values
        n, c_in, h, w = x.shape
        sh, sw = _normalize_pair(self.stride)
        oh, ow = (h - 1) // sh + 1, (w - 1) // sw + 1
        out_shape = (n, self.out_channels, oh, ow)
        subsample = (sh, sw) if (sh, sw) != (1, 1) else None
        constants = _augment_tail(self._tail_constants(
            x.meta, k_per_output=c_in,
            weight_max_abs=int(np.max(np.abs(self.weight_codes), initial=0)),
        ), self.accumulator_bound)
        if constants["bias_addend"] is not None:
            constants = dict(constants)
            constants["bias_addend"] = constants["bias_addend"].reshape(1, -1, 1)
        out = ctx.pool.acquire(out_shape, _out_dtype(constants, ctx))
        out_gemm = out.reshape(n, self.out_channels, oh * ow)
        # The GEMM may only target the output buffer directly when its lanes
        # are float64 — the raw accumulator can exceed the float32 range.
        acc = (out_gemm if out.dtype == np.float64
               else ctx.scratch(("pw_acc64",), (n, self.out_channels, oh * ow)))
        weight64, weight32 = self.packed["f64"], self.packed["f32"]
        staging64 = (ctx.scratch(("pw_staging",), (n, c_in, oh, ow))
                     if subsample is not None else None)
        f32_ok = _f32_exact(constants, self.accumulator_bound, x.meta.max_abs)

        def run_int(bound, env):
            pointwise_accumulate(env[bound.input_slots[0]], weight64, acc,
                                 staging=staging64, subsample=subsample, mode="int")
            _fused_tail(acc, out_gemm, constants)
            env[bound.output_slot] = bound.output

        impls = {"int": run_int}
        default = "int"
        tape_info = dict(kind="pw", step=self, acc=acc, acc32=None,
                         out_gemm=out_gemm, staging64=staging64, staging32=None,
                         weight64=weight64, weight32=weight32,
                         constants=constants, constants32=None,
                         subsample=subsample, f32_ok=f32_ok)
        if ctx.accumulate == "blas":
            def run_blas(bound, env):
                # The GEMM writes the output layout directly; the epilogue
                # then runs (in place when acc is the output buffer).
                pointwise_accumulate(env[bound.input_slots[0]], weight64, acc,
                                     staging=staging64, subsample=subsample, mode="blas")
                _fused_tail(acc, out_gemm, constants)
                env[bound.output_slot] = bound.output

            impls = {"blas": run_blas, "int": run_int}
            default = "blas"
            if f32_ok:
                staging32 = ctx.scratch(("pw_staging",), (n, c_in, oh, ow), np.float32)
                acc32 = ctx.scratch(("pw_acc",), (n, self.out_channels, oh * ow),
                                    np.float32)
                constants32 = _f32_constants(constants)
                tape_info.update(acc32=acc32, staging32=staging32,
                                 constants32=constants32)

                def run_blas32(bound, env):
                    pointwise_accumulate(env[bound.input_slots[0]], weight32, acc32,
                                         staging=staging32, subsample=subsample,
                                         mode="blas")
                    _fused_tail(acc32, out_gemm, constants32)
                    env[bound.output_slot] = bound.output

                impls["blas32"] = run_blas32

        class Bound(_TunableBound):
            _impls = impls
            _default = default
            _tape = tape_info

        return Bound, out_shape, constants["out_meta"], out


class _FusedLinearStep(_ComputeStep):
    """Linear step with prepacked weights and an in-place epilogue."""

    def __init__(self, src: _LinearStep) -> None:
        super().__init__(src.name, src.op, list(src.inputs),
                         weight_codes=src.weight_codes,
                         weight_fraction=src.weight_fraction,
                         bias_codes=src.bias_codes, bias_fraction=src.bias_fraction,
                         internal=src.internal, activation=src.activation,
                         output=src.output_stage)
        self.out_features = src.out_features
        self.in_features = src.in_features
        self.packed: dict[str, np.ndarray] = {}

    def prepack(self) -> int:
        packed = np.ascontiguousarray(self.weight_codes.T.astype(np.float64))
        self.packed = {"f64": packed, "f32": packed.astype(np.float32)}
        return sum(w.nbytes for w in self.packed.values())

    def describe(self) -> str:
        return super().describe() + ", fused-epilogue[gemm]"

    def bind(self, values, ctx):
        if not self.packed:
            self.prepack()
        (x,) = values
        if len(x.shape) != 2 or x.shape[1] != self.in_features:
            raise PlanError(f"{self.name}: expected input (N, {self.in_features}), "
                            f"got {x.shape}")
        n = x.shape[0]
        constants = _augment_tail(self._tail_constants(
            x.meta, k_per_output=self.in_features,
            weight_max_abs=int(np.max(np.abs(self.weight_codes), initial=0)),
        ), self.accumulator_bound)
        if constants["bias_addend"] is not None:
            constants = dict(constants)
            constants["bias_addend"] = constants["bias_addend"].reshape(1, -1)
        out = ctx.pool.acquire((n, self.out_features), _out_dtype(constants, ctx))
        acc = (out if out.dtype == np.float64
               else ctx.scratch(("fc_acc64",), (n, self.out_features)))
        weight64, weight32 = self.packed["f64"], self.packed["f32"]
        f32_ok = _f32_exact(constants, self.accumulator_bound, x.meta.max_abs)

        def run_int(bound, env):
            acc[...] = (env[bound.input_slots[0]].astype(np.int64)
                        @ weight64.astype(np.int64))
            _fused_tail(acc, out, constants)
            env[bound.output_slot] = bound.output

        impls = {"int": run_int}
        default = "int"
        tape_info = dict(kind="fc", step=self, acc=acc, acc32=None,
                         staging32=None, weight64=weight64, weight32=weight32,
                         constants=constants, constants32=None, f32_ok=f32_ok)
        if ctx.accumulate == "blas":
            def run_blas(bound, env):
                np.matmul(env[bound.input_slots[0]], weight64, out=acc)
                _fused_tail(acc, out, constants)
                env[bound.output_slot] = bound.output

            impls = {"blas": run_blas, "int": run_int}
            default = "blas"
            if f32_ok:
                staging32 = ctx.scratch(("fc_staging",), (n, self.in_features),
                                        np.float32)
                acc32 = ctx.scratch(("fc_acc",), (n, self.out_features), np.float32)
                constants32 = _f32_constants(constants)
                tape_info.update(acc32=acc32, staging32=staging32,
                                 constants32=constants32)

                def run_blas32(bound, env):
                    np.copyto(staging32, env[bound.input_slots[0]])
                    np.matmul(staging32, weight32, out=acc32)
                    _fused_tail(acc32, out, constants32)
                    env[bound.output_slot] = bound.output

                impls["blas32"] = run_blas32

        class Bound(_TunableBound):
            _impls = impls
            _default = default
            _tape = tape_info

        return Bound, (n, self.out_features), constants["out_meta"], out


class _FusedActivationStep:
    """Wrapper folding a standalone ReLU/ReLU6 step into its producer.

    The activation is applied to the producer's *output codes* after its own
    pipeline runs — exactly what the standalone step computed, minus the
    extra buffer, the full-tensor copy and the step dispatch.  Requantize is
    monotone with ``0 -> 0`` and the ReLU6 clip lands on the integer grid
    (checked at bind, as the standalone step did), so the fold is bit-exact.
    """

    def __init__(self, inner, act_op: str) -> None:
        self.inner = inner
        self.fused_activation = "relu6" if act_op == OpKind.RELU6 else "relu"

    # The wrapper impersonates its producer in the plan listing.
    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def op(self) -> str:
        return self.inner.op

    @property
    def inputs(self) -> list[str]:
        return self.inner.inputs

    @property
    def alias(self) -> bool:
        return self.inner.alias

    def __getattr__(self, attr):
        # Manifest/summary introspection (weight_codes, accumulator_bound...).
        # Raise for 'inner' itself and dunders: during unpickling this method
        # runs before __dict__ is restored, and delegating then would recurse.
        if attr == "inner" or attr.startswith("__"):
            raise AttributeError(attr)
        return getattr(self.inner, attr)

    def describe(self) -> str:
        return self.inner.describe() + f", +{self.fused_activation}[fused]"

    def bind(self, values, ctx):
        inner_cls, shape, meta, buffer = self.inner.bind(values, ctx)
        activation = self.fused_activation
        bound = (_relu6_bound(meta.fraction, meta.divisor, self.name)
                 if activation == "relu6" else None)

        class Bound(inner_cls):
            def run(self, env):
                super().run(env)
                _apply_activation(env[self.output_slot], activation, bound)

        return Bound, shape, meta, buffer


# ---------------------------------------------------------------------- #
# Autotuner
# ---------------------------------------------------------------------- #
def autotune_engine(engine: CompiledEngine, repeats: int = 7) -> dict[str, str]:
    """Micro-profile every tunable step's kernel variants in place.

    One full forward pass populates the environment so each step sees real
    buffer shapes; every variant is then timed in isolation (all variants
    are bit-exact, so re-running a step never corrupts downstream inputs).
    The variants' timing rounds are interleaved (A B C, A B C, ...) and the
    per-variant minimum taken, so a transient host stall cannot doom one
    candidate.  Returns the winning variant per step name and leaves the
    engine running the winners.
    """
    PIPELINE_COUNTERS.autotune_runs += 1
    probe = np.zeros(engine.input_shape)
    engine.run(probe)
    env = engine._env
    choices: dict[str, str] = {}
    for bound in engine.steps:
        if not (isinstance(bound, _TunableBound) and bound.tunable):
            continue
        elapsed = {variant: float("inf") for variant in bound.variants}
        for variant in bound.variants:      # warm every variant's buffers
            bound.set_variant(variant)
            bound.run(env)
        for _ in range(repeats):
            for variant in bound.variants:
                bound.set_variant(variant)
                elapsed[variant] = min(elapsed[variant], _timed_run(bound, env))
        winner = min(elapsed, key=elapsed.get)
        bound.set_variant(winner)
        choices[bound.step.name] = winner
    return choices


def _timed_run(bound, env) -> float:
    start = time.perf_counter()
    bound.run(env)
    return time.perf_counter() - start


def apply_kernel_choices(engine: CompiledEngine, choices: dict[str, str]) -> None:
    """Apply cached autotune decisions to a freshly bound engine."""
    for bound in engine.steps:
        choice = choices.get(bound.step.name)
        if (choice is not None and isinstance(bound, _TunableBound)
                and choice in bound.variants):
            bound.set_variant(choice)


# ---------------------------------------------------------------------- #
# The pass pipeline
# ---------------------------------------------------------------------- #
@dataclass
class OptimizedPlan(ExecutionPlan):
    """An execution plan rewritten by the optimizer pass pipeline.

    Binding autotunes the kernel variants once (when ``autotune`` is set and
    the accumulation backend is BLAS) and caches the winning choices on the
    plan, so shard engines and rebinds skip the micro-profiling.
    """

    report: OptimizationReport | None = None
    autotune: bool = True
    kernel_choices: dict[str, str] | None = None
    #: tape-level kernel choices (the instruction program's macro-kernel
    #: variants, a superset of the step-level ones — e.g. ``stackgemm``);
    #: cached on first tape compile and persisted in plan artifacts.
    tape_kernel_choices: dict[str, str] | None = None

    def bind(self, input_shape, accumulate: str = "blas",
             reuse_buffers: bool = True, mode: str = "tape",
             fuse: bool = True) -> CompiledEngine:
        engine = super().bind(input_shape, accumulate=accumulate,
                              reuse_buffers=reuse_buffers, mode=mode, fuse=fuse)
        if accumulate == "blas":
            if self.kernel_choices is not None:
                apply_kernel_choices(engine, self.kernel_choices)
            elif self.autotune:
                self.kernel_choices = autotune_engine(engine)
        return engine

    def manifest(self) -> dict:
        data = super().manifest()
        if self.report is not None:
            data["optimizer"] = self.report.to_dict()
        if self.kernel_choices is not None:
            data["kernel_choices"] = dict(self.kernel_choices)
        if getattr(self, "tape_kernel_choices", None) is not None:
            data["tape_kernel_choices"] = dict(self.tape_kernel_choices)
        return data


def _rewrite_compute_steps(steps: list, report: OptimizationReport,
                           pointwise: bool = True) -> list:
    out = []
    for step in steps:
        if pointwise and _PointwiseConvStep.eligible(step):
            step = _PointwiseConvStep(step)
            report.pointwise_lowered += 1
        elif isinstance(step, _ConvStep):
            step = _FusedConvStep(step)
            if step.is_depthwise:
                report.depthwise_direct += 1
            else:
                report.epilogue_fused += 1
        elif isinstance(step, _LinearStep):
            step = _FusedLinearStep(step)
            report.epilogue_fused += 1
        out.append(step)
    return out


def _fuse_standalone_activations(steps: list, output_name: str,
                                 report: OptimizationReport) -> tuple[list, str]:
    consumers: dict[str, int] = {output_name: 1}
    for step in steps:
        for name in step.inputs:
            consumers[name] = consumers.get(name, 0) + 1
    index_of: dict[str, int] = {}
    rename: dict[str, str] = {}
    out: list = []
    for step in steps:
        inputs = [rename.get(name, name) for name in step.inputs]
        producer_index = index_of.get(inputs[0]) if inputs else None
        if (isinstance(step, _ActivationOnlyStep) and len(inputs) == 1
                and consumers.get(inputs[0], 0) == 1
                and producer_index is not None
                and not out[producer_index].alias):
            # Sole consumer of a non-alias producer: fold into it in place.
            out[producer_index] = _FusedActivationStep(out[producer_index], step.op)
            rename[step.name] = inputs[0]
            report.activations_fused += 1
            continue
        if inputs != step.inputs:
            step = copy.copy(step)
            step.inputs = inputs
        index_of[step.name] = len(out)
        out.append(step)
    return out, rename.get(output_name, output_name)


def optimize_plan(plan: ExecutionPlan, *, fuse_activations: bool = True,
                  eliminate_im2col: bool = True, prepack: bool = True,
                  autotune: bool = True) -> OptimizedPlan:
    """Run the optimization pass pipeline over a lowered plan.

    Returns a new :class:`OptimizedPlan`; the input plan is left untouched
    (weight code arrays are shared read-only).  Every pass preserves
    bit-exactness against the unoptimized plan.
    """
    PIPELINE_COUNTERS.optimizations += 1
    report = OptimizationReport()
    steps = list(plan.steps)
    output_name = plan.output_name

    report.passes.append("fuse_compute_epilogues")
    steps = _rewrite_compute_steps(steps, report, pointwise=eliminate_im2col)
    if eliminate_im2col:
        report.passes.append("eliminate_im2col")

    if fuse_activations:
        report.passes.append("fuse_standalone_activations")
        steps, output_name = _fuse_standalone_activations(steps, output_name, report)

    if prepack:
        report.passes.append("prepack_weights")
        for step in steps:
            target = step.inner if isinstance(step, _FusedActivationStep) else step
            if hasattr(target, "prepack"):
                report.prepacked_bytes += target.prepack()
                report.prepacked_steps += 1

    if autotune:
        report.passes.append("autotune_backends")

    return OptimizedPlan(graph_name=plan.graph_name, input_name=plan.input_name,
                         output_name=output_name, steps=steps, report=report,
                         autotune=autotune)
