"""Integer-only graph inference engine.

Lowers quantized graphs (TQT power-of-2 thresholds) into linear plans of
pure integer kernels — im2col conv / matmul accumulation, bit-shift
requantization, fused bias + ReLU/ReLU6 — with preallocated buffer reuse,
plus a batched serving runner and a bit-exactness parity checker against the
float fake-quant simulation.
"""

from .kernels import (
    EXACT_ACCUMULATOR_LIMIT,
    INT32_ACCUMULATOR_LIMIT,
    ConvGeometry,
)
from .plan import (
    CompiledEngine,
    EngineOutput,
    ExecutionPlan,
    PlanError,
    QuantStage,
    ValueMeta,
    lower_graph,
)
from .runner import BatchedRunner, RequestResult, RunnerStats
from .parity import ParityReport, check_engine_parity, simulate_reference

__all__ = [
    "EXACT_ACCUMULATOR_LIMIT",
    "INT32_ACCUMULATOR_LIMIT",
    "ConvGeometry",
    "CompiledEngine",
    "EngineOutput",
    "ExecutionPlan",
    "PlanError",
    "QuantStage",
    "ValueMeta",
    "lower_graph",
    "BatchedRunner",
    "RequestResult",
    "RunnerStats",
    "ParityReport",
    "check_engine_parity",
    "simulate_reference",
]
