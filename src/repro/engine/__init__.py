"""Integer-only graph inference engine.

Lowers quantized graphs (TQT power-of-2 thresholds) into linear plans of
pure integer kernels — im2col conv / matmul accumulation, bit-shift
requantization, fused bias + ReLU/ReLU6 — with preallocated buffer reuse,
a plan-level optimizer pass pipeline (epilogue fusion, weight prepacking,
im2col elimination, per-layer backend autotuning), a compiled **tape
executor** (flat instruction programs with fused elementwise chains and a
tape-level autotuner — the default ``run`` path, with the step interpreter
kept as the ``mode="steps"`` reference), multicore sharded and
branch-parallel execution, a batched serving runner with megabatch
coalescing, a per-step profiler and a bit-exactness parity checker against
the float fake-quant simulation.
"""

from .counters import PIPELINE_COUNTERS, PipelineCounters
from .kernels import (
    EXACT_ACCUMULATOR_LIMIT,
    FLOAT32_ACCUMULATOR_LIMIT,
    INT32_ACCUMULATOR_LIMIT,
    ConvGeometry,
)
from .plan import (
    CompiledEngine,
    EngineOutput,
    ExecutionPlan,
    PlanError,
    PlanProfile,
    QuantStage,
    StepTiming,
    ValueMeta,
    lower_graph,
)
from .optimizer import (
    ElementwiseChain,
    OptimizationReport,
    OptimizedPlan,
    autotune_engine,
    optimize_plan,
)
from .parallel import BranchParallelEngine, ShardedRunner
from .program import TapeProgram, compile_tape
from .runner import BatchedRunner, RequestResult, RunnerStats, pack_partial_fills
from .parity import (
    ParityReport,
    check_engine_parity,
    check_plan_parity,
    simulate_reference,
)

__all__ = [
    "PIPELINE_COUNTERS",
    "PipelineCounters",
    "EXACT_ACCUMULATOR_LIMIT",
    "FLOAT32_ACCUMULATOR_LIMIT",
    "INT32_ACCUMULATOR_LIMIT",
    "ConvGeometry",
    "CompiledEngine",
    "EngineOutput",
    "ExecutionPlan",
    "PlanError",
    "PlanProfile",
    "QuantStage",
    "StepTiming",
    "ValueMeta",
    "lower_graph",
    "ElementwiseChain",
    "OptimizationReport",
    "OptimizedPlan",
    "autotune_engine",
    "optimize_plan",
    "BranchParallelEngine",
    "ShardedRunner",
    "TapeProgram",
    "compile_tape",
    "BatchedRunner",
    "RequestResult",
    "RunnerStats",
    "pack_partial_fills",
    "ParityReport",
    "check_engine_parity",
    "check_plan_parity",
    "simulate_reference",
]
