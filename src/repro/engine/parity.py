"""Bit-exactness checks: integer engine vs. float fake-quant simulation.

The paper validated its quantized inference graphs by checking that the CPU
(fake-quant) execution is bit-accurate to the FPGA fixed-point
implementation (Section 4.2).  This module performs the same check between
the repo's two execution paths: the per-op autograd simulation of a
quantized :class:`~repro.graph.ir.GraphIR` and the compiled integer plan of
:mod:`repro.engine.plan`.  Parity means *every* output code matches exactly
— not approximately — on every input batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import Tensor, no_grad
from ..graph.ir import GraphIR
from .plan import CompiledEngine

__all__ = ["ParityReport", "check_engine_parity", "simulate_reference"]


@dataclass(frozen=True)
class ParityReport:
    """Result of comparing engine codes against the fake-quant simulation."""

    batches: int
    total_codes: int
    mismatched_codes: int
    max_code_difference: int

    @property
    def bit_exact(self) -> bool:
        return self.mismatched_codes == 0

    def __str__(self) -> str:
        status = "bit-exact" if self.bit_exact else "MISMATCH"
        return (f"{status}: {self.mismatched_codes}/{self.total_codes} codes differ "
                f"over {self.batches} batches (max |Δ| = {self.max_code_difference})")


def simulate_reference(graph: GraphIR, batch: np.ndarray) -> np.ndarray:
    """One fake-quant forward pass (the float simulation the engine replaces)."""
    was_training = graph.training
    graph.eval()
    with no_grad():
        out = graph(Tensor(batch)).data
    if was_training:
        graph.train()
    return out


def check_engine_parity(graph: GraphIR, engine: CompiledEngine,
                        batches: list[np.ndarray]) -> ParityReport:
    """Assert-free parity comparison over a list of input batches.

    The fake simulation emits real values ``codes * s``; they are converted
    to codes with the engine's output scale so the comparison happens on the
    integer grid the hardware would see.
    """
    total = mismatched = 0
    max_diff = 0
    scale = (2.0 ** engine.output_meta.fraction) * engine.output_meta.divisor
    for batch in batches:
        reference = simulate_reference(graph, batch)
        reference_codes = np.rint(reference * scale).astype(np.int64)
        engine_codes = engine.run(batch).codes.astype(np.int64)
        if reference_codes.shape != engine_codes.shape:
            raise ValueError(f"shape mismatch: simulation {reference_codes.shape} vs "
                             f"engine {engine_codes.shape}")
        diff = np.abs(reference_codes - engine_codes)
        total += diff.size
        mismatched += int(np.count_nonzero(diff))
        if diff.size:
            max_diff = max(max_diff, int(diff.max()))
    return ParityReport(batches=len(batches), total_codes=total,
                        mismatched_codes=mismatched, max_code_difference=max_diff)
