"""Bit-exactness checks: integer engine vs. float fake-quant simulation.

The paper validated its quantized inference graphs by checking that the CPU
(fake-quant) execution is bit-accurate to the FPGA fixed-point
implementation (Section 4.2).  This module performs the same check between
the repo's two execution paths: the per-op autograd simulation of a
quantized :class:`~repro.graph.ir.GraphIR` and the compiled integer plan of
:mod:`repro.engine.plan`.  Parity means *every* output code matches exactly
— not approximately — on every input batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import Tensor, no_grad
from ..graph.ir import GraphIR
from .plan import CompiledEngine

__all__ = ["ParityReport", "check_engine_parity", "check_plan_parity",
           "simulate_reference"]


@dataclass(frozen=True)
class ParityReport:
    """Result of comparing engine codes against the fake-quant simulation."""

    batches: int
    total_codes: int
    mismatched_codes: int
    max_code_difference: int

    @property
    def bit_exact(self) -> bool:
        return self.mismatched_codes == 0

    def __str__(self) -> str:
        status = "bit-exact" if self.bit_exact else "MISMATCH"
        return (f"{status}: {self.mismatched_codes}/{self.total_codes} codes differ "
                f"over {self.batches} batches (max |Δ| = {self.max_code_difference})")


def simulate_reference(graph: GraphIR, batch: np.ndarray) -> np.ndarray:
    """One fake-quant forward pass (the float simulation the engine replaces)."""
    was_training = graph.training
    graph.eval()
    with no_grad():
        out = graph(Tensor(batch)).data
    if was_training:
        graph.train()
    return out


def _code_parity(code_pairs, labels: tuple[str, str]) -> ParityReport:
    """Reduce (reference, candidate) code pairs into a :class:`ParityReport`."""
    total = mismatched = batches = 0
    max_diff = 0
    for reference_codes, candidate_codes in code_pairs:
        batches += 1
        if reference_codes.shape != candidate_codes.shape:
            raise ValueError(f"shape mismatch: {labels[0]} {reference_codes.shape} vs "
                             f"{labels[1]} {candidate_codes.shape}")
        diff = np.abs(reference_codes - candidate_codes)
        total += diff.size
        mismatched += int(np.count_nonzero(diff))
        if diff.size:
            max_diff = max(max_diff, int(diff.max()))
    return ParityReport(batches=batches, total_codes=total,
                        mismatched_codes=mismatched, max_code_difference=max_diff)


def check_engine_parity(graph: GraphIR, engine: CompiledEngine,
                        batches: list[np.ndarray]) -> ParityReport:
    """Assert-free parity comparison over a list of input batches.

    The fake simulation emits real values ``codes * s``; they are converted
    to codes with the engine's output scale so the comparison happens on the
    integer grid the hardware would see.
    """
    scale = (2.0 ** engine.output_meta.fraction) * engine.output_meta.divisor
    return _code_parity(
        ((np.rint(simulate_reference(graph, batch) * scale).astype(np.int64),
          engine.run(batch).codes.astype(np.int64)) for batch in batches),
        labels=("simulation", "engine"))


def check_plan_parity(baseline, candidate, batches: list[np.ndarray]) -> ParityReport:
    """Compare two engine-like executors code-for-code on the same batches.

    This is the optimizer's acceptance gate: an optimized plan (or a sharded
    / branch-parallel executor) must reproduce the unoptimized engine's
    output codes *exactly* on every input.  Both arguments just need the
    ``run(batch) -> EngineOutput`` interface; their output scales must agree.
    """
    if (baseline.output_meta.fraction != candidate.output_meta.fraction
            or baseline.output_meta.divisor != candidate.output_meta.divisor):
        raise ValueError(
            f"output scales disagree: baseline f={baseline.output_meta.fraction} "
            f"d={baseline.output_meta.divisor} vs candidate "
            f"f={candidate.output_meta.fraction} d={candidate.output_meta.divisor}")
    return _code_parity(
        ((baseline.run(batch).codes.astype(np.int64),
          candidate.run(batch).codes.astype(np.int64)) for batch in batches),
        labels=("baseline", "candidate"))
