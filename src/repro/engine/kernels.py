"""Integer convolution / matmul kernels for the inference engine.

The engine executes quantized graphs on integer *codes*: every activation
tensor is a grid of small integers (int8/int16 range) and every layer is an
integer multiply-accumulate followed by a power-of-2 requantization shift
(Eq. 16 of the paper).  Two accumulation backends are provided:

* ``"blas"`` (default) — the codes are staged in float64 lanes and the
  multiply-accumulate runs through BLAS ``dgemm``.  Because every operand is
  an integer and every accumulator provably stays below 2^53, the float64
  arithmetic is *exact* integer arithmetic; this is the standard trick for
  getting vectorized exact integer GEMM out of hardware whose fast path is
  floating point.  :func:`assert_exact_accumulation` verifies the bound at
  plan-bind time.
* ``"int"`` — a pure ``int64`` einsum reference path.  Bit-identical to the
  BLAS path (the parity tests assert this) and closer to what an int32-MAC
  accelerator executes, but slower because NumPy has no BLAS for integers.

All buffers (padded input, im2col columns, accumulators) are preallocated at
plan-bind time and reused across batches, so the steady-state hot path
performs no allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..autograd.conv import conv_output_size

__all__ = [
    "EXACT_ACCUMULATOR_LIMIT",
    "FLOAT32_ACCUMULATOR_LIMIT",
    "INT32_ACCUMULATOR_LIMIT",
    "ConvGeometry",
    "StackedShiftGeometry",
    "assert_exact_accumulation",
    "conv_accumulate",
    "depthwise_accumulate",
    "matmul_accumulate",
    "max_pool_codes",
    "max_pool_codes_reference",
    "pack_stacked_weights",
    "pack_stacked_depthwise_weights",
    "pointwise_accumulate",
]

# float64 integer lanes are exact up to 2^53; int32 MAC hardware up to 2^31.
EXACT_ACCUMULATOR_LIMIT = 2 ** 53
INT32_ACCUMULATOR_LIMIT = 2 ** 31
# float32 integer lanes are exact up to 2^24 — steps whose worst-case
# accumulator provably stays below this can run in float32 (half the memory
# traffic, sgemm instead of dgemm) and remain bit-exact.  The optimizer's
# backend autotuner gates its float32 kernel variants on this bound.
FLOAT32_ACCUMULATOR_LIMIT = 2 ** 24


def assert_exact_accumulation(bound: int, where: str) -> None:
    """Refuse to build a plan whose worst-case accumulator could round."""
    if bound >= EXACT_ACCUMULATOR_LIMIT:
        raise ValueError(
            f"{where}: worst-case accumulator magnitude {bound} exceeds the exact "
            f"float64 integer range (2^53); the BLAS accumulation path would round"
        )


def _normalize_pair(value) -> tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


@dataclass
class ConvGeometry:
    """Bound im2col geometry for one convolution step.

    Owns the preallocated padded-input and column buffers and knows how to
    fill them from an NCHW code tensor without allocating.
    """

    batch: int
    in_channels: int
    height: int
    width: int
    out_channels: int
    kernel: tuple[int, int]
    stride: tuple[int, int]
    padding: tuple[int, int]
    groups: int
    #: lane dtype of the staging buffers; float32 is only exact below 2^24
    #: and must be gated by the caller (see FLOAT32_ACCUMULATOR_LIMIT).
    dtype: object = np.float64
    #: optional ``scratch(key, shape, dtype, zero) -> ndarray`` provider that
    #: lets the binder share staging buffers across steps (sequential
    #: execution only).  ``None`` allocates private buffers.
    scratch: object = None
    out_height: int = field(init=False)
    out_width: int = field(init=False)
    _padded: np.ndarray | None = field(init=False, default=None)
    _cols: np.ndarray | None = field(init=False)

    def __post_init__(self) -> None:
        kh, kw = self.kernel
        self.dtype = np.dtype(self.dtype)
        self.out_height = conv_output_size(self.height, kh, self.stride[0], self.padding[0])
        self.out_width = conv_output_size(self.width, kw, self.stride[1], self.padding[1])
        ph, pw = self.padding
        if ph or pw or self.dtype != np.float64:
            # Padding needs a zero-bordered staging copy; non-float64 lanes
            # need a cast staging copy even without padding.
            padded_shape = (self.batch, self.in_channels,
                            self.height + 2 * ph, self.width + 2 * pw)
            if self.scratch is not None:
                # The zeroed border survives sharing only between steps that
                # overwrite the same interior, hence the geometry in the key.
                self._padded = self.scratch(
                    ("conv_padded", ph, pw, self.height, self.width),
                    padded_shape, self.dtype, bool(ph or pw))
            else:
                self._padded = np.zeros(padded_shape, dtype=self.dtype)
        if self.is_depthwise:
            self._cols = None  # depthwise contracts the window view directly
        else:
            m = self.batch * self.out_height * self.out_width
            k = (self.in_channels // self.groups) * kh * kw
            cols_shape = (self.groups, m, k)
            if self.scratch is not None:
                self._cols = self.scratch(("conv_cols",), cols_shape, self.dtype, False)
            else:
                self._cols = np.empty(cols_shape, dtype=self.dtype)

    @classmethod
    def from_module(cls, batch: int, in_channels: int, height: int, width: int,
                    out_channels: int, kernel_size, stride, padding, groups: int,
                    dtype=np.float64, scratch=None) -> "ConvGeometry":
        return cls(batch=batch, in_channels=in_channels, height=height, width=width,
                   out_channels=out_channels, kernel=_normalize_pair(kernel_size),
                   stride=_normalize_pair(stride), padding=_normalize_pair(padding),
                   groups=int(groups), dtype=dtype, scratch=scratch)

    @property
    def output_shape(self) -> tuple[int, int, int, int]:
        return (self.batch, self.out_channels, self.out_height, self.out_width)

    @property
    def is_depthwise(self) -> bool:
        """One filter per channel: groups == C_in == C_out."""
        return self.groups == self.in_channels == self.out_channels

    def windows(self, x: np.ndarray) -> np.ndarray:
        """Strided ``(N, C, OH, OW, KH, KW)`` window view over the padded input."""
        kh, kw = self.kernel
        sh, sw = self.stride
        ph, pw = self.padding
        src = x
        if self._padded is not None:
            self._padded[:, :, ph:ph + self.height, pw:pw + self.width] = x
            src = self._padded
        return sliding_window_view(src, (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]

    def fill_columns(self, x: np.ndarray) -> np.ndarray:
        """im2col ``x`` (N, C, H, W) into the preallocated column buffer.

        Returns the buffer shaped ``(groups, N*OH*OW, Cg*KH*KW)`` with the K
        axis ordered ``(channel-in-group, kh, kw)`` to match the weight
        matrix layout.
        """
        kh, kw = self.kernel
        windows = self.windows(x)
        # windows: (N, C, OH, OW, KH, KW) view; split C into (G, Cg) and move
        # the group axis out front, then fuse transpose+cast into one copy.
        g = self.groups
        cg = self.in_channels // g
        view = windows.reshape(self.batch, g, cg, self.out_height, self.out_width, kh, kw)
        view = view.transpose(1, 0, 3, 4, 2, 5, 6)
        np.copyto(
            self._cols.reshape(g, self.batch, self.out_height, self.out_width, cg, kh, kw),
            view,
        )
        return self._cols


def depthwise_accumulate(geometry: ConvGeometry, x: np.ndarray, weight: np.ndarray,
                         image: np.ndarray, path, mode: str = "blas") -> np.ndarray:
    """Depthwise convolution directly over the strided window view.

    Contracting the ``(N, C, OH, OW, KH, KW)`` view against per-channel
    ``(C, KH, KW)`` filters with a precomputed einsum path skips both the
    im2col materialization and the group-major accumulator transpose, which
    makes this the fastest exact path for the MobileNet depthwise blocks.
    """
    windows = geometry.windows(x)
    if mode == "int":
        image[...] = np.einsum("nchwij,cij->nchw", windows.astype(np.int64),
                               weight.astype(np.int64), optimize=True)
    else:
        np.einsum("nchwij,cij->nchw", windows, weight, out=image, optimize=path)
    return image


def conv_accumulate(geometry: ConvGeometry, x: np.ndarray, weight_t: np.ndarray,
                    acc: np.ndarray, image: np.ndarray, mode: str = "blas") -> np.ndarray:
    """Integer convolution accumulation into the preallocated buffers.

    Parameters
    ----------
    x: input codes ``(N, C_in, H, W)`` in float64 lanes.
    weight_t: weight codes ``(G, K, O)`` (float64 lanes), K ordered
        ``(channel-in-group, kh, kw)``.
    acc: accumulator buffer ``(G, N*OH*OW, O)``.
    image: output-image buffer ``(N, C_out, OH, OW)`` the accumulator is
        transposed into.
    mode: ``"blas"`` for the exact float64 dgemm path, ``"int"`` for the pure
        int64 einsum reference.
    """
    cols = geometry.fill_columns(x)
    if mode == "int":
        acc[...] = np.einsum("gmk,gko->gmo", cols.astype(np.int64),
                             weight_t.astype(np.int64), optimize=True)
    else:
        np.matmul(cols, weight_t, out=acc)
    g = geometry.groups
    o = geometry.out_channels // g
    acc_view = acc.reshape(g, geometry.batch, geometry.out_height, geometry.out_width, o)
    np.copyto(
        image.reshape(geometry.batch, g, o, geometry.out_height, geometry.out_width),
        acc_view.transpose(1, 0, 4, 2, 3),
    )
    return image


def pointwise_accumulate(x: np.ndarray, weight: np.ndarray, acc: np.ndarray,
                         staging: np.ndarray | None = None,
                         subsample: tuple[int, int] | None = None,
                         mode: str = "blas") -> np.ndarray:
    """1x1 convolution as a direct channel-axis GEMM — no im2col.

    A pointwise (1x1, ungrouped, unpadded) convolution is ``weight (O, C)``
    contracted against the channel axis of ``x (N, C, H, W)``; the batched
    matmul ``weight @ x.reshape(N, C, H*W)`` produces the output image in
    NCHW order directly, so both the im2col column copy and the
    group-major accumulator transpose disappear.

    Parameters
    ----------
    x: input codes ``(N, C, H, W)`` in float64 lanes.
    weight: weight codes ``(O, C)`` in the accumulator's lane dtype.
    acc: accumulator ``(N, O, OH*OW)``; an ``out.reshape`` view of the NCHW
        output buffer when the epilogue runs in the same lanes.
    staging: optional ``(N, C, OH, OW)`` staging buffer — required to avoid
        per-call allocation when ``subsample`` is set (the strided view
        cannot be reshaped in place) or when the lanes are float32 (cast).
    subsample: optional ``(sh, sw)`` spatial stride of the 1x1 conv.
    """
    n, c = x.shape[:2]
    if subsample is not None:
        sh, sw = subsample
        x = x[:, :, ::sh, ::sw]
    if staging is not None:
        np.copyto(staging, x)
        x = staging
    src = x.reshape(n, c, x.shape[2] * x.shape[3])
    if mode == "int":
        acc[...] = weight.astype(np.int64) @ src.astype(np.int64)
    else:
        np.matmul(weight, src, out=acc)
    return acc


def matmul_accumulate(x: np.ndarray, weight_t: np.ndarray, acc: np.ndarray,
                      mode: str = "blas") -> np.ndarray:
    """Integer matmul accumulation ``x (N, F) @ weight_t (F, O)`` into ``acc``."""
    if mode == "int":
        acc[...] = x.astype(np.int64) @ weight_t.astype(np.int64)
    else:
        np.matmul(x, weight_t, out=acc)
    return acc


class StackedShiftGeometry:
    """Shift-stacked im2col: the ``KH*KW`` kernel-offset slices of the padded
    input stacked along the channel axis.

    The classic im2col column layout interleaves ``(channel, kh, kw)`` along
    the K axis, which makes the staging copy a transposed scatter — the
    dominant cost of an im2col GEMM at small feature-map sizes.  Stacking the
    offsets *channel-block-wise* instead (K ordered ``(kh, kw, channel)``)
    turns the staging into ``KH*KW`` same-layout strided slice copies, each
    nearly as cheap as the padded-input fill, and the GEMM
    ``W (O, KH*KW*C) @ stack (N, KH*KW*C, OH*OW)`` writes the NCHW output
    directly — no accumulator transpose.  Ungrouped convolutions only; the
    arithmetic is the exact integer arithmetic of the other backends (same
    accumulator bounds apply).

    The stack buffer's zero border (output positions whose windows overhang
    the input) is written once at allocation and relied upon across calls,
    so the buffer must never be recycled storage — allocate it fresh.
    """

    def __init__(self, batch: int, in_channels: int, height: int, width: int,
                 kernel: tuple[int, int], stride: tuple[int, int],
                 padding: tuple[int, int], dtype=np.float64) -> None:
        self.batch = batch
        self.in_channels = in_channels
        self.height = height
        self.width = width
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        self.dtype = np.dtype(dtype)
        kh, kw = kernel
        self.out_height = conv_output_size(height, kh, stride[0], padding[0])
        self.out_width = conv_output_size(width, kw, stride[1], padding[1])
        self.stack = np.zeros((batch, kh * kw * in_channels,
                               self.out_height, self.out_width), dtype=self.dtype)
        # Per-offset copy plan: destination channel block plus the matching
        # (input-range, output-range) slices with padding overhang clipped,
        # so no separate padded staging copy is needed.
        self._copies: list[tuple] = []
        ph, pw = padding
        sh, sw = stride
        for i in range(kh):
            for j in range(kw):
                k = i * kw + j
                dst = self.stack[:, k * in_channels:(k + 1) * in_channels]
                # Output position o reads input row i + o*sh - ph; clip the
                # o-range so the input index stays inside [0, height).
                o_lo_h = max(0, -(-(ph - i) // sh))          # ceil((ph-i)/sh)
                o_hi_h = min(self.out_height, (height - 1 - i + ph) // sh + 1)
                o_lo_w = max(0, -(-(pw - j) // sw))
                o_hi_w = min(self.out_width, (width - 1 - j + pw) // sw + 1)
                if o_lo_h >= o_hi_h or o_lo_w >= o_hi_w:
                    continue
                in_h = slice(i + o_lo_h * sh - ph, i + (o_hi_h - 1) * sh - ph + 1, sh)
                in_w = slice(j + o_lo_w * sw - pw, j + (o_hi_w - 1) * sw - pw + 1, sw)
                self._copies.append((dst[:, :, o_lo_h:o_hi_h, o_lo_w:o_hi_w],
                                     in_h, in_w))

    @property
    def gemm_view(self) -> np.ndarray:
        """The stack reshaped ``(N, KH*KW*C, OH*OW)`` for the batched GEMM."""
        kh, kw = self.kernel
        return self.stack.reshape(self.batch, kh * kw * self.in_channels,
                                  self.out_height * self.out_width)

    def fill(self, x: np.ndarray) -> np.ndarray:
        """Copy the kernel-offset slices of ``x`` (N, C, H, W) into the stack."""
        for dst, in_h, in_w in self._copies:
            dst[...] = x[:, :, in_h, in_w]
        return self.stack


def pack_stacked_weights(weight_codes: np.ndarray, dtype=np.float64) -> np.ndarray:
    """Weights ``(O, C, KH, KW)`` packed ``(O, KH*KW*C)`` for the stacked GEMM."""
    o = weight_codes.shape[0]
    return np.ascontiguousarray(
        weight_codes.transpose(0, 2, 3, 1).reshape(o, -1).astype(dtype))


def pack_stacked_depthwise_weights(weight_codes: np.ndarray,
                                   dtype=np.float64) -> np.ndarray:
    """Depthwise weights ``(C, 1, KH, KW)`` as a dense ``(C, KH*KW*C)`` matrix.

    Channel ``c``'s taps land at stacked-K positions ``k*C + c``; all other
    entries are zero, so the dense GEMM accumulates exactly the depthwise sum
    (the zero entries contribute nothing and cannot affect the accumulator
    bound).  Wasteful in FLOPs but BLAS-fast at nano channel counts — the
    autotuner arbitrates against the window-view einsum per layer.
    """
    c = weight_codes.shape[0]
    kh, kw = weight_codes.shape[2], weight_codes.shape[3]
    taps = weight_codes.reshape(c, kh * kw).astype(dtype)
    packed = np.zeros((c, kh * kw * c), dtype=dtype)
    for k in range(kh * kw):
        packed[np.arange(c), k * c + np.arange(c)] = taps[:, k]
    return packed


def max_pool_codes(x: np.ndarray, kernel: tuple[int, int], stride: tuple[int, int],
                   padding: tuple[int, int], padded: np.ndarray | None,
                   out: np.ndarray) -> np.ndarray:
    """Window max over integer codes (monotone in the shared scale).

    Vectorized as a *kernel-offset reduction*: for each of the ``KH*KW``
    offsets, a strided slice of the (padded) input covers that offset's
    contribution to every window at once, and ``np.maximum`` folds it into
    the output.  That is ``KH*KW`` elementwise passes over dense NCHW-shaped
    slices instead of one reduction over the last two axes of a 6-D strided
    window view — the window view walks memory kernel-element-by-window
    (terrible locality), the offset slices walk it almost contiguously.
    Bit-identical to the window-view reduction (same elements, same max).

    Matches the fake-quant simulation exactly: padding inserts zero codes,
    which is the same constant-zero padding the float max-pool applies.
    ``padded``, when given, must have a zero border (its interior is
    overwritten here; the border is written once at allocation and relied
    upon across calls).
    """
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    src = x
    if padded is not None:
        padded[:, :, ph:ph + x.shape[2], pw:pw + x.shape[3]] = x
        src = padded
    oh, ow = out.shape[2], out.shape[3]
    h_stop = sh * (oh - 1) + 1
    w_stop = sw * (ow - 1) + 1
    np.copyto(out, src[:, :, :h_stop:sh, :w_stop:sw])
    for i in range(kh):
        for j in range(kw):
            if i == 0 and j == 0:
                continue
            np.maximum(out, src[:, :, i:i + h_stop:sh, j:j + w_stop:sw], out=out)
    return out


def max_pool_codes_reference(x: np.ndarray, kernel: tuple[int, int],
                             stride: tuple[int, int], padding: tuple[int, int],
                             padded: np.ndarray | None,
                             out: np.ndarray) -> np.ndarray:
    """The pre-vectorization window-view reduction, kept as the parity and
    benchmark baseline for :func:`max_pool_codes`."""
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    src = x
    if padded is not None:
        padded[...] = 0.0
        padded[:, :, ph:ph + x.shape[2], pw:pw + x.shape[3]] = x
        src = padded
    windows = sliding_window_view(src, (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]
    return np.max(windows, axis=(4, 5), out=out)
