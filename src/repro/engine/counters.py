"""Pipeline work counters: how many times the expensive stages ran.

The deployment layer's core promise is that a loaded artifact skips the
compile pipeline entirely — no re-lowering, no optimizer passes, no
autotune micro-profiling.  That claim is only testable if the pipeline
stages are observable, so each one ticks a process-global counter here:

* ``lowerings`` — :func:`repro.engine.plan.lower_graph` calls;
* ``optimizations`` — :func:`repro.engine.optimizer.optimize_plan` calls;
* ``autotune_runs`` — :func:`repro.engine.optimizer.autotune_engine` calls
  (one per engine whose kernel variants were micro-profiled);
* ``tape_compilations`` — :func:`repro.engine.program.compile_tape` calls
  (binding an engine in tape mode compiles one instruction program);
* ``tape_autotune_runs`` — tape-level variant micro-profiling runs.  A plan
  whose tape kernel choices were cached (or loaded from an artifact) compiles
  its tape without ticking this.

Tests snapshot the counters, perform the operation under scrutiny, and
assert the delta — see ``tests/test_deploy_api.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PipelineCounters", "PIPELINE_COUNTERS"]


@dataclass
class PipelineCounters:
    """Process-global tallies of compile-pipeline stage executions."""

    lowerings: int = 0
    optimizations: int = 0
    autotune_runs: int = 0
    tape_compilations: int = 0
    tape_autotune_runs: int = 0

    def snapshot(self) -> dict[str, int]:
        """Immutable view for delta assertions."""
        return {"lowerings": self.lowerings, "optimizations": self.optimizations,
                "autotune_runs": self.autotune_runs,
                "tape_compilations": self.tape_compilations,
                "tape_autotune_runs": self.tape_autotune_runs}

    def delta(self, since: dict[str, int]) -> dict[str, int]:
        """Work performed since a :meth:`snapshot`."""
        now = self.snapshot()
        return {key: now[key] - since[key] for key in now}

    def to_metrics(self, namespace: str = "repro") -> dict[str, int]:
        """Prometheus-style counter names -> values.

        The bridge :func:`repro.telemetry.prometheus_text` uses to expose
        pipeline work next to the serving counters
        (``repro_pipeline_<stage>_total``).
        """
        return {f"{namespace}_pipeline_{key}_total": value
                for key, value in self.snapshot().items()}


#: The process-global instance every pipeline stage ticks.
PIPELINE_COUNTERS = PipelineCounters()
