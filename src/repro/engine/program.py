"""The tape executor: flat instruction programs compiled from bound plans.

The step interpreter (``CompiledEngine.run_steps``) walks a list of bound
step objects, each dispatching through ``env``-slot indirection into a
closure that issues several small NumPy calls.  At nano feature-map sizes
the per-call and per-dispatch overhead rivals the arithmetic itself.
:func:`compile_tape` lowers a bound engine into a :class:`TapeProgram` — a
flat list of prebound zero-argument kernel calls over a preallocated buffer
arena:

* every instruction's input/output buffers are resolved **at compile time**
  (no per-run environment lookups); reshape/flatten steps become zero-cost
  buffer aliases and emit no instructions at all;
* each step's requantize/activation/copy epilogue is compiled by
  :class:`repro.engine.optimizer.ElementwiseChain` into a single composite
  instruction with provably-identity operations eliminated;
* tunable compute steps carry several bit-exact macro-kernel variants —
  the window-view einsums, the legacy im2col/BLAS closures, and the tape's
  :class:`~repro.engine.kernels.StackedShiftGeometry` GEMM — arbitrated by
  a tape-level autotuner whose choices are cached on the plan (and ride
  along in plan artifacts, so loaded deployments re-profile nothing);
* any step without a native emitter falls back to wrapping its bound
  ``run(env)`` closure as one instruction, so every plan the interpreter
  can execute compiles to a tape, bit-exactly.

The interpreter remains available as ``bind(..., mode="steps")`` — the
reference path the parity suite checks the tape against on every registry
model.
"""

from __future__ import annotations

import time
from functools import partial

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..graph.ir import OpKind
from .counters import PIPELINE_COUNTERS
from .kernels import (
    StackedShiftGeometry,
    max_pool_codes,
    pack_stacked_depthwise_weights,
    pack_stacked_weights,
    pointwise_accumulate,
)
from .optimizer import (
    ElementwiseChain,
    _FusedActivationStep,
    _FusedConvStep,
    _FusedLinearStep,
    _maximum_into,
    _PointwiseConvStep,
    tail_chain,
)
from .plan import (
    _ActivationOnlyStep,
    _AddStep,
    _ConcatStep,
    _GlobalAvgPoolStep,
    _LeakyReLUStep,
    _MaxPoolStep,
    _QuantizeInputStep,
    _relu6_bound,
    _ReshapeStep,
)

__all__ = ["Instr", "TapeProgram", "compile_tape"]

_INF = float("inf")

#: stacked-shift staging is KH*KW times the input tensor; skip the variant
#: when the stack would exceed this many elements (large feature maps are
#: GEMM-bound anyway, so the variant only matters at small sizes).
STACKGEMM_MAX_ELEMENTS = 4_000_000


class Instr:
    """One tape instruction: a prebound zero-argument kernel call."""

    __slots__ = ("name", "op", "kind", "run")

    def __init__(self, name: str, op: str, kind: str, run) -> None:
        self.name = name
        self.op = op
        self.kind = kind
        self.run = run

    def __repr__(self) -> str:
        return f"Instr({self.name!r}, {self.kind!r})"


def _ops_runner(calls: list[tuple]):
    """Collapse a compiled op chain into one zero-argument callable."""
    if len(calls) == 1:
        fn, args = calls[0]
        return partial(fn, *args)

    def run(calls=tuple(calls)):
        for fn, args in calls:
            fn(*args)

    return run


class _TunableGroup:
    """A tunable macro-kernel slot: variant name -> instruction builder.

    Builders are lazy so unchosen variants never allocate staging buffers;
    the autotuner materializes all of them once, times them interleaved,
    keeps the winner and drops the rest.
    """

    def __init__(self, name: str, op: str, builders: dict, default: str) -> None:
        self.name = name
        self.op = op
        self.builders = builders
        self.default = default
        self.chosen = default
        self._materialized: dict[str, list[Instr]] = {}

    @property
    def variants(self) -> tuple[str, ...]:
        return tuple(self.builders)

    def materialize(self, variant: str) -> list[Instr]:
        if variant not in self._materialized:
            self._materialized[variant] = self.builders[variant]()
        return self._materialized[variant]

    def choose(self, variant: str) -> None:
        if variant not in self.builders:
            raise ValueError(f"{self.name}: unknown tape variant {variant!r}; "
                             f"available: {list(self.builders)}")
        self.chosen = variant

    def instructions(self) -> list[Instr]:
        return self.materialize(self.chosen)

    def drop_unchosen(self) -> None:
        self._materialized = {self.chosen: self.materialize(self.chosen)}


class TapeProgram:
    """A compiled flat instruction program over a preallocated arena."""

    def __init__(self, engine, input_buffer: np.ndarray, output_array: np.ndarray,
                 items: list, report: dict, env_pins: list[tuple] | None = None) -> None:
        self._engine = engine
        self._env = engine._env
        self.input_buffer = input_buffer
        self.output_array = output_array
        self.items = items
        self.report = report
        #: build-time (slot, array) environment assignments — restored when
        #: an interleaved steps-mode run repointed the slots (alias views of
        #: the caller's input would otherwise go stale for fallbacks)
        self._env_pins = env_pins or [(0, input_buffer)]
        self._calls: list = []
        self._flat: list[Instr] = []
        #: opt-in per-instruction instrumentation: when set to a callable
        #: ``sink(instr, start_s, end_s)`` (raw ``perf_counter`` stamps),
        #: :meth:`execute` times every instruction through it — see
        #: :func:`repro.telemetry.attach_tape_sink`.  ``None`` (default)
        #: keeps the untimed fast loop; the cost of the hook when unset is
        #: one attribute check per batch.
        self.trace_sink = None
        self.rebuild()

    # ------------------------------------------------------------------ #
    def rebuild(self) -> None:
        """Flatten the chosen instructions into the hot-path call list."""
        flat: list[Instr] = []
        for item in self.items:
            if isinstance(item, _TunableGroup):
                flat.extend(item.instructions())
            else:
                flat.append(item)
        self._flat = flat
        self._calls = [instr.run for instr in flat]
        self.report["instructions"] = len(self._calls)
        self.report["kernel_choices"] = self.choices()

    def execute(self) -> None:
        # Fallback instructions read the environment at run time; a
        # steps-mode run repoints the slots (including alias views of the
        # caller's input array), so restore the build-time pins when one
        # happened.  Slot 0 doubles as the cheap detector.
        env = self._env
        if env[0] is not self.input_buffer:
            for slot, array in self._env_pins:
                env[slot] = array
        sink = self.trace_sink
        if sink is not None:
            for instr in self._flat:
                start = time.perf_counter()
                instr.run()
                sink(instr, start, time.perf_counter())
            return
        for fn in self._calls:
            fn()

    # ------------------------------------------------------------------ #
    @property
    def tunable_groups(self) -> list[_TunableGroup]:
        return [item for item in self.items if isinstance(item, _TunableGroup)]

    def choices(self) -> dict[str, str]:
        return {group.name: group.chosen for group in self.tunable_groups}

    def apply_choices(self, choices: dict[str, str]) -> None:
        for group in self.tunable_groups:
            choice = choices.get(group.name)
            if choice is not None and choice in group.builders:
                group.choose(choice)
        self.rebuild()

    def autotune(self, repeats: int = 5) -> dict[str, str]:
        """Micro-profile every tunable group's variants in place.

        One full pass populates the staging buffers; each group's variants
        are then timed interleaved (A B C, A B C, ...) with the per-variant
        minimum taken, exactly like the step-level autotuner.  All variants
        are bit-exact, so re-running a group never corrupts downstream
        state.  Losing variants' staging buffers are dropped afterwards.
        """
        PIPELINE_COUNTERS.tape_autotune_runs += 1
        self.execute()
        for group in self.tunable_groups:
            if len(group.builders) < 2:
                group.drop_unchosen()
                continue
            instrs = {v: group.materialize(v) for v in group.variants}
            for seq in instrs.values():          # warm every variant's buffers
                for instr in seq:
                    instr.run()
            elapsed = {v: _INF for v in instrs}
            for _ in range(repeats):
                for variant, seq in instrs.items():
                    start = time.perf_counter()
                    for instr in seq:
                        instr.run()
                    elapsed[variant] = min(elapsed[variant],
                                           time.perf_counter() - start)
            group.choose(min(elapsed, key=elapsed.get))
            group.drop_unchosen()
        self.rebuild()
        return self.choices()

    def profile(self, repeats: int = 5) -> list[tuple[str, str, float]]:
        """Per-instruction mean seconds (step name, kind, seconds)."""
        self.execute()
        flat = self._flat
        totals = [0.0] * len(flat)
        for _ in range(repeats):
            self._env[0] = self.input_buffer
            for i, instr in enumerate(flat):
                start = time.perf_counter()
                instr.run()
                totals[i] += time.perf_counter() - start
        return [(instr.name, instr.kind, total / repeats)
                for instr, total in zip(flat, totals)]


# ---------------------------------------------------------------------- #
# Emission context
# ---------------------------------------------------------------------- #
class _TapeBuild:
    def __init__(self, engine, fuse: bool) -> None:
        self.engine = engine
        self.fuse = fuse
        self.arrays: dict[str, np.ndarray] = {}
        self.report = {
            "mode": "fused" if fuse else "unfused",
            "native_steps": 0,
            "fallback_steps": 0,
            "aliased_views": 0,
            "chains": 0,
            "chain_ops_recorded": 0,
            "chain_ops_emitted": 0,
            "eliminated": {"scale": 0, "round": 0, "clip": 0, "slid_clips": 0},
            "tunable_steps": 0,
        }

    def chain_calls(self, chain: ElementwiseChain) -> list[tuple]:
        calls, stats = chain.compile()
        self.report["chains"] += 1
        self.report["chain_ops_recorded"] += stats["ops_recorded"]
        self.report["chain_ops_emitted"] += stats["ops_emitted"]
        for key in ("scale", "round", "clip"):
            self.report["eliminated"][key] += stats[key]
        self.report["eliminated"]["slid_clips"] += stats["slid_clips"]
        return calls

    def requantize_chain(self, src: np.ndarray, dst: np.ndarray, *, shift: int,
                         qmin: int, qmax: int, divisor: int = 1,
                         bound: float = _INF, integral: bool = True,
                         src_mutable: bool = False) -> list[tuple]:
        """Compiled ops for one ``requantize_codes`` call (maybe empty)."""
        chain = ElementwiseChain(src, dst, bound=bound, integral=integral,
                                 src_mutable=src_mutable, fuse=self.fuse)
        chain.scale((2.0 ** float(-shift)) / float(divisor))
        chain.round()
        chain.clip(qmin, qmax)
        return self.chain_calls(chain)


def _meta_bound(meta) -> float:
    return float(meta.max_abs) if meta.max_abs > 0 else _INF


# ---------------------------------------------------------------------- #
# Native emitters for the cheap plan steps
# ---------------------------------------------------------------------- #
def _emit_reshape(step, bound, ctx: _TapeBuild):
    src = ctx.arrays[step.inputs[0]]
    ctx.arrays[step.name] = src.reshape(bound.out_shape)
    ctx.report["aliased_views"] += 1
    return []


def _emit_quantize_input(step, bound, ctx: _TapeBuild):
    src = ctx.arrays[step.inputs[0]]
    stage = step.stage
    calls = ctx.requantize_chain(src, bound.output, shift=-stage.fraction,
                                 qmin=stage.qmin, qmax=stage.qmax,
                                 bound=_INF, integral=False)
    return [Instr(step.name, step.op, "quantize", _ops_runner(calls))]


def _emit_activation_only(step, bound, ctx: _TapeBuild):
    src = ctx.arrays[step.inputs[0]]
    meta = bound.in_metas[0]
    if step.op == OpKind.RELU6:
        hi = _relu6_bound(meta.fraction, meta.divisor, step.name)
        run = partial(np.clip, src, 0.0, hi, out=bound.output)
    else:
        run = partial(np.maximum, src, 0.0, out=bound.output)
    return [Instr(step.name, step.op, "activation", run)]


def _emit_add(step, bound, ctx: _TapeBuild):
    a, b = (ctx.arrays[name] for name in step.inputs)
    meta_a, meta_b = bound.in_metas
    shared = step.shared
    out = bound.output
    calls: list[tuple] = []
    operands = []
    for src, meta, dst in ((a, meta_a, None), (b, meta_b, out)):
        shift = meta.fraction - shared.fraction
        probe = ElementwiseChain(src, src, bound=_meta_bound(meta), integral=True,
                                 src_mutable=False, fuse=ctx.fuse)
        probe.scale((2.0 ** float(-shift)) / float(meta.divisor))
        probe.round()
        probe.clip(shared.qmin, shared.qmax)
        ops, _ = probe.compile()
        if not ops and ctx.fuse:
            # No-op requantize: feed the producer's codes to the add directly.
            operands.append(src)
            ctx.report["chains"] += 1
            for key in ("scale", "round", "clip"):
                ctx.report["eliminated"][key] += 1
        else:
            target = dst if dst is not None else np.empty(bound.out_shape)
            calls.extend(ctx.requantize_chain(
                src, target, shift=shift, qmin=shared.qmin, qmax=shared.qmax,
                divisor=meta.divisor, bound=_meta_bound(meta)))
            operands.append(target)
    calls.append((np.add, (operands[0], operands[1], out)))
    tail = ElementwiseChain(out, out, bound=2.0 * _meta_bound(shared),
                            integral=True, src_mutable=True, fuse=ctx.fuse)
    if step.activation == "relu":
        tail.relu()
    elif step.activation == "relu6":
        tail.relu6(_relu6_bound(shared.fraction, 1, step.name))
    if step.output_stage is not None:
        stage = step.output_stage
        tail.scale(2.0 ** float(-(shared.fraction - stage.fraction)))
        tail.round()
        tail.clip(stage.qmin, stage.qmax)
    calls.extend(ctx.chain_calls(tail))
    return [Instr(step.name, step.op, "eltwise_add", _ops_runner(calls))]


def _emit_concat(step, bound, ctx: _TapeBuild):
    shared = step.shared
    axis = step.axis
    out = bound.output
    sizes = [shape[axis] for shape in bound.in_shapes]
    offsets = np.cumsum([0] + sizes)
    calls: list[tuple] = []
    for index, name in enumerate(step.inputs):
        src = ctx.arrays[name]
        meta = bound.in_metas[index]
        region = tuple([slice(None)] * axis
                       + [slice(int(offsets[index]), int(offsets[index + 1]))])
        shift = meta.fraction - shared.fraction
        chain = ElementwiseChain(src, out[region], bound=_meta_bound(meta),
                                 integral=True, src_mutable=False, fuse=ctx.fuse)
        chain.scale((2.0 ** float(-shift)) / float(meta.divisor))
        chain.round()
        chain.clip(shared.qmin, shared.qmax)
        calls.extend(ctx.chain_calls(chain))
    return [Instr(step.name, step.op, "concat", _ops_runner(calls))]


def _emit_leaky_relu(step, bound, ctx: _TapeBuild):
    src = ctx.arrays[step.inputs[0]]
    meta = bound.in_metas[0]
    internal = step.internal
    x16 = np.empty(bound.out_shape)
    scaled = np.empty(bound.out_shape)
    calls = ctx.requantize_chain(src, x16, shift=meta.fraction - internal.fraction,
                                 qmin=internal.qmin, qmax=internal.qmax,
                                 divisor=meta.divisor, bound=_meta_bound(meta))
    if not calls:
        calls = [(np.copyto, (x16, src))]
    calls.append((np.multiply, (x16, float(step.alpha_code), scaled)))
    calls.extend(ctx.requantize_chain(
        scaled, scaled, shift=step.alpha_fraction, qmin=internal.qmin,
        qmax=internal.qmax, bound=float(internal.max_abs) * abs(step.alpha_code),
        src_mutable=True))
    calls.append((_maximum_into, (x16, scaled, scaled)))
    if step.output_stage is not None:
        stage = step.output_stage
        calls.extend(ctx.requantize_chain(
            scaled, bound.output, shift=internal.fraction - stage.fraction,
            qmin=stage.qmin, qmax=stage.qmax, bound=float(internal.max_abs),
            src_mutable=True))
    else:
        calls.append((np.copyto, (bound.output, scaled)))
    return [Instr(step.name, step.op, "leaky_relu", _ops_runner(calls))]


def _emit_max_pool(step, bound, ctx: _TapeBuild):
    src = ctx.arrays[step.inputs[0]]
    n, c, h, w = bound.in_shapes[0]
    padded = None
    if step.padding[0] or step.padding[1]:
        padded = np.zeros((n, c, h + 2 * step.padding[0], w + 2 * step.padding[1]))
    run = partial(max_pool_codes, src, step.kernel, step.stride, step.padding,
                  padded, bound.output)
    return [Instr(step.name, step.op, "max_pool", run)]


def _emit_global_avg_pool(step, bound, ctx: _TapeBuild):
    src = ctx.arrays[step.inputs[0]]
    out = bound.output
    keepdims = step.keepdims

    def run():
        np.sum(src, axis=(2, 3), keepdims=keepdims, out=out)

    return [Instr(step.name, step.op, "global_avgpool", run)]


# ---------------------------------------------------------------------- #
# Compute-step emission (tunable macro kernels + fused tails)
# ---------------------------------------------------------------------- #
def _wrapped_variant(name: str, step, bound, env, impl) -> list[Instr]:
    """A legacy bound-step kernel variant wrapped as one tape instruction."""
    return [Instr(step.name, step.op, f"legacy[{name}]", partial(impl, bound, env))]


def _stack_elements(geometry) -> int:
    kh, kw = geometry.kernel
    return (geometry.batch * kh * kw * geometry.in_channels
            * geometry.out_height * geometry.out_width)


def _emit_compute(step, bound, ctx: _TapeBuild, extra_activation=None,
                  extra_relu6_bound=None):
    info = getattr(bound, "_tape", None)
    if info is None or ctx.engine.accumulate != "blas":
        # Integer-backend engines (and unknown steps) run the reference
        # closures verbatim via the fallback wrapper.
        return None
    x = ctx.arrays[step.inputs[0]]
    out = bound.output
    env = ctx.engine._env
    fuse = ctx.fuse
    kind = info["kind"]
    builders: dict = {}

    def chain_instr(name, calls):
        return Instr(step.name, step.op, name, _ops_runner(calls))

    def tail(constants, src, dst):
        return tail_chain(constants, src, dst, src_mutable=True, fuse=fuse,
                          extra_activation=extra_activation,
                          extra_relu6_bound=extra_relu6_bound)[0]

    if kind in ("dw", "conv"):
        geometry = info["geometry"]

        def make_einsum(g32: bool):
            def build():
                geo = info["geometry32"] if g32 else geometry
                image = info["image32"] if g32 else info["image"]
                constants = info["constants_img32" if g32 else "constants_img"]
                weight = info["weight32"] if g32 else info["weight64"]
                # Resolve the stable strided window view without running the
                # staging fill (the input buffer holds garbage at compile
                # time; filling would cast NaNs into the f32 staging).
                kh, kw = geo.kernel
                sh, sw = geo.stride
                base = geo._padded if geo._padded is not None else x
                win = sliding_window_view(base, (kh, kw),
                                          axis=(2, 3))[:, :, ::sh, ::sw]
                instrs: list[Instr] = []
                if geo._padded is not None:
                    ph, pw = geo.padding
                    interior = geo._padded[:, :, ph:ph + geo.height,
                                           pw:pw + geo.width]
                    instrs.append(Instr(step.name, step.op, "pad_fill",
                                        partial(np.copyto, interior, x)))
                if kind == "dw":
                    spec, operand, target = "nchwij,cij->nchw", win, image
                    path = info["path"]
                elif info.get("grouped"):
                    g = info["groups"]
                    cg = geo.in_channels // g
                    kh, kw = geo.kernel
                    operand = win.reshape(geo.batch, g, cg, geo.out_height,
                                          geo.out_width, kh, kw)
                    target = image.reshape(geo.batch, g,
                                           geo.out_channels // g,
                                           geo.out_height, geo.out_width)
                    spec, path = "ngchwij,gocij->ngohw", info["path5"]
                else:
                    spec, operand, target = "nchwij,ocij->nohw", win, image
                    path = info["path4"]

                def run(spec=spec, operand=operand, weight=weight,
                        target=target, path=path):
                    np.einsum(spec, operand, weight, out=target, optimize=path)

                instrs.append(Instr(step.name, step.op,
                                    "einsum32" if g32 else "einsum", run))
                instrs.append(chain_instr("chain", tail(constants, image, out)))
                return instrs

            return build

        name64 = "blas" if kind == "dw" else "wingemm"
        if kind == "dw" or name64 in bound._impls:
            builders[name64] = make_einsum(False)
        if info.get("geometry32") is not None:
            builders[name64 + "32"] = make_einsum(True)

        # Stacked-shift GEMM: ungrouped convs and depthwise (dense-embedded).
        stackable = (info.get("groups", 1) == 1 or kind == "dw")
        if (ctx.engine.accumulate == "blas" and stackable
                and _stack_elements(geometry) <= STACKGEMM_MAX_ELEMENTS):

            def make_stack(f32: bool):
                def build():
                    dtype = np.float32 if f32 else np.float64
                    ssg = StackedShiftGeometry(
                        geometry.batch, geometry.in_channels, geometry.height,
                        geometry.width, geometry.kernel, geometry.stride,
                        geometry.padding, dtype=dtype)
                    weight_codes = info["step"].weight_codes
                    if kind == "dw":
                        packed = pack_stacked_depthwise_weights(weight_codes, dtype)
                    else:
                        packed = pack_stacked_weights(weight_codes, dtype)
                    n = geometry.batch
                    o = geometry.out_channels
                    m = ssg.out_height * ssg.out_width
                    constants = info["constants_img32" if f32 else "constants_img"]
                    constants = dict(constants)
                    if constants["bias_addend"] is not None:
                        constants["bias_addend"] = \
                            constants["bias_addend"].reshape(1, -1, 1)
                    if not f32 and out.dtype == np.float64:
                        acc = out.reshape(n, o, m)
                    else:
                        acc = np.empty((n, o, m), dtype=dtype)
                    gemm_view = ssg.gemm_view

                    def run_fill():
                        ssg.fill(x)

                    def run_gemm():
                        np.matmul(packed, gemm_view, out=acc)

                    dst = out.reshape(n, o, m)
                    return [
                        Instr(step.name, step.op, "stack_fill", run_fill),
                        Instr(step.name, step.op, "stack_gemm", run_gemm),
                        chain_instr("chain", tail(constants, acc, dst)),
                    ]

                return build

            builders["stackgemm"] = make_stack(False)
            if info.get("f32_ok"):
                builders["stackgemm32"] = make_stack(True)

        # Legacy closures cover the remaining variants (im2col BLAS, int).
        for name, impl in bound._impls.items():
            if name not in builders:
                builders[name] = partial(_wrapped_variant, name, step, bound,
                                         env, impl)
        default = "stackgemm" if "stackgemm" in builders else name64
        if default not in builders:
            default = next(iter(builders))

    elif kind == "pw":
        subsample = info["subsample"]

        def make_pw(f32: bool):
            def build():
                weight = info["weight32"] if f32 else info["weight64"]
                staging = info["staging32"] if f32 else info["staging64"]
                acc = info["acc32"] if f32 else info["acc"]
                constants = info["constants32" if f32 else "constants"]
                mode = "blas"
                gemm = partial(pointwise_accumulate, x, weight, acc, staging,
                               subsample, mode)
                instrs = [Instr(step.name, step.op,
                                "pw_gemm32" if f32 else "pw_gemm", gemm)]
                instrs.append(chain_instr("chain",
                                          tail(constants, acc, info["out_gemm"])))
                return instrs

            return build

        builders["blas"] = make_pw(False)
        if info.get("acc32") is not None:
            builders["blas32"] = make_pw(True)
        for name, impl in bound._impls.items():
            if name not in builders:
                builders[name] = partial(_wrapped_variant, name, step, bound,
                                         env, impl)
        default = "blas32" if "blas32" in builders else "blas"

    elif kind == "fc":

        def make_fc(f32: bool):
            def build():
                weight = info["weight32"] if f32 else info["weight64"]
                acc = info["acc32"] if f32 else info["acc"]
                constants = info["constants32" if f32 else "constants"]
                calls: list[tuple] = []
                operand = x
                if f32:
                    staging = info["staging32"]
                    calls.append((np.copyto, (staging, x)))
                    operand = staging
                calls.append((np.matmul, (operand, weight, acc)))
                instrs = [Instr(step.name, step.op,
                                "fc_gemm32" if f32 else "fc_gemm",
                                _ops_runner(calls))]
                instrs.append(chain_instr("chain", tail(constants, acc, out)))
                return instrs

            return build

        builders["blas"] = make_fc(False)
        if info.get("acc32") is not None:
            builders["blas32"] = make_fc(True)
        for name, impl in bound._impls.items():
            if name not in builders:
                builders[name] = partial(_wrapped_variant, name, step, bound,
                                         env, impl)
        default = "blas32" if "blas32" in builders else "blas"

    else:
        return None

    ctx.report["tunable_steps"] += 1
    return [_TunableGroup(step.name, step.op, builders, default)]


# ---------------------------------------------------------------------- #
# The compiler
# ---------------------------------------------------------------------- #
_CHEAP_EMITTERS = {
    _ReshapeStep: _emit_reshape,
    _QuantizeInputStep: _emit_quantize_input,
    _ActivationOnlyStep: _emit_activation_only,
    _AddStep: _emit_add,
    _ConcatStep: _emit_concat,
    _LeakyReLUStep: _emit_leaky_relu,
    _MaxPoolStep: _emit_max_pool,
    _GlobalAvgPoolStep: _emit_global_avg_pool,
}

_COMPUTE_TYPES = (_FusedConvStep, _PointwiseConvStep, _FusedLinearStep)


def compile_tape(engine, fuse: bool = True) -> TapeProgram:
    """Lower a bound engine into a flat instruction program.

    Native instructions are emitted for every step type the compiler knows;
    anything else is wrapped as a single legacy-closure instruction, so the
    tape is total over the plans the interpreter executes.  Tunable compute
    steps are resolved from the plan's cached tape kernel choices when
    present (artifact loads re-profile nothing); otherwise the tape
    autotunes once and caches the choices on the plan.
    """
    PIPELINE_COUNTERS.tape_compilations += 1
    plan = engine.plan
    env = engine._env
    input_buffer = np.zeros(engine.input_shape, dtype=engine.input_dtype)
    env[0] = input_buffer
    ctx = _TapeBuild(engine, fuse)
    ctx.arrays[plan.input_name] = input_buffer

    items: list = []
    env_pins: list[tuple] = [(0, input_buffer)]
    for step, bound in zip(plan.steps, engine.steps):
        emitted = None
        sym = step
        extra_activation = extra_relu6_bound = None
        if isinstance(sym, _FusedActivationStep):
            if isinstance(sym.inner, _COMPUTE_TYPES):
                extra_activation = sym.fused_activation
                if extra_activation == "relu6":
                    extra_relu6_bound = _relu6_bound(
                        bound.out_meta.fraction, bound.out_meta.divisor, sym.name)
                emitted = _emit_compute(sym, bound, ctx, extra_activation,
                                        extra_relu6_bound)
        elif isinstance(sym, _COMPUTE_TYPES):
            emitted = _emit_compute(sym, bound, ctx)
        else:
            emitter = _CHEAP_EMITTERS.get(type(sym))
            if emitter is not None:
                emitted = emitter(sym, bound, ctx)
        if emitted is None:
            ctx.report["fallback_steps"] += 1
            emitted = [Instr(step.name, step.op, "fallback",
                             partial(bound.run, env))]
        else:
            ctx.report["native_steps"] += 1
        items.extend(emitted)
        if step.name not in ctx.arrays:
            ctx.arrays[step.name] = bound.output
        # Keep the environment coherent for fallback instructions (and for
        # interleaved steps-mode runs: both paths share the buffers).
        env[bound.output_slot] = ctx.arrays[step.name]
        env_pins.append((bound.output_slot, ctx.arrays[step.name]))

    tape = TapeProgram(engine, input_buffer, ctx.arrays[plan.output_name],
                       items, ctx.report, env_pins)

    if engine.accumulate == "blas" and tape.tunable_groups:
        cached = getattr(plan, "tape_kernel_choices", None)
        if cached:
            tape.apply_choices(cached)
            for group in tape.tunable_groups:
                group.drop_unchosen()
        elif getattr(plan, "autotune", True):
            choices = tape.autotune()
            try:
                plan.tape_kernel_choices = dict(choices)
            except AttributeError:  # exotic plan objects; cache is best-effort
                pass
    return tape
