"""Batched serving-style runner for the integer inference engine.

The engine is bound to a fixed batch shape (so its buffers can be
preallocated); the runner accepts an arbitrary stream of single-image
requests, coalesces them into full batches (padding the final partial batch
with zero images), executes each batch through the compiled plan, and
reports serving statistics: throughput, mean latency and latency
percentiles.  Request latency is measured from the request's arrival time to
the completion of the batch that carried it, so queueing delay induced by
batching is part of the number — the trade-off a serving stack actually
makes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .parallel import ShardedRunner
from .plan import CompiledEngine

__all__ = ["RequestResult", "RunnerStats", "BatchedRunner"]


@dataclass(frozen=True)
class RequestResult:
    """Outcome of one request: its output codes and observed latency."""

    request_id: int
    codes: np.ndarray
    latency_s: float
    batch_index: int


@dataclass
class RunnerStats:
    """Aggregate serving statistics for one runner invocation."""

    requests: int = 0
    batches: int = 0
    batch_size: int = 0
    padded_requests: int = 0
    total_time_s: float = 0.0
    throughput_rps: float = 0.0
    latency_mean_ms: float = 0.0
    latency_p50_ms: float = 0.0
    latency_p90_ms: float = 0.0
    latency_p95_ms: float = 0.0
    latency_p99_ms: float = 0.0
    latency_max_ms: float = 0.0
    _latencies_ms: list[float] = field(default_factory=list, repr=False)

    def finalize(self) -> None:
        if not self.requests or not self._latencies_ms:
            # Zero-request run: keep the zeroed defaults rather than feeding
            # an empty array to np.percentile.
            return
        self.throughput_rps = self.requests / self.total_time_s if self.total_time_s else 0.0
        latencies = np.asarray(self._latencies_ms)
        self.latency_mean_ms = float(latencies.mean())
        self.latency_p50_ms = float(np.percentile(latencies, 50))
        self.latency_p90_ms = float(np.percentile(latencies, 90))
        self.latency_p95_ms = float(np.percentile(latencies, 95))
        self.latency_p99_ms = float(np.percentile(latencies, 99))
        self.latency_max_ms = float(latencies.max())

    def to_dict(self) -> dict:
        """JSON-serializable view (used by ``BENCH_engine.json``)."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "batch_size": self.batch_size,
            "padded_requests": self.padded_requests,
            "total_time_s": self.total_time_s,
            "throughput_rps": self.throughput_rps,
            "latency_mean_ms": self.latency_mean_ms,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p90_ms": self.latency_p90_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "latency_max_ms": self.latency_max_ms,
        }


class BatchedRunner:
    """Coalesce single-image requests into fixed-size engine batches.

    ``workers > 1`` shards every batch across a thread pool of per-shard
    engines (see :class:`~repro.engine.parallel.ShardedRunner`); the request
    codes are identical to the single-engine execution, only the compute
    time changes.  A :class:`ShardedRunner` may also be passed directly as
    ``engine``.
    """

    def __init__(self, engine: CompiledEngine | ShardedRunner, *,
                 workers: int = 1) -> None:
        if not isinstance(engine, (CompiledEngine, ShardedRunner)):
            # Accept a Deployment (or any bundle carrying a bound engine).
            inner = getattr(engine, "engine", None)
            if isinstance(inner, (CompiledEngine, ShardedRunner)):
                engine = inner
        if workers > 1:
            if not isinstance(engine, CompiledEngine):
                raise ValueError("workers > 1 requires a CompiledEngine to shard; "
                                 "pass an already-sharded runner as engine instead")
            engine = ShardedRunner(engine.plan, engine.input_shape, workers=workers,
                                   accumulate=engine.accumulate)
        self.engine = engine
        self.batch_size = engine.batch_size
        self._staging = np.zeros(engine.input_shape, dtype=engine.input_dtype)

    def close(self) -> None:
        """Release the sharded engine's thread pool (no-op for a plain engine)."""
        close = getattr(self.engine, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "BatchedRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def run(self, images: np.ndarray, arrival_times_s: np.ndarray | None = None
            ) -> tuple[list[RequestResult], RunnerStats]:
        """Serve a request stream.

        Parameters
        ----------
        images: array of shape ``(R, C, H, W)`` — one request per row, in
            arrival order.
        arrival_times_s: optional non-decreasing per-request arrival offsets
            (seconds, relative to the start of serving).  Batch execution is
            placed on a virtual clock — a batch starts once its last request
            has arrived and the previous batch has finished, and takes its
            *measured* compute time — so latency percentiles reflect the
            queueing cost of the arrival pattern.  Defaults to a burst: all
            requests arrive at t=0.
        """
        images = np.asarray(images, dtype=self.engine.input_dtype)
        if images.ndim != 4 or images.shape[1:] != self.engine.input_shape[1:]:
            expected = ", ".join(str(s) for s in self.engine.input_shape[1:])
            raise ValueError(f"expected requests shaped (R, {expected}), got {images.shape}")
        if not np.all(np.isfinite(images)):
            raise ValueError("request images must be finite; got NaN or Inf values "
                             "(quantization codes for non-finite inputs are undefined)")
        total = images.shape[0]
        if arrival_times_s is None:
            arrival_times_s = np.zeros(total)
        arrival_times_s = np.asarray(arrival_times_s, dtype=np.float64)
        if arrival_times_s.shape != (total,):
            raise ValueError("arrival_times_s must have one entry per request")
        if np.any(np.diff(arrival_times_s) < 0):
            raise ValueError("arrival_times_s must be non-decreasing (arrival order)")

        results: list[RequestResult] = []
        stats = RunnerStats(batch_size=self.batch_size)
        clock = 0.0  # virtual serving clock; advances by measured compute time
        for batch_index, begin in enumerate(range(0, total, self.batch_size)):
            end = min(begin + self.batch_size, total)
            fill = end - begin
            self._staging[:fill] = images[begin:end]
            if fill < self.batch_size:
                self._staging[fill:] = 0.0
                stats.padded_requests += self.batch_size - fill
            batch_ready = float(arrival_times_s[end - 1])
            started = max(clock, batch_ready)
            compute_start = time.perf_counter()
            output = self.engine.run(self._staging)
            compute_time = time.perf_counter() - compute_start
            clock = started + compute_time
            for offset in range(fill):
                latency = clock - arrival_times_s[begin + offset]
                results.append(RequestResult(
                    request_id=begin + offset,
                    codes=output.codes[offset].copy(),
                    latency_s=float(latency),
                    batch_index=batch_index,
                ))
                stats._latencies_ms.append(float(latency) * 1e3)
            stats.batches += 1
        stats.requests = total
        stats.total_time_s = clock  # serving makespan on the virtual clock
        stats.finalize()
        return results, stats
