"""Batched serving-style runner for the integer inference engine.

The engine is bound to a fixed batch shape (so its buffers can be
preallocated); the runner accepts an arbitrary stream of single-image
requests, coalesces them into full batches (padding the final partial batch
with zero images), executes each batch through the compiled plan, and
reports serving statistics: throughput, mean latency and latency
percentiles.  Request latency is measured from the request's arrival time to
the completion of the batch that carried it, so queueing delay induced by
batching is part of the number — the trade-off a serving stack actually
makes.

**Megabatch coalescing** (:func:`pack_partial_fills` /
:meth:`BatchedRunner.run_partial_groups`): a partially filled batch costs
exactly one full tape execution regardless of fill, so several pending
partial fills are packed into one engine pass and the output codes sliced
back out per group.  Every plan op is per-sample independent, so packing
never changes a single code — only how many tape executions the fills cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .parallel import ShardedRunner
from .plan import CompiledEngine, EngineOutput

__all__ = ["RequestResult", "RunnerStats", "BatchedRunner", "pack_partial_fills",
           "run_partial_groups"]


def pack_partial_fills(fills: list[int], batch_size: int) -> list[list[int]]:
    """Greedily pack group fills into engine executions of ``<= batch_size``.

    Order-preserving first-fit: groups are packed in sequence so each
    execution carries consecutive groups whose total fill fits one batch.
    """
    packs: list[list[int]] = []
    current: list[int] = []
    used = 0
    for index, fill in enumerate(fills):
        if not 1 <= fill <= batch_size:
            raise ValueError(f"group {index}: fill must be in [1, {batch_size}], "
                             f"got {fill}")
        if current and used + fill > batch_size:
            packs.append(current)
            current, used = [], 0
        current.append(index)
        used += fill
    if current:
        packs.append(current)
    return packs


def run_partial_groups(engine, groups: list[np.ndarray]
                       ) -> tuple[list[EngineOutput], int]:
    """Execute several partial fills in as few engine passes as possible.

    Returns one :class:`EngineOutput` per input group (sliced from the
    packed executions) plus the number of engine passes actually run.
    Outputs are bit-identical to running each group through
    ``engine.run_partial`` on its own.
    """
    fills = [np.asarray(g).shape[0] for g in groups]
    packs = pack_partial_fills(fills, engine.batch_size)
    outputs: list[EngineOutput | None] = [None] * len(groups)
    for pack in packs:
        if len(pack) == 1:
            index = pack[0]
            outputs[index] = engine.run_partial(np.asarray(
                groups[index], dtype=engine.input_dtype))
            continue
        stacked = np.concatenate([np.asarray(groups[i], dtype=engine.input_dtype)
                                  for i in pack], axis=0)
        merged = engine.run_partial(stacked)
        offset = 0
        for i in pack:
            outputs[i] = EngineOutput(codes=merged.codes[offset:offset + fills[i]],
                                      fraction=merged.fraction,
                                      divisor=merged.divisor)
            offset += fills[i]
    return outputs, len(packs)


@dataclass(frozen=True)
class RequestResult:
    """Outcome of one request: its output codes and observed latency."""

    request_id: int
    codes: np.ndarray
    latency_s: float
    batch_index: int


@dataclass
class RunnerStats:
    """Aggregate serving statistics for one runner invocation."""

    requests: int = 0
    batches: int = 0
    batch_size: int = 0
    padded_requests: int = 0
    total_time_s: float = 0.0
    throughput_rps: float = 0.0
    latency_mean_ms: float = 0.0
    latency_p50_ms: float = 0.0
    latency_p90_ms: float = 0.0
    latency_p95_ms: float = 0.0
    latency_p99_ms: float = 0.0
    latency_max_ms: float = 0.0
    #: shard-worker provisioning: what was asked for, what actually ran, and
    #: why (the auto-degrade decision of ShardedRunner, when it applies)
    workers_requested: int = 1
    workers_effective: int = 1
    worker_decision: str = "as-requested"
    #: megabatch accounting (run_partial_groups): how many partial-fill
    #: groups were served and how many engine passes they actually cost
    megabatch_groups: int = 0
    megabatch_executions: int = 0
    _latencies_ms: list[float] = field(default_factory=list, repr=False)

    def finalize(self) -> None:
        if not self.requests or not self._latencies_ms:
            # Zero-request run: keep the zeroed defaults rather than feeding
            # an empty array to np.percentile.
            return
        self.throughput_rps = self.requests / self.total_time_s if self.total_time_s else 0.0
        latencies = np.asarray(self._latencies_ms)
        self.latency_mean_ms = float(latencies.mean())
        self.latency_p50_ms = float(np.percentile(latencies, 50))
        self.latency_p90_ms = float(np.percentile(latencies, 90))
        self.latency_p95_ms = float(np.percentile(latencies, 95))
        self.latency_p99_ms = float(np.percentile(latencies, 99))
        self.latency_max_ms = float(latencies.max())

    def to_dict(self) -> dict:
        """JSON-serializable view (used by ``BENCH_engine.json``)."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "batch_size": self.batch_size,
            "padded_requests": self.padded_requests,
            "total_time_s": self.total_time_s,
            "throughput_rps": self.throughput_rps,
            "latency_mean_ms": self.latency_mean_ms,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p90_ms": self.latency_p90_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "latency_max_ms": self.latency_max_ms,
            "workers_requested": self.workers_requested,
            "workers_effective": self.workers_effective,
            "worker_decision": self.worker_decision,
            "megabatch_groups": self.megabatch_groups,
            "megabatch_executions": self.megabatch_executions,
        }


class BatchedRunner:
    """Coalesce single-image requests into fixed-size engine batches.

    ``workers > 1`` shards every batch across a thread pool of per-shard
    engines (see :class:`~repro.engine.parallel.ShardedRunner`); the request
    codes are identical to the single-engine execution, only the compute
    time changes.  A :class:`ShardedRunner` may also be passed directly as
    ``engine``.
    """

    def __init__(self, engine: CompiledEngine | ShardedRunner, *,
                 workers: int = 1, auto_workers: bool = True) -> None:
        if not isinstance(engine, (CompiledEngine, ShardedRunner)):
            # Accept a Deployment (or any bundle carrying a bound engine).
            inner = getattr(engine, "engine", None)
            if isinstance(inner, (CompiledEngine, ShardedRunner)):
                engine = inner
        self.workers_requested = int(workers)
        self.worker_decision = "as-requested"
        if workers > 1:
            if not isinstance(engine, CompiledEngine):
                raise ValueError("workers > 1 requires a CompiledEngine to shard; "
                                 "pass an already-sharded runner as engine instead")
            # auto_workers lets the sharded runner fall back to the
            # single-thread path when the host cannot profit from shards
            # (single core, or measured scaling below 1.0x).
            engine = ShardedRunner(engine.plan, engine.input_shape, workers=workers,
                                   accumulate=engine.accumulate,
                                   auto_degrade=auto_workers)
            self.worker_decision = engine.worker_decision
        self.engine = engine
        self.batch_size = engine.batch_size
        self._staging = np.zeros(engine.input_shape, dtype=engine.input_dtype)

    def close(self) -> None:
        """Release the sharded engine's thread pool (no-op for a plain engine)."""
        close = getattr(self.engine, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "BatchedRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def run(self, images: np.ndarray, arrival_times_s: np.ndarray | None = None
            ) -> tuple[list[RequestResult], RunnerStats]:
        """Serve a request stream.

        Parameters
        ----------
        images: array of shape ``(R, C, H, W)`` — one request per row, in
            arrival order.
        arrival_times_s: optional non-decreasing per-request arrival offsets
            (seconds, relative to the start of serving).  Batch execution is
            placed on a virtual clock — a batch starts once its last request
            has arrived and the previous batch has finished, and takes its
            *measured* compute time — so latency percentiles reflect the
            queueing cost of the arrival pattern.  Defaults to a burst: all
            requests arrive at t=0.
        """
        images = np.asarray(images, dtype=self.engine.input_dtype)
        if images.ndim != 4 or images.shape[1:] != self.engine.input_shape[1:]:
            expected = ", ".join(str(s) for s in self.engine.input_shape[1:])
            raise ValueError(f"expected requests shaped (R, {expected}), got {images.shape}")
        if not np.all(np.isfinite(images)):
            raise ValueError("request images must be finite; got NaN or Inf values "
                             "(quantization codes for non-finite inputs are undefined)")
        total = images.shape[0]
        if arrival_times_s is None:
            arrival_times_s = np.zeros(total)
        arrival_times_s = np.asarray(arrival_times_s, dtype=np.float64)
        if arrival_times_s.shape != (total,):
            raise ValueError("arrival_times_s must have one entry per request")
        if np.any(np.diff(arrival_times_s) < 0):
            raise ValueError("arrival_times_s must be non-decreasing (arrival order)")

        results: list[RequestResult] = []
        stats = RunnerStats(batch_size=self.batch_size,
                            workers_requested=self.workers_requested,
                            workers_effective=getattr(self.engine, "workers", 1),
                            worker_decision=self.worker_decision)
        clock = 0.0  # virtual serving clock; advances by measured compute time
        for batch_index, begin in enumerate(range(0, total, self.batch_size)):
            end = min(begin + self.batch_size, total)
            fill = end - begin
            self._staging[:fill] = images[begin:end]
            if fill < self.batch_size:
                self._staging[fill:] = 0.0
                stats.padded_requests += self.batch_size - fill
            batch_ready = float(arrival_times_s[end - 1])
            started = max(clock, batch_ready)
            compute_start = time.perf_counter()
            output = self.engine.run(self._staging)
            compute_time = time.perf_counter() - compute_start
            clock = started + compute_time
            for offset in range(fill):
                latency = clock - arrival_times_s[begin + offset]
                results.append(RequestResult(
                    request_id=begin + offset,
                    codes=output.codes[offset].copy(),
                    latency_s=float(latency),
                    batch_index=batch_index,
                ))
                stats._latencies_ms.append(float(latency) * 1e3)
            stats.batches += 1
        stats.requests = total
        stats.total_time_s = clock  # serving makespan on the virtual clock
        stats.finalize()
        return results, stats

    def run_partial_groups(self, groups: list[np.ndarray]
                           ) -> tuple[list, RunnerStats]:
        """Serve several partial fills with megabatch coalescing.

        Consecutive groups whose fills fit one engine batch execute in a
        single tape pass; output codes per group are bit-identical to
        serving each group alone.  Returns per-group
        :class:`~repro.engine.plan.EngineOutput` objects plus stats
        recording how many executions the groups actually cost.
        """
        stats = RunnerStats(batch_size=self.batch_size,
                            workers_requested=self.workers_requested,
                            workers_effective=getattr(self.engine, "workers", 1),
                            worker_decision=self.worker_decision)
        start = time.perf_counter()
        outputs, executions = run_partial_groups(self.engine, groups)
        stats.total_time_s = time.perf_counter() - start
        stats.requests = sum(np.asarray(g).shape[0] for g in groups)
        stats.batches = executions
        stats.megabatch_groups = len(groups)
        stats.megabatch_executions = executions
        stats.throughput_rps = (stats.requests / stats.total_time_s
                                if stats.total_time_s else 0.0)
        return outputs, stats
